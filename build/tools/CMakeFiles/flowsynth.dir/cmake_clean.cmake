file(REMOVE_RECURSE
  "CMakeFiles/flowsynth.dir/flowsynth.cpp.o"
  "CMakeFiles/flowsynth.dir/flowsynth.cpp.o.d"
  "flowsynth"
  "flowsynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowsynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
