# Empty dependencies file for flowsynth.
# This may be replaced when dependencies are built.
