# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/flowsynth" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule "/root/repo/build/tools/flowsynth" "schedule" "pcr" "--asap")
set_tests_properties(cli_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth "/root/repo/build/tools/flowsynth" "synth" "pcr" "--asap" "--grid" "10")
set_tests_properties(cli_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/flowsynth" "frobnicate")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
