# Empty compiler generated dependencies file for chip_viewer.
# This may be replaced when dependencies are built.
