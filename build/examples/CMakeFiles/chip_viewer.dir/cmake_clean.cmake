file(REMOVE_RECURSE
  "CMakeFiles/chip_viewer.dir/chip_viewer.cpp.o"
  "CMakeFiles/chip_viewer.dir/chip_viewer.cpp.o.d"
  "chip_viewer"
  "chip_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
