# Empty dependencies file for mixing_ratios.
# This may be replaced when dependencies are built.
