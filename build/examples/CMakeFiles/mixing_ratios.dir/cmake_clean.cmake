file(REMOVE_RECURSE
  "CMakeFiles/mixing_ratios.dir/mixing_ratios.cpp.o"
  "CMakeFiles/mixing_ratios.dir/mixing_ratios.cpp.o.d"
  "mixing_ratios"
  "mixing_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixing_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
