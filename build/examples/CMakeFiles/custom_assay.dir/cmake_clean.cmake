file(REMOVE_RECURSE
  "CMakeFiles/custom_assay.dir/custom_assay.cpp.o"
  "CMakeFiles/custom_assay.dir/custom_assay.cpp.o.d"
  "custom_assay"
  "custom_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
