# Empty dependencies file for test_control_layer.
# This may be replaced when dependencies are built.
