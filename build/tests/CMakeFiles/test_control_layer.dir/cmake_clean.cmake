file(REMOVE_RECURSE
  "CMakeFiles/test_control_layer.dir/test_control_layer.cpp.o"
  "CMakeFiles/test_control_layer.dir/test_control_layer.cpp.o.d"
  "test_control_layer"
  "test_control_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
