# Empty dependencies file for test_control_program.
# This may be replaced when dependencies are built.
