file(REMOVE_RECURSE
  "CMakeFiles/test_control_program.dir/test_control_program.cpp.o"
  "CMakeFiles/test_control_program.dir/test_control_program.cpp.o.d"
  "test_control_program"
  "test_control_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
