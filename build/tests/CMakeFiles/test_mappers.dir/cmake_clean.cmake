file(REMOVE_RECURSE
  "CMakeFiles/test_mappers.dir/test_mappers.cpp.o"
  "CMakeFiles/test_mappers.dir/test_mappers.cpp.o.d"
  "test_mappers"
  "test_mappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
