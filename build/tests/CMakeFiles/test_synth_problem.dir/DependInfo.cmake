
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_synth_problem.cpp" "tests/CMakeFiles/test_synth_problem.dir/test_synth_problem.cpp.o" "gcc" "tests/CMakeFiles/test_synth_problem.dir/test_synth_problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/fsyn_synth_problem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/fsyn_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/assay/CMakeFiles/fsyn_assay.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/fsyn_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
