file(REMOVE_RECURSE
  "CMakeFiles/test_synth_problem.dir/test_synth_problem.cpp.o"
  "CMakeFiles/test_synth_problem.dir/test_synth_problem.cpp.o.d"
  "test_synth_problem"
  "test_synth_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
