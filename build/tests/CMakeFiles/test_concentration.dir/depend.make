# Empty dependencies file for test_concentration.
# This may be replaced when dependencies are built.
