# Empty compiler generated dependencies file for bench_washing.
# This may be replaced when dependencies are built.
