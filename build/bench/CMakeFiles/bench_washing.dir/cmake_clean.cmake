file(REMOVE_RECURSE
  "CMakeFiles/bench_washing.dir/bench_washing.cpp.o"
  "CMakeFiles/bench_washing.dir/bench_washing.cpp.o.d"
  "bench_washing"
  "bench_washing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_washing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
