file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_storage.dir/bench_fig7_storage.cpp.o"
  "CMakeFiles/bench_fig7_storage.dir/bench_fig7_storage.cpp.o.d"
  "bench_fig7_storage"
  "bench_fig7_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
