# Empty dependencies file for bench_control_layer.
# This may be replaced when dependencies are built.
