file(REMOVE_RECURSE
  "CMakeFiles/bench_control_layer.dir/bench_control_layer.cpp.o"
  "CMakeFiles/bench_control_layer.dir/bench_control_layer.cpp.o.d"
  "bench_control_layer"
  "bench_control_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
