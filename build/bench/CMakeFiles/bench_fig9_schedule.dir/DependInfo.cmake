
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_schedule.cpp" "bench/CMakeFiles/bench_fig9_schedule.dir/bench_fig9_schedule.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_schedule.dir/bench_fig9_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/fsyn_report.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fsyn_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fsyn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/fsyn_route.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fsyn_synth_problem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/fsyn_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/fsyn_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/assay/CMakeFiles/fsyn_assay.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
