file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_schedule.dir/bench_fig9_schedule.cpp.o"
  "CMakeFiles/bench_fig9_schedule.dir/bench_fig9_schedule.cpp.o.d"
  "bench_fig9_schedule"
  "bench_fig9_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
