# Empty dependencies file for bench_fig9_schedule.
# This may be replaced when dependencies are built.
