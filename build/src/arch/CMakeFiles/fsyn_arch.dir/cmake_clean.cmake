file(REMOVE_RECURSE
  "CMakeFiles/fsyn_arch.dir/architecture.cpp.o"
  "CMakeFiles/fsyn_arch.dir/architecture.cpp.o.d"
  "CMakeFiles/fsyn_arch.dir/control_layer.cpp.o"
  "CMakeFiles/fsyn_arch.dir/control_layer.cpp.o.d"
  "CMakeFiles/fsyn_arch.dir/device_types.cpp.o"
  "CMakeFiles/fsyn_arch.dir/device_types.cpp.o.d"
  "libfsyn_arch.a"
  "libfsyn_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
