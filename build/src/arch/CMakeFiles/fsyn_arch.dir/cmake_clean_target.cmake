file(REMOVE_RECURSE
  "libfsyn_arch.a"
)
