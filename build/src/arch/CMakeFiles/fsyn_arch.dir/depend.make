# Empty dependencies file for fsyn_arch.
# This may be replaced when dependencies are built.
