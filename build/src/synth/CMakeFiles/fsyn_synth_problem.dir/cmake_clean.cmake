file(REMOVE_RECURSE
  "CMakeFiles/fsyn_synth_problem.dir/mapping_problem.cpp.o"
  "CMakeFiles/fsyn_synth_problem.dir/mapping_problem.cpp.o.d"
  "libfsyn_synth_problem.a"
  "libfsyn_synth_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_synth_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
