file(REMOVE_RECURSE
  "libfsyn_synth_problem.a"
)
