# Empty dependencies file for fsyn_synth_problem.
# This may be replaced when dependencies are built.
