file(REMOVE_RECURSE
  "CMakeFiles/fsyn_synth.dir/heuristic_mapper.cpp.o"
  "CMakeFiles/fsyn_synth.dir/heuristic_mapper.cpp.o.d"
  "CMakeFiles/fsyn_synth.dir/ilp_mapper.cpp.o"
  "CMakeFiles/fsyn_synth.dir/ilp_mapper.cpp.o.d"
  "CMakeFiles/fsyn_synth.dir/synthesis.cpp.o"
  "CMakeFiles/fsyn_synth.dir/synthesis.cpp.o.d"
  "libfsyn_synth.a"
  "libfsyn_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
