file(REMOVE_RECURSE
  "libfsyn_synth.a"
)
