# Empty dependencies file for fsyn_synth.
# This may be replaced when dependencies are built.
