file(REMOVE_RECURSE
  "CMakeFiles/fsyn_util.dir/logging.cpp.o"
  "CMakeFiles/fsyn_util.dir/logging.cpp.o.d"
  "CMakeFiles/fsyn_util.dir/strings.cpp.o"
  "CMakeFiles/fsyn_util.dir/strings.cpp.o.d"
  "CMakeFiles/fsyn_util.dir/table.cpp.o"
  "CMakeFiles/fsyn_util.dir/table.cpp.o.d"
  "libfsyn_util.a"
  "libfsyn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
