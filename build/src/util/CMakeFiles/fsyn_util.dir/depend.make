# Empty dependencies file for fsyn_util.
# This may be replaced when dependencies are built.
