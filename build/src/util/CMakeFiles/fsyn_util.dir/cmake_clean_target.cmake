file(REMOVE_RECURSE
  "libfsyn_util.a"
)
