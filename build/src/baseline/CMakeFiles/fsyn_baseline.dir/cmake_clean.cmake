file(REMOVE_RECURSE
  "CMakeFiles/fsyn_baseline.dir/traditional.cpp.o"
  "CMakeFiles/fsyn_baseline.dir/traditional.cpp.o.d"
  "libfsyn_baseline.a"
  "libfsyn_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
