# Empty compiler generated dependencies file for fsyn_baseline.
# This may be replaced when dependencies are built.
