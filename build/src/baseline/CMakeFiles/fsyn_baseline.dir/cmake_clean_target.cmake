file(REMOVE_RECURSE
  "libfsyn_baseline.a"
)
