file(REMOVE_RECURSE
  "CMakeFiles/fsyn_sched.dir/compaction.cpp.o"
  "CMakeFiles/fsyn_sched.dir/compaction.cpp.o.d"
  "CMakeFiles/fsyn_sched.dir/gantt.cpp.o"
  "CMakeFiles/fsyn_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/fsyn_sched.dir/ilp_scheduler.cpp.o"
  "CMakeFiles/fsyn_sched.dir/ilp_scheduler.cpp.o.d"
  "CMakeFiles/fsyn_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/fsyn_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/fsyn_sched.dir/schedule.cpp.o"
  "CMakeFiles/fsyn_sched.dir/schedule.cpp.o.d"
  "libfsyn_sched.a"
  "libfsyn_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
