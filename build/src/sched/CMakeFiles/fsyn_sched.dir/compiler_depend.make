# Empty compiler generated dependencies file for fsyn_sched.
# This may be replaced when dependencies are built.
