file(REMOVE_RECURSE
  "libfsyn_sched.a"
)
