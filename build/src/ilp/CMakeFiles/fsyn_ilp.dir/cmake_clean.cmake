file(REMOVE_RECURSE
  "CMakeFiles/fsyn_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/fsyn_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/fsyn_ilp.dir/model.cpp.o"
  "CMakeFiles/fsyn_ilp.dir/model.cpp.o.d"
  "CMakeFiles/fsyn_ilp.dir/presolve.cpp.o"
  "CMakeFiles/fsyn_ilp.dir/presolve.cpp.o.d"
  "CMakeFiles/fsyn_ilp.dir/simplex.cpp.o"
  "CMakeFiles/fsyn_ilp.dir/simplex.cpp.o.d"
  "libfsyn_ilp.a"
  "libfsyn_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
