
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilp/branch_and_bound.cpp" "src/ilp/CMakeFiles/fsyn_ilp.dir/branch_and_bound.cpp.o" "gcc" "src/ilp/CMakeFiles/fsyn_ilp.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/ilp/model.cpp" "src/ilp/CMakeFiles/fsyn_ilp.dir/model.cpp.o" "gcc" "src/ilp/CMakeFiles/fsyn_ilp.dir/model.cpp.o.d"
  "/root/repo/src/ilp/presolve.cpp" "src/ilp/CMakeFiles/fsyn_ilp.dir/presolve.cpp.o" "gcc" "src/ilp/CMakeFiles/fsyn_ilp.dir/presolve.cpp.o.d"
  "/root/repo/src/ilp/simplex.cpp" "src/ilp/CMakeFiles/fsyn_ilp.dir/simplex.cpp.o" "gcc" "src/ilp/CMakeFiles/fsyn_ilp.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
