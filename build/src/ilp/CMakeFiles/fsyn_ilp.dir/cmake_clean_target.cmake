file(REMOVE_RECURSE
  "libfsyn_ilp.a"
)
