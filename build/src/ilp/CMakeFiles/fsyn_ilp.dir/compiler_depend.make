# Empty compiler generated dependencies file for fsyn_ilp.
# This may be replaced when dependencies are built.
