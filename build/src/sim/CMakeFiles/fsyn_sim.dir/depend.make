# Empty dependencies file for fsyn_sim.
# This may be replaced when dependencies are built.
