file(REMOVE_RECURSE
  "CMakeFiles/fsyn_sim.dir/actuation.cpp.o"
  "CMakeFiles/fsyn_sim.dir/actuation.cpp.o.d"
  "CMakeFiles/fsyn_sim.dir/control_program.cpp.o"
  "CMakeFiles/fsyn_sim.dir/control_program.cpp.o.d"
  "CMakeFiles/fsyn_sim.dir/simulator.cpp.o"
  "CMakeFiles/fsyn_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fsyn_sim.dir/wear_model.cpp.o"
  "CMakeFiles/fsyn_sim.dir/wear_model.cpp.o.d"
  "libfsyn_sim.a"
  "libfsyn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
