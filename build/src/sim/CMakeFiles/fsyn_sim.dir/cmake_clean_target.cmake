file(REMOVE_RECURSE
  "libfsyn_sim.a"
)
