file(REMOVE_RECURSE
  "CMakeFiles/fsyn_report.dir/json_export.cpp.o"
  "CMakeFiles/fsyn_report.dir/json_export.cpp.o.d"
  "CMakeFiles/fsyn_report.dir/svg_export.cpp.o"
  "CMakeFiles/fsyn_report.dir/svg_export.cpp.o.d"
  "CMakeFiles/fsyn_report.dir/table1.cpp.o"
  "CMakeFiles/fsyn_report.dir/table1.cpp.o.d"
  "libfsyn_report.a"
  "libfsyn_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
