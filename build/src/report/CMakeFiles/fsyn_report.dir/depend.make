# Empty dependencies file for fsyn_report.
# This may be replaced when dependencies are built.
