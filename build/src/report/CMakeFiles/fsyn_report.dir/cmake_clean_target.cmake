file(REMOVE_RECURSE
  "libfsyn_report.a"
)
