file(REMOVE_RECURSE
  "libfsyn_route.a"
)
