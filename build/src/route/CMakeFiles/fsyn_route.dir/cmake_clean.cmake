file(REMOVE_RECURSE
  "CMakeFiles/fsyn_route.dir/contamination.cpp.o"
  "CMakeFiles/fsyn_route.dir/contamination.cpp.o.d"
  "CMakeFiles/fsyn_route.dir/port_assignment.cpp.o"
  "CMakeFiles/fsyn_route.dir/port_assignment.cpp.o.d"
  "CMakeFiles/fsyn_route.dir/router.cpp.o"
  "CMakeFiles/fsyn_route.dir/router.cpp.o.d"
  "libfsyn_route.a"
  "libfsyn_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
