# Empty dependencies file for fsyn_route.
# This may be replaced when dependencies are built.
