file(REMOVE_RECURSE
  "libfsyn_assay.a"
)
