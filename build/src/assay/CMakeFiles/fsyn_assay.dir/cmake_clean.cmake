file(REMOVE_RECURSE
  "CMakeFiles/fsyn_assay.dir/benchmarks.cpp.o"
  "CMakeFiles/fsyn_assay.dir/benchmarks.cpp.o.d"
  "CMakeFiles/fsyn_assay.dir/concentration.cpp.o"
  "CMakeFiles/fsyn_assay.dir/concentration.cpp.o.d"
  "CMakeFiles/fsyn_assay.dir/parser.cpp.o"
  "CMakeFiles/fsyn_assay.dir/parser.cpp.o.d"
  "CMakeFiles/fsyn_assay.dir/random_assay.cpp.o"
  "CMakeFiles/fsyn_assay.dir/random_assay.cpp.o.d"
  "CMakeFiles/fsyn_assay.dir/sequencing_graph.cpp.o"
  "CMakeFiles/fsyn_assay.dir/sequencing_graph.cpp.o.d"
  "libfsyn_assay.a"
  "libfsyn_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsyn_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
