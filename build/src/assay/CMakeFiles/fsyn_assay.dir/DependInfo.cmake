
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assay/benchmarks.cpp" "src/assay/CMakeFiles/fsyn_assay.dir/benchmarks.cpp.o" "gcc" "src/assay/CMakeFiles/fsyn_assay.dir/benchmarks.cpp.o.d"
  "/root/repo/src/assay/concentration.cpp" "src/assay/CMakeFiles/fsyn_assay.dir/concentration.cpp.o" "gcc" "src/assay/CMakeFiles/fsyn_assay.dir/concentration.cpp.o.d"
  "/root/repo/src/assay/parser.cpp" "src/assay/CMakeFiles/fsyn_assay.dir/parser.cpp.o" "gcc" "src/assay/CMakeFiles/fsyn_assay.dir/parser.cpp.o.d"
  "/root/repo/src/assay/random_assay.cpp" "src/assay/CMakeFiles/fsyn_assay.dir/random_assay.cpp.o" "gcc" "src/assay/CMakeFiles/fsyn_assay.dir/random_assay.cpp.o.d"
  "/root/repo/src/assay/sequencing_graph.cpp" "src/assay/CMakeFiles/fsyn_assay.dir/sequencing_graph.cpp.o" "gcc" "src/assay/CMakeFiles/fsyn_assay.dir/sequencing_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
