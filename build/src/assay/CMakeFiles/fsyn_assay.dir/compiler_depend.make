# Empty compiler generated dependencies file for fsyn_assay.
# This may be replaced when dependencies are built.
