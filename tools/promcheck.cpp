// promcheck — Prometheus text exposition-format lint.
//
//   promcheck [FILE]          lint FILE (or stdin when omitted / "-")
//
// Runs the same checker the unit tests use (obs::lint_prometheus) over a
// scrape saved to a file: format syntax, TYPE declarations, counter naming
// (`_total`), histogram bucket monotonicity and `_count` consistency.
// Exit 0 when the scrape is well-formed, 1 with a diagnostic otherwise —
// CI pipes `curl :PORT/metrics?format=prometheus` straight through it.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/prometheus.hpp"

int main(int argc, char** argv) {
  if (argc > 2) {
    std::cerr << "usage: promcheck [FILE]\n";
    return 2;
  }

  std::string text;
  const std::string path = argc == 2 ? argv[1] : "-";
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file.good()) {
      std::cerr << "promcheck: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  std::string error;
  if (!fsyn::obs::lint_prometheus(text, &error)) {
    std::cerr << "promcheck: " << error << "\n";
    return 1;
  }
  std::cout << "promcheck: OK\n";
  return 0;
}
