// Perf-trajectory regression gate: diffs two flowsynth-bench-v1 files
// (bench/bench_json.hpp envelope, schema in docs/benchmarking.md).
//
//   bench_compare BASELINE.json NEW.json [--wall-tol 0.15] [--iter-tol 0.05]
//                 [--no-wall] [--min-wall-ms 20]
//
// Exits nonzero when, for any instance present in the baseline:
//   - the instance is missing from the new file,
//   - the objective differs (correctness, not perf — any drift fails), or
//   - mttf_runs drifts beyond last-ulp libm variance (the Monte Carlo
//     estimate is deterministic in the seed), or
//   - wall_ms grew by more than --wall-tol (default +15%), or
//     lp_iterations or nodes grew by more than --iter-tol (default +5%), or
//   - p50_ms / p95_ms grew by more than --wall-tol, or req_per_sec shrank
//     by more than --wall-tol (server-bench rows).
//
// Wall-clock checks are skipped for instances faster than --min-wall-ms in
// the baseline (too noisy to gate) and entirely under --no-wall, which CI
// uses on shared runners where only the deterministic iteration counts are
// comparable across machines.  Under --no-wall the latency / throughput
// columns still have to be *present* in the new file when the baseline has
// them — the schema check survives even where the numbers are noise.
// Improvements are reported but never fail.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

using fsyn::JsonValue;

namespace {

struct Options {
  std::string baseline_path;
  std::string new_path;
  double wall_tol = 0.15;
  double iter_tol = 0.05;
  bool check_wall = true;
  double min_wall_ms = 20.0;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr << "usage: bench_compare BASELINE.json NEW.json [--wall-tol F]\n"
            << "                     [--iter-tol F] [--no-wall] [--min-wall-ms MS]\n";
  std::exit(2);
}

Options parse_cli(int argc, char** argv) {
  Options options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--wall-tol") {
      options.wall_tol = std::atof(next());
    } else if (arg == "--iter-tol") {
      options.iter_tol = std::atof(next());
    } else if (arg == "--no-wall") {
      options.check_wall = false;
    } else if (arg == "--min-wall-ms") {
      options.min_wall_ms = std::atof(next());
    } else if (!arg.empty() && arg[0] == '-') {
      usage("unknown flag " + arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) usage("expected exactly BASELINE and NEW paths");
  options.baseline_path = positional[0];
  options.new_path = positional[1];
  return options;
}

JsonValue load_bench(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) {
    std::cerr << "bench_compare: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  JsonValue doc = JsonValue::parse(buffer.str());
  if (!doc.is_object() || !doc.has("format") ||
      doc.at("format").as_string() != "flowsynth-bench-v1" || !doc.has("instances")) {
    std::cerr << "bench_compare: '" << path << "' is not a flowsynth-bench-v1 file\n";
    std::exit(2);
  }
  return doc;
}

const JsonValue* find_instance(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& row : doc.at("instances").items()) {
    if (row.has("instance") && row.at("instance").as_string() == name) return &row;
  }
  return nullptr;
}

/// One "grew by more than tol?" check; prints the ratio either way.
bool check_growth(const std::string& instance, const char* metric, double base, double fresh,
                  double tol) {
  if (base <= 0.0) return true;  // nothing measurable to gate on
  const double ratio = fresh / base;
  const bool ok = ratio <= 1.0 + tol;
  std::cout << (ok ? "  ok   " : "  FAIL ") << instance << " " << metric << ": " << base
            << " -> " << fresh << " (" << (ratio >= 1.0 ? "+" : "") << (ratio - 1.0) * 100.0
            << "%, tolerance +" << tol * 100.0 << "%)\n";
  return ok;
}

/// One "shrank by more than tol?" check (throughput metrics).
bool check_shrink(const std::string& instance, const char* metric, double base, double fresh,
                  double tol) {
  if (base <= 0.0) return true;
  const double ratio = fresh / base;
  const bool ok = ratio >= 1.0 - tol;
  std::cout << (ok ? "  ok   " : "  FAIL ") << instance << " " << metric << ": " << base
            << " -> " << fresh << " (" << (ratio >= 1.0 ? "+" : "") << (ratio - 1.0) * 100.0
            << "%, tolerance -" << tol * 100.0 << "%)\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_cli(argc, argv);
  int failures = 0;
  try {
    const JsonValue baseline = load_bench(options.baseline_path);
    const JsonValue fresh = load_bench(options.new_path);
    std::cout << "bench_compare: " << options.baseline_path << " vs " << options.new_path
              << (options.check_wall ? "" : " (wall-clock checks disabled)") << "\n";

    for (const JsonValue& base_row : baseline.at("instances").items()) {
      const std::string name = base_row.at("instance").as_string();
      const JsonValue* new_row = find_instance(fresh, name);
      if (new_row == nullptr) {
        std::cout << "  FAIL " << name << ": missing from " << options.new_path << "\n";
        ++failures;
        continue;
      }
      // Objectives are exact (the solver proves optimality); any difference
      // means the two runs solved different problems or one is wrong.
      if (base_row.has("objective") && new_row->has("objective")) {
        const double base_obj = base_row.at("objective").as_number();
        const double new_obj = new_row->at("objective").as_number();
        if (base_obj != new_obj) {
          std::cout << "  FAIL " << name << " objective: " << base_obj << " != " << new_obj
                    << "\n";
          ++failures;
        }
      }
      // The Monte-Carlo lifetime headline is deterministic in the seed;
      // anything beyond relative last-ulp variance (pow/log differ across
      // libm builds) means the estimator itself changed.
      if (base_row.has("mttf_runs")) {
        if (!new_row->has("mttf_runs")) {
          std::cout << "  FAIL " << name << " mttf_runs: missing from "
                    << options.new_path << "\n";
          ++failures;
        } else {
          const double base_mttf = base_row.at("mttf_runs").as_number();
          const double new_mttf = new_row->at("mttf_runs").as_number();
          if (std::abs(new_mttf - base_mttf) >
              1e-9 * std::max(1.0, std::abs(base_mttf))) {
            std::cout << "  FAIL " << name << " mttf_runs: " << base_mttf
                      << " != " << new_mttf << "\n";
            ++failures;
          }
        }
      }
      if (base_row.has("lp_iterations") && new_row->has("lp_iterations")) {
        if (!check_growth(name, "lp_iterations",
                          static_cast<double>(base_row.at("lp_iterations").as_int()),
                          static_cast<double>(new_row->at("lp_iterations").as_int()),
                          options.iter_tol)) {
          ++failures;
        }
      }
      // Branch-and-bound tree size is deterministic for a fixed config, so
      // node-count growth gates exactly like LP iteration growth.  Absent in
      // pre-cut baselines — the check is keyed on the baseline having it.
      if (base_row.has("nodes") && new_row->has("nodes")) {
        if (!check_growth(name, "bnb_nodes",
                          static_cast<double>(base_row.at("nodes").as_int()),
                          static_cast<double>(new_row->at("nodes").as_int()),
                          options.iter_tol)) {
          ++failures;
        }
      }
      if (options.check_wall && base_row.has("wall_ms") && new_row->has("wall_ms")) {
        const double base_wall = base_row.at("wall_ms").as_number();
        if (base_wall >= options.min_wall_ms) {
          if (!check_growth(name, "wall_ms", base_wall, new_row->at("wall_ms").as_number(),
                            options.wall_tol)) {
            ++failures;
          }
        }
      }
      // Server-bench latency / throughput rows.  Wall-clock-like, so gated
      // the same way; under --no-wall the columns only have to exist.
      for (const char* metric : {"p50_ms", "p95_ms"}) {
        if (!base_row.has(metric)) continue;
        if (!new_row->has(metric)) {
          std::cout << "  FAIL " << name << " " << metric << ": missing from "
                    << options.new_path << "\n";
          ++failures;
          continue;
        }
        if (options.check_wall &&
            !check_growth(name, metric, base_row.at(metric).as_number(),
                          new_row->at(metric).as_number(), options.wall_tol)) {
          ++failures;
        }
      }
      if (base_row.has("req_per_sec")) {
        if (!new_row->has("req_per_sec")) {
          std::cout << "  FAIL " << name << " req_per_sec: missing from "
                    << options.new_path << "\n";
          ++failures;
        } else if (options.check_wall &&
                   !check_shrink(name, "req_per_sec", base_row.at("req_per_sec").as_number(),
                                 new_row->at("req_per_sec").as_number(), options.wall_tol)) {
          ++failures;
        }
      }
    }
  } catch (const fsyn::Error& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }

  if (failures > 0) {
    std::cout << "bench_compare: " << failures << " regression(s)\n";
    return 1;
  }
  std::cout << "bench_compare: no regressions\n";
  return 0;
}
