// flowsynth command-line tool.
//
// Usage:
//   flowsynth synth <assay-file|benchmark> [options]   run synthesis
//   flowsynth schedule <assay-file|benchmark> [options] print the Gantt chart
//   flowsynth reliability <assay|--in mapping.json> [options]  lifetime analysis
//   flowsynth fleet <assay-file|benchmark> [options]     closed-loop fleet simulation
//   flowsynth batch <spec|all> [options]                 concurrent batch sweep
//   flowsynth client <verb> [options]                    talk to a flowsynthd
//   flowsynth table1 [--jobs N]                          reproduce Table 1
//   flowsynth list                                       list built-in benchmarks
//
// Options for synth/schedule:
//   --policy N      policy balancing increments (default 0)
//   --asap          unlimited-resource ASAP schedule instead of a policy
//   --grid N        force an N x N valve matrix (disables the size sweep)
//   --seed S        heuristic mapper seed (default 2015)
//   --ilp           use the exact ILP mapper (small assays only)
//   --time-limit S  ILP branch & bound wall-clock limit in seconds
//   --ilp-threads N parallel MILP search workers (0 = serial, the default)
//   --lp-basis B    LP basis representation: sparse (LU + eta updates, the
//                   default) or dense (explicit inverse; debugging reference)
//   --lp-pricing P  LP pricing rule: devex (the default) or dantzig
//   --lp-cuts C     root cutting planes: on (Gomory + cover cuts tighten the
//                   root relaxation, the default) or off (pure branch & bound)
//   --json PATH     write the synthesis result as JSON
//   --out PATH      write the mapping for later `reliability --in` runs
//   --svg PATH      write an SVG rendering
//   --trace PATH    write a Chrome trace-event / Perfetto JSON profile
//   --snapshots     print Fig.-10 style actuation snapshots
//   --control       print the valve control program
//
// Options for reliability (plus the synth options above for the healthy solve):
//   --in PATH        reuse a mapping written by `synth --out` instead of
//                    re-synthesizing (assay + scheduling spec come from it)
//   --trials N       Monte Carlo chip lifetimes to sample (default 1000)
//   --threads T      estimator worker threads (default 1; deterministic at any T)
//   --fault-plan S   inject faults "x,y[@run][:closed|:open];..." and re-synthesize
//   --inject-top K   auto-derive a fault plan failing the K highest-wear valves
//   --compare-static also estimate the traditional dedicated-device design
//   --pump-life N    Weibull characteristic actuations, pump valves (default 5000)
//   --control-life N ... control valves (default 20000)
//   --shape K        Weibull shape for both classes (default 3; 1 = exponential)
//   --report PATH    write the JSON report to PATH ("-" = stdout, the default)
//   --timing         include timing fields (breaks bit-identical reruns)
//
// Options for fleet (plus --policy/--asap/--grid/--seed/--ilp for synthesis):
//   --chips N        virtual chips in the fleet (default 100)
//   --cadence N      self-test every N assay runs (default 25)
//   --horizon N      assay runs per chip (default 200)
//   --repair-workers N  workers of the private repair service (default 2)
//   --max-repairs N  retire a chip past this many repairs (default 4)
//   --degrade-threshold MS  closure latency flagged as degraded (default 8)
//   --pump-life/--control-life/--shape  hidden Weibull wear model
//   --report PATH    write the fleet JSON report ("-" = stdout, the default)
//   --timing         include timing fields (breaks bit-identical reruns)
//
// Options for batch (spec = comma-separated benchmark names, or "all"):
//   --jobs N         worker threads (default: hardware concurrency)
//   --policies P     policy increments swept per benchmark (default 3)
//   --repeat R       submit the whole sweep R times (exercises the cache)
//   --deadline-ms D  per-job deadline; late jobs report "cancelled"
//   --race           portfolio racing (heuristic seeds + ILP for small cases)
//   --metrics PATH   dump the service metrics registry as JSON ("-" = stdout)
//   --trace PATH     write a Chrome trace-event / Perfetto JSON profile
//   --cache N        result-cache capacity (default 256, 0 disables)
//   --queue N        bounded job-queue capacity (default 256)
//   --reject         reject jobs when the queue is full instead of blocking
//   --reliability    run each job through the reliability engine (adds an
//                    mttf column; --trials applies)
//
// batch handles SIGINT/SIGTERM gracefully: submission stops, queued jobs
// are cancelled, running jobs abort at their next cancellation check, and
// the table + metrics for everything submitted so far are still printed.
//
// Client verbs (all take [--host H] [--port P], default 127.0.0.1:8080):
//   flowsynth client submit <benchmark> [--kind synthesis|reliability|fleet]
//                    [--policy N] [--asap] [--seed S] [--grid N] [--ilp]
//                    [--priority interactive|batch|background]
//                    [--deadline-ms D] [--trials N] [--watch]
//   flowsynth client status <id> | result <id> [--out PATH] | watch <id>
//   flowsynth client cancel <id> | list | metrics | health
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "assay/benchmarks.hpp"
#include "fleet/fleet.hpp"
#include "net/client.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/trace_export.hpp"
#include "assay/parser.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"
#include "report/json_export.hpp"
#include "report/svg_export.hpp"
#include "report/table1.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "rel/engine.hpp"
#include "report/result_io.hpp"
#include "sim/control_program.hpp"
#include "sim/simulator.hpp"
#include "svc/service.hpp"
#include "svc/thread_pool.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace fsyn;

struct CliOptions {
  std::string command;
  std::string target;
  int policy = 0;
  bool asap = false;
  std::optional<int> grid;
  std::uint64_t seed = 2015;
  bool use_ilp = false;
  std::optional<double> time_limit_seconds;
  int ilp_threads = 0;  ///< MILP search workers (0 = serial branch-and-bound)
  ilp::BasisKind lp_basis = ilp::BasisKind::kSparseLu;     ///< --lp-basis
  ilp::PricingRule lp_pricing = ilp::PricingRule::kDevex;  ///< --lp-pricing
  bool lp_cuts = true;                                     ///< --lp-cuts
  std::string json_path;
  std::string svg_path;
  bool snapshots = false;
  bool control = false;
  std::string trace_path;  ///< Chrome trace-event JSON output (synth + batch)

  // synth --out / reliability
  std::string out_path;  ///< stored-mapping JSON written by synth
  std::string in_path;   ///< stored-mapping JSON consumed by reliability
  int trials = 1000;
  int threads = 1;
  std::string fault_plan;
  int inject_top = 0;
  bool compare_static = false;
  double pump_life = 5000.0;
  double control_life = 20000.0;
  double shape = 3.0;
  std::string report_path = "-";
  bool timing = false;
  bool reliability = false;  ///< batch: run jobs through the engine

  // fleet
  int chips = 100;
  int cadence = 25;
  int horizon = 200;
  int repair_workers = 2;
  int max_repairs = 4;
  double degrade_threshold = 8.0;

  // batch / table1
  int jobs = 0;  ///< 0 = hardware concurrency (table1 defaults to 1)
  int policies = 3;
  int repeat = 1;
  std::optional<int> deadline_ms;
  bool race = false;
  std::string metrics_path;
  int cache_capacity = 256;
  int queue_capacity = 256;
  bool reject = false;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  flowsynth synth    <assay-file|benchmark> [--policy N | --asap] [--grid N]\n"
      "                     [--seed S] [--ilp] [--time-limit S] [--ilp-threads N]\n"
      "                     [--lp-basis dense|sparse] [--lp-pricing dantzig|devex]\n"
      "                     [--lp-cuts on|off] [--json PATH]\n"
      "                     [--svg PATH] [--snapshots] [--control] [--trace PATH]\n"
      "  flowsynth schedule <assay-file|benchmark> [--policy N | --asap]\n"
      "  flowsynth reliability <assay-file|benchmark | --in mapping.json>\n"
      "                     [--trials N] [--seed S] [--threads T] [--fault-plan SPEC]\n"
      "                     [--inject-top K] [--compare-static] [--pump-life N]\n"
      "                     [--control-life N] [--shape K] [--report PATH|-]\n"
      "                     [--timing] [--policy N | --asap] [--grid N] [--ilp]\n"
      "  flowsynth fleet    <assay-file|benchmark> [--chips N] [--cadence N]\n"
      "                     [--horizon N] [--seed S] [--repair-workers N]\n"
      "                     [--max-repairs N] [--degrade-threshold MS]\n"
      "                     [--pump-life N] [--control-life N] [--shape K]\n"
      "                     [--policy N | --asap] [--grid N] [--ilp]\n"
      "                     [--report PATH|-] [--timing]\n"
      "  flowsynth batch    <benchmark[,benchmark...]|all> [--jobs N] [--policies P]\n"
      "                     [--repeat R] [--deadline-ms D] [--race] [--metrics PATH|-]\n"
      "                     [--seed S] [--grid N] [--cache N] [--queue N] [--reject]\n"
      "                     [--ilp-threads N]\n"
      "                     [--lp-basis dense|sparse] [--lp-pricing dantzig|devex]\n"
      "                     [--lp-cuts on|off]\n"
      "                     [--trace PATH] [--reliability] [--trials N]\n"
      "  flowsynth table1   [--jobs N]\n"
      "  flowsynth list\n";
  std::exit(2);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  if (argc < 2) usage();
  options.command = argv[1];
  int i = 2;
  if (options.command == "synth" || options.command == "schedule" ||
      options.command == "batch" || options.command == "fleet") {
    if (argc < 3) usage(options.command == "batch" ? "missing benchmark spec"
                                                   : "missing assay");
    options.target = argv[i++];
  } else if (options.command == "reliability") {
    // Target is optional: `--in mapping.json` carries the assay identity.
    if (i < argc && argv[i][0] != '-') options.target = argv[i++];
  }
  if (options.command == "table1") options.jobs = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--policy") {
      options.policy = parse_int(next());
    } else if (arg == "--asap") {
      options.asap = true;
    } else if (arg == "--grid") {
      options.grid = parse_int(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(parse_int(next()));
    } else if (arg == "--ilp") {
      options.use_ilp = true;
    } else if (arg == "--time-limit") {
      options.time_limit_seconds = parse_double(next());
    } else if (arg == "--ilp-threads") {
      options.ilp_threads = parse_int(next());
    } else if (arg == "--lp-basis") {
      const std::string value = next();
      if (!ilp::basis_kind_from_string(value, &options.lp_basis))
        usage("unknown LP basis '" + value + "' (expected dense or sparse)");
    } else if (arg == "--lp-pricing") {
      const std::string value = next();
      if (!ilp::pricing_rule_from_string(value, &options.lp_pricing))
        usage("unknown LP pricing '" + value + "' (expected dantzig or devex)");
    } else if (arg == "--lp-cuts") {
      const std::string value = next();
      if (value == "on") {
        options.lp_cuts = true;
      } else if (value == "off") {
        options.lp_cuts = false;
      } else {
        usage("unknown --lp-cuts value '" + value + "' (expected on or off)");
      }
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--svg") {
      options.svg_path = next();
    } else if (arg == "--snapshots") {
      options.snapshots = true;
    } else if (arg == "--control") {
      options.control = true;
    } else if (arg == "--jobs") {
      options.jobs = parse_int(next());
    } else if (arg == "--policies") {
      options.policies = parse_int(next());
    } else if (arg == "--repeat") {
      options.repeat = parse_int(next());
    } else if (arg == "--deadline-ms") {
      options.deadline_ms = parse_int(next());
    } else if (arg == "--race") {
      options.race = true;
    } else if (arg == "--metrics") {
      options.metrics_path = next();
    } else if (arg == "--cache") {
      options.cache_capacity = parse_int(next());
    } else if (arg == "--queue") {
      options.queue_capacity = parse_int(next());
    } else if (arg == "--reject") {
      options.reject = true;
    } else if (arg == "--trace") {
      options.trace_path = next();
    } else if (arg == "--out") {
      options.out_path = next();
    } else if (arg == "--in") {
      options.in_path = next();
    } else if (arg == "--trials") {
      options.trials = parse_int(next());
    } else if (arg == "--threads") {
      options.threads = parse_int(next());
    } else if (arg == "--fault-plan") {
      options.fault_plan = next();
    } else if (arg == "--inject-top") {
      options.inject_top = parse_int(next());
    } else if (arg == "--compare-static") {
      options.compare_static = true;
    } else if (arg == "--pump-life") {
      options.pump_life = parse_double(next());
    } else if (arg == "--control-life") {
      options.control_life = parse_double(next());
    } else if (arg == "--shape") {
      options.shape = parse_double(next());
    } else if (arg == "--report") {
      options.report_path = next();
    } else if (arg == "--timing") {
      options.timing = true;
    } else if (arg == "--reliability") {
      options.reliability = true;
    } else if (arg == "--chips") {
      options.chips = parse_int(next());
    } else if (arg == "--cadence") {
      options.cadence = parse_int(next());
    } else if (arg == "--horizon") {
      options.horizon = parse_int(next());
    } else if (arg == "--repair-workers") {
      options.repair_workers = parse_int(next());
    } else if (arg == "--max-repairs") {
      options.max_repairs = parse_int(next());
    } else if (arg == "--degrade-threshold") {
      options.degrade_threshold = parse_double(next());
    } else {
      usage("unknown option " + arg);
    }
  }
  return options;
}

assay::SequencingGraph load_target(const std::string& target) {
  for (const auto& name : assay::extended_benchmark_names()) {
    if (name == target) return assay::make_benchmark(name);
  }
  return assay::load_assay_file(target);
}

int run_schedule(const CliOptions& cli) {
  const auto graph = load_target(cli.target);
  const sched::Schedule schedule =
      cli.asap ? sched::schedule_asap(graph)
               : sched::schedule_with_policy(graph, sched::make_policy(graph, cli.policy));
  std::cout << "assay '" << graph.name() << "': " << graph.size() << " ops ("
            << graph.mixing_count() << " mixing), makespan " << schedule.makespan()
            << " tu\n\n"
            << sched::render_gantt(schedule);
  return 0;
}

int run_synth(const CliOptions& cli) {
  const auto graph = load_target(cli.target);
  const sched::Schedule schedule =
      cli.asap ? sched::schedule_asap(graph)
               : sched::schedule_with_policy(graph, sched::make_policy(graph, cli.policy));

  synth::SynthesisOptions options;
  options.grid_size = cli.grid;
  options.heuristic.seed = cli.seed;
  if (cli.use_ilp) options.mapper = synth::MapperKind::kIlp;
  if (cli.time_limit_seconds.has_value()) {
    options.ilp.time_limit_seconds = *cli.time_limit_seconds;
  }
  options.ilp.threads = cli.ilp_threads;
  options.ilp.lp.basis = cli.lp_basis;
  options.ilp.lp.pricing = cli.lp_pricing;
  options.ilp.cuts.enabled = cli.lp_cuts;
  const synth::SynthesisResult result = synth::synthesize(graph, schedule, options);

  std::cout << "chip:        " << result.chip_width << "x" << result.chip_height
            << " virtual valves\n";
  std::cout << "implemented: " << result.valve_count << " valves (#v)\n";
  std::cout << "vs_1max:     " << result.vs1_max << " (" << result.vs1_pump
            << " peristalsis)\n";
  std::cout << "vs_2max:     " << result.vs2_max << " (" << result.vs2_pump
            << " peristalsis)\n";
  std::cout << "transports:  " << result.routing.paths.size() << " paths, "
            << result.routing.total_cells << " cells\n";
  std::cout << "runtime:     " << format_fixed(result.runtime_seconds, 2) << " s\n";

  auto problem = synth::MappingProblem::build(
      graph, schedule, arch::Architecture(result.chip_width, result.chip_height));
  if (!cli.json_path.empty()) {
    report::write_json(cli.json_path, problem, result);
    std::cout << "json:        " << cli.json_path << '\n';
  }
  if (!cli.out_path.empty()) {
    report::StoredResult stored;
    stored.assay = cli.target;  // benchmark name or file path: load_target re-resolves it
    stored.policy_increments = cli.policy;
    stored.asap = cli.asap;
    stored.seed = cli.seed;
    stored.result = result;
    report::write_stored_result(cli.out_path, stored);
    std::cout << "mapping:     " << cli.out_path << '\n';
  }
  if (!cli.svg_path.empty()) {
    report::write_chip_svg(cli.svg_path, problem, result.placement, result.routing,
                           result.ledger_setting1);
    std::cout << "svg:         " << cli.svg_path << '\n';
  }
  if (cli.snapshots) {
    sim::ChipSimulator simulator(problem, result.placement, result.routing,
                                 sim::Setting::kConservative);
    for (const int t : simulator.interesting_times()) {
      std::cout << '\n' << simulator.snapshot_at(t).render();
    }
  }
  if (cli.control) {
    const auto program = sim::compile_control_program(problem, result.placement,
                                                      result.routing);
    std::cout << '\n' << program.to_text();
    std::cout << "control pins after sharing: " << sim::shared_control_pins(program) << '\n';
  }
  return 0;
}

int run_reliability(const CliOptions& cli) {
  // Healthy mapping: either replayed from `synth --out` or solved now.
  std::string assay_ref;
  int policy = cli.policy;
  bool asap = cli.asap;
  synth::SynthesisResult healthy;
  synth::SynthesisOptions synth_options;
  synth_options.heuristic.seed = cli.seed;
  if (cli.use_ilp) synth_options.mapper = synth::MapperKind::kIlp;
  if (cli.time_limit_seconds.has_value()) {
    synth_options.ilp.time_limit_seconds = *cli.time_limit_seconds;
  }
  synth_options.ilp.threads = cli.ilp_threads;
  synth_options.ilp.lp.basis = cli.lp_basis;
  synth_options.ilp.lp.pricing = cli.lp_pricing;
  synth_options.ilp.cuts.enabled = cli.lp_cuts;

  if (!cli.in_path.empty()) {
    report::StoredResult stored = report::read_stored_result(cli.in_path);
    assay_ref = stored.assay;
    policy = stored.policy_increments;
    asap = stored.asap;
    synth_options.heuristic.seed = stored.seed;
    healthy = std::move(stored.result);
  } else {
    if (cli.target.empty()) usage("reliability needs an assay or --in mapping.json");
    assay_ref = cli.target;
  }

  const assay::SequencingGraph graph = load_target(assay_ref);
  const sched::Schedule schedule =
      asap ? sched::schedule_asap(graph)
           : sched::schedule_with_policy(graph, sched::make_policy(graph, policy));
  if (cli.in_path.empty()) {
    synth_options.grid_size = cli.grid;
    healthy = synth::synthesize(graph, schedule, synth_options);
  }

  rel::ReliabilityOptions options;
  options.monte_carlo.trials = cli.trials;
  options.monte_carlo.seed = cli.seed;
  options.monte_carlo.model.pump = {cli.pump_life, cli.shape};
  options.monte_carlo.model.control = {cli.control_life, cli.shape};
  options.synthesis = synth_options;
  if (!cli.fault_plan.empty()) options.faults = rel::FaultPlan::parse(cli.fault_plan);
  options.inject_top = cli.inject_top;
  options.compare_static = cli.compare_static;
  options.policy_increments = policy;
  options.asap = asap;

  // The estimator borrows a dedicated pool so trial blocks run concurrently;
  // the report stays bit-identical at any thread count.
  std::optional<svc::ThreadPool> pool;
  if (cli.threads > 1) {
    pool.emplace(cli.threads);
    options.monte_carlo.pool = &*pool;
  }

  const rel::ReliabilityReport report = rel::analyze(graph, schedule, healthy, options);
  const std::string json = report.to_json(cli.timing);
  if (cli.report_path == "-") {
    std::cout << json;
  } else {
    std::ofstream out(cli.report_path);
    check_input(static_cast<bool>(out), "cannot write report to " + cli.report_path);
    out << json;
    std::cout << "assay '" << graph.name() << "': MTTF " << format_fixed(report.healthy.mttf_runs, 1)
              << " runs (p10 " << format_fixed(report.healthy.p10_runs, 1) << ", p90 "
              << format_fixed(report.healthy.p90_runs, 1) << ") over " << report.trials
              << " trials";
    if (report.static_baseline.has_value()) {
      std::cout << "; static MTTF " << format_fixed(report.static_baseline->mttf_runs, 1)
                << " runs";
    }
    if (!report.rounds.empty()) {
      int feasible = 0;
      for (const auto& round : report.rounds) feasible += round.feasible ? 1 : 0;
      std::cout << "; " << feasible << "/" << report.rounds.size() << " faults remapped";
    }
    std::cout << "\nreport:      " << cli.report_path << '\n';
  }
  return 0;
}

int run_fleet(const CliOptions& cli) {
  const assay::SequencingGraph graph = load_target(cli.target);

  fleet::FleetOptions options;
  options.chips = cli.chips;
  options.cadence = cli.cadence;
  options.horizon = cli.horizon;
  options.seed = cli.seed;
  options.repair_workers = cli.repair_workers;
  options.max_repairs_per_chip = cli.max_repairs;
  options.diagnosis.latency_threshold_ms = cli.degrade_threshold;
  options.chip.model.pump = {cli.pump_life, cli.shape};
  options.chip.model.control = {cli.control_life, cli.shape};
  options.policy_increments = cli.policy;
  options.asap = cli.asap;
  options.synthesis.grid_size = cli.grid;
  options.synthesis.heuristic.seed = cli.seed;
  if (cli.use_ilp) options.synthesis.mapper = synth::MapperKind::kIlp;
  if (cli.time_limit_seconds.has_value()) {
    options.synthesis.ilp.time_limit_seconds = *cli.time_limit_seconds;
  }
  options.synthesis.ilp.threads = cli.ilp_threads;
  options.synthesis.ilp.lp.basis = cli.lp_basis;
  options.synthesis.ilp.lp.pricing = cli.lp_pricing;
  options.synthesis.ilp.cuts.enabled = cli.lp_cuts;

  const fleet::FleetReport report = fleet::run_fleet(graph, options);
  const std::string json = report.to_json(cli.timing);
  if (cli.report_path == "-") {
    std::cout << json;
  } else {
    std::ofstream out(cli.report_path);
    check_input(static_cast<bool>(out), "cannot write report to " + cli.report_path);
    out << json;
    std::cout << "fleet '" << graph.name() << "': " << report.chips << " chips x "
              << report.horizon << " runs, " << report.faults_occurred << " faults ("
              << report.faults_detected << " detected, mean latency "
              << format_fixed(report.mean_detection_latency_runs(), 1) << " runs), "
              << report.repairs_succeeded << "/" << report.repairs_attempted
              << " repairs, availability "
              << format_fixed(100.0 * report.availability(), 2) << "%\n"
              << "report:      " << cli.report_path << '\n';
  }
  return 0;
}

std::vector<std::string> parse_batch_spec(const std::string& spec) {
  if (spec == "all") return assay::extended_benchmark_names();
  std::vector<std::string> names;
  std::string current;
  for (const char c : spec) {
    if (c == ',') {
      if (!current.empty()) names.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) names.push_back(current);
  if (names.empty()) usage("empty benchmark spec");
  return names;
}

// SIGINT/SIGTERM during `flowsynth batch`: the handler only flips a flag
// (async-signal-safe); a monitor thread turns it into a graceful drain —
// submission stops, queued jobs are cancelled right away, running jobs get
// a bounded grace period before their tokens fire too.
std::atomic<bool> g_batch_interrupted{false};

void handle_batch_signal(int) {
  g_batch_interrupted.store(true, std::memory_order_relaxed);
}

/// Per-job handle the monitor uses to tell queued from running work.
struct BatchJobCtl {
  std::atomic<int> state{0};  ///< 0 queued, 1 running, 2 terminal
  CancelSource source;
};

int run_batch(const CliOptions& cli) {
  const std::vector<std::string> names = parse_batch_spec(cli.target);
  std::signal(SIGINT, handle_batch_signal);
  std::signal(SIGTERM, handle_batch_signal);

  std::mutex ctls_mutex;
  std::vector<std::shared_ptr<BatchJobCtl>> ctls;
  std::atomic<bool> drain_done{false};
  constexpr auto kGrace = std::chrono::seconds(5);
  std::thread monitor([&] {
    while (!drain_done.load(std::memory_order_relaxed) &&
           !g_batch_interrupted.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!g_batch_interrupted.load(std::memory_order_relaxed)) return;
    {
      std::lock_guard<std::mutex> lock(ctls_mutex);
      for (auto& ctl : ctls) {
        if (ctl->state.load(std::memory_order_relaxed) == 0) ctl->source.cancel();
      }
    }
    const auto deadline = std::chrono::steady_clock::now() + kGrace;
    while (std::chrono::steady_clock::now() < deadline &&
           !drain_done.load(std::memory_order_relaxed)) {
      bool any_running = false;
      {
        std::lock_guard<std::mutex> lock(ctls_mutex);
        for (auto& ctl : ctls) {
          if (ctl->state.load(std::memory_order_relaxed) < 2) any_running = true;
        }
      }
      if (!any_running) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::lock_guard<std::mutex> lock(ctls_mutex);
    for (auto& ctl : ctls) ctl->source.cancel();
  });

  svc::BatchService::Config config;
  config.workers = cli.jobs;
  config.queue_capacity = static_cast<std::size_t>(std::max(0, cli.queue_capacity));
  config.overflow = cli.reject ? svc::OverflowPolicy::kReject : svc::OverflowPolicy::kBlock;
  config.cache_capacity = static_cast<std::size_t>(std::max(0, cli.cache_capacity));
  config.portfolio.enabled = cli.race;
  svc::BatchService service(config);

  struct Pending {
    std::string name;
    std::string policy;
    std::future<svc::JobResult> future;
  };
  std::vector<Pending> pending;
  const auto submit_started = std::chrono::steady_clock::now();
  for (int round = 0; round < std::max(1, cli.repeat); ++round) {
    for (const std::string& name : names) {
      for (int p = 0; p < std::max(1, cli.policies); ++p) {
        if (g_batch_interrupted.load(std::memory_order_relaxed)) break;
        auto ctl = std::make_shared<BatchJobCtl>();
        svc::JobSpec spec;
        spec.options.cancel = ctl->source.token();
        spec.on_phase = [ctl](std::uint64_t, svc::JobPhase phase, const char*,
                              const svc::JobResult*) {
          if (phase == svc::JobPhase::kStarted) {
            ctl->state.store(1, std::memory_order_relaxed);
          } else if (phase == svc::JobPhase::kFinished) {
            ctl->state.store(2, std::memory_order_relaxed);
          }
        };
        {
          std::lock_guard<std::mutex> lock(ctls_mutex);
          ctls.push_back(ctl);
        }
        spec.name = name;
        spec.graph = assay::make_benchmark(name);
        spec.policy_increments = p;
        spec.asap = cli.asap;
        spec.options.grid_size = cli.grid;
        spec.options.heuristic.seed = cli.seed;
        if (cli.reliability) {
          spec.kind = svc::JobKind::kReliability;
          spec.reliability.monte_carlo.trials = cli.trials;
          spec.reliability.monte_carlo.seed = cli.seed;
        }
        if (cli.use_ilp) spec.options.mapper = synth::MapperKind::kIlp;
        if (cli.time_limit_seconds.has_value()) {
          spec.options.ilp.time_limit_seconds = *cli.time_limit_seconds;
        }
        spec.options.ilp.threads = cli.ilp_threads;
        spec.options.ilp.lp.basis = cli.lp_basis;
        spec.options.ilp.lp.pricing = cli.lp_pricing;
        spec.options.ilp.cuts.enabled = cli.lp_cuts;
        if (cli.deadline_ms.has_value()) {
          spec.deadline = std::chrono::milliseconds(*cli.deadline_ms);
        }
        pending.push_back({name, "p" + std::to_string(p + 1), service.submit(std::move(spec))});
      }
      if (g_batch_interrupted.load(std::memory_order_relaxed)) break;
    }
    if (g_batch_interrupted.load(std::memory_order_relaxed)) {
      std::cerr << "interrupted: stopped submitting after " << pending.size()
                << " job(s); cancelling queued work and draining\n";
      break;
    }
  }

  TextTable table;
  std::vector<std::string> header = {"case", "Po.", "status", "chip", "vs_1max", "vs_2max",
                                     "#v"};
  std::vector<Align> aligns = {Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft,
                               Align::kRight, Align::kRight, Align::kRight};
  if (cli.reliability) {
    header.push_back("mttf");
    aligns.push_back(Align::kRight);
  }
  header.insert(header.end(), {"via", "queue(s)", "run(s)"});
  aligns.insert(aligns.end(), {Align::kLeft, Align::kRight, Align::kRight});
  table.set_header(header);
  table.set_alignment(aligns);
  int failures = 0;
  for (Pending& job : pending) {
    const svc::JobResult result = job.future.get();
    std::string chip = "-", vs1 = "-", vs2 = "-", valves = "-", mttf = "-";
    if (result.result != nullptr) {
      const synth::SynthesisResult& r = *result.result;
      chip = std::to_string(r.chip_width) + "x" + std::to_string(r.chip_height);
      vs1 = std::to_string(r.vs1_max) + "(" + std::to_string(r.vs1_pump) + ")";
      vs2 = std::to_string(r.vs2_max) + "(" + std::to_string(r.vs2_pump) + ")";
      valves = std::to_string(r.valve_count);
    }
    if (result.report != nullptr) {
      mttf = format_fixed(result.report->healthy.mttf_runs, 1);
    }
    if (result.status == svc::JobStatus::kFailed ||
        result.status == svc::JobStatus::kRejected) {
      ++failures;
    }
    std::vector<std::string> row = {job.name, job.policy, to_string(result.status), chip,
                                    vs1, vs2, valves};
    if (cli.reliability) row.push_back(mttf);
    row.insert(row.end(), {result.cache_hit ? "cache" : result.winner,
                           format_fixed(result.queue_seconds, 3),
                           format_fixed(result.run_seconds, 3)});
    table.add_row(row);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - submit_started)
          .count();
  drain_done.store(true, std::memory_order_relaxed);
  monitor.join();
  std::cout << table.to_string();

  const svc::MetricsSnapshot metrics = service.metrics();
  std::cout << '\n'
            << pending.size() << " jobs on " << service.worker_count() << " workers in "
            << format_fixed(wall, 2) << " s (synthesis cpu "
            << format_fixed(metrics.synthesis_seconds, 2) << " s); cache "
            << metrics.cache.hits << " hits / " << metrics.cache.misses << " misses / "
            << metrics.cache.evictions << " evictions\n";
  if (cli.metrics_path == "-") {
    std::cout << '\n' << metrics.to_json();
  } else if (!cli.metrics_path.empty()) {
    std::ofstream out(cli.metrics_path);
    check_input(static_cast<bool>(out), "cannot write metrics to " + cli.metrics_path);
    out << metrics.to_json();
    std::cout << "metrics:     " << cli.metrics_path << '\n';
  }
  return failures == 0 ? 0 : 1;
}

[[noreturn]] void client_usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: flowsynth client <verb> [--host H] [--port P] [--traceparent TP]\n"
      "  submit <benchmark> [--kind synthesis|reliability|fleet] [--policy N] [--asap]\n"
      "         [--seed S] [--grid N] [--ilp] [--priority interactive|batch|background]\n"
      "         [--deadline-ms D] [--trials N] [--watch]\n"
      "  status <id>            print the job's status document\n"
      "  result <id> [--out PATH]  fetch the result document (same bytes as\n"
      "                         `flowsynth synth --out` for the same spec)\n"
      "  watch <id>             stream lifecycle events until the job ends\n"
      "  cancel <id>            request cooperative cancellation\n"
      "  list | metrics | health\n";
  std::exit(2);
}

/// Prints the trace id carried by a `traceparent` response header, if any.
void print_trace_header(const std::vector<net::Header>& headers) {
  if (const std::string* tp = net::find_header(headers, "traceparent")) {
    fsyn::obs::TraceContext context;
    if (fsyn::obs::parse_traceparent(*tp, &context)) {
      std::cout << "trace: " << context.trace_id_hex() << std::endl;
    }
  }
}

/// Streams a job's events to stdout; returns the job's terminal event name
/// ("" when the stream ended without one).
std::string client_watch(net::ApiClient& client, std::uint64_t id,
                         bool print_trace = false) {
  std::string last_terminal;
  std::vector<net::Header> headers;
  client.watch(id, [&](const std::string& event, std::uint64_t seq,
                       const std::string& data) {
    std::cout << "[" << seq << "] " << event << " " << data << std::endl;
    if (event == "done" || event == "cancelled" || event == "failed" ||
        event == "rejected") {
      last_terminal = event;
    }
    return true;
  }, /*after_seq=*/0, &headers);
  if (print_trace) print_trace_header(headers);
  return last_terminal;
}

int run_client(int argc, char** argv) {
  // argv: flowsynth client <verb> [positional] [--flags]
  if (argc < 3) client_usage();
  const std::string verb = argv[2];
  std::string host = "127.0.0.1";
  int port = 8080;
  std::string positional;
  std::string kind = "synthesis";
  std::string priority;
  std::string out_path;
  int policy = 0;
  bool asap = false;
  std::optional<int> grid;
  bool use_ilp = false;
  std::uint64_t seed = 2015;
  std::optional<int> deadline_ms;
  int trials = 0;
  bool watch_after_submit = false;
  std::string traceparent;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) client_usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = parse_int(next());
    } else if (arg == "--kind") {
      kind = next();
    } else if (arg == "--policy") {
      policy = parse_int(next());
    } else if (arg == "--asap") {
      asap = true;
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(parse_int(next()));
    } else if (arg == "--grid") {
      grid = parse_int(next());
    } else if (arg == "--ilp") {
      use_ilp = true;
    } else if (arg == "--priority") {
      priority = next();
    } else if (arg == "--deadline-ms") {
      deadline_ms = parse_int(next());
    } else if (arg == "--trials") {
      trials = parse_int(next());
    } else if (arg == "--watch") {
      watch_after_submit = true;
    } else if (arg == "--traceparent") {
      traceparent = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (!arg.empty() && arg[0] != '-' && positional.empty()) {
      positional = arg;
    } else {
      client_usage("unknown option " + arg);
    }
  }
  if (positional.empty() && argc > 3 && argv[3][0] != '-') positional = argv[3];

  net::ApiClient client(host, port);
  if (!traceparent.empty()) client.set_header("traceparent", traceparent);

  auto require_id = [&]() -> std::uint64_t {
    if (positional.empty()) client_usage(verb + " needs a job id");
    return static_cast<std::uint64_t>(parse_int(positional));
  };
  auto print_response = [](const net::ClientResponse& response) {
    std::cout << response.body << std::endl;
    return response.status < 400 ? 0 : 1;
  };

  if (verb == "submit") {
    if (positional.empty()) client_usage("submit needs a benchmark name");
    JsonWriter w;
    w.begin_object();
    w.key("kind").value(kind);
    w.key("assay").value(positional);
    if (policy != 0) w.key("policy").value(policy);
    if (asap) w.key("asap").value(true);
    w.key("seed").value(seed);
    if (grid.has_value()) w.key("grid").value(*grid);
    if (use_ilp) w.key("ilp").value(true);
    if (!priority.empty()) w.key("priority").value(priority);
    if (deadline_ms.has_value()) w.key("deadline_ms").value(*deadline_ms);
    if (trials > 0) {
      w.key("reliability").begin_object();
      w.key("trials").value(trials);
      w.end_object();
    }
    w.end_object();
    const net::ClientResponse response = client.post("/v1/jobs", w.take());
    std::cout << response.body << std::endl;
    if (response.status >= 400) return 1;
    print_trace_header(response.headers);
    if (watch_after_submit) {
      const JsonValue doc = JsonValue::parse(response.body);
      const auto id = static_cast<std::uint64_t>(doc.at("id").as_int());
      const std::string terminal = client_watch(client, id);
      return terminal == "done" ? 0 : 1;
    }
    return 0;
  }
  if (verb == "status") {
    return print_response(client.get("/v1/jobs/" + std::to_string(require_id())));
  }
  if (verb == "result") {
    const net::ClientResponse response =
        client.get("/v1/jobs/" + std::to_string(require_id()) + "/result");
    if (response.status >= 400 || out_path.empty()) return print_response(response);
    std::ofstream out(out_path);
    check_input(static_cast<bool>(out), "cannot write " + out_path);
    out << response.body;
    std::cout << "result:      " << out_path << '\n';
    return 0;
  }
  if (verb == "watch") {
    const std::string terminal = client_watch(client, require_id(), /*print_trace=*/true);
    return terminal == "done" ? 0 : 1;
  }
  if (verb == "cancel") {
    return print_response(client.del("/v1/jobs/" + std::to_string(require_id())));
  }
  if (verb == "list") return print_response(client.get("/v1/jobs"));
  if (verb == "metrics") return print_response(client.get("/metrics"));
  if (verb == "health") return print_response(client.get("/healthz"));
  client_usage("unknown verb '" + verb + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "client") return run_client(argc, argv);
    const CliOptions cli = parse_cli(argc, argv);
    if (cli.command == "list") {
      for (const auto& name : assay::extended_benchmark_names()) std::cout << name << '\n';
      return 0;
    }
    if (cli.command == "table1") {
      std::cout << report::format_table(report::run_full_table({}, cli.jobs));
      return 0;
    }
    if (!cli.trace_path.empty()) {
      fsyn::obs::Tracer& tracer = fsyn::obs::Tracer::instance();
      tracer.enable();
      tracer.set_thread_name("main");
    }
    int code = 0;
    if (cli.command == "schedule") {
      code = run_schedule(cli);
    } else if (cli.command == "synth") {
      code = run_synth(cli);
    } else if (cli.command == "reliability") {
      code = run_reliability(cli);
    } else if (cli.command == "fleet") {
      code = run_fleet(cli);
    } else if (cli.command == "batch") {
      code = run_batch(cli);
    } else {
      usage("unknown command '" + cli.command + "'");
    }
    if (!cli.trace_path.empty()) {
      fsyn::obs::write_chrome_trace_file(cli.trace_path);
      std::cout << "trace:       " << cli.trace_path << '\n';
    }
    return code;
  } catch (const fsyn::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
