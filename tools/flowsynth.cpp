// flowsynth command-line tool.
//
// Usage:
//   flowsynth synth <assay-file|benchmark> [options]   run synthesis
//   flowsynth schedule <assay-file|benchmark> [options] print the Gantt chart
//   flowsynth table1                                     reproduce Table 1
//   flowsynth list                                       list built-in benchmarks
//
// Options for synth/schedule:
//   --policy N      policy balancing increments (default 0)
//   --asap          unlimited-resource ASAP schedule instead of a policy
//   --grid N        force an N x N valve matrix (disables the size sweep)
//   --seed S        heuristic mapper seed (default 2015)
//   --ilp           use the exact ILP mapper (small assays only)
//   --json PATH     write the synthesis result as JSON
//   --svg PATH      write an SVG rendering
//   --snapshots     print Fig.-10 style actuation snapshots
//   --control       print the valve control program
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "report/json_export.hpp"
#include "report/svg_export.hpp"
#include "report/table1.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/control_program.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"

namespace {

using namespace fsyn;

struct CliOptions {
  std::string command;
  std::string target;
  int policy = 0;
  bool asap = false;
  std::optional<int> grid;
  std::uint64_t seed = 2015;
  bool use_ilp = false;
  std::string json_path;
  std::string svg_path;
  bool snapshots = false;
  bool control = false;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  flowsynth synth    <assay-file|benchmark> [--policy N | --asap] [--grid N]\n"
      "                     [--seed S] [--ilp] [--json PATH] [--svg PATH]\n"
      "                     [--snapshots] [--control]\n"
      "  flowsynth schedule <assay-file|benchmark> [--policy N | --asap]\n"
      "  flowsynth table1\n"
      "  flowsynth list\n";
  std::exit(2);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  if (argc < 2) usage();
  options.command = argv[1];
  int i = 2;
  if (options.command == "synth" || options.command == "schedule") {
    if (argc < 3) usage("missing assay");
    options.target = argv[i++];
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--policy") {
      options.policy = parse_int(next());
    } else if (arg == "--asap") {
      options.asap = true;
    } else if (arg == "--grid") {
      options.grid = parse_int(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(parse_int(next()));
    } else if (arg == "--ilp") {
      options.use_ilp = true;
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--svg") {
      options.svg_path = next();
    } else if (arg == "--snapshots") {
      options.snapshots = true;
    } else if (arg == "--control") {
      options.control = true;
    } else {
      usage("unknown option " + arg);
    }
  }
  return options;
}

assay::SequencingGraph load_target(const std::string& target) {
  for (const auto& name : assay::extended_benchmark_names()) {
    if (name == target) return assay::make_benchmark(name);
  }
  return assay::load_assay_file(target);
}

int run_schedule(const CliOptions& cli) {
  const auto graph = load_target(cli.target);
  const sched::Schedule schedule =
      cli.asap ? sched::schedule_asap(graph)
               : sched::schedule_with_policy(graph, sched::make_policy(graph, cli.policy));
  std::cout << "assay '" << graph.name() << "': " << graph.size() << " ops ("
            << graph.mixing_count() << " mixing), makespan " << schedule.makespan()
            << " tu\n\n"
            << sched::render_gantt(schedule);
  return 0;
}

int run_synth(const CliOptions& cli) {
  const auto graph = load_target(cli.target);
  const sched::Schedule schedule =
      cli.asap ? sched::schedule_asap(graph)
               : sched::schedule_with_policy(graph, sched::make_policy(graph, cli.policy));

  synth::SynthesisOptions options;
  options.grid_size = cli.grid;
  options.heuristic.seed = cli.seed;
  if (cli.use_ilp) options.mapper = synth::MapperKind::kIlp;
  const synth::SynthesisResult result = synth::synthesize(graph, schedule, options);

  std::cout << "chip:        " << result.chip_width << "x" << result.chip_height
            << " virtual valves\n";
  std::cout << "implemented: " << result.valve_count << " valves (#v)\n";
  std::cout << "vs_1max:     " << result.vs1_max << " (" << result.vs1_pump
            << " peristalsis)\n";
  std::cout << "vs_2max:     " << result.vs2_max << " (" << result.vs2_pump
            << " peristalsis)\n";
  std::cout << "transports:  " << result.routing.paths.size() << " paths, "
            << result.routing.total_cells << " cells\n";
  std::cout << "runtime:     " << format_fixed(result.runtime_seconds, 2) << " s\n";

  auto problem = synth::MappingProblem::build(
      graph, schedule, arch::Architecture(result.chip_width, result.chip_height));
  if (!cli.json_path.empty()) {
    report::write_json(cli.json_path, problem, result);
    std::cout << "json:        " << cli.json_path << '\n';
  }
  if (!cli.svg_path.empty()) {
    report::write_chip_svg(cli.svg_path, problem, result.placement, result.routing,
                           result.ledger_setting1);
    std::cout << "svg:         " << cli.svg_path << '\n';
  }
  if (cli.snapshots) {
    sim::ChipSimulator simulator(problem, result.placement, result.routing,
                                 sim::Setting::kConservative);
    for (const int t : simulator.interesting_times()) {
      std::cout << '\n' << simulator.snapshot_at(t).render();
    }
  }
  if (cli.control) {
    const auto program = sim::compile_control_program(problem, result.placement,
                                                      result.routing);
    std::cout << '\n' << program.to_text();
    std::cout << "control pins after sharing: " << sim::shared_control_pins(program) << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions cli = parse_cli(argc, argv);
    if (cli.command == "list") {
      for (const auto& name : assay::extended_benchmark_names()) std::cout << name << '\n';
      return 0;
    }
    if (cli.command == "table1") {
      std::cout << report::format_table(report::run_full_table());
      return 0;
    }
    if (cli.command == "schedule") return run_schedule(cli);
    if (cli.command == "synth") return run_synth(cli);
    usage("unknown command '" + cli.command + "'");
  } catch (const fsyn::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
