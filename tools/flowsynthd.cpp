// flowsynthd — HTTP/JSON synthesis server.
//
// Usage:
//   flowsynthd [--port P] [--bind ADDR] [--workers N] [--queue N] [--cache N]
//              [--journal PATH] [--grace-ms N]
//              [--deadline-interactive S] [--deadline-batch S]
//              [--deadline-background S] [--admission-min-samples N]
//              [--admission-default-service S] [--max-body BYTES]
//
//   --port P        listening port (default 8080; 0 = ephemeral, printed)
//   --bind ADDR     listening address (default 127.0.0.1)
//   --workers N     synthesis worker threads (default: hardware concurrency)
//   --queue N       bounded job-queue capacity; overflow answers 503
//   --cache N       result-cache entries (0 disables)
//   --journal PATH  crash-safe job journal; replayed on startup
//   --grace-ms N    shutdown drain budget for running jobs (default 5000)
//   --deadline-* S  admission route deadline per priority class, seconds;
//                   jobs whose estimated completion exceeds it get 429
//                   (<= 0 disables shedding for that class)
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, cancel queued jobs,
// drain running ones within the grace budget, fsync the journal, exit.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/api.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

fsyn::net::HttpServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: flowsynthd [--port P] [--bind ADDR] [--workers N] [--queue N]\n"
               "                  [--cache N] [--journal PATH] [--grace-ms N]\n"
               "                  [--deadline-interactive S] [--deadline-batch S]\n"
               "                  [--deadline-background S] [--admission-min-samples N]\n"
               "                  [--admission-default-service S] [--max-body BYTES]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsyn;

  net::JobManager::Config manager_config;
  manager_config.service.overflow = svc::OverflowPolicy::kReject;
  net::HttpServer::Config server_config;
  net::AdmissionConfig admission;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--port") {
        server_config.port = parse_int(next());
      } else if (arg == "--bind") {
        server_config.bind_address = next();
      } else if (arg == "--workers") {
        manager_config.service.workers = parse_int(next());
      } else if (arg == "--queue") {
        manager_config.service.queue_capacity =
            static_cast<std::size_t>(parse_int(next()));
      } else if (arg == "--cache") {
        manager_config.service.cache_capacity =
            static_cast<std::size_t>(parse_int(next()));
      } else if (arg == "--journal") {
        manager_config.journal_path = next();
      } else if (arg == "--grace-ms") {
        server_config.grace_ms = parse_int(next());
      } else if (arg == "--deadline-interactive") {
        admission.deadline_seconds[0] = parse_double(next());
      } else if (arg == "--deadline-batch") {
        admission.deadline_seconds[1] = parse_double(next());
      } else if (arg == "--deadline-background") {
        admission.deadline_seconds[2] = parse_double(next());
      } else if (arg == "--admission-min-samples") {
        admission.min_samples = static_cast<std::uint64_t>(parse_int(next()));
      } else if (arg == "--admission-default-service") {
        admission.default_service_seconds = parse_double(next());
      } else if (arg == "--max-body") {
        server_config.limits.max_body_bytes = static_cast<std::size_t>(parse_int(next()));
      } else {
        usage("unknown option " + arg);
      }
    } catch (const Error& e) {
      usage(e.what());
    }
  }

  try {
    net::JobManager manager(manager_config);
    manager.recover();
    const long requeued =
        manager.counters().replayed_requeued.load(std::memory_order_relaxed);
    const long restored =
        manager.counters().replayed_done.load(std::memory_order_relaxed);
    if (requeued + restored > 0) {
      std::cout << "journal: restored " << restored << " finished job(s), re-enqueued "
                << requeued << " unfinished job(s)\n";
    }

    net::HttpServer server(server_config, manager,
                           net::make_api_router(manager, admission));
    server.bind();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::cout << "flowsynthd listening on " << server_config.bind_address << ":"
              << server.port() << " (" << manager.service().worker_count()
              << " workers)" << std::endl;
    server.serve();
    g_server = nullptr;
    std::cout << "flowsynthd stopped\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
