// flowsynthd — HTTP/JSON synthesis server.
//
// Usage:
//   flowsynthd [--port P] [--bind ADDR] [--workers N] [--queue N] [--cache N]
//              [--journal PATH] [--grace-ms N]
//              [--deadline-interactive S] [--deadline-batch S]
//              [--deadline-background S] [--admission-min-samples N]
//              [--admission-default-service S] [--max-body BYTES]
//              [--trace PATH] [--flight-dump PATH] [--no-flight-recorder]
//              [--slow-job-ms N] [--flight-dump-dir DIR]
//
//   --port P        listening port (default 8080; 0 = ephemeral, printed)
//   --bind ADDR     listening address (default 127.0.0.1)
//   --workers N     synthesis worker threads (default: hardware concurrency)
//   --queue N       bounded job-queue capacity; overflow answers 503
//   --cache N       result-cache entries (0 disables)
//   --journal PATH  crash-safe job journal; replayed on startup
//   --grace-ms N    shutdown drain budget for running jobs (default 5000)
//   --deadline-* S  admission route deadline per priority class, seconds;
//                   jobs whose estimated completion exceeds it get 429
//                   (<= 0 disables shedding for that class)
//   --trace PATH    enable the full tracer for the whole run; the Chrome
//                   trace JSON is written to PATH on graceful shutdown
//   --flight-dump PATH     SIGQUIT dumps the flight recorder here
//                          (default flowsynthd-flight.trace.json)
//   --no-flight-recorder   disable the always-on flight recorder
//   --slow-job-ms N        warn (with trace id) when a job runs longer
//   --flight-dump-dir DIR  auto-dump the flight recorder for slow jobs
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, cancel queued jobs,
// drain running ones within the grace budget, fsync the journal, exit.
// SIGQUIT dumps the flight recorder (without stopping) to --flight-dump.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/api.hpp"
#include "net/server.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

fsyn::net::HttpServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void handle_sigquit(int) {
  if (g_server != nullptr) g_server->request_flight_dump();
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: flowsynthd [--port P] [--bind ADDR] [--workers N] [--queue N]\n"
               "                  [--cache N] [--journal PATH] [--grace-ms N]\n"
               "                  [--deadline-interactive S] [--deadline-batch S]\n"
               "                  [--deadline-background S] [--admission-min-samples N]\n"
               "                  [--admission-default-service S] [--max-body BYTES]\n"
               "                  [--trace PATH] [--flight-dump PATH]\n"
               "                  [--no-flight-recorder] [--slow-job-ms N]\n"
               "                  [--flight-dump-dir DIR]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsyn;

  net::JobManager::Config manager_config;
  manager_config.service.overflow = svc::OverflowPolicy::kReject;
  net::HttpServer::Config server_config;
  server_config.flight_dump_path = "flowsynthd-flight.trace.json";
  net::AdmissionConfig admission;
  std::string trace_path;
  bool flight_recorder = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--port") {
        server_config.port = parse_int(next());
      } else if (arg == "--bind") {
        server_config.bind_address = next();
      } else if (arg == "--workers") {
        manager_config.service.workers = parse_int(next());
      } else if (arg == "--queue") {
        manager_config.service.queue_capacity =
            static_cast<std::size_t>(parse_int(next()));
      } else if (arg == "--cache") {
        manager_config.service.cache_capacity =
            static_cast<std::size_t>(parse_int(next()));
      } else if (arg == "--journal") {
        manager_config.journal_path = next();
      } else if (arg == "--grace-ms") {
        server_config.grace_ms = parse_int(next());
      } else if (arg == "--deadline-interactive") {
        admission.deadline_seconds[0] = parse_double(next());
      } else if (arg == "--deadline-batch") {
        admission.deadline_seconds[1] = parse_double(next());
      } else if (arg == "--deadline-background") {
        admission.deadline_seconds[2] = parse_double(next());
      } else if (arg == "--admission-min-samples") {
        admission.min_samples = static_cast<std::uint64_t>(parse_int(next()));
      } else if (arg == "--admission-default-service") {
        admission.default_service_seconds = parse_double(next());
      } else if (arg == "--max-body") {
        server_config.limits.max_body_bytes = static_cast<std::size_t>(parse_int(next()));
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--flight-dump") {
        server_config.flight_dump_path = next();
      } else if (arg == "--no-flight-recorder") {
        flight_recorder = false;
      } else if (arg == "--slow-job-ms") {
        manager_config.slow_job_seconds = parse_int(next()) / 1000.0;
      } else if (arg == "--flight-dump-dir") {
        manager_config.flight_dump_dir = next();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const Error& e) {
      usage(e.what());
    }
  }

  try {
    // The flight recorder is always-on by default: near-zero cost while
    // idle, and SIGQUIT / /v1/debug/trace / slow-job dumps depend on it.
    if (flight_recorder) obs::FlightRecorder::instance().enable();
    if (!trace_path.empty()) obs::Tracer::instance().enable();

    net::JobManager manager(manager_config);
    manager.recover();
    const long requeued =
        manager.counters().replayed_requeued.load(std::memory_order_relaxed);
    const long restored =
        manager.counters().replayed_done.load(std::memory_order_relaxed);
    if (requeued + restored > 0) {
      std::cout << "journal: restored " << restored << " finished job(s), re-enqueued "
                << requeued << " unfinished job(s)\n";
    }

    net::HttpServer server(server_config, manager,
                           net::make_api_router(manager, admission));
    server.bind();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGQUIT, handle_sigquit);

    std::cout << "flowsynthd listening on " << server_config.bind_address << ":"
              << server.port() << " (" << manager.service().worker_count()
              << " workers)" << std::endl;
    server.serve();
    g_server = nullptr;
    if (!trace_path.empty()) {
      obs::write_chrome_trace_file(trace_path);
      std::cout << "trace written to " << trace_path << "\n";
    }
    std::cout << "flowsynthd stopped\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
