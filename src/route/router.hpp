// Routing between devices and chip ports (paper Section 3.5).
//
// Three kinds of transport are routed with Dijkstra's algorithm on the
// valve matrix:
//   * fill:      chip input port  -> device, for every input parent
//   * transfer:  parent device    -> child device / in-situ storage
//   * drain:     terminal device  -> chip output port
//
// Obstacles are the footprints of devices live at the transport time.
// In-situ storages with enough free space may be passed through (Fig. 8b);
// when a path would displace more volume than the storage has free, the
// storage becomes an obstacle and the path is ripped up and re-routed
// (Algorithm 1 L14-L17).  Crossings between temporally overlapping paths
// are discouraged by a congestion cost so samples can move in parallel.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "synth/mapping_problem.hpp"

namespace fsyn::route {

enum class TransportKind { kFill, kTransfer, kDrain };

const char* to_string(TransportKind kind);

struct RoutedPath {
  TransportKind kind = TransportKind::kTransfer;
  int task = -1;          ///< destination task (fill/transfer) or source task (drain)
  int source_task = -1;   ///< producing task for transfers, -1 otherwise
  assay::OpId source_input;  ///< the input operation, for fills only
  std::string label;
  int time = 0;           ///< tu at which the transport happens
  std::vector<Point> cells;  ///< connected cell sequence incl. both endpoints

  int length() const { return static_cast<int>(cells.size()); }
};

struct RouterOptions {
  /// Extra cost on cells already used by a temporally overlapping path.
  double congestion_penalty = 8.0;
  /// Cost per pump actuation already charged to a cell: steers control
  /// traffic away from heavily pumped valves so transports do not push the
  /// chip's hottest valve even higher (the objective is the max actuation).
  double pump_avoidance_weight = 0.25;
  /// Discount for cells already actuated by earlier (non-overlapping)
  /// paths: encourages a shared channel tree, which keeps the number of
  /// implemented valves (#v) low after the never-actuated ones are removed.
  double reuse_discount = 0.6;
  /// Give up after this many rip-up attempts per path.
  int max_ripups = 8;
  /// Optional input-port pinning (see route/port_assignment.hpp): fills of
  /// the named input fluid may only start at the given input-port index.
  /// Empty = any input port (the paper's free-manipulation assumption).
  std::map<std::string, int> port_of_fluid;
};

struct RoutingResult {
  std::vector<RoutedPath> paths;
  bool success = false;
  int total_cells = 0;
  int rip_ups = 0;
  std::string failure;  ///< label of the first unroutable transport
};

/// Routes every transport of the mapped assay.  `placement` must be a valid
/// placement for `problem`.
RoutingResult route_all(const synth::MappingProblem& problem,
                        const synth::Placement& placement, const RouterOptions& options = {});

/// Validates a routing result: paths are connected, stay on the chip, end
/// at legal terminals, and never cross a live device's footprint except via
/// a storage with free space.  Throws fsyn::LogicError on violation.
void validate_routing(const synth::MappingProblem& problem, const synth::Placement& placement,
                      const RoutingResult& routing);

}  // namespace fsyn::route
