// Cross-contamination analysis and wash planning.
//
// The paper's conclusion notes that it assumes sample flows can be
// manipulated freely and that restricting this is future work.  This module
// implements that restriction's bookkeeping: when two transports carrying
// *different* fluids traverse the same valve cell, the later one is
// contaminated unless a wash flushes the shared cells in between.
//
// `plan_washes` derives the minimal per-cell wash requirements from a
// routing result: for every cell, the chronological sequence of traversing
// paths is scanned, and each change of carried fluid demands a wash of that
// cell.  Washes are grouped per (earlier path, later path) pair, and their
// extra control actuations (+2 per washed cell, open+close of the flush
// flow) can be added to the reliability accounting.
#pragma once

#include <string>
#include <vector>

#include "route/router.hpp"

namespace fsyn::route {

struct Wash {
  int before_path = -1;           ///< index into RoutingResult::paths
  std::string incoming_fluid;     ///< fluid about to traverse
  std::string residue_fluid;      ///< fluid left by the earlier traversal
  std::vector<Point> cells;       ///< cells that must be flushed
};

struct WashPlan {
  std::vector<Wash> washes;
  int total_washed_cells = 0;

  /// Extra control actuations caused by washing (+2 per washed cell).
  Grid<int> extra_control(int width, int height) const;
};

/// The fluid a path carries: the producing operation's product for
/// transfers/drains, the input fluid's name for fills.
std::string path_fluid(const synth::MappingProblem& problem, const RoutedPath& path);

/// Scans the routing result and plans all required washes.
WashPlan plan_washes(const synth::MappingProblem& problem, const RoutingResult& routing);

}  // namespace fsyn::route
