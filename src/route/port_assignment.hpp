// Input-port assignment (extension).
//
// The router by default lets every fill start at whichever input port is
// closest — physically that means different reagents enter through the
// same port, which contaminates the port manifold.  This module assigns
// every input fluid to exactly one input port, minimizing the total
// estimated fill distance under a balance constraint (no port serves more
// than its fair share of fluids), as a small MILP solved by the in-tree
// branch & bound.  The resulting map plugs into RouterOptions so fills
// start only at their fluid's port.
#pragma once

#include <map>
#include <string>

#include "ilp/branch_and_bound.hpp"
#include "synth/mapping_problem.hpp"

namespace fsyn::route {

struct PortAssignment {
  /// Input-operation name -> index into the chip's *input* ports (the
  /// order input ports appear in Architecture::ports()).
  std::map<std::string, int> port_of_fluid;
  double total_distance = 0.0;
  ilp::MilpStatus status = ilp::MilpStatus::kLimit;
};

struct PortAssignmentOptions {
  /// Max fluids per port; 0 = balanced automatically (ceil(F / P)).
  int capacity = 0;
  double time_limit_seconds = 10.0;
};

/// Assigns every input fluid of the assay to an input port, minimizing the
/// summed Manhattan distance from the port to the consuming devices.
PortAssignment assign_ports(const synth::MappingProblem& problem,
                            const synth::Placement& placement,
                            const PortAssignmentOptions& options = {});

}  // namespace fsyn::route
