#include "route/port_assignment.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace fsyn::route {

using assay::OpId;
using assay::OpKind;
using assay::Operation;

PortAssignment assign_ports(const synth::MappingProblem& problem,
                            const synth::Placement& placement,
                            const PortAssignmentOptions& options) {
  const auto& graph = problem.graph();
  const auto& chip = problem.chip();

  std::vector<Point> input_ports;
  for (const auto& port : chip.ports()) {
    if (port.is_input) input_ports.push_back(port.cell);
  }
  check_input(!input_ports.empty(), "chip has no input ports");

  // Distance of serving fluid f from port p: sum over the fluid's fills of
  // the Manhattan distance from the port to the consuming device's nearest
  // ring cell.
  std::vector<const Operation*> fluids;
  for (const Operation& op : graph.operations()) {
    if (op.kind == OpKind::kInput) fluids.push_back(&op);
  }
  check_input(!fluids.empty(), "assay has no input fluids");

  std::vector<std::vector<double>> cost(
      fluids.size(), std::vector<double>(input_ports.size(), 0.0));
  for (std::size_t f = 0; f < fluids.size(); ++f) {
    for (const OpId consumer : graph.children(fluids[f]->id)) {
      const int task = problem.task_of(consumer);
      if (task < 0) continue;
      const auto ring = placement[static_cast<std::size_t>(task)].pump_cells();
      for (std::size_t p = 0; p < input_ports.size(); ++p) {
        int best = std::numeric_limits<int>::max();
        for (const Point& cell : ring) {
          best = std::min(best, manhattan_distance(input_ports[p], cell));
        }
        cost[f][p] += best;
      }
    }
  }

  // MILP: y_{f,p} binary, one port per fluid, per-port capacity.
  const int capacity =
      options.capacity > 0
          ? options.capacity
          : static_cast<int>((fluids.size() + input_ports.size() - 1) / input_ports.size());
  ilp::Model model;
  std::vector<std::vector<ilp::VarId>> y(fluids.size());
  ilp::LinearExpr objective;
  for (std::size_t f = 0; f < fluids.size(); ++f) {
    ilp::LinearExpr one_port;
    for (std::size_t p = 0; p < input_ports.size(); ++p) {
      y[f].push_back(model.add_binary(fluids[f]->name + "@" + std::to_string(p)));
      one_port.add_term(y[f][p], 1.0);
      objective.add_term(y[f][p], cost[f][p]);
    }
    model.add_constraint(one_port, ilp::Relation::kEqual, 1.0);
  }
  for (std::size_t p = 0; p < input_ports.size(); ++p) {
    ilp::LinearExpr load;
    for (std::size_t f = 0; f < fluids.size(); ++f) load.add_term(y[f][p], 1.0);
    model.add_constraint(load, ilp::Relation::kLessEqual, capacity);
  }
  model.set_objective(objective, ilp::Sense::kMinimize);

  ilp::MilpOptions milp_options;
  milp_options.time_limit_seconds = options.time_limit_seconds;
  const ilp::MilpResult solved = ilp::solve_milp(model, milp_options);
  check_input(!solved.values.empty(), "port assignment has no feasible solution");

  PortAssignment assignment;
  assignment.status = solved.status;
  assignment.total_distance = solved.objective;
  for (std::size_t f = 0; f < fluids.size(); ++f) {
    for (std::size_t p = 0; p < input_ports.size(); ++p) {
      if (solved.values[static_cast<std::size_t>(y[f][p].index)] > 0.5) {
        assignment.port_of_fluid[fluids[f]->name] = static_cast<int>(p);
      }
    }
  }
  require(assignment.port_of_fluid.size() == fluids.size(),
          "port assignment left a fluid unassigned");
  return assignment;
}

}  // namespace fsyn::route
