#include "route/contamination.hpp"

#include <algorithm>
#include <map>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fsyn::route {

std::string path_fluid(const synth::MappingProblem& problem, const RoutedPath& path) {
  switch (path.kind) {
    case TransportKind::kFill: {
      // The fill label is "fill <input> -> <task>"; the input name is the
      // authoritative fluid id, recover it from the graph for robustness.
      const auto& graph = problem.graph();
      const auto& op = graph.op(problem.task(path.task).op);
      for (const auto parent : op.parents) {
        const auto& producer = graph.op(parent);
        if (producer.kind == assay::OpKind::kInput &&
            path.label.find(' ' + producer.name + ' ') != std::string::npos) {
          return producer.name;
        }
      }
      return path.label;  // unique fallback, still a stable id
    }
    case TransportKind::kTransfer:
      return "product:" + problem.task(path.source_task).name;
    case TransportKind::kDrain:
      return "product:" + problem.task(path.task).name;
  }
  return path.label;
}

WashPlan plan_washes(const synth::MappingProblem& problem, const RoutingResult& routing) {
  require(routing.success, "cannot analyse a failed routing");
  obs::Span span("route", "plan_washes");

  struct Traversal {
    int time;
    int path_index;
  };
  std::map<Point, std::vector<Traversal>> traversals;
  for (std::size_t p = 0; p < routing.paths.size(); ++p) {
    for (const Point& cell : routing.paths[p].cells) {
      traversals[cell].push_back({routing.paths[p].time, static_cast<int>(p)});
    }
  }

  // For every cell, each fluid change between consecutive traversals
  // requires the cell to be washed before the later path runs.
  std::map<int, Wash> by_later_path;  // one wash record per contaminated path
  for (auto& [cell, list] : traversals) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Traversal& a, const Traversal& b) { return a.time < b.time; });
    for (std::size_t i = 1; i < list.size(); ++i) {
      const RoutedPath& earlier = routing.paths[static_cast<std::size_t>(list[i - 1].path_index)];
      const RoutedPath& later = routing.paths[static_cast<std::size_t>(list[i].path_index)];
      const std::string residue = path_fluid(problem, earlier);
      const std::string incoming = path_fluid(problem, later);
      if (residue == incoming) continue;
      Wash& wash = by_later_path[list[i].path_index];
      wash.before_path = list[i].path_index;
      wash.incoming_fluid = incoming;
      wash.residue_fluid = residue;  // last residue wins per cell; fine for counting
      wash.cells.push_back(cell);
    }
  }

  WashPlan plan;
  for (auto& [path_index, wash] : by_later_path) {
    plan.total_washed_cells += static_cast<int>(wash.cells.size());
    plan.washes.push_back(std::move(wash));
  }
  if (span.active()) {
    span.arg("washes", plan.washes.size());
    span.arg("washed_cells", plan.total_washed_cells);
  }
  return plan;
}

Grid<int> WashPlan::extra_control(int width, int height) const {
  Grid<int> extra(width, height, 0);
  for (const Wash& wash : washes) {
    for (const Point& cell : wash.cells) extra.at(cell) += 2;
  }
  return extra;
}

}  // namespace fsyn::route
