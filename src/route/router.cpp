#include "route/router.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::route {

using arch::DeviceInstance;
using assay::OpId;
using assay::OpKind;
using assay::Operation;
using synth::MappingProblem;
using synth::Placement;

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kFill:     return "fill";
    case TransportKind::kTransfer: return "transfer";
    case TransportKind::kDrain:    return "drain";
  }
  return "?";
}

namespace {

/// How a grid cell behaves for a transport at a given time.
enum class CellState {
  kOpen,       ///< free area or removed walls: routable
  kBlocked,    ///< live device footprint or storage interior
  kStorage     ///< storage-phase ring cell: routable if free space allows
};

class Router {
 public:
  Router(const MappingProblem& problem, const Placement& placement,
         const RouterOptions& options)
      : problem_(problem), placement_(placement), options_(options),
        pump_loads_(problem.pump_loads(placement)),
        control_loads_(problem.chip().width(), problem.chip().height(), 0) {}

  RoutingResult run() {
    RoutingResult result;
    std::vector<RoutedPath> plan = collect_transports();
    // Chronological routing mirrors assay execution.
    std::stable_sort(plan.begin(), plan.end(),
                     [](const RoutedPath& a, const RoutedPath& b) { return a.time < b.time; });

    for (RoutedPath& path : plan) {
      // Storages this particular path is forbidden to pass through
      // (rip-up & re-route, Algorithm 1 L14-L17).
      std::set<int> forbidden_storages;
      bool routed = false;
      for (int attempt = 0; attempt <= options_.max_ripups; ++attempt) {
        if (!dijkstra(path, forbidden_storages)) break;
        const int overfull = find_overfull_storage(path);
        if (overfull < 0) {
          routed = true;
          break;
        }
        forbidden_storages.insert(overfull);
        ++result.rip_ups;
      }
      if (!routed) {
        result.failure = path.label;
        log_warn("router: cannot route ", path.label);
        return result;
      }
      routed_.push_back(path);  // visible to later congestion checks
      for (const Point& cell : path.cells) {
        used_cells_.insert(cell);
        control_loads_.at(cell) += 2;  // open + close per transport
      }
      result.total_cells += path.length();
    }
    result.paths = routed_;
    result.success = true;
    return result;
  }

 private:
  /// Terminal cells of a task's device: the circulation ring (any ring cell
  /// may serve as a port thanks to valve role changing).
  std::vector<Point> terminals(int task) const {
    return placement_[static_cast<std::size_t>(task)].pump_cells();
  }

  std::vector<RoutedPath> collect_transports() const {
    std::vector<RoutedPath> plan;
    const auto& graph = problem_.graph();
    const auto& schedule = problem_.schedule();
    for (int i = 0; i < problem_.task_count(); ++i) {
      const synth::MappingTask& task = problem_.task(i);
      const Operation& op = graph.op(task.op);
      for (const OpId parent : op.parents) {
        const Operation& producer = graph.op(parent);
        RoutedPath path;
        path.task = i;
        if (producer.kind == OpKind::kInput) {
          path.kind = TransportKind::kFill;
          path.time = task.start;
          path.source_input = producer.id;
          path.label = "fill " + producer.name + " -> " + task.name;
        } else {
          path.kind = TransportKind::kTransfer;
          path.source_task = problem_.task_of(parent);
          // Routed at product-arrival time: the mapping constraints
          // guarantee the consumer's storage region is clear of any device
          // still live at this instant (its storage window has opened).
          path.time = schedule.arrival_from(parent);
          path.label = "transfer " + producer.name + " -> " + task.name;
        }
        plan.push_back(std::move(path));
      }
      // Terminal products leave through the waste/collection port.
      const bool has_device_consumer =
          std::any_of(graph.children(task.op).begin(), graph.children(task.op).end(),
                      [&](OpId child) { return problem_.task_of(child) >= 0; });
      if (!has_device_consumer) {
        RoutedPath path;
        path.kind = TransportKind::kDrain;
        path.task = i;
        path.time = schedule.end_of(task.op);
        path.label = "drain " + task.name + " -> out";
        plan.push_back(std::move(path));
      }
    }
    return plan;
  }

  CellState cell_state(const Point& cell, int time, int skip_a, int skip_b,
                       const std::set<int>& forbidden_storages) const {
    if (problem_.is_dead(cell)) return CellState::kBlocked;
    // A cell may lie inside several footprints (storages overlap their
    // parent devices), so every covering task must agree before the cell is
    // passable: one live device is enough to block.
    CellState state = CellState::kOpen;
    for (int j = 0; j < problem_.task_count(); ++j) {
      if (j == skip_a || j == skip_b) continue;
      const synth::MappingTask& other = problem_.task(j);
      const DeviceInstance& device = placement_[static_cast<std::size_t>(j)];
      if (!device.footprint().contains(cell)) continue;
      if (time >= other.start && time < other.release) return CellState::kBlocked;
      if (time >= other.storage_from && time < other.start) {
        // Storage phase: ring cells are passable with free space, the
        // enclosed interior is not reachable.
        if (forbidden_storages.contains(j)) return CellState::kBlocked;
        const auto ring = device.pump_cells();
        if (std::find(ring.begin(), ring.end(), cell) == ring.end()) return CellState::kBlocked;
        state = CellState::kStorage;
      }
    }
    return state;
  }

  bool times_overlap(const RoutedPath& a, const RoutedPath& b) const {
    const int delay = problem_.schedule().transport_delay;
    return a.time < b.time + delay && b.time < a.time + delay;
  }

  /// Dijkstra from the path's source terminals to its target terminals.
  bool dijkstra(RoutedPath& path, const std::set<int>& forbidden_storages) const {
    const auto& chip = problem_.chip();
    std::vector<Point> sources, targets;
    int skip_a = -1, skip_b = -1;
    switch (path.kind) {
      case TransportKind::kFill: {
        // Honour a port assignment when one names this fill's fluid.
        int pinned = -1;
        if (path.source_input.valid() && !options_.port_of_fluid.empty()) {
          const auto it =
              options_.port_of_fluid.find(problem_.graph().op(path.source_input).name);
          if (it != options_.port_of_fluid.end()) pinned = it->second;
        }
        int input_index = 0;
        for (const arch::ChipPort& port : chip.ports()) {
          if (!port.is_input) continue;
          if (pinned < 0 || input_index == pinned) sources.push_back(port.cell);
          ++input_index;
        }
        targets = terminals(path.task);
        skip_a = path.task;
        break;
      }
      case TransportKind::kTransfer:
        sources = terminals(path.source_task);
        targets = terminals(path.task);
        skip_a = path.source_task;
        skip_b = path.task;
        break;
      case TransportKind::kDrain:
        sources = terminals(path.task);
        targets.push_back(chip.output_port().cell);
        skip_a = path.task;
        break;
    }
    require(!sources.empty() && !targets.empty(), "transport without terminals");

    // A terminal buried under a foreign live device is unusable — e.g. the
    // part of a storage ring still covered by the other parent's mixer.
    std::set<Point> target_set;
    for (const Point& t : targets) {
      if (cell_state(t, path.time, skip_a, skip_b, forbidden_storages) != CellState::kBlocked) {
        target_set.insert(t);
      }
    }
    if (target_set.empty()) return false;
    // Trivial case: the regions touch (e.g. storage overlapping its parent).
    for (const Point& s : sources) {
      if (target_set.contains(s)) {
        path.cells = {s};
        return true;
      }
    }

    const double inf = std::numeric_limits<double>::infinity();
    Grid<double> dist(chip.width(), chip.height(), inf);
    Grid<Point> prev(chip.width(), chip.height(), Point{-1, -1});
    using Entry = std::pair<double, Point>;
    auto cmp = [](const Entry& a, const Entry& b) {
      return a.first != b.first ? a.first > b.first
                                : std::tie(a.second.x, a.second.y) >
                                      std::tie(b.second.x, b.second.y);
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
    for (const Point& s : sources) {
      // A source terminal buried under a foreign live device is unusable.
      if (cell_state(s, path.time, skip_a, skip_b, forbidden_storages) == CellState::kBlocked) {
        continue;
      }
      dist.at(s) = 0.0;
      queue.push({0.0, s});
    }
    if (queue.empty()) return false;

    Point reached{-1, -1};
    while (!queue.empty()) {
      const auto [d, cell] = queue.top();
      queue.pop();
      if (d > dist.at(cell)) continue;
      if (target_set.contains(cell)) {
        reached = cell;
        break;
      }
      for (const Point& next : orthogonal_neighbours(cell)) {
        if (!chip.bounds().contains(next)) continue;
        const CellState state =
            cell_state(next, path.time, skip_a, skip_b, forbidden_storages);
        if (state == CellState::kBlocked) continue;
        // Avoid hot valves: both peristaltic load and control actuations
        // already accumulated count, so the max-actuation objective is not
        // pushed up by routing.
        double step = 1.0 + congestion_cost(next, path) +
                      options_.pump_avoidance_weight *
                          (pump_loads_.at(next) + control_loads_.at(next));
        if (used_cells_.contains(next)) step -= options_.reuse_discount;
        step = std::max(step, 0.1);
        if (dist.at(cell) + step < dist.at(next)) {
          dist.at(next) = dist.at(cell) + step;
          prev.at(next) = cell;
          queue.push({dist.at(next), next});
        }
      }
    }
    if (reached.x < 0) return false;

    path.cells.clear();
    for (Point cell = reached; cell.x >= 0; cell = prev.at(cell)) {
      path.cells.push_back(cell);
    }
    std::reverse(path.cells.begin(), path.cells.end());
    return true;
  }

  double congestion_cost(const Point& cell, const RoutedPath& path) const {
    for (const RoutedPath& other : routed_) {
      if (!times_overlap(path, other)) continue;
      if (std::find(other.cells.begin(), other.cells.end(), cell) != other.cells.end()) {
        return options_.congestion_penalty;
      }
    }
    return 0.0;
  }

  /// First storage whose free space is exceeded by this path, or -1.
  int find_overfull_storage(const RoutedPath& path) const {
    for (int j = 0; j < problem_.task_count(); ++j) {
      if (j == path.task || j == path.source_task) continue;
      const synth::MappingTask& other = problem_.task(j);
      if (path.time < other.storage_from || path.time >= other.start) continue;
      const DeviceInstance& device = placement_[static_cast<std::size_t>(j)];
      int crossed = 0;
      for (const Point& cell : path.cells) {
        if (device.footprint().contains(cell)) ++crossed;
      }
      if (crossed == 0) continue;
      const int free_space = other.volume - problem_.storage_occupied_before(j, path.time);
      if (crossed > free_space) return j;
    }
    return -1;
  }

  const MappingProblem& problem_;
  const Placement& placement_;
  RouterOptions options_;
  Grid<int> pump_loads_;
  Grid<int> control_loads_;
  std::vector<RoutedPath> routed_;
  std::set<Point> used_cells_;
};

}  // namespace

RoutingResult route_all(const MappingProblem& problem, const Placement& placement,
                        const RouterOptions& options) {
  obs::Span span("route", "route_all");
  problem.validate_placement(placement);
  Router router(problem, placement, options);
  RoutingResult result = router.run();
  if (span.active()) {
    span.arg("success", result.success);
    span.arg("paths", result.paths.size());
    span.arg("cells", result.total_cells);
    span.arg("rip_ups", result.rip_ups);
  }
  return result;
}

void validate_routing(const MappingProblem& problem, const Placement& placement,
                      const RoutingResult& routing) {
  require(routing.success, "cannot validate a failed routing");
  const auto& chip = problem.chip();
  for (const RoutedPath& path : routing.paths) {
    require(!path.cells.empty(), "empty path: " + path.label);
    for (std::size_t i = 0; i < path.cells.size(); ++i) {
      require(chip.bounds().contains(path.cells[i]), "path leaves the chip: " + path.label);
      require(!problem.is_dead(path.cells[i]),
              "path crosses a worn-out valve: " + path.label);
      if (i > 0) {
        require(manhattan_distance(path.cells[i - 1], path.cells[i]) == 1,
                "path not connected: " + path.label);
      }
    }

    // Endpoint legality.
    auto on_ring = [&](int task, const Point& cell) {
      const auto ring = placement[static_cast<std::size_t>(task)].pump_cells();
      return std::find(ring.begin(), ring.end(), cell) != ring.end();
    };
    const Point& first = path.cells.front();
    const Point& last = path.cells.back();
    switch (path.kind) {
      case TransportKind::kFill: {
        bool from_port = false;
        for (const arch::ChipPort& port : chip.ports()) {
          if (port.is_input && port.cell == first) from_port = true;
        }
        require(from_port || path.cells.size() == 1, "fill does not start at an input port: " + path.label);
        require(on_ring(path.task, last), "fill does not end at the device: " + path.label);
        break;
      }
      case TransportKind::kTransfer:
        require(on_ring(path.source_task, first),
                "transfer does not start at the producer: " + path.label);
        require(on_ring(path.task, last), "transfer does not end at the consumer: " + path.label);
        break;
      case TransportKind::kDrain:
        require(on_ring(path.task, first), "drain does not start at the device: " + path.label);
        require(last == chip.output_port().cell,
                "drain does not end at the output port: " + path.label);
        break;
    }

    // No live-device crossings; storage crossings within free space.
    for (int j = 0; j < problem.task_count(); ++j) {
      if (j == path.task || j == path.source_task) continue;
      const synth::MappingTask& other = problem.task(j);
      const Rect footprint = placement[static_cast<std::size_t>(j)].footprint();
      int crossed = 0;
      for (const Point& cell : path.cells) {
        if (footprint.contains(cell)) ++crossed;
      }
      if (crossed == 0) continue;
      const bool device_phase = path.time >= other.start && path.time < other.release;
      require(!device_phase, "path crosses live device '" + other.name + "': " + path.label);
      const bool storage_phase = path.time >= other.storage_from && path.time < other.start;
      if (storage_phase) {
        const int free_space = other.volume - problem.storage_occupied_before(j, path.time);
        require(crossed <= free_space,
                "path displaces more than the free space of storage '" + other.name +
                    "': " + path.label);
      }
    }
  }
}

}  // namespace fsyn::route
