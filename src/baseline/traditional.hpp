// Traditional flow-based biochip designs (the comparison side of Table 1).
//
// A traditional design instantiates dedicated devices: one mixer per policy
// slot (volumes 4/6/8/10 as in the paper's experiments, Fig. 2-style ring
// mixers with 3 pump valves), dedicated detectors, and one dedicated storage
// whose cell count is the largest number of simultaneously stored products.
// Operations are bound to mixers of exactly their volume with the paper's
// "optimal binding": ops of each size class spread as evenly as possible, so
// the most-loaded pump valve count is minimized.
//
// The paper does not publish a closed-form valve count for these designs;
// `ValveCostModel` documents the model used here (DESIGN.md §3.3).  Both
// sides of every comparison in this repository are counted with the same
// conventions.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "assay/sequencing_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"

namespace fsyn::baseline {

/// Valve bookkeeping for dedicated devices.
struct ValveCostModel {
  /// Pump valves forming a mixer's peristaltic pump (Fig. 2: 3).
  int pump_valves_per_mixer = 3;
  /// Control valves of the smallest (volume-4) ring mixer (Fig. 2: 6).
  int control_valves_per_mixer = 6;
  /// Extra control valves per 2 cells of volume above 4 (longer ring needs
  /// more taps), so a volume-v mixer has 9 + (v-4)/2 valves.
  int extra_control_valves_per_volume_step = 1;
  /// Valves of a dedicated detection chamber (2 isolation + access).
  int detector_valves = 4;
  /// Valves isolating one storage cell (a 2x2 chamber ring, after [12]).
  int valves_per_storage_cell = 8;
  /// Storage access multiplexer valves.
  int storage_overhead_valves = 2;
  /// Bus-connection valves per device (device <-> routing network).
  int routing_valves_per_device = 2;
  /// Valves at each chip port.
  int routing_valves_per_port = 1;
  int port_count = 3;  // in / in / out as in Fig. 10

  /// Pump-valve actuations per mixing operation (paper, after [9]: 40).
  int pump_actuations_per_mix = 40;
  /// Control-valve actuations per fill/drain/transport event (open+close).
  int control_actuations_per_transport = 2;

  /// Total valves of a dedicated mixer of the given volume.
  int mixer_valves(int volume) const {
    return pump_valves_per_mixer + control_valves_per_mixer +
           extra_control_valves_per_volume_step * (volume - 4) / 2;
  }
};

/// One dedicated mixer and the operations bound to it.
struct MixerInstance {
  int volume = 0;
  int index_in_class = 0;
  std::vector<assay::OpId> bound_ops;
};

struct TraditionalDesign {
  ValveCostModel model;
  std::vector<MixerInstance> mixers;
  int detectors = 0;
  int storage_cells = 0;
  int total_valves = 0;

  /// Largest per-valve actuation count; pump valves of the most-loaded
  /// mixer dominate (the paper's vs_tmax column).
  int max_valve_actuations = 0;
  /// Operations bound to the most-loaded mixer.
  int max_ops_on_one_mixer = 0;

  /// Formats the paper's #m column for this binding, e.g. "1-0-(2,2)-2".
  std::string binding_string(const std::vector<int>& volumes) const;
};

/// Builds the traditional design for a scheduled assay under `policy`.
TraditionalDesign build_traditional(const assay::SequencingGraph& graph,
                                    const sched::Policy& policy,
                                    const sched::Schedule& schedule,
                                    const ValveCostModel& model = {});

/// Largest number of simultaneously stored products in `schedule`
/// (a device product waits in storage from its arrival until its consumer
/// starts).  Defines the dedicated storage size.
int peak_storage_demand(const assay::SequencingGraph& graph, const sched::Schedule& schedule);

}  // namespace fsyn::baseline
