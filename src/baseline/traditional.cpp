#include "baseline/traditional.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fsyn::baseline {

using assay::OpId;
using assay::OpKind;
using assay::Operation;
using assay::SequencingGraph;

std::string TraditionalDesign::binding_string(const std::vector<int>& volumes) const {
  std::vector<std::string> parts;
  for (const int volume : volumes) {
    std::vector<int> loads;
    for (const MixerInstance& mixer : mixers) {
      if (mixer.volume == volume) loads.push_back(static_cast<int>(mixer.bound_ops.size()));
    }
    if (loads.empty()) {
      parts.push_back("0");
    } else if (loads.size() == 1) {
      parts.push_back(std::to_string(loads[0]));
    } else {
      std::sort(loads.rbegin(), loads.rend());
      std::vector<std::string> texts;
      for (const int load : loads) texts.push_back(std::to_string(load));
      parts.push_back("(" + join(texts, ",") + ")");
    }
  }
  return join(parts, "-");
}

int peak_storage_demand(const SequencingGraph& graph, const sched::Schedule& schedule) {
  // A product occupies a storage cell from its arrival at the storage until
  // its consumer starts (then it is transported onward).  Products consumed
  // immediately (consumer starts exactly at arrival) never enter storage.
  struct Interval {
    int from;
    int to;
  };
  std::vector<Interval> intervals;
  for (const Operation& op : graph.operations()) {
    for (const OpId parent : op.parents) {
      const Operation& producer = graph.op(parent);
      if (producer.kind != OpKind::kMix && producer.kind != OpKind::kDetect) continue;
      const int arrival = schedule.arrival_from(parent);
      const int consumed = schedule.start_of(op.id);
      if (consumed > arrival) intervals.push_back({arrival, consumed});
    }
  }
  int peak = 0;
  for (const Interval& probe : intervals) {
    int concurrent = 0;
    for (const Interval& other : intervals) {
      if (other.from < probe.to && probe.from < other.to) ++concurrent;
    }
    peak = std::max(peak, concurrent);
  }
  return peak;
}

TraditionalDesign build_traditional(const SequencingGraph& graph, const sched::Policy& policy,
                                    const sched::Schedule& schedule,
                                    const ValveCostModel& model) {
  TraditionalDesign design;
  design.model = model;

  // Instantiate dedicated mixers per the policy.
  for (const auto& [volume, count] : policy.mixers_per_volume) {
    for (int i = 0; i < count; ++i) {
      design.mixers.push_back(MixerInstance{volume, i, {}});
    }
  }
  design.detectors = policy.detectors;

  // Optimal binding: round-robin the ops of each size class over its
  // mixers, which spreads them as evenly as possible (paper Section 4).
  for (const auto& [volume, count] : policy.mixers_per_volume) {
    std::vector<MixerInstance*> pool;
    for (MixerInstance& mixer : design.mixers) {
      if (mixer.volume == volume) pool.push_back(&mixer);
    }
    int next = 0;
    for (const Operation& op : graph.operations()) {
      if (op.kind != OpKind::kMix || op.volume != volume) continue;
      pool[static_cast<std::size_t>(next)]->bound_ops.push_back(op.id);
      next = (next + 1) % static_cast<int>(pool.size());
    }
  }

  design.storage_cells = peak_storage_demand(graph, schedule);

  // Valve inventory.
  int valves = 0;
  for (const MixerInstance& mixer : design.mixers) valves += model.mixer_valves(mixer.volume);
  valves += design.detectors * model.detector_valves;
  if (design.storage_cells > 0) {
    valves += design.storage_cells * model.valves_per_storage_cell + model.storage_overhead_valves;
  }
  valves += (static_cast<int>(design.mixers.size()) + design.detectors +
             (design.storage_cells > 0 ? 1 : 0)) *
            model.routing_valves_per_device;
  valves += model.port_count * model.routing_valves_per_port;
  design.total_valves = valves;

  // Actuation: every op bound to a mixer actuates each of its pump valves
  // `pump_actuations_per_mix` times; the most-loaded mixer sets the chip's
  // largest valve actuation count (control valves trail far behind).
  for (const MixerInstance& mixer : design.mixers) {
    design.max_ops_on_one_mixer =
        std::max(design.max_ops_on_one_mixer, static_cast<int>(mixer.bound_ops.size()));
  }
  design.max_valve_actuations = design.max_ops_on_one_mixer * model.pump_actuations_per_mix;

  return design;
}

}  // namespace fsyn::baseline
