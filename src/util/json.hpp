// Minimal JSON document parser.
//
// flowsynth writes several JSON artifacts (synthesis results, metrics,
// traces, reliability reports) with hand-rolled emitters; this is the
// matching reader, added so results can round-trip — a reliability run can
// consume a previously synthesized mapping (`flowsynth reliability --in
// mapping.json`) without re-solving, and tests can assert report schemas
// without shelling out to python.
//
// Scope: strict RFC-8259 subset, UTF-8 passthrough (no \uXXXX surrogate
// decoding beyond Latin-1), numbers as double plus an exact int64 view when
// representable.  Throws fsyn::Error with an offset on malformed input.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace fsyn {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete document (one value + trailing whitespace only).
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const;
  double as_number() const;
  /// Number as integer; throws when the value is not integral.
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // ---- arrays ----
  const std::vector<JsonValue>& items() const;
  std::size_t size() const { return items().size(); }
  const JsonValue& at(std::size_t index) const;

  // ---- objects (member order preserved for round-trip fidelity) ----
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// Member lookup; throws fsyn::Error when the key is absent.
  const JsonValue& at(const std::string& key) const;
  /// Member lookup; nullptr when absent.
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool has_int_ = false;  ///< token was integral and fits int64 exactly
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace fsyn
