// Minimal JSON document parser.
//
// flowsynth writes several JSON artifacts (synthesis results, metrics,
// traces, reliability reports) with hand-rolled emitters; this is the
// matching reader, added so results can round-trip — a reliability run can
// consume a previously synthesized mapping (`flowsynth reliability --in
// mapping.json`) without re-solving, and tests can assert report schemas
// without shelling out to python.
//
// Scope: strict RFC-8259 subset, UTF-8 passthrough (no \uXXXX surrogate
// decoding beyond Latin-1), numbers as double plus an exact int64 view when
// representable.  Throws fsyn::Error with an offset on malformed input.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace fsyn {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete document (one value + trailing whitespace only).
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const;
  double as_number() const;
  /// Number as integer; throws when the value is not integral.
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // ---- arrays ----
  const std::vector<JsonValue>& items() const;
  std::size_t size() const { return items().size(); }
  const JsonValue& at(std::size_t index) const;

  // ---- objects (member order preserved for round-trip fidelity) ----
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// Member lookup; throws fsyn::Error when the key is absent.
  const JsonValue& at(const std::string& key) const;
  /// Member lookup; nullptr when absent.
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Compact re-serialization (no whitespace).  Member order is preserved,
  /// integral numbers print exactly, other doubles at max_digits10, so
  /// `parse(x).dump()` loses no information.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool has_int_ = false;  ///< token was integral and fits int64 exactly
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

/// Escapes `text` for use inside a JSON string literal (no surrounding
/// quotes; control characters become \uXXXX).
std::string json_escape_string(std::string_view text);

/// Builder for compact JSON documents, used by the network layer for wire
/// messages and journal records.  It tracks nesting so commas and colons
/// are placed automatically:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("id").value(42);
///   w.key("tags").begin_array().value("a").value("b").end_array();
///   w.end_object();
///   w.str()  // {"id":42,"tags":["a","b"]}
///
/// `raw` splices an already-serialized JSON value (e.g. a nested document
/// produced elsewhere) without re-encoding it.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Member key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(unsigned number) { return value(static_cast<std::uint64_t>(number)); }
  JsonWriter& null();
  /// Splices pre-serialized JSON verbatim where a value is expected.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void before_value();

  std::string out_;
  /// One entry per open container: the count of values emitted in it.
  std::vector<std::size_t> counts_;
  bool after_key_ = false;
};

}  // namespace fsyn
