#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace fsyn {

void TextTable::set_header(std::vector<std::string> header) {
  check_input(!header.empty(), "table header must not be empty");
  header_ = std::move(header);
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> row) {
  require(!header_.empty(), "set_header must be called before add_row");
  check_input(row.size() == header_.size(), "table row width mismatch");
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::to_string() const {
  require(!header_.empty(), "cannot render a table without a header");
  const std::size_t columns = header_.size();
  std::vector<std::size_t> width(columns);
  for (std::size_t c = 0; c < columns; ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < columns; ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto align_of = [&](std::size_t c) {
    return c < alignment_.size() ? alignment_[c] : Align::kRight;
  };
  auto emit_cell = [&](std::ostringstream& os, const std::string& text, std::size_t c) {
    const std::size_t pad = width[c] - text.size();
    if (align_of(c) == Align::kLeft) {
      os << text << std::string(pad, ' ');
    } else {
      os << std::string(pad, ' ') << text;
    }
  };
  auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < columns; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  os << '|';
  for (std::size_t c = 0; c < columns; ++c) {
    os << ' ';
    emit_cell(os, header_[c], c);
    os << " |";
  }
  os << '\n';
  emit_rule(os);
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_rule(os);
      continue;
    }
    os << '|';
    for (std::size_t c = 0; c < columns; ++c) {
      os << ' ';
      emit_cell(os, row.cells[c], c);
      os << " |";
    }
    os << '\n';
  }
  emit_rule(os);
  return os.str();
}

}  // namespace fsyn
