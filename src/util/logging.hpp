// Minimal leveled logger.
//
// Synthesis runs can take minutes on the large dilution benchmarks; the
// mapper and router use this logger to report progress.  The default level
// is `kWarn` so tests and benchmarks stay quiet unless something is wrong.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace fsyn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits `message` to stderr when `level` passes the global threshold.
void log_message(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log_message(LogLevel::kError, detail::concat(args...));
}

}  // namespace fsyn
