// Minimal leveled logger.
//
// Synthesis runs can take minutes on the large dilution benchmarks; the
// mapper and router use this logger to report progress.  The default level
// is `kWarn` so tests and benchmarks stay quiet unless something is wrong;
// the `FLOWSYNTH_LOG` environment variable (debug|info|warn|error|off)
// overrides it at startup without code changes.
//
// Every line is formatted into one string and written with a single
// `fwrite` to stderr, so lines from concurrent batch-service workers never
// interleave mid-line.  The prefix carries an ISO-8601 UTC timestamp and a
// small per-thread id (also used as the trace tid by obs/trace.hpp).
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace fsyn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.  Initialized from
/// `FLOWSYNTH_LOG` when set, `kWarn` otherwise.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug" | "info" | "warn"/"warning" | "error" | "off"/"none"
/// (case-insensitive); nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order).
/// Stable for the thread's lifetime; shared by the logger prefix and the
/// tracing subsystem so log lines and trace tracks correlate.
int current_thread_id();

/// Renders one complete log line including the trailing newline:
/// `2015-06-08T12:34:56.789Z [fsyn INFO  t3] message`.
std::string format_log_line(LogLevel level, std::string_view message);

/// Emits `message` to stderr when `level` passes the global threshold.
void log_message(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log_message(LogLevel::kError, detail::concat(args...));
}

}  // namespace fsyn
