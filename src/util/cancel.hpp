// Cooperative cancellation.
//
// A `CancelSource` owns a cancellation flag plus an optional deadline; the
// `CancelToken`s it hands out are cheap, copyable views that long-running
// loops poll (the heuristic mapper's restart/annealing loops, the MILP
// branch & bound, the chip-size sweep in synthesize).  Tokens can be
// chained: a source created with a parent token is cancelled whenever the
// parent is, which is how the service layer's portfolio race cancels the
// losing arms without touching the job-level token.
//
// A default-constructed token is inert — `cancelled()` is always false —
// so every options struct can carry one at zero cost to callers that never
// use the service layer.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "util/error.hpp"

namespace fsyn {

/// Thrown by cancellation-aware code when its token fires.  Derives from
/// `Error` so existing catch sites keep working; the service layer catches
/// it specifically to report a Cancelled job status.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

class CancelToken {
 public:
  /// Inert token: never cancelled.
  CancelToken() = default;

  bool cancelled() const {
    const State* s = state_.get();
    while (s != nullptr) {
      if (s->flag.load(std::memory_order_relaxed)) return true;
      const auto deadline = s->deadline_ticks.load(std::memory_order_relaxed);
      if (deadline != 0 &&
          std::chrono::steady_clock::now().time_since_epoch().count() >= deadline) {
        return true;
      }
      s = s->parent.get();
    }
    return false;
  }

  /// Throws CancelledError when the token has fired.  `where` names the
  /// interrupted stage for the error message.
  void check(const char* where) const {
    if (cancelled()) {
      throw CancelledError(std::string("cancelled: ") + where);
    }
  }

  /// True when this token is connected to a source (an inert token cannot
  /// ever fire, so pollers may skip it entirely).
  bool valid() const { return state_ != nullptr; }

 private:
  friend class CancelSource;
  struct State {
    std::atomic<bool> flag{false};
    /// steady_clock ticks-since-epoch of the deadline; 0 = no deadline.
    std::atomic<std::chrono::steady_clock::rep> deadline_ticks{0};
    std::shared_ptr<const State> parent;  ///< null unless the source was chained
  };

  explicit CancelToken(std::shared_ptr<const State> state) : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<CancelToken::State>()) {}

  /// Chained source: tokens also report cancelled when `parent` fires.
  explicit CancelSource(const CancelToken& parent) : CancelSource() {
    state_->parent = parent.state_;
  }

  void cancel() { state_->flag.store(true, std::memory_order_relaxed); }

  /// Sets an absolute deadline `timeout` from now; tokens fire once the
  /// steady clock passes it.  A non-positive timeout fires immediately.
  void set_deadline_after(std::chrono::nanoseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    state_->deadline_ticks.store(deadline.time_since_epoch().count(),
                                 std::memory_order_relaxed);
  }

  CancelToken token() const { return CancelToken(state_); }
  bool cancelled() const { return token().cancelled(); }

 private:
  std::shared_ptr<CancelToken::State> state_;
};

}  // namespace fsyn
