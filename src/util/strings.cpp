#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace fsyn {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) fields.emplace_back(text.substr(start, i - start));
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

int parse_int(std::string_view text) {
  text = trim(text);
  int value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  check_input(ec == std::errc() && ptr == text.data() + text.size(),
              "malformed integer '" + std::string(text) + "'");
  return value;
}

double parse_double(std::string_view text) {
  text = trim(text);
  check_input(!text.empty(), "empty number");
  std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  check_input(end == buffer.c_str() + buffer.size(),
              "malformed number '" + buffer + "'");
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string format_percent(double fraction, int digits) {
  return format_fixed(fraction * 100.0, digits) + "%";
}

}  // namespace fsyn
