// Error-handling primitives shared by every flowsynth module.
//
// The library throws `fsyn::Error` for all recoverable failures (bad input,
// infeasible models, malformed assay files).  Internal invariant violations
// use `fsyn::require` which throws `fsyn::LogicError` carrying the source
// location; these indicate bugs, not user mistakes.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace fsyn {

/// Base class for all recoverable flowsynth errors (bad user input,
/// infeasible synthesis instances, parse failures, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated; always a library bug.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

/// Throws LogicError with source location when `condition` is false.
/// Used for internal invariants that must hold regardless of user input.
inline void require(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw LogicError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": invariant violated: " +
                     std::string(message));
  }
}

/// Throws Error when `condition` is false.  Used to validate user input.
inline void check_input(bool condition, std::string_view message) {
  if (!condition) {
    throw Error("invalid input: " + std::string(message));
  }
}

}  // namespace fsyn
