// ASCII table printer used to reproduce the paper's Table 1 and the
// ablation reports.  Columns are sized to the widest cell; alignment is
// per-column.
#pragma once

#include <string>
#include <vector>

namespace fsyn {

enum class Align { kLeft, kRight };

class TextTable {
 public:
  /// Declares the header row; the number of columns is fixed from here on.
  void set_header(std::vector<std::string> header);

  /// Sets per-column alignment; defaults to right-aligned.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table with column borders.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

}  // namespace fsyn
