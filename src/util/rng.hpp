// Deterministic pseudo-random number generator.
//
// All stochastic components (the simulated-annealing mapper, the property
// tests, the workload generators) take an explicit `Rng` so every run is
// reproducible from a seed.  The engine is splitmix64-seeded xoshiro256**,
// which is tiny, fast, and has no global state.
#pragma once

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace fsyn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    require(bound > 0, "Rng::next_below bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() - std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t value = next_u64();
    while (value >= limit) value = next_u64();
    return value % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi) {
    require(lo <= hi, "Rng::next_int empty range");
    return lo + static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace fsyn
