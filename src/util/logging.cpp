#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace fsyn {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("FLOWSYNTH_LOG")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
    // Can't use the logger here (we are computing its threshold); one plain
    // line is better than silently ignoring a typo in CI configs.
    std::fprintf(stderr, "[fsyn WARN ] ignoring unknown FLOWSYNTH_LOG value '%s'\n", env);
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_ref().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { level_ref().store(level, std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

int current_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string format_log_line(LogLevel level, std::string_view message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));

  std::string line;
  line.reserve(message.size() + 48);
  line += stamp;
  line += " [fsyn ";
  line += level_tag(level);
  line += " t";
  line += std::to_string(current_thread_id());
  line += "] ";
  line += message;
  line += '\n';
  return line;
}

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  // One pre-formatted string, one write: concurrent workers cannot tear a
  // line apart the way chained stream inserts into std::cerr could.
  const std::string line = format_log_line(level, message);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace fsyn
