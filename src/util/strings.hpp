// Small string utilities used by the assay DSL parser and the reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fsyn {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a non-negative integer; throws fsyn::Error on malformed input.
int parse_int(std::string_view text);

/// Parses a double; throws fsyn::Error on malformed input.
double parse_double(std::string_view text);

/// Joins the elements with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats `value` with `digits` digits after the decimal point.
std::string format_fixed(double value, int digits);

/// Formats `fraction` (e.g. 0.7297) as a percentage string "72.97%".
std::string format_percent(double fraction, int digits = 2);

}  // namespace fsyn
