#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fsyn {

namespace {

std::string kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_whitespace();
    fail_unless(pos_ == text_.size(), "trailing characters after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw Error("json parse error at offset " + std::to_string(pos_) + ": " + message);
  }
  void fail_unless(bool ok, const char* message) const {
    if (!ok) fail(message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    fail_unless(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    fail_unless(pos_ < text_.size() && text_[pos_] == c,
                ("expected '" + std::string(1, c) + "'").c_str());
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        fail_unless(consume_literal("true"), "bad literal");
        return make_bool(true);
      case 'f':
        fail_unless(consume_literal("false"), "bad literal");
        return make_bool(false);
      case 'n':
        fail_unless(consume_literal("null"), "bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool value) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = value;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      fail_unless(c == ',', "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      fail_unless(c == ',', "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      fail_unless(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        fail_unless(static_cast<unsigned char>(c) >= 0x20, "raw control character in string");
        out += c;
        continue;
      }
      fail_unless(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          fail_unless(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (BMP only; our emitters only escape
          // control characters, so surrogate pairs never appear).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    fail_unless(pos_ > start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    fail_unless(end == token.c_str() + token.size(), "malformed number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    // Integral tokens keep an exact int64 view: doubles drop precision
    // beyond 2^53, and 64-bit seeds round-trip through this parser.
    if (token.find('.') == std::string::npos && token.find('e') == std::string::npos &&
        token.find('E') == std::string::npos) {
      errno = 0;
      const long long integral = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        v.has_int_ = true;
        v.int_ = integral;
      }
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) { return JsonParser(text).run(); }

bool JsonValue::as_bool() const {
  check_input(kind_ == Kind::kBool, "json value is " + kind_name(kind_) + ", not bool");
  return bool_;
}

double JsonValue::as_number() const {
  check_input(kind_ == Kind::kNumber, "json value is " + kind_name(kind_) + ", not number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  check_input(kind_ == Kind::kNumber, "json value is " + kind_name(kind_) + ", not number");
  if (has_int_) return int_;
  const auto integral = static_cast<std::int64_t>(number_);
  check_input(static_cast<double>(integral) == number_, "json number is not integral");
  return integral;
}

const std::string& JsonValue::as_string() const {
  check_input(kind_ == Kind::kString, "json value is " + kind_name(kind_) + ", not string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  check_input(kind_ == Kind::kArray, "json value is " + kind_name(kind_) + ", not array");
  return items_;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& array = items();
  check_input(index < array.size(), "json array index out of range");
  return array[index];
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  check_input(kind_ == Kind::kObject, "json value is " + kind_name(kind_) + ", not object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  check_input(value != nullptr, "json object has no member '" + key + "'");
  return *value;
}

namespace {

void append_escaped(std::string& out, std::string_view text) {
  static const char* kHex = "0123456789abcdef";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;  // UTF-8 passthrough, matching the parser
        }
    }
  }
}

void append_number(std::string& out, double number) {
  // Shortest exact form: integral doubles print without a fraction, the
  // rest at max_digits10 so parse(dump(x)) is value-identical.
  const auto integral = static_cast<long long>(number);
  if (std::isfinite(number) && static_cast<double>(integral) == number &&
      number > -1e15 && number < 1e15) {
    out += std::to_string(integral);
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out += buffer;
}

void dump_value(std::string& out, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += value.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: {
      std::int64_t integral = 0;
      bool exact = false;
      try {
        integral = value.as_int();
        exact = true;
      } catch (const Error&) {
      }
      if (exact) {
        out += std::to_string(integral);
      } else {
        append_number(out, value.as_number());
      }
      break;
    }
    case JsonValue::Kind::kString:
      out += '"';
      append_escaped(out, value.as_string());
      out += '"';
      break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(out, item);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [name, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        append_escaped(out, name);
        out += "\":";
        dump_value(out, member);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

std::string json_escape_string(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_escaped(out, text);
  return out;
}

// ---- JsonWriter ----

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_ += ',';
    ++counts_.back();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  require(!counts_.empty(), "JsonWriter::end_object without begin_object");
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  require(!counts_.empty(), "JsonWriter::end_array without begin_array");
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  require(!counts_.empty() && !after_key_, "JsonWriter::key outside an object");
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
  out_ += '"';
  append_escaped(out_, name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  append_escaped(out_, text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  append_number(out_, number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

}  // namespace fsyn
