// Service metrics registry.
//
// Lock-free counters updated by workers and race arms, plus a latency
// histogram per job stage (queue wait / synthesis / end-to-end) so the
// snapshot carries percentiles, not just totals.  A consistent-enough
// snapshot can be taken at any time and serialized as JSON for
// `flowsynth batch --metrics PATH` or scraping.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>

#include "obs/histogram.hpp"
#include "svc/result_cache.hpp"

namespace fsyn::svc {

/// Plain-value copy of the registry, safe to read and serialize.
struct MetricsSnapshot {
  long jobs_submitted = 0;
  long jobs_completed = 0;  ///< finished with a result (fresh or cached)
  long jobs_cancelled = 0;
  long jobs_failed = 0;
  long jobs_rejected = 0;
  long jobs_running = 0;

  long mapper_invocations = 0;  ///< synthesize() calls actually executed
  long race_arms_started = 0;
  long race_arms_cancelled = 0;
  long reliability_jobs = 0;  ///< jobs that ran the reliability engine

  // Closed-loop fleet counters, folded in by kFleet jobs (all zeros when no
  // fleet ran).  Semantics are defined in docs/reliability.md: availability
  // = runs_available / runs_possible, detection latency is summed here and
  // averaged at serialization time.
  long fleet_jobs = 0;
  long fleet_chips = 0;
  long fleet_assay_runs = 0;
  long fleet_self_tests = 0;
  long fleet_faults_occurred = 0;
  long fleet_faults_detected = 0;
  long fleet_faults_missed = 0;
  long fleet_false_positives = 0;
  long fleet_repairs_attempted = 0;
  long fleet_repairs_succeeded = 0;
  long fleet_chips_retired = 0;
  long fleet_detection_latency_runs = 0;
  long fleet_runs_available = 0;
  long fleet_runs_possible = 0;

  double queue_seconds = 0.0;      ///< total time jobs spent queued
  double synthesis_seconds = 0.0;  ///< total time inside synthesize/race
  double total_seconds = 0.0;      ///< total end-to-end job time

  // Per-stage latency distributions (the *_seconds totals above are their
  // sums, kept as top-level fields for snapshot/JSON compatibility).
  obs::HistogramSnapshot queue_latency;
  obs::HistogramSnapshot synthesis_latency;
  obs::HistogramSnapshot total_latency;
  /// Time inside rel::analyze (reliability jobs only; empty otherwise).
  obs::HistogramSnapshot reliability_latency;
  /// Time inside fleet::run_fleet (kFleet jobs only; empty otherwise).
  obs::HistogramSnapshot fleet_latency;

  // MILP solver counters aggregated over every completed synthesis (zeros
  // when only the heuristic mapper ran).
  long solver_nodes = 0;
  long solver_lp_iterations = 0;
  long solver_primal_pivots = 0;
  long solver_dual_pivots = 0;
  long solver_refactorizations = 0;
  long solver_warm_solves = 0;
  long solver_cold_solves = 0;
  // Sparse-LU basis telemetry (zeros when every solve used the dense basis).
  long solver_lu_refactorizations = 0;
  long solver_eta_pivots = 0;
  long solver_eta_nnz = 0;
  long solver_lu_fill_nnz = 0;
  long solver_lu_basis_nnz = 0;
  long solver_devex_resets = 0;
  // Root cut loop + branching + node-store telemetry.
  long solver_gomory_cuts = 0;
  long solver_cover_cuts = 0;
  long solver_cuts_applied = 0;
  long solver_cuts_retained = 0;
  long solver_cut_rounds = 0;
  long solver_impact_branch_decisions = 0;
  long solver_pseudocost_branch_decisions = 0;
  long solver_arena_bytes = 0;  ///< max node-arena footprint of any one solve
  /// LP engine mode of the most recent solve: ilp::BasisKind/PricingRule as
  /// ints (0 = dense / dantzig, 1 = sparse_lu / devex), -1 before any solve.
  int solver_basis = -1;
  int solver_pricing = -1;
  // Parallel-search telemetry (zeros when every solve ran serially).
  long solver_threads = 0;  ///< max workers used by any one MILP solve
  long solver_steals = 0;
  double solver_idle_seconds = 0.0;

  CacheStats cache;
  int workers = 0;
  std::size_t max_queue_depth = 0;

  // Short-horizon throughput, computed from the registry's interval-sample
  // ring: jobs per second over (up to) the trailing 1 and 5 minutes.  Early
  // in a process's life the window is the full uptime, so a fresh server
  // under load reports nonzero rates from the first scrape.
  double submitted_per_second_1m = 0.0;
  double submitted_per_second_5m = 0.0;
  double completed_per_second_1m = 0.0;
  double completed_per_second_5m = 0.0;

  /// Serializes the snapshot as a single JSON object.
  std::string to_json() const;

  /// Renders the snapshot in the Prometheus text exposition format
  /// (version 0.0.4): counters, gauges, and the per-stage latency
  /// histograms as cumulative buckets.
  std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  /// Interval between rate samples; the 32-slot ring then covers > 5 min.
  static constexpr std::chrono::seconds kRateSampleInterval{10};
  static constexpr std::size_t kRateSamples = 32;

  MetricsRegistry();

  void job_submitted() { jobs_submitted_.fetch_add(1, std::memory_order_relaxed); }
  void job_started() { jobs_running_.fetch_add(1, std::memory_order_relaxed); }
  void job_completed() {
    jobs_running_.fetch_sub(1, std::memory_order_relaxed);
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  }
  void job_cancelled() {
    jobs_running_.fetch_sub(1, std::memory_order_relaxed);
    jobs_cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  void job_failed() {
    jobs_running_.fetch_sub(1, std::memory_order_relaxed);
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  void job_rejected() { jobs_rejected_.fetch_add(1, std::memory_order_relaxed); }

  void mapper_invoked() { mapper_invocations_.fetch_add(1, std::memory_order_relaxed); }
  void race_arm_started() { race_arms_started_.fetch_add(1, std::memory_order_relaxed); }
  void race_arm_cancelled() { race_arms_cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void reliability_job() { reliability_jobs_.fetch_add(1, std::memory_order_relaxed); }
  void fleet_job() { fleet_jobs_.fetch_add(1, std::memory_order_relaxed); }

  void add_queue_time(std::chrono::nanoseconds d) { queue_latency_.record(d); }
  void add_synthesis_time(std::chrono::nanoseconds d) { synthesis_latency_.record(d); }
  void add_total_time(std::chrono::nanoseconds d) { total_latency_.record(d); }
  void add_reliability_time(std::chrono::nanoseconds d) { reliability_latency_.record(d); }
  void add_fleet_time(std::chrono::nanoseconds d) { fleet_latency_.record(d); }

  /// One fleet run's aggregate outcome, as plain longs so svc does not
  /// depend on the fleet headers (mirrors SolverCounters for the MILP).
  struct FleetStats {
    long chips = 0;
    long assay_runs = 0;
    long self_tests = 0;
    long faults_occurred = 0;
    long faults_detected = 0;
    long faults_missed = 0;       ///< never diagnosed by end of horizon
    long false_positives = 0;     ///< diagnosed cells with no real fault
    long repairs_attempted = 0;
    long repairs_succeeded = 0;
    long chips_retired = 0;
    long detection_latency_runs = 0;  ///< summed over detected faults
    long runs_available = 0;          ///< chip-runs in service, fault-free
    long runs_possible = 0;           ///< chips * horizon
  };

  /// Folds one fleet run's counters into the registry.
  void record_fleet(const FleetStats& f) {
    fleet_chips_.fetch_add(f.chips, std::memory_order_relaxed);
    fleet_assay_runs_.fetch_add(f.assay_runs, std::memory_order_relaxed);
    fleet_self_tests_.fetch_add(f.self_tests, std::memory_order_relaxed);
    fleet_faults_occurred_.fetch_add(f.faults_occurred, std::memory_order_relaxed);
    fleet_faults_detected_.fetch_add(f.faults_detected, std::memory_order_relaxed);
    fleet_faults_missed_.fetch_add(f.faults_missed, std::memory_order_relaxed);
    fleet_false_positives_.fetch_add(f.false_positives, std::memory_order_relaxed);
    fleet_repairs_attempted_.fetch_add(f.repairs_attempted, std::memory_order_relaxed);
    fleet_repairs_succeeded_.fetch_add(f.repairs_succeeded, std::memory_order_relaxed);
    fleet_chips_retired_.fetch_add(f.chips_retired, std::memory_order_relaxed);
    fleet_detection_latency_runs_.fetch_add(f.detection_latency_runs,
                                            std::memory_order_relaxed);
    fleet_runs_available_.fetch_add(f.runs_available, std::memory_order_relaxed);
    fleet_runs_possible_.fetch_add(f.runs_possible, std::memory_order_relaxed);
  }

  /// One synthesis run's MILP solver counters, as plain longs so svc does
  /// not depend on the ilp headers.  `basis`/`pricing` mirror
  /// ilp::BasisKind / ilp::PricingRule as ints (-1 = not reported).
  struct SolverCounters {
    long nodes = 0;
    long lp_iterations = 0;
    long primal_pivots = 0;
    long dual_pivots = 0;
    long refactorizations = 0;
    long warm_solves = 0;
    long cold_solves = 0;
    long lu_refactorizations = 0;
    long eta_pivots = 0;
    long eta_nnz = 0;
    long lu_fill_nnz = 0;
    long lu_basis_nnz = 0;
    long devex_resets = 0;
    long gomory_cuts = 0;
    long cover_cuts = 0;
    long cuts_applied = 0;
    long cuts_retained = 0;
    long cut_rounds = 0;
    long impact_branch_decisions = 0;
    long pseudocost_branch_decisions = 0;
    long arena_bytes = 0;
    int basis = -1;
    int pricing = -1;
  };

  /// Folds one synthesis run's MILP solver counters into the registry.
  void record_solver(const SolverCounters& c) {
    solver_nodes_.fetch_add(c.nodes, std::memory_order_relaxed);
    solver_lp_iterations_.fetch_add(c.lp_iterations, std::memory_order_relaxed);
    solver_primal_pivots_.fetch_add(c.primal_pivots, std::memory_order_relaxed);
    solver_dual_pivots_.fetch_add(c.dual_pivots, std::memory_order_relaxed);
    solver_refactorizations_.fetch_add(c.refactorizations, std::memory_order_relaxed);
    solver_warm_solves_.fetch_add(c.warm_solves, std::memory_order_relaxed);
    solver_cold_solves_.fetch_add(c.cold_solves, std::memory_order_relaxed);
    solver_lu_refactorizations_.fetch_add(c.lu_refactorizations, std::memory_order_relaxed);
    solver_eta_pivots_.fetch_add(c.eta_pivots, std::memory_order_relaxed);
    solver_eta_nnz_.fetch_add(c.eta_nnz, std::memory_order_relaxed);
    solver_lu_fill_nnz_.fetch_add(c.lu_fill_nnz, std::memory_order_relaxed);
    solver_lu_basis_nnz_.fetch_add(c.lu_basis_nnz, std::memory_order_relaxed);
    solver_devex_resets_.fetch_add(c.devex_resets, std::memory_order_relaxed);
    solver_gomory_cuts_.fetch_add(c.gomory_cuts, std::memory_order_relaxed);
    solver_cover_cuts_.fetch_add(c.cover_cuts, std::memory_order_relaxed);
    solver_cuts_applied_.fetch_add(c.cuts_applied, std::memory_order_relaxed);
    solver_cuts_retained_.fetch_add(c.cuts_retained, std::memory_order_relaxed);
    solver_cut_rounds_.fetch_add(c.cut_rounds, std::memory_order_relaxed);
    solver_impact_branch_decisions_.fetch_add(c.impact_branch_decisions,
                                              std::memory_order_relaxed);
    solver_pseudocost_branch_decisions_.fetch_add(c.pseudocost_branch_decisions,
                                                  std::memory_order_relaxed);
    long arena_seen = solver_arena_bytes_.load(std::memory_order_relaxed);
    while (c.arena_bytes > arena_seen &&
           !solver_arena_bytes_.compare_exchange_weak(arena_seen, c.arena_bytes,
                                                      std::memory_order_relaxed)) {
    }
    if (c.basis >= 0) solver_basis_.store(c.basis, std::memory_order_relaxed);
    if (c.pricing >= 0) solver_pricing_.store(c.pricing, std::memory_order_relaxed);
  }

  /// Folds one synthesis run's parallel-search counters into the registry.
  /// `threads` keeps a running maximum (the widest solve seen); idle time
  /// is accumulated at microsecond resolution.
  void record_solver_parallel(int threads, long steals, double idle_seconds) {
    long seen = solver_threads_.load(std::memory_order_relaxed);
    while (threads > seen &&
           !solver_threads_.compare_exchange_weak(seen, threads, std::memory_order_relaxed)) {
    }
    solver_steals_.fetch_add(steals, std::memory_order_relaxed);
    solver_idle_micros_.fetch_add(static_cast<long>(idle_seconds * 1e6),
                                  std::memory_order_relaxed);
  }

  long mapper_invocations() const {
    return mapper_invocations_.load(std::memory_order_relaxed);
  }

  /// Counter fields of the snapshot; the service fills in cache/pool data.
  /// Also advances the rate ring (a sample is pushed when the last one is
  /// older than `kRateSampleInterval`) and fills the *_per_second fields.
  MetricsSnapshot snapshot() const;

  /// Pushes a rate sample unconditionally (tests; snapshot() samples on its
  /// own schedule otherwise).
  void sample_rates() const;

 private:
  struct RateSample {
    std::chrono::steady_clock::time_point at{};
    long submitted = 0;
    long completed = 0;
  };

  /// Jobs/second between `now` and the oldest ring sample at most `window`
  /// old (falling back to the newest sample when the ring has gone stale).
  void fill_rates(MetricsSnapshot& s) const;
  void push_sample_locked(std::chrono::steady_clock::time_point now) const;
  std::atomic<long> jobs_submitted_{0};
  std::atomic<long> jobs_completed_{0};
  std::atomic<long> jobs_cancelled_{0};
  std::atomic<long> jobs_failed_{0};
  std::atomic<long> jobs_rejected_{0};
  std::atomic<long> jobs_running_{0};
  std::atomic<long> mapper_invocations_{0};
  std::atomic<long> race_arms_started_{0};
  std::atomic<long> race_arms_cancelled_{0};
  std::atomic<long> reliability_jobs_{0};
  std::atomic<long> fleet_jobs_{0};
  std::atomic<long> fleet_chips_{0};
  std::atomic<long> fleet_assay_runs_{0};
  std::atomic<long> fleet_self_tests_{0};
  std::atomic<long> fleet_faults_occurred_{0};
  std::atomic<long> fleet_faults_detected_{0};
  std::atomic<long> fleet_faults_missed_{0};
  std::atomic<long> fleet_false_positives_{0};
  std::atomic<long> fleet_repairs_attempted_{0};
  std::atomic<long> fleet_repairs_succeeded_{0};
  std::atomic<long> fleet_chips_retired_{0};
  std::atomic<long> fleet_detection_latency_runs_{0};
  std::atomic<long> fleet_runs_available_{0};
  std::atomic<long> fleet_runs_possible_{0};
  obs::LatencyHistogram queue_latency_;
  obs::LatencyHistogram synthesis_latency_;
  obs::LatencyHistogram total_latency_;
  obs::LatencyHistogram reliability_latency_;
  obs::LatencyHistogram fleet_latency_;
  std::atomic<long> solver_nodes_{0};
  std::atomic<long> solver_lp_iterations_{0};
  std::atomic<long> solver_primal_pivots_{0};
  std::atomic<long> solver_dual_pivots_{0};
  std::atomic<long> solver_refactorizations_{0};
  std::atomic<long> solver_warm_solves_{0};
  std::atomic<long> solver_cold_solves_{0};
  std::atomic<long> solver_lu_refactorizations_{0};
  std::atomic<long> solver_eta_pivots_{0};
  std::atomic<long> solver_eta_nnz_{0};
  std::atomic<long> solver_lu_fill_nnz_{0};
  std::atomic<long> solver_lu_basis_nnz_{0};
  std::atomic<long> solver_devex_resets_{0};
  std::atomic<long> solver_gomory_cuts_{0};
  std::atomic<long> solver_cover_cuts_{0};
  std::atomic<long> solver_cuts_applied_{0};
  std::atomic<long> solver_cuts_retained_{0};
  std::atomic<long> solver_cut_rounds_{0};
  std::atomic<long> solver_impact_branch_decisions_{0};
  std::atomic<long> solver_pseudocost_branch_decisions_{0};
  std::atomic<long> solver_arena_bytes_{0};
  std::atomic<int> solver_basis_{-1};
  std::atomic<int> solver_pricing_{-1};
  std::atomic<long> solver_threads_{0};
  std::atomic<long> solver_steals_{0};
  std::atomic<long> solver_idle_micros_{0};

  // Rate ring: mutex-guarded (samples are rare — one per scrape interval);
  // mutable so const snapshot() can advance it.
  mutable std::mutex rate_mutex_;
  mutable std::array<RateSample, kRateSamples> rate_ring_{};
  mutable std::size_t rate_count_ = 0;
  mutable std::size_t rate_next_ = 0;
};

}  // namespace fsyn::svc
