// Fixed-size thread-pool executor with a bounded job queue.
//
// The pool is the substrate of the batch-synthesis service (service.hpp):
// workers pull closures from a FIFO queue whose depth is capped so a burst
// of submissions cannot grow memory without bound.  When the queue is full
// the configured overflow policy either blocks the submitter (backpressure)
// or rejects the task immediately — the service maps a rejection to a
// `JobStatus::kRejected` result so callers see it as data, not an exception.
//
// Destruction drains the queue: already-accepted tasks still run, then the
// workers join.  `submit` after `shutdown` is a rejection.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsyn::svc {

/// What `submit` does when the bounded queue is full.
enum class OverflowPolicy {
  kBlock,  ///< wait until a worker frees a slot (backpressure)
  kReject  ///< return false immediately
};

class ThreadPool {
 public:
  /// `workers` must be >= 1; `queue_capacity` 0 means unbounded.
  explicit ThreadPool(int workers, std::size_t queue_capacity = 0,
                      OverflowPolicy overflow = OverflowPolicy::kBlock);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Returns false when the task was rejected (kReject
  /// policy with a full queue, or the pool is shutting down).
  bool submit(std::function<void()> task);

  /// Like `submit` but never blocks, regardless of the overflow policy:
  /// a full queue or a stopping pool is an immediate rejection.  Safe to
  /// call from a pool worker (a blocking submit from a worker could
  /// deadlock a saturated pool); used by the parallel MILP search to
  /// borrow helpers opportunistically.
  bool try_submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  int worker_count() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_depth() const;
  /// High-water mark of the queue depth since construction.
  std::size_t max_queue_depth() const;

 private:
  void worker_loop();

  const std::size_t capacity_;
  const OverflowPolicy overflow_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::size_t max_depth_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace fsyn::svc
