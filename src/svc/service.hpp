// Concurrent batch-synthesis service.
//
// `BatchService` turns the single-threaded `synth::synthesize` pipeline
// into a job-oriented service:
//
//  * jobs (assay + scheduling spec + SynthesisOptions + optional deadline)
//    are executed on a fixed-size thread pool with a bounded queue
//    (thread_pool.hpp) — full queue either blocks the submitter or rejects
//    the job, per configuration;
//  * every job carries a cooperative CancelToken; the deadline arms it, and
//    the token is polled deep inside the heuristic mapper, the MILP branch
//    & bound and the chip-size sweep, so a 1 ms deadline aborts in
//    milliseconds instead of after a full solve;
//  * portfolio racing (optional): one job fans out into several heuristic
//    arms with distinct seeds plus — for small instances — the exact ILP
//    mapper, all racing on their own threads; the first acceptable result
//    cancels the rest.  This mirrors the paper's "ILP when tractable,
//    heuristic otherwise" split without guessing tractability up front.
//    Racing trades determinism for latency: which arm wins depends on
//    timing, so batch runs that must be reproducible leave it disabled;
//  * results land in a canonical-key LRU cache (result_cache.hpp):
//    re-submitting an identical job is a recorded cache hit and returns the
//    stored result without invoking any mapper;
//  * a metrics registry (metrics.hpp) counts jobs, stage wall-clock and
//    cache traffic, and serializes to JSON.
#pragma once

#include <chrono>
#include <future>
#include <optional>
#include <string>

#include "assay/sequencing_graph.hpp"
#include "rel/engine.hpp"
#include "svc/metrics.hpp"
#include "svc/result_cache.hpp"
#include "svc/thread_pool.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::svc {

struct PortfolioOptions {
  /// Off by default: racing is latency-optimal but not deterministic.
  bool enabled = false;
  /// Concurrent heuristic arms; arm k runs with seed `seed + k * stride`.
  int heuristic_arms = 3;
  std::uint64_t seed_stride = 7919;
  /// An exact-ILP arm joins the race when the assay has at most this many
  /// mixing operations (the ILP is only tractable on small instances).
  int ilp_max_mixing_ops = 8;
};

enum class JobStatus {
  kDone,       ///< result available (freshly solved or cached)
  kCancelled,  ///< deadline hit or token cancelled before completion
  kFailed,     ///< synthesis threw (e.g. infeasible within growth limits)
  kRejected    ///< bounded queue full under the reject policy
};

const char* to_string(JobStatus status);

enum class JobKind {
  kSynthesis,   ///< synthesize only (the original service contract)
  kReliability  ///< synthesize (cache-aware), then run rel::analyze on it
};

struct JobSpec {
  JobKind kind = JobKind::kSynthesis;
  std::string name;  ///< display label (defaults to the graph name)
  assay::SequencingGraph graph;
  /// Scheduling spec, applied inside the worker: ASAP or a balancing
  /// policy with this many increments (sched::make_policy).
  int policy_increments = 0;
  bool asap = false;
  synth::SynthesisOptions options;
  /// Reliability-engine options (kReliability jobs).  `synthesis`,
  /// `policy_increments` and `asap` are overwritten from this spec, and the
  /// Monte Carlo estimator never borrows the service pool (a pooled job
  /// waiting on pooled trial blocks would deadlock, exactly like race()).
  rel::ReliabilityOptions reliability;
  /// Wall-clock budget; arms the job's CancelToken.
  std::optional<std::chrono::milliseconds> deadline;
};

struct JobResult {
  JobStatus status = JobStatus::kFailed;
  /// Set iff status == kDone.  Shared with the cache: treat as immutable.
  std::shared_ptr<const synth::SynthesisResult> result;
  /// Set iff status == kDone and the job was kReliability.
  std::shared_ptr<const rel::ReliabilityReport> report;
  bool cache_hit = false;
  /// Which portfolio arm produced the result: "heuristic[seed]", "ilp",
  /// "cache", or "single" when racing was off.
  std::string winner;
  std::string error;  ///< set for kFailed / kCancelled / kRejected
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

class BatchService {
 public:
  struct Config {
    /// 0 = std::thread::hardware_concurrency().
    int workers = 0;
    std::size_t queue_capacity = 256;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// LRU entries; 0 disables the result cache.
    std::size_t cache_capacity = 256;
    PortfolioOptions portfolio;
  };

  BatchService() : BatchService(Config()) {}
  explicit BatchService(Config config);
  ~BatchService() = default;  // pool destructor drains and joins

  /// Enqueues a job.  The returned future never throws on get(): failures
  /// and rejections are reported in JobResult::status.
  std::future<JobResult> submit(JobSpec spec);

  /// Point-in-time metrics including cache and pool gauges.
  MetricsSnapshot metrics() const;

  int worker_count() const { return pool_.worker_count(); }

 private:
  JobResult run_job(JobSpec& spec, std::chrono::steady_clock::time_point enqueued);
  synth::SynthesisResult race(const JobSpec& spec, const sched::Schedule& schedule,
                              const CancelToken& job_token, std::string* winner);

  Config config_;
  ResultCache cache_;
  MetricsRegistry metrics_;
  ThreadPool pool_;  // last member: workers must die before cache/metrics
};

}  // namespace fsyn::svc
