// Concurrent batch-synthesis service.
//
// `BatchService` turns the single-threaded `synth::synthesize` pipeline
// into a job-oriented service:
//
//  * jobs (assay + scheduling spec + SynthesisOptions + optional deadline)
//    are executed on a fixed-size thread pool with a bounded queue
//    (thread_pool.hpp) — full queue either blocks the submitter or rejects
//    the job, per configuration;
//  * every job carries a cooperative CancelToken; the deadline arms it, and
//    the token is polled deep inside the heuristic mapper, the MILP branch
//    & bound and the chip-size sweep, so a 1 ms deadline aborts in
//    milliseconds instead of after a full solve;
//  * portfolio racing (optional): one job fans out into several heuristic
//    arms with distinct seeds plus — for small instances — the exact ILP
//    mapper, all racing on their own threads; the first acceptable result
//    cancels the rest.  This mirrors the paper's "ILP when tractable,
//    heuristic otherwise" split without guessing tractability up front.
//    Racing trades determinism for latency: which arm wins depends on
//    timing, so batch runs that must be reproducible leave it disabled;
//  * results land in a canonical-key LRU cache (result_cache.hpp):
//    re-submitting an identical job is a recorded cache hit and returns the
//    stored result without invoking any mapper;
//  * a metrics registry (metrics.hpp) counts jobs, stage wall-clock and
//    cache traffic, and serializes to JSON.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>

#include "assay/sequencing_graph.hpp"
#include "obs/trace_context.hpp"
#include "rel/engine.hpp"
#include "svc/metrics.hpp"
#include "svc/result_cache.hpp"
#include "svc/thread_pool.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::svc {

struct PortfolioOptions {
  /// Off by default: racing is latency-optimal but not deterministic.
  bool enabled = false;
  /// Concurrent heuristic arms; arm k runs with seed `seed + k * stride`.
  int heuristic_arms = 3;
  std::uint64_t seed_stride = 7919;
  /// An exact-ILP arm joins the race when the assay has at most this many
  /// mixing operations (the ILP is only tractable on small instances).
  int ilp_max_mixing_ops = 8;
};

enum class JobStatus {
  kDone,       ///< result available (freshly solved or cached)
  kCancelled,  ///< deadline hit or token cancelled before completion
  kFailed,     ///< synthesis threw (e.g. infeasible within growth limits)
  kRejected    ///< bounded queue full under the reject policy
};

const char* to_string(JobStatus status);

enum class JobKind {
  kSynthesis,   ///< synthesize only (the original service contract)
  kReliability, ///< synthesize (cache-aware), then run rel::analyze on it
  kFleet        ///< run JobSpec::fleet_runner (closed-loop fleet simulation)
};

/// Scheduling class of a job.  Lower values run first: the service keeps
/// one pending deque per class and every pool worker picks the oldest job
/// of the most urgent non-empty class, so an interactive request overtakes
/// any amount of queued background re-synthesis without preempting work
/// that already started.
enum class JobPriority {
  kInteractive = 0,  ///< a user is waiting (served API requests)
  kBatch = 1,        ///< bulk sweeps (the default; the original behaviour)
  kBackground = 2    ///< deferred work, e.g. fleet re-synthesis after faults
};

const char* to_string(JobPriority priority);

/// Lifecycle points reported to `JobSpec::on_phase`.
enum class JobPhase {
  kQueued,    ///< accepted into the pending queue (fires on the submitter)
  kStarted,   ///< a worker picked the job up
  kStage,     ///< entering a pipeline stage; `stage` names it
  kFinished   ///< terminal; `result` carries the outcome (incl. rejection)
};

/// Observer invoked at job lifecycle transitions.  kQueued fires on the
/// submitting thread, everything else on the worker running the job; no
/// service locks are held during the call, but the observer must still be
/// cheap and thread-safe — it runs inline with the job.  `stage` is only
/// non-null for kStage ("schedule", "cache", "synthesize", "reliability");
/// `result` only for kFinished.
using JobObserver =
    std::function<void(std::uint64_t id, JobPhase phase, const char* stage,
                       const struct JobResult* result)>;

/// Body of a kFleet job.  The service stays fleet-agnostic: the fleet layer
/// (which links against svc) packages its simulation into this callable.
/// The runner receives the job's armed CancelToken and a stats sink to fill
/// (folded into the registry on success), and returns the report document
/// published as JobResult::document.  It may run its own private
/// BatchService for repairs but must never submit back into the service
/// executing it (a pooled job waiting on pooled work deadlocks).
using FleetRunner =
    std::function<std::string(const CancelToken&, MetricsRegistry::FleetStats*)>;

struct JobSpec {
  JobKind kind = JobKind::kSynthesis;
  /// Unique job id, echoed in JobResult and the observer calls.  0 lets
  /// the service assign one; callers that journal the job before
  /// submitting (the network front-end) pass their own.
  std::uint64_t id = 0;
  JobPriority priority = JobPriority::kBatch;
  JobObserver on_phase;  ///< optional lifecycle observer
  std::string name;  ///< display label (defaults to the graph name)
  assay::SequencingGraph graph;
  /// Scheduling spec, applied inside the worker: ASAP or a balancing
  /// policy with this many increments (sched::make_policy).
  int policy_increments = 0;
  bool asap = false;
  synth::SynthesisOptions options;
  /// Reliability-engine options (kReliability jobs).  `synthesis`,
  /// `policy_increments` and `asap` are overwritten from this spec, and the
  /// Monte Carlo estimator never borrows the service pool (a pooled job
  /// waiting on pooled trial blocks would deadlock, exactly like race()).
  rel::ReliabilityOptions reliability;
  /// Body of a kFleet job (required for that kind, ignored otherwise).
  /// kFleet jobs skip scheduling, the result cache and the mappers — the
  /// runner owns the whole pipeline; `graph`/`options` are unused.
  FleetRunner fleet_runner;
  /// Wall-clock budget; arms the job's CancelToken.
  std::optional<std::chrono::milliseconds> deadline;
  /// Distributed trace context this job belongs to (W3C traceparent at the
  /// HTTP door, or minted there).  Invalid (all-zero) when the caller does
  /// not trace; the worker installs it as the ambient context for the job,
  /// so every solver span — including race arms on their own threads —
  /// carries the request's trace id.
  obs::TraceContext trace;
};

struct JobResult {
  JobStatus status = JobStatus::kFailed;
  std::uint64_t job_id = 0;  ///< the JobSpec::id this result answers
  /// Set iff status == kDone.  Shared with the cache: treat as immutable.
  std::shared_ptr<const synth::SynthesisResult> result;
  /// Set iff status == kDone and the job was kReliability.
  std::shared_ptr<const rel::ReliabilityReport> report;
  /// Set iff status == kDone and the job was kFleet: the runner's report
  /// document (JSON), served verbatim as the job result.
  std::shared_ptr<const std::string> document;
  bool cache_hit = false;
  /// Which portfolio arm produced the result: "heuristic[seed]", "ilp",
  /// "cache", or "single" when racing was off.
  std::string winner;
  std::string error;  ///< set for kFailed / kCancelled / kRejected
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

class BatchService {
 public:
  struct Config {
    /// 0 = std::thread::hardware_concurrency().
    int workers = 0;
    std::size_t queue_capacity = 256;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// LRU entries; 0 disables the result cache.
    std::size_t cache_capacity = 256;
    PortfolioOptions portfolio;
  };

  BatchService() : BatchService(Config()) {}
  explicit BatchService(Config config);
  ~BatchService() = default;  // pool destructor drains and joins

  /// Enqueues a job.  The returned future never throws on get(): failures
  /// and rejections are reported in JobResult::status.  Jobs are ordered
  /// by JobSpec::priority, FIFO within a class.
  std::future<JobResult> submit(JobSpec spec);

  /// Point-in-time metrics including cache and pool gauges.
  MetricsSnapshot metrics() const;

  int worker_count() const { return pool_.worker_count(); }
  /// Jobs accepted but not yet picked up by a worker (admission control
  /// reads this together with the service-time histogram).
  std::size_t queue_depth() const { return pool_.queue_depth(); }

 private:
  /// A job accepted into the priority queue, waiting for a pool ticket.
  struct Pending {
    std::uint64_t seq = 0;  ///< FIFO order within a priority class
    std::shared_ptr<JobSpec> spec;
    std::shared_ptr<std::promise<JobResult>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void run_next_pending();
  JobResult run_job(JobSpec& spec, std::chrono::steady_clock::time_point enqueued);
  synth::SynthesisResult race(const JobSpec& spec, const sched::Schedule& schedule,
                              const CancelToken& job_token, std::string* winner);

  Config config_;
  ResultCache cache_;
  MetricsRegistry metrics_;
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> next_seq_{1};
  // Pool tickets are anonymous "run the best pending job" closures; the
  // actual job order lives here, one FIFO deque per priority class.  The
  // pool's bounded queue still provides the backpressure: #tickets ==
  // #pending entries at all times.
  mutable std::mutex pending_mutex_;
  std::array<std::deque<Pending>, 3> pending_;
  ThreadPool pool_;  // last member: workers must die before cache/metrics
};

}  // namespace fsyn::svc
