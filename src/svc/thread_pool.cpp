#include "svc/thread_pool.hpp"

#include <string>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fsyn::svc {

ThreadPool::ThreadPool(int workers, std::size_t queue_capacity, OverflowPolicy overflow)
    : capacity_(queue_capacity), overflow_(overflow) {
  check_input(workers >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] {
      obs::Tracer::instance().set_thread_name("svc-worker-" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  require(static_cast<bool>(task), "thread pool task must be callable");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (capacity_ > 0 && queue_.size() >= capacity_) {
      if (overflow_ == OverflowPolicy::kReject) return false;
      not_full_.wait(lock, [this] { return stopping_ || queue_.size() < capacity_; });
    }
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::try_submit(std::function<void()> task) {
  require(static_cast<bool>(task), "thread pool task must be callable");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    if (capacity_ > 0 && queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // A second shutdown (e.g. explicit call + destructor) only needs to
      // wait for the joins below, which already happened.
      return;
    }
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();  // exceptions must not escape: tasks wrap their own try/catch
  }
}

}  // namespace fsyn::svc
