// Canonical-key LRU cache of synthesis results.
//
// A batch sweep revisits the same (assay, schedule, options) point whenever
// two specs collapse to identical inputs — repeated CLI invocations, the
// policy sweep's duplicate rows, or clients re-asking for a design they
// already received.  Synthesis is deterministic in its options (seeds
// included), so a cached `SynthesisResult` is bit-identical to what a fresh
// solve would produce and can be served without running a mapper.
//
// The key is a 64-bit FNV-1a hash over a canonical serialization of the
// sequencing graph *structure* (kinds, parents, ratios, volumes, durations
// — names are display-only and excluded), the schedule times, and every
// result-affecting field of SynthesisOptions.  A collision would serve the
// wrong design; at 64 bits and cache sizes in the hundreds the probability
// is ~1e-15 per pair, which the service accepts.
//
// Thread-safe; hit/miss/eviction counters feed the metrics registry.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "assay/sequencing_graph.hpp"
#include "sched/schedule.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::svc {

using CacheKey = std::uint64_t;

/// Canonical cache key for one synthesis job.  Two jobs with equal keys
/// produce identical results (same graph structure, schedule and options).
CacheKey canonical_key(const assay::SequencingGraph& graph, const sched::Schedule& schedule,
                       const synth::SynthesisOptions& options);

struct CacheStats {
  long hits = 0;
  long misses = 0;
  long evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  /// `capacity` 0 disables caching entirely (every lookup is a miss and
  /// inserts are dropped), which keeps the service code branch-free.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result and refreshes its recency, or nullptr.
  /// Every call is recorded as a hit or a miss.
  std::shared_ptr<const synth::SynthesisResult> lookup(CacheKey key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used one
  /// when full.
  void insert(CacheKey key, std::shared_ptr<const synth::SynthesisResult> result);

  CacheStats stats() const;

 private:
  using LruList = std::list<std::pair<CacheKey, std::shared_ptr<const synth::SynthesisResult>>>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, LruList::iterator> index_;
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
};

}  // namespace fsyn::svc
