// Canonical-key LRU cache of synthesis results.
//
// A batch sweep revisits the same (assay, schedule, options) point whenever
// two specs collapse to identical inputs — repeated CLI invocations, the
// policy sweep's duplicate rows, or clients re-asking for a design they
// already received.  Synthesis is deterministic in its options (seeds
// included), so a cached `SynthesisResult` is bit-identical to what a fresh
// solve would produce and can be served without running a mapper.
//
// The key is a 64-bit FNV-1a hash over a canonical serialization of the
// sequencing graph *structure* (kinds, parents, ratios, volumes, durations
// — names are display-only and excluded), the schedule times, and every
// result-affecting field of SynthesisOptions.  A collision would serve the
// wrong design; at 64 bits and cache sizes in the hundreds the probability
// is ~1e-15 per pair, which the service accepts.
//
// Thread-safe; hit/miss/eviction counters feed the metrics registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "assay/sequencing_graph.hpp"
#include "sched/schedule.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::svc {

using CacheKey = std::uint64_t;

/// Canonical cache key for one synthesis job.  Two jobs with equal keys
/// produce identical results (same graph structure, schedule and options).
CacheKey canonical_key(const assay::SequencingGraph& graph, const sched::Schedule& schedule,
                       const synth::SynthesisOptions& options);

struct CacheStats {
  long hits = 0;
  long misses = 0;
  long evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

/// Sharded LRU: the key space is split across up to `kMaxShards`
/// independent (mutex, list, map) shards selected by key hash, so
/// concurrent pool workers stop serializing on one cache-wide lock.  Each
/// shard runs its own LRU over its slice of the capacity — a hot shard can
/// evict while another is cold, which is the usual sharded-LRU
/// approximation of global recency and is invisible to correctness (only
/// to hit rate, marginally).
class ResultCache {
 public:
  static constexpr std::size_t kMaxShards = 8;

  /// `capacity` 0 disables caching entirely (every lookup is a miss and
  /// inserts are dropped), which keeps the service code branch-free.
  /// Otherwise min(kMaxShards, capacity) shards split the capacity, so
  /// tiny caches (capacity 1) keep exact LRU semantics in one shard.
  explicit ResultCache(std::size_t capacity);

  /// Returns the cached result and refreshes its recency, or nullptr.
  /// Every call is recorded as a hit or a miss.
  std::shared_ptr<const synth::SynthesisResult> lookup(CacheKey key);

  /// Inserts (or refreshes) an entry, evicting the shard's
  /// least-recently-used one when the shard is full.
  void insert(CacheKey key, std::shared_ptr<const synth::SynthesisResult> result);

  /// Sums counters over all shards (each shard locked in turn, so the
  /// totals are consistent-enough for metrics, not a point-in-time cut).
  CacheStats stats() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  using LruList = std::list<std::pair<CacheKey, std::shared_ptr<const synth::SynthesisResult>>>;

  struct Shard {
    std::size_t capacity = 0;
    mutable std::mutex mutex;
    LruList lru;  ///< front = most recently used
    std::unordered_map<CacheKey, LruList::iterator> index;
    long hits = 0;
    long misses = 0;
    long evictions = 0;
  };

  Shard& shard_for(CacheKey key) {
    // The key is already a 64-bit FNV hash; fold the high bits in so shard
    // choice is not just `key % n` over correlated low bits.
    const std::uint64_t spread = key ^ (key >> 32);
    return *shards_[static_cast<std::size_t>(spread) % shards_.size()];
  }

  const std::size_t capacity_;
  /// unique_ptr: Shard owns a mutex and must not move when the vector is
  /// built.  Empty when caching is disabled.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Lookups against a disabled cache still count as misses in the metrics.
  std::atomic<long> disabled_misses_{0};
};

}  // namespace fsyn::svc
