#include "svc/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "obs/prometheus.hpp"
#include "util/strings.hpp"

namespace fsyn::svc {

namespace {

// Mirrors ilp::BasisKind / ilp::PricingRule enumerator values without pulling
// the solver headers into the svc layer; -1 means "no solve recorded yet".
const char* basis_name(int basis) {
  switch (basis) {
    case 0:
      return "dense";
    case 1:
      return "sparse_lu";
    default:
      return "unknown";
  }
}

const char* pricing_name(int pricing) {
  switch (pricing) {
    case 0:
      return "dantzig";
    case 1:
      return "devex";
    default:
      return "unknown";
  }
}

}  // namespace

MetricsRegistry::MetricsRegistry() {
  // Seed the ring at construction: the very first scrape then has a
  // baseline at process start, so rates are nonzero as soon as any job has
  // been submitted.
  std::lock_guard<std::mutex> lock(rate_mutex_);
  push_sample_locked(std::chrono::steady_clock::now());
}

void MetricsRegistry::push_sample_locked(std::chrono::steady_clock::time_point now) const {
  RateSample sample;
  sample.at = now;
  sample.submitted = jobs_submitted_.load(std::memory_order_relaxed);
  sample.completed = jobs_completed_.load(std::memory_order_relaxed);
  rate_ring_[rate_next_] = sample;
  rate_next_ = (rate_next_ + 1) % kRateSamples;
  rate_count_ = std::min(rate_count_ + 1, kRateSamples);
}

void MetricsRegistry::sample_rates() const {
  std::lock_guard<std::mutex> lock(rate_mutex_);
  push_sample_locked(std::chrono::steady_clock::now());
}

void MetricsRegistry::fill_rates(MetricsSnapshot& s) const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(rate_mutex_);
  if (rate_count_ == 0) return;
  const RateSample* newest = nullptr;
  auto baseline = [&](double window_seconds) -> const RateSample* {
    // Oldest sample still inside the window; the newest sample otherwise
    // (sampling stalls when nothing scrapes — a recent-delta rate is still
    // the honest answer then).
    const RateSample* oldest_in_window = nullptr;
    for (std::size_t k = 0; k < rate_count_; ++k) {
      const RateSample& sample = rate_ring_[(rate_next_ + kRateSamples - 1 - k) % kRateSamples];
      const double age = std::chrono::duration<double>(now - sample.at).count();
      if (newest == nullptr) newest = &sample;
      if (age <= window_seconds) oldest_in_window = &sample;
    }
    return oldest_in_window ? oldest_in_window : newest;
  };
  auto rate = [&](const RateSample* base, long current, long base_value) {
    const double elapsed = std::chrono::duration<double>(now - base->at).count();
    if (elapsed < 1e-3) return 0.0;
    return static_cast<double>(current - base_value) / elapsed;
  };
  if (const RateSample* base = baseline(60.0)) {
    s.submitted_per_second_1m = rate(base, s.jobs_submitted, base->submitted);
    s.completed_per_second_1m = rate(base, s.jobs_completed, base->completed);
  }
  newest = nullptr;
  if (const RateSample* base = baseline(300.0)) {
    s.submitted_per_second_5m = rate(base, s.jobs_submitted, base->submitted);
    s.completed_per_second_5m = rate(base, s.jobs_completed, base->completed);
  }
  // Advance the ring on the scrape path itself; no background timer needed.
  const RateSample& last = rate_ring_[(rate_next_ + kRateSamples - 1) % kRateSamples];
  if (now - last.at >= kRateSampleInterval) push_sample_locked(now);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  s.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  s.jobs_cancelled = jobs_cancelled_.load(std::memory_order_relaxed);
  s.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  s.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  s.jobs_running = jobs_running_.load(std::memory_order_relaxed);
  s.mapper_invocations = mapper_invocations_.load(std::memory_order_relaxed);
  s.race_arms_started = race_arms_started_.load(std::memory_order_relaxed);
  s.race_arms_cancelled = race_arms_cancelled_.load(std::memory_order_relaxed);
  s.reliability_jobs = reliability_jobs_.load(std::memory_order_relaxed);
  s.fleet_jobs = fleet_jobs_.load(std::memory_order_relaxed);
  s.fleet_chips = fleet_chips_.load(std::memory_order_relaxed);
  s.fleet_assay_runs = fleet_assay_runs_.load(std::memory_order_relaxed);
  s.fleet_self_tests = fleet_self_tests_.load(std::memory_order_relaxed);
  s.fleet_faults_occurred = fleet_faults_occurred_.load(std::memory_order_relaxed);
  s.fleet_faults_detected = fleet_faults_detected_.load(std::memory_order_relaxed);
  s.fleet_faults_missed = fleet_faults_missed_.load(std::memory_order_relaxed);
  s.fleet_false_positives = fleet_false_positives_.load(std::memory_order_relaxed);
  s.fleet_repairs_attempted = fleet_repairs_attempted_.load(std::memory_order_relaxed);
  s.fleet_repairs_succeeded = fleet_repairs_succeeded_.load(std::memory_order_relaxed);
  s.fleet_chips_retired = fleet_chips_retired_.load(std::memory_order_relaxed);
  s.fleet_detection_latency_runs =
      fleet_detection_latency_runs_.load(std::memory_order_relaxed);
  s.fleet_runs_available = fleet_runs_available_.load(std::memory_order_relaxed);
  s.fleet_runs_possible = fleet_runs_possible_.load(std::memory_order_relaxed);
  s.queue_latency = queue_latency_.snapshot();
  s.synthesis_latency = synthesis_latency_.snapshot();
  s.total_latency = total_latency_.snapshot();
  s.reliability_latency = reliability_latency_.snapshot();
  s.fleet_latency = fleet_latency_.snapshot();
  s.queue_seconds = s.queue_latency.sum_seconds;
  s.synthesis_seconds = s.synthesis_latency.sum_seconds;
  s.total_seconds = s.total_latency.sum_seconds;
  s.solver_nodes = solver_nodes_.load(std::memory_order_relaxed);
  s.solver_lp_iterations = solver_lp_iterations_.load(std::memory_order_relaxed);
  s.solver_primal_pivots = solver_primal_pivots_.load(std::memory_order_relaxed);
  s.solver_dual_pivots = solver_dual_pivots_.load(std::memory_order_relaxed);
  s.solver_refactorizations = solver_refactorizations_.load(std::memory_order_relaxed);
  s.solver_warm_solves = solver_warm_solves_.load(std::memory_order_relaxed);
  s.solver_cold_solves = solver_cold_solves_.load(std::memory_order_relaxed);
  s.solver_lu_refactorizations = solver_lu_refactorizations_.load(std::memory_order_relaxed);
  s.solver_eta_pivots = solver_eta_pivots_.load(std::memory_order_relaxed);
  s.solver_eta_nnz = solver_eta_nnz_.load(std::memory_order_relaxed);
  s.solver_lu_fill_nnz = solver_lu_fill_nnz_.load(std::memory_order_relaxed);
  s.solver_lu_basis_nnz = solver_lu_basis_nnz_.load(std::memory_order_relaxed);
  s.solver_devex_resets = solver_devex_resets_.load(std::memory_order_relaxed);
  s.solver_gomory_cuts = solver_gomory_cuts_.load(std::memory_order_relaxed);
  s.solver_cover_cuts = solver_cover_cuts_.load(std::memory_order_relaxed);
  s.solver_cuts_applied = solver_cuts_applied_.load(std::memory_order_relaxed);
  s.solver_cuts_retained = solver_cuts_retained_.load(std::memory_order_relaxed);
  s.solver_cut_rounds = solver_cut_rounds_.load(std::memory_order_relaxed);
  s.solver_impact_branch_decisions =
      solver_impact_branch_decisions_.load(std::memory_order_relaxed);
  s.solver_pseudocost_branch_decisions =
      solver_pseudocost_branch_decisions_.load(std::memory_order_relaxed);
  s.solver_arena_bytes = solver_arena_bytes_.load(std::memory_order_relaxed);
  s.solver_basis = solver_basis_.load(std::memory_order_relaxed);
  s.solver_pricing = solver_pricing_.load(std::memory_order_relaxed);
  s.solver_threads = solver_threads_.load(std::memory_order_relaxed);
  s.solver_steals = solver_steals_.load(std::memory_order_relaxed);
  s.solver_idle_seconds =
      static_cast<double>(solver_idle_micros_.load(std::memory_order_relaxed)) * 1e-6;
  fill_rates(s);
  return s;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"jobs\": {\n"
     << "    \"submitted\": " << jobs_submitted << ",\n"
     << "    \"completed\": " << jobs_completed << ",\n"
     << "    \"cancelled\": " << jobs_cancelled << ",\n"
     << "    \"failed\": " << jobs_failed << ",\n"
     << "    \"rejected\": " << jobs_rejected << ",\n"
     << "    \"running\": " << jobs_running << "\n"
     << "  },\n"
     << "  \"mapper_invocations\": " << mapper_invocations << ",\n"
     << "  \"reliability_jobs\": " << reliability_jobs << ",\n"
     << "  \"fleet\": {\n"
     << "    \"jobs\": " << fleet_jobs << ",\n"
     << "    \"chips\": " << fleet_chips << ",\n"
     << "    \"assay_runs\": " << fleet_assay_runs << ",\n"
     << "    \"self_tests\": " << fleet_self_tests << ",\n"
     << "    \"faults_occurred\": " << fleet_faults_occurred << ",\n"
     << "    \"faults_detected\": " << fleet_faults_detected << ",\n"
     << "    \"faults_missed\": " << fleet_faults_missed << ",\n"
     << "    \"false_positives\": " << fleet_false_positives << ",\n"
     << "    \"repairs_attempted\": " << fleet_repairs_attempted << ",\n"
     << "    \"repairs_succeeded\": " << fleet_repairs_succeeded << ",\n"
     << "    \"chips_retired\": " << fleet_chips_retired << ",\n"
     << "    \"detection_latency_runs\": " << fleet_detection_latency_runs << ",\n"
     << "    \"mean_detection_latency_runs\": "
     << format_fixed(fleet_faults_detected > 0
                         ? static_cast<double>(fleet_detection_latency_runs) /
                               static_cast<double>(fleet_faults_detected)
                         : 0.0,
                     4)
     << ",\n"
     << "    \"runs_available\": " << fleet_runs_available << ",\n"
     << "    \"runs_possible\": " << fleet_runs_possible << ",\n"
     << "    \"availability\": "
     << format_fixed(fleet_runs_possible > 0
                         ? static_cast<double>(fleet_runs_available) /
                               static_cast<double>(fleet_runs_possible)
                         : 0.0,
                     6)
     << "\n"
     << "  },\n"
     << "  \"race\": {\n"
     << "    \"arms_started\": " << race_arms_started << ",\n"
     << "    \"arms_cancelled\": " << race_arms_cancelled << "\n"
     << "  },\n"
     << "  \"wall_clock_seconds\": {\n"
     << "    \"queue\": " << format_fixed(queue_seconds, 6) << ",\n"
     << "    \"synthesis\": " << format_fixed(synthesis_seconds, 6) << ",\n"
     << "    \"total\": " << format_fixed(total_seconds, 6) << "\n"
     << "  },\n"
     << "  \"latency_seconds\": {\n"
     << "    \"queue\": " << queue_latency.to_json() << ",\n"
     << "    \"synthesis\": " << synthesis_latency.to_json() << ",\n"
     << "    \"total\": " << total_latency.to_json() << ",\n"
     << "    \"reliability\": " << reliability_latency.to_json() << ",\n"
     << "    \"fleet\": " << fleet_latency.to_json() << "\n"
     << "  },\n"
     << "  \"solver\": {\n"
     << "    \"nodes\": " << solver_nodes << ",\n"
     << "    \"lp_iterations\": " << solver_lp_iterations << ",\n"
     << "    \"primal_pivots\": " << solver_primal_pivots << ",\n"
     << "    \"dual_pivots\": " << solver_dual_pivots << ",\n"
     << "    \"refactorizations\": " << solver_refactorizations << ",\n"
     << "    \"warm_solves\": " << solver_warm_solves << ",\n"
     << "    \"cold_solves\": " << solver_cold_solves << ",\n"
     << "    \"warm_start_hit_rate\": "
     << format_fixed(solver_warm_solves + solver_cold_solves > 0
                         ? static_cast<double>(solver_warm_solves) /
                               static_cast<double>(solver_warm_solves + solver_cold_solves)
                         : 0.0,
                     4)
     << ",\n"
     << "    \"lu_refactorizations\": " << solver_lu_refactorizations << ",\n"
     << "    \"eta_pivots\": " << solver_eta_pivots << ",\n"
     << "    \"eta_nnz\": " << solver_eta_nnz << ",\n"
     << "    \"fill_in_ratio\": "
     << format_fixed(solver_lu_basis_nnz > 0
                         ? static_cast<double>(solver_lu_fill_nnz) /
                               static_cast<double>(solver_lu_basis_nnz)
                         : 0.0,
                     4)
     << ",\n"
     << "    \"devex_resets\": " << solver_devex_resets << ",\n"
     << "    \"gomory_cuts\": " << solver_gomory_cuts << ",\n"
     << "    \"cover_cuts\": " << solver_cover_cuts << ",\n"
     << "    \"cuts_applied\": " << solver_cuts_applied << ",\n"
     << "    \"cuts_retained\": " << solver_cuts_retained << ",\n"
     << "    \"cut_rounds\": " << solver_cut_rounds << ",\n"
     << "    \"impact_branch_decisions\": " << solver_impact_branch_decisions << ",\n"
     << "    \"pseudocost_branch_decisions\": " << solver_pseudocost_branch_decisions << ",\n"
     << "    \"arena_bytes\": " << solver_arena_bytes << ",\n"
     << "    \"basis\": \"" << basis_name(solver_basis) << "\",\n"
     << "    \"pricing\": \"" << pricing_name(solver_pricing) << "\",\n"
     << "    \"threads\": " << solver_threads << ",\n"
     << "    \"steals\": " << solver_steals << ",\n"
     << "    \"idle_seconds\": " << format_fixed(solver_idle_seconds, 6) << "\n"
     << "  },\n"
     << "  \"cache\": {\n"
     << "    \"hits\": " << cache.hits << ",\n"
     << "    \"misses\": " << cache.misses << ",\n"
     << "    \"evictions\": " << cache.evictions << ",\n"
     << "    \"entries\": " << cache.entries << ",\n"
     << "    \"capacity\": " << cache.capacity << "\n"
     << "  },\n"
     << "  \"pool\": {\n"
     << "    \"workers\": " << workers << ",\n"
     << "    \"max_queue_depth\": " << max_queue_depth << "\n"
     << "  },\n"
     << "  \"rates\": {\n"
     << "    \"submitted_per_second_1m\": " << format_fixed(submitted_per_second_1m, 6) << ",\n"
     << "    \"submitted_per_second_5m\": " << format_fixed(submitted_per_second_5m, 6) << ",\n"
     << "    \"completed_per_second_1m\": " << format_fixed(completed_per_second_1m, 6) << ",\n"
     << "    \"completed_per_second_5m\": " << format_fixed(completed_per_second_5m, 6) << "\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  obs::PrometheusWriter w;

  w.family("flowsynth_jobs_total", "Jobs by terminal disposition (running excluded).",
           "counter");
  w.sample("flowsynth_jobs_total", "state=\"submitted\"", static_cast<double>(jobs_submitted));
  w.sample("flowsynth_jobs_total", "state=\"completed\"", static_cast<double>(jobs_completed));
  w.sample("flowsynth_jobs_total", "state=\"cancelled\"", static_cast<double>(jobs_cancelled));
  w.sample("flowsynth_jobs_total", "state=\"failed\"", static_cast<double>(jobs_failed));
  w.sample("flowsynth_jobs_total", "state=\"rejected\"", static_cast<double>(jobs_rejected));

  w.family("flowsynth_jobs_running", "Jobs currently executing.", "gauge");
  w.sample("flowsynth_jobs_running", "", static_cast<double>(jobs_running));

  w.family("flowsynth_job_rate_per_second",
           "Jobs per second over the trailing window (interval-sample ring).", "gauge");
  w.sample("flowsynth_job_rate_per_second", "kind=\"submitted\",window=\"1m\"",
           submitted_per_second_1m);
  w.sample("flowsynth_job_rate_per_second", "kind=\"submitted\",window=\"5m\"",
           submitted_per_second_5m);
  w.sample("flowsynth_job_rate_per_second", "kind=\"completed\",window=\"1m\"",
           completed_per_second_1m);
  w.sample("flowsynth_job_rate_per_second", "kind=\"completed\",window=\"5m\"",
           completed_per_second_5m);

  w.family("flowsynth_mapper_invocations_total", "synthesize() calls executed.", "counter");
  w.sample("flowsynth_mapper_invocations_total", "", static_cast<double>(mapper_invocations));
  w.family("flowsynth_reliability_jobs_total", "Jobs that ran the reliability engine.",
           "counter");
  w.sample("flowsynth_reliability_jobs_total", "", static_cast<double>(reliability_jobs));

  w.family("flowsynth_fleet_jobs_total", "Jobs that ran the closed-loop fleet simulator.",
           "counter");
  w.sample("flowsynth_fleet_jobs_total", "", static_cast<double>(fleet_jobs));
  w.family("flowsynth_fleet_chips_total", "Virtual chips simulated across fleet jobs.",
           "counter");
  w.sample("flowsynth_fleet_chips_total", "", static_cast<double>(fleet_chips));
  w.family("flowsynth_fleet_assay_runs_total", "Assay runs executed across the fleet.",
           "counter");
  w.sample("flowsynth_fleet_assay_runs_total", "", static_cast<double>(fleet_assay_runs));
  w.family("flowsynth_fleet_self_tests_total", "Valve-array self-test schedules executed.",
           "counter");
  w.sample("flowsynth_fleet_self_tests_total", "", static_cast<double>(fleet_self_tests));
  w.family("flowsynth_fleet_faults_total", "Fleet fault lifecycle events.", "counter");
  w.sample("flowsynth_fleet_faults_total", "event=\"occurred\"",
           static_cast<double>(fleet_faults_occurred));
  w.sample("flowsynth_fleet_faults_total", "event=\"detected\"",
           static_cast<double>(fleet_faults_detected));
  w.sample("flowsynth_fleet_faults_total", "event=\"missed\"",
           static_cast<double>(fleet_faults_missed));
  w.sample("flowsynth_fleet_faults_total", "event=\"false_positive\"",
           static_cast<double>(fleet_false_positives));
  w.family("flowsynth_fleet_repairs_total", "Degraded re-synthesis repairs by outcome.",
           "counter");
  w.sample("flowsynth_fleet_repairs_total", "outcome=\"attempted\"",
           static_cast<double>(fleet_repairs_attempted));
  w.sample("flowsynth_fleet_repairs_total", "outcome=\"succeeded\"",
           static_cast<double>(fleet_repairs_succeeded));
  w.family("flowsynth_fleet_chips_retired_total",
           "Chips retired (repair infeasible or repair budget exhausted).", "counter");
  w.sample("flowsynth_fleet_chips_retired_total", "",
           static_cast<double>(fleet_chips_retired));
  w.family("flowsynth_fleet_detection_latency_runs_total",
           "Assay runs between fault onset and diagnosis, summed over detected faults.",
           "counter");
  w.sample("flowsynth_fleet_detection_latency_runs_total", "",
           static_cast<double>(fleet_detection_latency_runs));
  w.family("flowsynth_fleet_availability",
           "Fraction of chip-runs in service with no active fault.", "gauge");
  w.sample("flowsynth_fleet_availability", "",
           fleet_runs_possible > 0 ? static_cast<double>(fleet_runs_available) /
                                         static_cast<double>(fleet_runs_possible)
                                   : 0.0);

  w.family("flowsynth_race_arms_total", "Synthesis race arms by event.", "counter");
  w.sample("flowsynth_race_arms_total", "event=\"started\"",
           static_cast<double>(race_arms_started));
  w.sample("flowsynth_race_arms_total", "event=\"cancelled\"",
           static_cast<double>(race_arms_cancelled));

  w.family("flowsynth_job_latency_seconds", "Per-stage job latency distribution.",
           "histogram");
  w.histogram("flowsynth_job_latency_seconds", "stage=\"queue\"", queue_latency);
  w.histogram("flowsynth_job_latency_seconds", "stage=\"synthesis\"", synthesis_latency);
  w.histogram("flowsynth_job_latency_seconds", "stage=\"total\"", total_latency);
  w.histogram("flowsynth_job_latency_seconds", "stage=\"reliability\"", reliability_latency);
  w.histogram("flowsynth_job_latency_seconds", "stage=\"fleet\"", fleet_latency);

  w.family("flowsynth_solver_nodes_total", "Branch-and-bound nodes explored.", "counter");
  w.sample("flowsynth_solver_nodes_total", "", static_cast<double>(solver_nodes));
  w.family("flowsynth_solver_lp_iterations_total", "Simplex iterations.", "counter");
  w.sample("flowsynth_solver_lp_iterations_total", "",
           static_cast<double>(solver_lp_iterations));
  w.family("flowsynth_solver_pivots_total", "Simplex pivots by phase.", "counter");
  w.sample("flowsynth_solver_pivots_total", "phase=\"primal\"",
           static_cast<double>(solver_primal_pivots));
  w.sample("flowsynth_solver_pivots_total", "phase=\"dual\"",
           static_cast<double>(solver_dual_pivots));
  w.family("flowsynth_solver_solves_total", "LP solves by warm-start outcome.", "counter");
  w.sample("flowsynth_solver_solves_total", "start=\"warm\"",
           static_cast<double>(solver_warm_solves));
  w.sample("flowsynth_solver_solves_total", "start=\"cold\"",
           static_cast<double>(solver_cold_solves));
  w.family("flowsynth_solver_threads", "Widest parallel MILP solve seen.", "gauge");
  w.sample("flowsynth_solver_threads", "", static_cast<double>(solver_threads));
  w.family("flowsynth_solver_steals_total", "Work-stealing events across MILP solves.",
           "counter");
  w.sample("flowsynth_solver_steals_total", "", static_cast<double>(solver_steals));

  w.family("flowsynth_cache_events_total", "Result-cache lookups and evictions.", "counter");
  w.sample("flowsynth_cache_events_total", "event=\"hit\"", static_cast<double>(cache.hits));
  w.sample("flowsynth_cache_events_total", "event=\"miss\"",
           static_cast<double>(cache.misses));
  w.sample("flowsynth_cache_events_total", "event=\"eviction\"",
           static_cast<double>(cache.evictions));
  w.family("flowsynth_cache_entries", "Result-cache current entry count.", "gauge");
  w.sample("flowsynth_cache_entries", "", static_cast<double>(cache.entries));
  w.family("flowsynth_cache_capacity", "Result-cache capacity.", "gauge");
  w.sample("flowsynth_cache_capacity", "", static_cast<double>(cache.capacity));

  w.family("flowsynth_pool_workers", "Batch-service worker threads.", "gauge");
  w.sample("flowsynth_pool_workers", "", static_cast<double>(workers));
  w.family("flowsynth_queue_depth_limit", "Configured admission queue bound.", "gauge");
  w.sample("flowsynth_queue_depth_limit", "", static_cast<double>(max_queue_depth));

  return w.take();
}

}  // namespace fsyn::svc
