#include "svc/metrics.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace fsyn::svc {

namespace {

// Mirrors ilp::BasisKind / ilp::PricingRule enumerator values without pulling
// the solver headers into the svc layer; -1 means "no solve recorded yet".
const char* basis_name(int basis) {
  switch (basis) {
    case 0:
      return "dense";
    case 1:
      return "sparse_lu";
    default:
      return "unknown";
  }
}

const char* pricing_name(int pricing) {
  switch (pricing) {
    case 0:
      return "dantzig";
    case 1:
      return "devex";
    default:
      return "unknown";
  }
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  s.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  s.jobs_cancelled = jobs_cancelled_.load(std::memory_order_relaxed);
  s.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  s.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  s.jobs_running = jobs_running_.load(std::memory_order_relaxed);
  s.mapper_invocations = mapper_invocations_.load(std::memory_order_relaxed);
  s.race_arms_started = race_arms_started_.load(std::memory_order_relaxed);
  s.race_arms_cancelled = race_arms_cancelled_.load(std::memory_order_relaxed);
  s.reliability_jobs = reliability_jobs_.load(std::memory_order_relaxed);
  s.queue_latency = queue_latency_.snapshot();
  s.synthesis_latency = synthesis_latency_.snapshot();
  s.total_latency = total_latency_.snapshot();
  s.reliability_latency = reliability_latency_.snapshot();
  s.queue_seconds = s.queue_latency.sum_seconds;
  s.synthesis_seconds = s.synthesis_latency.sum_seconds;
  s.total_seconds = s.total_latency.sum_seconds;
  s.solver_nodes = solver_nodes_.load(std::memory_order_relaxed);
  s.solver_lp_iterations = solver_lp_iterations_.load(std::memory_order_relaxed);
  s.solver_primal_pivots = solver_primal_pivots_.load(std::memory_order_relaxed);
  s.solver_dual_pivots = solver_dual_pivots_.load(std::memory_order_relaxed);
  s.solver_refactorizations = solver_refactorizations_.load(std::memory_order_relaxed);
  s.solver_warm_solves = solver_warm_solves_.load(std::memory_order_relaxed);
  s.solver_cold_solves = solver_cold_solves_.load(std::memory_order_relaxed);
  s.solver_lu_refactorizations = solver_lu_refactorizations_.load(std::memory_order_relaxed);
  s.solver_eta_pivots = solver_eta_pivots_.load(std::memory_order_relaxed);
  s.solver_eta_nnz = solver_eta_nnz_.load(std::memory_order_relaxed);
  s.solver_lu_fill_nnz = solver_lu_fill_nnz_.load(std::memory_order_relaxed);
  s.solver_lu_basis_nnz = solver_lu_basis_nnz_.load(std::memory_order_relaxed);
  s.solver_devex_resets = solver_devex_resets_.load(std::memory_order_relaxed);
  s.solver_basis = solver_basis_.load(std::memory_order_relaxed);
  s.solver_pricing = solver_pricing_.load(std::memory_order_relaxed);
  s.solver_threads = solver_threads_.load(std::memory_order_relaxed);
  s.solver_steals = solver_steals_.load(std::memory_order_relaxed);
  s.solver_idle_seconds =
      static_cast<double>(solver_idle_micros_.load(std::memory_order_relaxed)) * 1e-6;
  return s;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"jobs\": {\n"
     << "    \"submitted\": " << jobs_submitted << ",\n"
     << "    \"completed\": " << jobs_completed << ",\n"
     << "    \"cancelled\": " << jobs_cancelled << ",\n"
     << "    \"failed\": " << jobs_failed << ",\n"
     << "    \"rejected\": " << jobs_rejected << ",\n"
     << "    \"running\": " << jobs_running << "\n"
     << "  },\n"
     << "  \"mapper_invocations\": " << mapper_invocations << ",\n"
     << "  \"reliability_jobs\": " << reliability_jobs << ",\n"
     << "  \"race\": {\n"
     << "    \"arms_started\": " << race_arms_started << ",\n"
     << "    \"arms_cancelled\": " << race_arms_cancelled << "\n"
     << "  },\n"
     << "  \"wall_clock_seconds\": {\n"
     << "    \"queue\": " << format_fixed(queue_seconds, 6) << ",\n"
     << "    \"synthesis\": " << format_fixed(synthesis_seconds, 6) << ",\n"
     << "    \"total\": " << format_fixed(total_seconds, 6) << "\n"
     << "  },\n"
     << "  \"latency_seconds\": {\n"
     << "    \"queue\": " << queue_latency.to_json() << ",\n"
     << "    \"synthesis\": " << synthesis_latency.to_json() << ",\n"
     << "    \"total\": " << total_latency.to_json() << ",\n"
     << "    \"reliability\": " << reliability_latency.to_json() << "\n"
     << "  },\n"
     << "  \"solver\": {\n"
     << "    \"nodes\": " << solver_nodes << ",\n"
     << "    \"lp_iterations\": " << solver_lp_iterations << ",\n"
     << "    \"primal_pivots\": " << solver_primal_pivots << ",\n"
     << "    \"dual_pivots\": " << solver_dual_pivots << ",\n"
     << "    \"refactorizations\": " << solver_refactorizations << ",\n"
     << "    \"warm_solves\": " << solver_warm_solves << ",\n"
     << "    \"cold_solves\": " << solver_cold_solves << ",\n"
     << "    \"warm_start_hit_rate\": "
     << format_fixed(solver_warm_solves + solver_cold_solves > 0
                         ? static_cast<double>(solver_warm_solves) /
                               static_cast<double>(solver_warm_solves + solver_cold_solves)
                         : 0.0,
                     4)
     << ",\n"
     << "    \"lu_refactorizations\": " << solver_lu_refactorizations << ",\n"
     << "    \"eta_pivots\": " << solver_eta_pivots << ",\n"
     << "    \"eta_nnz\": " << solver_eta_nnz << ",\n"
     << "    \"fill_in_ratio\": "
     << format_fixed(solver_lu_basis_nnz > 0
                         ? static_cast<double>(solver_lu_fill_nnz) /
                               static_cast<double>(solver_lu_basis_nnz)
                         : 0.0,
                     4)
     << ",\n"
     << "    \"devex_resets\": " << solver_devex_resets << ",\n"
     << "    \"basis\": \"" << basis_name(solver_basis) << "\",\n"
     << "    \"pricing\": \"" << pricing_name(solver_pricing) << "\",\n"
     << "    \"threads\": " << solver_threads << ",\n"
     << "    \"steals\": " << solver_steals << ",\n"
     << "    \"idle_seconds\": " << format_fixed(solver_idle_seconds, 6) << "\n"
     << "  },\n"
     << "  \"cache\": {\n"
     << "    \"hits\": " << cache.hits << ",\n"
     << "    \"misses\": " << cache.misses << ",\n"
     << "    \"evictions\": " << cache.evictions << ",\n"
     << "    \"entries\": " << cache.entries << ",\n"
     << "    \"capacity\": " << cache.capacity << "\n"
     << "  },\n"
     << "  \"pool\": {\n"
     << "    \"workers\": " << workers << ",\n"
     << "    \"max_queue_depth\": " << max_queue_depth << "\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

}  // namespace fsyn::svc
