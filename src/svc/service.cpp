#include "svc/service.hpp"

#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sched/list_scheduler.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

int default_workers(int configured) {
  if (configured > 0) return configured;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRejected: return "rejected";
  }
  return "?";
}

const char* to_string(JobPriority priority) {
  switch (priority) {
    case JobPriority::kInteractive: return "interactive";
    case JobPriority::kBatch: return "batch";
    case JobPriority::kBackground: return "background";
  }
  return "?";
}

BatchService::BatchService(Config config)
    : config_(config), cache_(config.cache_capacity),
      pool_(default_workers(config.workers), config.queue_capacity, config.overflow) {}

std::future<JobResult> BatchService::submit(JobSpec spec) {
  metrics_.job_submitted();
  if (spec.id == 0) spec.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);

  Pending pending;
  pending.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  pending.enqueued = Clock::now();
  // The shared_ptr keeps the spec alive inside the queue; jobs can be
  // large (a whole sequencing graph), so they are moved, never copied.
  pending.spec = std::make_shared<JobSpec>(std::move(spec));
  pending.promise = std::make_shared<std::promise<JobResult>>();
  std::future<JobResult> future = pending.promise->get_future();

  const std::uint64_t id = pending.spec->id;
  const std::uint64_t seq = pending.seq;
  const JobObserver observer = pending.spec->on_phase;
  const auto klass = static_cast<std::size_t>(pending.spec->priority);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_[klass].push_back(std::move(pending));
  }
  // The ticket is anonymous: whichever worker runs it picks the most
  // urgent pending job, which is what turns the pool's FIFO into a
  // priority queue without touching the pool itself.
  const bool accepted = pool_.submit([this] { run_next_pending(); });
  if (accepted) {
    if (observer) observer(id, JobPhase::kQueued, nullptr, nullptr);
    return future;
  }

  // The ticket was rejected, so one pending entry has no ticket.  Prefer
  // evicting the entry just pushed; when an already-issued ticket consumed
  // it in the meantime, evict the newest entry of the least urgent class
  // instead (counts stay consistent: #tickets == #pending afterwards).
  Pending victim;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    auto& own = pending_[klass];
    for (auto it = own.begin(); it != own.end(); ++it) {
      if (it->seq == seq) {
        victim = std::move(*it);
        own.erase(it);
        found = true;
        break;
      }
    }
    for (std::size_t c = pending_.size(); !found && c-- > 0;) {
      if (!pending_[c].empty()) {
        victim = std::move(pending_[c].back());
        pending_[c].pop_back();
        found = true;
      }
    }
  }
  require(found, "rejected submit with no pending entry to evict");
  metrics_.job_rejected();
  JobResult rejected;
  rejected.status = JobStatus::kRejected;
  rejected.job_id = victim.spec->id;
  rejected.error = "job queue full (reject policy) or service shutting down";
  if (victim.spec->on_phase) {
    victim.spec->on_phase(victim.spec->id, JobPhase::kFinished, nullptr, &rejected);
  }
  victim.promise->set_value(std::move(rejected));
  return future;
}

void BatchService::run_next_pending() {
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& klass : pending_) {
      if (!klass.empty()) {
        pending = std::move(klass.front());
        klass.pop_front();
        break;
      }
    }
  }
  require(pending.spec != nullptr, "pool ticket without a pending job");
  pending.promise->set_value(run_job(*pending.spec, pending.enqueued));
}

MetricsSnapshot BatchService::metrics() const {
  MetricsSnapshot snapshot = metrics_.snapshot();
  snapshot.cache = cache_.stats();
  snapshot.workers = pool_.worker_count();
  snapshot.max_queue_depth = pool_.max_queue_depth();
  return snapshot;
}

JobResult BatchService::run_job(JobSpec& spec, Clock::time_point enqueued) {
  metrics_.job_started();
  const Clock::time_point started = Clock::now();

  const auto notify = [&spec](JobPhase phase, const char* stage, const JobResult* result) {
    if (spec.on_phase) spec.on_phase(spec.id, phase, stage, result);
  };
  notify(JobPhase::kStarted, nullptr, nullptr);

  JobResult out;
  out.job_id = spec.id;
  out.queue_seconds = seconds_between(enqueued, started);
  metrics_.add_queue_time(started - enqueued);

  // Adopt the request's trace context for the duration of the job: every
  // span below (schedule, race, reliability, solver internals) inherits the
  // trace id; the scope also clears any context a previous job left on this
  // pooled worker thread.
  obs::TraceContextScope trace_scope(spec.trace);
  obs::Span job_span("svc", "job " + spec.name);
  if (job_span.active()) {
    // The wait predates this worker picking the job up, so it cannot be an
    // RAII span; reconstruct it as an explicit complete event ending now.
    obs::Tracer& tracer = obs::Tracer::instance();
    const auto wait_us =
        std::chrono::duration_cast<std::chrono::microseconds>(started - enqueued).count();
    tracer.complete("svc", "queued " + spec.name, tracer.now_us() - wait_us, wait_us);
  }
  const auto close_job_span = [&] {
    if (!job_span.active()) return;
    job_span.arg("status", to_string(out.status));
    job_span.arg("cache_hit", out.cache_hit);
    if (!out.winner.empty()) job_span.arg("winner", out.winner);
  };

  try {
    if (spec.kind == JobKind::kFleet) {
      // Fleet jobs bypass scheduling, the cache and the mappers entirely:
      // the runner owns the whole closed loop (simulation + its own private
      // repair service) and reports back a document plus fold-in counters.
      require(spec.fleet_runner != nullptr, "kFleet job without a fleet_runner");
      metrics_.fleet_job();
      notify(JobPhase::kStage, "fleet", nullptr);
      CancelSource job_source(spec.options.cancel);
      if (spec.deadline.has_value()) {
        job_source.set_deadline_after(*spec.deadline);
      }
      obs::Span fleet_span("svc", "fleet " + spec.name);
      MetricsRegistry::FleetStats stats;
      const Clock::time_point fleet_started = Clock::now();
      std::string document = spec.fleet_runner(job_source.token(), &stats);
      metrics_.add_fleet_time(Clock::now() - fleet_started);
      metrics_.record_fleet(stats);
      if (fleet_span.active()) {
        fleet_span.arg("chips", stats.chips);
        fleet_span.arg("faults_detected", stats.faults_detected);
        fleet_span.arg("repairs_succeeded", stats.repairs_succeeded);
      }
      out.document = std::make_shared<const std::string>(std::move(document));
      out.winner = "fleet";
      out.status = JobStatus::kDone;
      metrics_.job_completed();
      const Clock::time_point finished = Clock::now();
      out.run_seconds = seconds_between(started, finished);
      metrics_.add_total_time(finished - enqueued);
      close_job_span();
      notify(JobPhase::kFinished, nullptr, &out);
      return out;
    }

    // Scheduling is deterministic and cheap; it runs inside the worker so
    // the submitter never blocks on assay-sized work.
    notify(JobPhase::kStage, "schedule", nullptr);
    const sched::Schedule schedule = [&] {
      obs::Span span("svc", "schedule");
      return spec.asap ? sched::schedule_asap(spec.graph)
                       : sched::schedule_with_policy(
                             spec.graph,
                             sched::make_policy(spec.graph, spec.policy_increments));
    }();

    const CacheKey key = canonical_key(spec.graph, schedule, spec.options);
    std::shared_ptr<const synth::SynthesisResult> cached = cache_.lookup(key);
    if (cached && spec.kind == JobKind::kSynthesis) {
      out.status = JobStatus::kDone;
      out.result = std::move(cached);
      out.cache_hit = true;
      out.winner = "cache";
      metrics_.job_completed();
      const Clock::time_point finished = Clock::now();
      out.run_seconds = seconds_between(started, finished);
      metrics_.add_total_time(finished - enqueued);
      close_job_span();
      notify(JobPhase::kStage, "cache", nullptr);
      notify(JobPhase::kFinished, nullptr, &out);
      return out;
    }

    // Arm the job-level token: deadline plus (chained) any caller token.
    CancelSource job_source(spec.options.cancel);
    if (spec.deadline.has_value()) {
      job_source.set_deadline_after(*spec.deadline);
    }
    const CancelToken job_token = job_source.token();
    spec.options.cancel = job_token;

    // Parallel MILP solves borrow their helper workers from this very pool
    // (non-blocking submit; the job's own thread always participates as
    // worker 0), so batch concurrency and in-solve parallelism share one
    // worker budget instead of oversubscribing the machine.
    if (spec.options.ilp.threads > 1 && !spec.options.ilp.deterministic) {
      spec.options.ilp.pool = &pool_;
    }

    // The healthy mapping: cached if available (reliability jobs reach here
    // with a hit — their analysis is never cached, but the synthesis is),
    // freshly solved otherwise.
    if (cached) {
      out.result = std::move(cached);
      out.cache_hit = true;
      out.winner = "cache";
      notify(JobPhase::kStage, "cache", nullptr);
    } else {
      notify(JobPhase::kStage, "synthesize", nullptr);
      const Clock::time_point synth_started = Clock::now();
      synth::SynthesisResult result;
      if (config_.portfolio.enabled && spec.options.mapper == synth::MapperKind::kHeuristic) {
        result = race(spec, schedule, job_token, &out.winner);
      } else {
        metrics_.mapper_invoked();
        result = synth::synthesize(spec.graph, schedule, spec.options);
        out.winner = "single";
      }
      metrics_.add_synthesis_time(Clock::now() - synth_started);
      // MILP solver counters of the (winning) synthesis; zeros for heuristic
      // runs, so the aggregate reflects ILP work only.
      MetricsRegistry::SolverCounters counters;
      counters.nodes = result.milp_nodes;
      counters.lp_iterations = static_cast<long>(result.milp_lp_iterations);
      counters.primal_pivots = static_cast<long>(result.milp_lp.primal_pivots);
      counters.dual_pivots = static_cast<long>(result.milp_lp.dual_pivots);
      counters.refactorizations = static_cast<long>(result.milp_lp.refactorizations);
      counters.warm_solves = static_cast<long>(result.milp_lp.warm_solves);
      counters.cold_solves = static_cast<long>(result.milp_lp.cold_solves);
      counters.lu_refactorizations = static_cast<long>(result.milp_lp.lu_refactorizations);
      counters.eta_pivots = static_cast<long>(result.milp_lp.eta_pivots);
      counters.eta_nnz = static_cast<long>(result.milp_lp.eta_nnz);
      counters.lu_fill_nnz = static_cast<long>(result.milp_lp.lu_fill_nnz);
      counters.lu_basis_nnz = static_cast<long>(result.milp_lp.lu_basis_nnz);
      counters.devex_resets = static_cast<long>(result.milp_lp.devex_resets);
      counters.gomory_cuts = static_cast<long>(result.milp_cuts.gomory_generated);
      counters.cover_cuts = static_cast<long>(result.milp_cuts.cover_generated);
      counters.cuts_applied = static_cast<long>(result.milp_cuts.applied);
      counters.cuts_retained = static_cast<long>(result.milp_cuts.retained);
      counters.cut_rounds = static_cast<long>(result.milp_cuts.rounds);
      counters.impact_branch_decisions =
          static_cast<long>(result.milp_impact_branch_decisions);
      counters.pseudocost_branch_decisions =
          static_cast<long>(result.milp_pseudocost_branch_decisions);
      counters.arena_bytes = static_cast<long>(result.milp_arena_bytes);
      if (result.milp_nodes > 0) {
        counters.basis = static_cast<int>(result.milp_basis);
        counters.pricing = static_cast<int>(result.milp_pricing);
      }
      metrics_.record_solver(counters);
      metrics_.record_solver_parallel(result.milp_threads, result.milp_steals,
                                      result.milp_idle_seconds);
      out.result = std::make_shared<const synth::SynthesisResult>(std::move(result));
      cache_.insert(key, out.result);
    }

    if (spec.kind == JobKind::kReliability) {
      metrics_.reliability_job();
      notify(JobPhase::kStage, "reliability", nullptr);
      obs::Span rel_span("svc", "reliability " + spec.name);
      rel::ReliabilityOptions ropts = spec.reliability;
      ropts.synthesis = spec.options;  // same mapper/limits for repair rounds
      ropts.policy_increments = spec.policy_increments;
      ropts.asap = spec.asap;
      // Trial blocks must not land back on the service pool (this worker
      // would wait on tasks queued behind itself — the race() deadlock);
      // the estimator's self-managed threads are still allowed.
      ropts.monte_carlo.pool = nullptr;
      ropts.monte_carlo.cancel = job_token;
      const Clock::time_point rel_started = Clock::now();
      out.report = std::make_shared<const rel::ReliabilityReport>(
          rel::analyze(spec.graph, schedule, *out.result, ropts));
      metrics_.add_reliability_time(Clock::now() - rel_started);
      if (rel_span.active()) {
        rel_span.arg("mttf_runs", out.report->healthy.mttf_runs);
        rel_span.arg("rounds", out.report->rounds.size());
      }
    }

    out.status = JobStatus::kDone;
    metrics_.job_completed();
  } catch (const CancelledError& e) {
    out.status = JobStatus::kCancelled;
    out.error = e.what();
    metrics_.job_cancelled();
  } catch (const std::exception& e) {
    out.status = JobStatus::kFailed;
    out.error = e.what();
    metrics_.job_failed();
  }

  const Clock::time_point finished = Clock::now();
  out.run_seconds = seconds_between(started, finished);
  metrics_.add_total_time(finished - enqueued);
  close_job_span();
  notify(JobPhase::kFinished, nullptr, &out);
  return out;
}

synth::SynthesisResult BatchService::race(const JobSpec& spec,
                                          const sched::Schedule& schedule,
                                          const CancelToken& job_token, std::string* winner) {
  struct Arm {
    std::string name;
    synth::SynthesisOptions options;
    CancelSource source;
  };

  // Build the arm lineup: several heuristic seeds, plus the exact ILP on
  // instances small enough for it to be competitive.
  std::vector<Arm> arms;
  const PortfolioOptions& portfolio = config_.portfolio;
  for (int k = 0; k < std::max(1, portfolio.heuristic_arms); ++k) {
    Arm arm{"", spec.options, CancelSource(job_token)};
    arm.options.mapper = synth::MapperKind::kHeuristic;
    arm.options.heuristic.seed =
        spec.options.heuristic.seed + static_cast<std::uint64_t>(k) * portfolio.seed_stride;
    arm.name = "heuristic[" + std::to_string(arm.options.heuristic.seed) + "]";
    arms.push_back(std::move(arm));
  }
  if (spec.graph.mixing_count() <= portfolio.ilp_max_mixing_ops) {
    Arm arm{"ilp", spec.options, CancelSource(job_token)};
    arm.options.mapper = synth::MapperKind::kIlp;
    arms.push_back(std::move(arm));
  }

  obs::Span race_span("svc", "race");
  if (race_span.active()) race_span.arg("arms", arms.size());

  std::mutex mutex;
  std::optional<synth::SynthesisResult> best;
  std::string best_name;
  std::string first_error;

  // Arms run on dedicated threads, not on the service pool: a pooled job
  // waiting for pooled arms would deadlock once jobs outnumber workers.
  std::vector<std::thread> threads;
  threads.reserve(arms.size());
  for (Arm& arm : arms) {
    arm.options.cancel = arm.source.token();
    // The mapper tokens must chain to the *arm* token (synthesize would
    // only fill inert ones, and ours were propagated from the job spec).
    arm.options.heuristic.cancel = arm.options.cancel;
    arm.options.ilp.cancel = arm.options.cancel;
    metrics_.race_arm_started();
    // `trace` is read here, after race_span began, so arms parent to the
    // race span and carry the job's trace id onto their own threads.
    threads.emplace_back([this, &spec, &schedule, &arm, &arms, &mutex, &best, &best_name,
                          &first_error, trace = obs::current_trace()] {
      obs::TraceContextScope trace_scope(trace);
      // Arm threads are fresh per race, so only name them while tracing:
      // naming registers a per-thread trace buffer, and an idle service
      // should not grow the registry per job.
      if (obs::tracing_enabled()) {
        obs::Tracer::instance().set_thread_name("race " + spec.name + " " + arm.name);
      }
      obs::Span arm_span("svc", "arm " + arm.name);
      try {
        metrics_.mapper_invoked();
        synth::SynthesisResult result = synth::synthesize(spec.graph, schedule, arm.options);
        bool won = false;
        {
          std::lock_guard<std::mutex> lock(mutex);
          // First acceptable (= feasible) result wins the race.
          if (!best.has_value()) {
            best = std::move(result);
            best_name = arm.name;
            won = true;
          }
        }
        if (arm_span.active()) arm_span.arg("won", won);
        if (won) {
          for (Arm& other : arms) {
            if (&other != &arm) {
              other.source.cancel();
              metrics_.race_arm_cancelled();
            }
          }
        }
      } catch (const CancelledError&) {
        // Lost the race (or the job deadline fired); nothing to record.
        if (arm_span.active()) arm_span.arg("cancelled", true);
      } catch (const std::exception& e) {
        if (arm_span.active()) arm_span.arg("failed", true);
        std::lock_guard<std::mutex> lock(mutex);
        if (first_error.empty()) first_error = e.what();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  if (best.has_value()) {
    *winner = best_name;
    if (race_span.active()) race_span.arg("winner", best_name);
    log_info("svc: race won by ", best_name, " (", arms.size(), " arms)");
    return *std::move(best);
  }
  job_token.check("portfolio race");  // job-level cancellation/deadline
  throw Error(first_error.empty() ? "portfolio race produced no feasible result"
                                  : first_error);
}

}  // namespace fsyn::svc
