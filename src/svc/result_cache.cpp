#include "svc/result_cache.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace fsyn::svc {

namespace {

/// Hash over typed fields.  Field order defines the canonical serialization;
/// a sentinel is mixed between variable-length sections so e.g. {1,2},{3}
/// and {1},{2,3} hash differently.
///
/// Fields are buffered as 64-bit words and hashed in one batched pass in
/// `value()` — the old implementation folded every word into FNV-1a one
/// *byte* at a time (8 dependent multiplies per field), which showed up in
/// service profiles once admission control started hashing every request.
class Hasher {
 public:
  /// Integral fields (bools, ints, seeds) hash via their sign-extended
  /// 64-bit pattern; one template avoids overload ambiguity across the
  /// platform-dependent int64/uint64 typedef zoo.
  template <typename T>
    requires std::is_integral_v<T>
  void mix(T v) {
    words_.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  void mix(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    words_.push_back(bits);
  }
  void mix(const std::string& s) {
    words_.push_back(s.size());
    // Pack the bytes eight to a word instead of one word per character.
    for (std::size_t i = 0; i < s.size(); i += 8) {
      std::uint64_t word = 0;
      const std::size_t chunk = std::min<std::size_t>(8, s.size() - i);
      std::memcpy(&word, s.data() + i, chunk);
      words_.push_back(word);
    }
  }
  /// Section separator for variable-length parts.
  void section(std::uint64_t tag) { words_.push_back(0x9e3779b97f4a7c15ULL ^ tag); }

  /// One pass over the buffered words: each word is avalanched
  /// (splitmix64 finalizer) and folded into the running hash with the FNV
  /// prime, so every input bit reaches every output bit without the
  /// per-byte dependency chain of classic FNV-1a.
  std::uint64_t value() const {
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
    for (std::uint64_t word : words_) {
      word += 0x9e3779b97f4a7c15ULL;
      word = (word ^ (word >> 30)) * 0xbf58476d1ce4e5b9ULL;
      word = (word ^ (word >> 27)) * 0x94d049bb133111ebULL;
      word ^= word >> 31;
      hash = (hash ^ word) * 0x100000001b3ULL;  // FNV prime
    }
    return hash;
  }

 private:
  std::vector<std::uint64_t> words_;
};

void mix_graph(Hasher& h, const assay::SequencingGraph& graph) {
  h.section(1);
  h.mix(graph.size());
  for (const assay::Operation& op : graph.operations()) {
    // Names are display-only; identity is structural.
    h.mix(static_cast<int>(op.kind));
    h.mix(op.volume);
    h.mix(op.duration);
    h.section(2);
    for (const assay::OpId parent : op.parents) h.mix(parent.index);
    h.section(3);
    for (const int part : op.ratio) h.mix(part);
  }
}

void mix_schedule(Hasher& h, const sched::Schedule& schedule) {
  h.section(4);
  h.mix(schedule.transport_delay);
  for (const int t : schedule.start) h.mix(t);
  h.section(5);
  for (const int t : schedule.end) h.mix(t);
}

void mix_options(Hasher& h, const synth::SynthesisOptions& options) {
  h.section(6);
  h.mix(static_cast<int>(options.mapper));
  h.mix(options.heuristic.seed);
  h.mix(options.heuristic.greedy_retries);
  h.mix(options.heuristic.sa_iterations);
  h.mix(options.heuristic.initial_temperature);
  h.mix(options.heuristic.final_temperature);
  h.mix(options.heuristic.warm_start.has_value());
  if (options.heuristic.warm_start.has_value()) {
    for (const arch::DeviceInstance& device : *options.heuristic.warm_start) {
      h.mix(device.type.width);
      h.mix(device.type.height);
      h.mix(device.origin.x);
      h.mix(device.origin.y);
    }
  }
  h.mix(options.ilp.time_limit_seconds);
  h.mix(options.ilp.max_nodes);
  // The asynchronous parallel search proves the same optimum but may
  // tie-break to a different optimal placement, so thread settings are
  // result-affecting.
  h.mix(options.ilp.threads);
  h.mix(options.ilp.deterministic);
  // Basis representation and pricing rule prove the same optimum but may
  // tie-break to a different optimal placement, like the thread settings.
  h.mix(static_cast<int>(options.ilp.lp.basis));
  h.mix(static_cast<int>(options.ilp.lp.pricing));
  // Root cuts change the search trajectory, so they are result-affecting
  // through optimal-placement tie-breaks too.
  h.mix(options.ilp.cuts.enabled);
  h.mix(options.ilp.cuts.max_rounds);
  h.mix(options.ilp.cuts.max_cuts_per_round);
  h.mix(options.ilp.cuts.max_pool_size);
  h.mix(options.ilp.cuts.min_violation);
  h.mix(options.ilp.cuts.max_parallelism);
  h.mix(options.ilp.cuts.max_age);
  h.mix(options.ilp.cuts.min_bound_improvement);
  h.mix(options.ilp.warm_start.has_value());
  if (options.ilp.warm_start.has_value()) {
    for (const arch::DeviceInstance& device : *options.ilp.warm_start) {
      h.mix(device.type.width);
      h.mix(device.type.height);
      h.mix(device.origin.x);
      h.mix(device.origin.y);
    }
  }
  h.mix(options.warm_start_ilp);
  h.mix(options.grid_size.value_or(-1));
  h.mix(options.chip_slack);
  h.mix(options.max_chip_growth);
  h.mix(options.chip_sweep);
  h.mix(options.valve_weight);
  h.mix(options.max_refinement_iterations);
  h.mix(options.routing_retries);
  h.mix(options.allow_storage_overlap);
  h.mix(options.routing_convenient);
  h.section(7);
  for (const Point& valve : options.dead_valves) {
    h.mix(valve.x);
    h.mix(valve.y);
  }
  h.section(8);
  h.mix(options.router.congestion_penalty);
  h.mix(options.router.pump_avoidance_weight);
  h.mix(options.router.reuse_discount);
  h.mix(options.router.max_ripups);
  for (const auto& [fluid, port] : options.router.port_of_fluid) {  // std::map: sorted
    h.mix(fluid);
    h.mix(port);
  }
}

}  // namespace

CacheKey canonical_key(const assay::SequencingGraph& graph, const sched::Schedule& schedule,
                       const synth::SynthesisOptions& options) {
  Hasher h;
  mix_graph(h, graph);
  mix_schedule(h, schedule);
  mix_options(h, options);
  return h.value();
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) return;
  const std::size_t shard_count = std::min(kMaxShards, capacity);
  shards_.reserve(shard_count);
  // Distribute the capacity across shards; the remainder goes to the first
  // shards one slot each, so the total stays exactly `capacity`.
  const std::size_t base = capacity / shard_count;
  const std::size_t extra = capacity % shard_count;
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::shared_ptr<const synth::SynthesisResult> ResultCache::lookup(CacheKey key) {
  if (shards_.empty()) {
    disabled_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return nullptr;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::insert(CacheKey key, std::shared_ptr<const synth::SynthesisResult> result) {
  if (shards_.empty()) return;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(result);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= s.capacity) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.emplace_front(key, std::move(result));
  s.index[key] = s.lru.begin();
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.capacity = capacity_;
  stats.misses = disabled_misses_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace fsyn::svc
