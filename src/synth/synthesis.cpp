#include "synth/synthesis.hpp"

#include <chrono>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::synth {

namespace {

/// Checks the free-space rule for every storage-overlapping pair of an ILP
/// placement and forbids the first violating pair (Algorithm 1 L6-L8).
/// Returns true when all overlaps fit.
bool forbid_first_overfull_pair(MappingProblem& problem, const Placement& placement) {
  for (int a = 0; a < problem.task_count(); ++a) {
    for (int b = a + 1; b < problem.task_count(); ++b) {
      if (!problem.parent_child(a, b) || !problem.time_overlap(a, b)) continue;
      if (problem.storage_overlap_forbidden(a, b)) continue;
      const arch::DeviceInstance& da = placement[static_cast<std::size_t>(a)];
      const arch::DeviceInstance& db = placement[static_cast<std::size_t>(b)];
      if (!da.footprint().overlaps(db.footprint())) continue;
      const bool a_is_parent = problem.task(a).start <= problem.task(b).start;
      const int parent = a_is_parent ? a : b;
      const int child = a_is_parent ? b : a;
      if (!problem.storage_overlap_fits(parent,
                                        placement[static_cast<std::size_t>(parent)], child,
                                        placement[static_cast<std::size_t>(child)])) {
        problem.forbid_storage_overlap(a, b);
        log_info("synthesis: forbidding storage overlap of '", problem.task(a).name,
                 "' and '", problem.task(b).name, "'");
        return false;
      }
    }
  }
  return true;
}

struct MappingAttempt {
  Placement placement;
  std::int64_t effort = 0;
  int refinements = 0;
  std::int64_t milp_nodes = 0;
  std::int64_t milp_lp_iterations = 0;
  ilp::LpSolverStats milp_lp;
  ilp::CutStats milp_cuts;
  std::int64_t milp_arena_bytes = 0;
  std::int64_t milp_impact_branch_decisions = 0;
  std::int64_t milp_pseudocost_branch_decisions = 0;
  int milp_threads = 0;
  std::int64_t milp_steals = 0;
  double milp_idle_seconds = 0.0;
};

std::optional<MappingAttempt> run_mapper(MappingProblem& problem,
                                         const SynthesisOptions& options) {
  if (options.mapper == MapperKind::kHeuristic) {
    // The heuristic enforces the free-space rule inside pair_feasible, so
    // no Algorithm-1 refinement loop is needed.
    const auto outcome = map_heuristic(problem, options.heuristic);
    if (!outcome.has_value()) return std::nullopt;
    return MappingAttempt{outcome->placement, outcome->moves_tried, 0};
  }

  // ILP mode: the model omits the free-space constraints for runtime (as in
  // the paper); iterate mapping + post-check (Algorithm 1 L4-L9).  Solver
  // counters accumulate across the refinement iterations.
  MappingAttempt attempt;
  for (int iteration = 0; iteration < options.max_refinement_iterations; ++iteration) {
    options.cancel.check("refinement loop");
    IlpMapperOptions ilp_options = options.ilp;
    if (options.warm_start_ilp && !ilp_options.warm_start.has_value()) {
      if (const auto warm = map_heuristic(problem, options.heuristic)) {
        ilp_options.warm_start = warm->placement;
      }
    }
    const auto outcome = map_ilp(problem, ilp_options);
    if (!outcome.has_value()) return std::nullopt;
    attempt.milp_nodes += outcome->nodes;
    attempt.milp_lp_iterations += outcome->lp_iterations;
    attempt.milp_lp.accumulate(outcome->lp);
    attempt.milp_cuts.accumulate(outcome->cuts);
    attempt.milp_arena_bytes = std::max(attempt.milp_arena_bytes, outcome->arena_bytes);
    attempt.milp_impact_branch_decisions += outcome->impact_branch_decisions;
    attempt.milp_pseudocost_branch_decisions += outcome->pseudocost_branch_decisions;
    attempt.milp_threads = std::max(attempt.milp_threads, outcome->threads);
    attempt.milp_steals += outcome->steals;
    attempt.milp_idle_seconds += outcome->idle_seconds;
    if (forbid_first_overfull_pair(problem, outcome->placement)) {
      attempt.placement = outcome->placement;
      attempt.effort = attempt.milp_nodes;
      attempt.refinements = iteration;
      return attempt;
    }
  }
  throw Error("dynamic-device mapping did not converge within the refinement budget");
}

}  // namespace

namespace {

/// One full mapping+routing+accounting attempt on a fixed chip size.
std::optional<SynthesisResult> attempt_on_size(const assay::SequencingGraph& graph,
                                               const sched::Schedule& schedule,
                                               const SynthesisOptions& options, int side,
                                               int growth) {
  obs::Span span("synth", "attempt");
  if (span.active()) {
    span.arg("side", side);
    span.arg("growth", growth);
  }
  arch::Architecture chip(side, side);
  MappingProblem problem = MappingProblem::build(graph, schedule, std::move(chip));
  problem.set_allow_storage_overlap(options.allow_storage_overlap);
  problem.set_routing_convenient(options.routing_convenient);
  problem.set_dead_valves(options.dead_valves);

  // Mapping is oblivious to routability; when routing fails, remapping
  // with a different seed usually unblocks it (different placements leave
  // different corridors free).
  std::optional<MappingAttempt> attempt;
  route::RoutingResult routing;
  SynthesisOptions retry_options = options;
  for (int r = 0; r <= options.routing_retries; ++r) {
    options.cancel.check("mapping/routing attempt");
    retry_options.heuristic.seed = options.heuristic.seed + 7919ULL * static_cast<std::uint64_t>(r);
    {
      obs::Span map_span("synth", "map");
      if (map_span.active()) {
        map_span.arg("side", side);
        map_span.arg("retry", r);
        map_span.arg("mapper", options.mapper == MapperKind::kIlp ? "ilp" : "heuristic");
      }
      attempt = run_mapper(problem, retry_options);
    }
    if (!attempt.has_value()) {
      log_info("synthesis: mapping failed on ", side, "x", side);
      return std::nullopt;
    }
    problem.validate_placement(attempt->placement);
    routing = route_all(problem, attempt->placement, options.router);
    if (routing.success) break;
    log_info("synthesis: routing failed (", routing.failure, ") on ", side, "x", side,
             r < options.routing_retries ? "; remapping with a new seed" : "");
  }
  if (!routing.success) return std::nullopt;
  route::validate_routing(problem, attempt->placement, routing);

  SynthesisResult result;
  result.chip_width = side;
  result.chip_height = side;
  result.placement = attempt->placement;
  result.routing = routing;
  result.mapper_effort = attempt->effort;
  result.refinement_iterations = attempt->refinements;
  result.chip_growths = growth;
  result.milp_nodes = attempt->milp_nodes;
  result.milp_lp_iterations = attempt->milp_lp_iterations;
  result.milp_lp = attempt->milp_lp;
  result.milp_basis = options.ilp.lp.basis;
  result.milp_pricing = options.ilp.lp.pricing;
  result.milp_cuts = attempt->milp_cuts;
  result.milp_arena_bytes = attempt->milp_arena_bytes;
  result.milp_impact_branch_decisions = attempt->milp_impact_branch_decisions;
  result.milp_pseudocost_branch_decisions = attempt->milp_pseudocost_branch_decisions;
  result.milp_threads = attempt->milp_threads;
  result.milp_steals = attempt->milp_steals;
  result.milp_idle_seconds = attempt->milp_idle_seconds;

  {
    obs::Span verify_span("sim", "verify");
    result.ledger_setting1 =
        sim::ChipSimulator(problem, result.placement, routing, sim::Setting::kConservative)
            .verify();
    result.ledger_setting2 =
        sim::ChipSimulator(problem, result.placement, routing, sim::Setting::kRescaled)
            .verify();
  }

  result.vs1_max = result.ledger_setting1.max_total();
  result.vs1_pump = result.ledger_setting1.max_pump();
  result.vs2_max = result.ledger_setting2.max_total();
  result.vs2_pump = result.ledger_setting2.max_pump();
  result.valve_count = result.ledger_setting1.actuated_valve_count();
  return result;
}

}  // namespace

SynthesisResult synthesize(const assay::SequencingGraph& graph,
                           const sched::Schedule& schedule,
                           const SynthesisOptions& user_options) {
  const auto started = std::chrono::steady_clock::now();
  obs::Span span("synth", "synthesize");
  if (span.active()) {
    span.arg("assay", graph.name());
    span.arg("ops", graph.size());
    span.arg("mapper", user_options.mapper == MapperKind::kIlp ? "ilp" : "heuristic");
  }

  // Propagate a synthesis-level token into the mapper options so one token
  // on SynthesisOptions cancels every stage (explicit mapper tokens win).
  SynthesisOptions options = user_options;
  if (options.cancel.valid()) {
    if (!options.heuristic.cancel.valid()) options.heuristic.cancel = options.cancel;
    if (!options.ilp.cancel.valid()) options.ilp.cancel = options.cancel;
  }

  check_input(options.dead_valves.empty() || options.grid_size.has_value(),
              "dead valves require an explicit grid_size (coordinates are tied "
              "to one matrix)");
  const int first_side = options.grid_size.value_or(
      arch::Architecture::sized_for(graph, schedule, options.chip_slack).width());
  // An explicit grid size disables the sweep: the caller wants that chip.
  const int sweep = options.grid_size.has_value() ? 0 : options.chip_sweep;

  const auto score = [&](const SynthesisResult& r) {
    return r.vs1_max + options.valve_weight * r.valve_count;
  };
  const auto offer = [&](std::optional<SynthesisResult>& best,
                         std::optional<SynthesisResult> candidate) {
    if (!candidate.has_value()) return;
    if (!best.has_value() || score(*candidate) < score(*best)) best = std::move(candidate);
  };

  // Scan upward from the estimate until the first feasible size.
  std::optional<SynthesisResult> best;
  int feasible_side = -1;
  for (int growth = 0; growth <= options.max_chip_growth; ++growth) {
    options.cancel.check("chip-size search");
    const int side = first_side + growth;
    auto candidate = attempt_on_size(graph, schedule, options, side, growth);
    if (candidate.has_value()) {
      feasible_side = side;
      offer(best, std::move(candidate));
      break;
    }
  }
  if (!best.has_value()) {
    throw Error("synthesis failed: no feasible mapping/routing up to chip size " +
                std::to_string(first_side + options.max_chip_growth) + "x" +
                std::to_string(first_side + options.max_chip_growth));
  }

  if (sweep > 0) {
    // Probe smaller matrices down to the first infeasible size: the
    // estimate is deliberately conservative and the valve-count knee often
    // sits below it.
    for (int side = feasible_side - 1; side >= 8; --side) {
      options.cancel.check("chip-size sweep");
      auto candidate = attempt_on_size(graph, schedule, options, side, feasible_side - side);
      if (!candidate.has_value()) break;
      offer(best, std::move(candidate));
    }
    // And a few larger ones (more room can still lower the max actuation).
    for (int extra = 1; extra <= sweep; ++extra) {
      options.cancel.check("chip-size sweep");
      offer(best,
            attempt_on_size(graph, schedule, options, feasible_side + extra, extra));
    }
  }
  best->runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  if (span.active()) {
    span.arg("chip", best->chip_width);
    span.arg("vs1_max", best->vs1_max);
    span.arg("valves", best->valve_count);
  }
  return *best;
}

}  // namespace fsyn::synth
