// Exact dynamic-device mapping via the paper's ILP model (Section 3.2-3.4),
// solved with the in-tree MILP solver (the Gurobi substitute).
//
// Variables and constraints follow the paper:
//   s_{x,y,k,i}   selection binaries, one per (task, type, origin)   (Eq. 1)
//   v_{x,y} <= w  per-valve peristaltic load bound                   (Eq. 2, 9)
//   b_{i,le/ri/up/do} boundary (wall) coordinates linked to s        (Fig. 6a)
//   big-M disjunctive non-overlap with c1..c4, sum = 3               (Eq. 3-8)
//   storage-overlap relaxation binary c5, sum = 3 + c5               (Eq. 12)
//   routing-convenience distance d between sequential devices        (Eq. 13-16)
// The objective minimizes w (Eq. 10).
//
// The free-space rule for in-situ storages is *not* in the model (the paper
// also leaves it out for runtime, Algorithm 1 L6-L8): synthesis re-runs the
// mapper with the offending pair forbidden when the post-check fails.
#pragma once

#include <optional>

#include "ilp/branch_and_bound.hpp"
#include "synth/mapping_problem.hpp"

namespace fsyn::synth {

struct IlpMapperOptions {
  double time_limit_seconds = 120.0;
  std::int64_t max_nodes = 500'000;
  /// Optional warm start (e.g. the heuristic mapper's placement); must be
  /// feasible for the problem.
  std::optional<Placement> warm_start;
  /// Cooperative cancellation, forwarded to the branch & bound (polled per
  /// node alongside the node/time limits).
  CancelToken cancel;
  /// Parallel tree-search workers (ilp::MilpOptions::threads); 0 = serial.
  int threads = 0;
  /// Epoch-synchronized deterministic schedule (ilp::MilpOptions::deterministic).
  bool deterministic = false;
  /// Optional pool to borrow search workers from (ilp::MilpOptions::pool).
  svc::ThreadPool* pool = nullptr;
  /// LP engine configuration (basis representation, pricing rule, tolerances)
  /// forwarded to every per-node relaxation solver.
  ilp::LpOptions lp;
  /// Root cutting-plane loop configuration (ilp::MilpOptions::cut_options).
  ilp::CutOptions cuts;
};

struct IlpMappingOutcome {
  Placement placement;
  int max_pump_load = 0;
  int max_pump_load_setting2 = 0;
  ilp::MilpStatus status = ilp::MilpStatus::kLimit;
  double best_bound = 0.0;  ///< proven lower bound on w
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;
  ilp::LpSolverStats lp;  ///< LP engine counters (warm/cold solves, pivots)
  ilp::BasisKind lp_basis = ilp::BasisKind::kSparseLu;      ///< echoed config
  ilp::PricingRule lp_pricing = ilp::PricingRule::kDevex;   ///< echoed config
  // Root cut loop + node store + branching telemetry.
  ilp::CutStats cuts;
  std::int64_t arena_bytes = 0;
  std::int64_t impact_branch_decisions = 0;
  std::int64_t pseudocost_branch_decisions = 0;
  // Parallel-search telemetry (zeros for serial solves).
  int threads = 0;
  std::int64_t steals = 0;
  double idle_seconds = 0.0;
  double parallel_efficiency = 1.0;
};

/// Builds and solves the mapping ILP.  Returns std::nullopt when the model
/// is infeasible (chip too small) or no incumbent was found within limits.
std::optional<IlpMappingOutcome> map_ilp(const MappingProblem& problem,
                                         const IlpMapperOptions& options = {});

}  // namespace fsyn::synth
