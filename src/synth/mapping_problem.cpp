#include "synth/mapping_problem.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace fsyn::synth {

using arch::DeviceInstance;
using assay::OpId;
using assay::OpKind;
using assay::Operation;

MappingProblem MappingProblem::build(const assay::SequencingGraph& graph,
                                     const sched::Schedule& schedule,
                                     arch::Architecture chip) {
  require(schedule.graph == &graph, "schedule belongs to a different graph");
  MappingProblem problem;
  problem.graph_ = &graph;
  problem.schedule_ = &schedule;
  problem.chip_ = std::move(chip);
  problem.task_of_.assign(static_cast<std::size_t>(graph.size()), -1);

  for (const Operation& op : graph.operations()) {
    if (op.kind != OpKind::kMix && op.kind != OpKind::kDetect) continue;
    MappingTask task;
    task.index = problem.task_count();
    task.op = op.id;
    task.name = op.name;
    task.is_mix = op.kind == OpKind::kMix;
    task.volume = op.volume;
    task.pump_actuations = task.is_mix ? kPumpActuationsPerMix : 0;
    task.start = schedule.start_of(op.id);
    task.release = schedule.end_of(op.id) + schedule.transport_delay;

    // The in situ storage opens when the first *device* product arrives;
    // fluids from chip ports stream in at fill time and need no storage.
    int first_arrival = task.start;
    for (const OpId parent : op.parents) {
      const Operation& producer = graph.op(parent);
      if (producer.kind != OpKind::kMix && producer.kind != OpKind::kDetect) continue;
      first_arrival = std::min(first_arrival, schedule.arrival_from(parent));
    }
    task.storage_from = first_arrival;

    for (const arch::DeviceType& type : arch::device_types_for_volume(op.volume)) {
      if (!problem.chip_.placements_for(type).empty()) task.types.push_back(type);
    }
    check_input(!task.types.empty(),
                "no device type of volume " + std::to_string(op.volume) + " fits the chip");

    problem.task_of_[static_cast<std::size_t>(op.id.index)] = task.index;
    problem.tasks_.push_back(std::move(task));
  }
  check_input(!problem.tasks_.empty(), "assay has no mappable operations");

  int d = std::numeric_limits<int>::max();
  for (const MappingTask& task : problem.tasks_) {
    for (const arch::DeviceType& type : task.types) {
      d = std::min(d, type.min_dimension());
    }
  }
  problem.routing_distance_ = d;

  // Precompute the pairwise relations pair_feasible consults per candidate.
  const std::size_t n = static_cast<std::size_t>(problem.task_count());
  problem.parent_child_cache_.assign(n * n, 0);
  problem.co_parents_cache_.assign(n * n, 0);
  problem.time_overlap_cache_.assign(n * n, 0);
  problem.forbidden_cache_.assign(n * n, 0);
  for (int a = 0; a < problem.task_count(); ++a) {
    for (int b = 0; b < problem.task_count(); ++b) {
      problem.parent_child_cache_[problem.pair_index(a, b)] =
          problem.compute_parent_child(a, b);
      problem.co_parents_cache_[problem.pair_index(a, b)] = problem.compute_co_parents(a, b);
      const MappingTask& ta = problem.task(a);
      const MappingTask& tb = problem.task(b);
      problem.time_overlap_cache_[problem.pair_index(a, b)] =
          ta.occupancy_begin() < tb.release && tb.occupancy_begin() < ta.release;
    }
  }
  return problem;
}

void MappingProblem::set_dead_valves(std::vector<Point> dead) {
  for (const Point& cell : dead) {
    check_input(chip_.bounds().contains(cell), "dead valve outside the matrix");
  }
  dead_ = std::move(dead);
}

bool MappingProblem::is_dead(const Point& cell) const {
  return std::find(dead_.begin(), dead_.end(), cell) != dead_.end();
}

bool MappingProblem::placement_allowed(int task_index, const DeviceInstance& device) const {
  if (!chip_.fits(device)) return false;
  const MappingTask& t = task(task_index);
  if (std::find(t.types.begin(), t.types.end(), device.type) == t.types.end()) return false;
  const Rect footprint = device.footprint();
  for (const arch::ChipPort& port : chip_.ports()) {
    if (footprint.contains(port.cell)) return false;
  }
  for (const Point& cell : dead_) {
    if (footprint.contains(cell)) return false;
  }
  return true;
}

std::vector<DeviceInstance> MappingProblem::candidates_for(int task_index) const {
  std::vector<DeviceInstance> out;
  for (const arch::DeviceType& type : task(task_index).types) {
    for (const Point& origin : chip_.placements_for(type)) {
      const DeviceInstance instance{type, origin};
      if (placement_allowed(task_index, instance)) out.push_back(instance);
    }
  }
  return out;
}

bool MappingProblem::compute_parent_child(int a, int b) const {
  const Operation& op_a = graph_->op(task(a).op);
  const Operation& op_b = graph_->op(task(b).op);
  const auto is_parent_of = [&](const Operation& parent, const Operation& child) {
    return std::find(child.parents.begin(), child.parents.end(), parent.id) !=
           child.parents.end();
  };
  return is_parent_of(op_a, op_b) || is_parent_of(op_b, op_a);
}

bool MappingProblem::compute_co_parents(int a, int b) const {
  for (const assay::OpId child_a : graph_->children(task(a).op)) {
    for (const assay::OpId child_b : graph_->children(task(b).op)) {
      if (child_a == child_b) return true;
    }
  }
  return false;
}

bool MappingProblem::parent_child(int a, int b) const {
  return parent_child_cache_[pair_index(a, b)] != 0;
}

bool MappingProblem::co_parents(int a, int b) const {
  return co_parents_cache_[pair_index(a, b)] != 0;
}

bool MappingProblem::time_overlap(int a, int b) const {
  return time_overlap_cache_[pair_index(a, b)] != 0;
}

void MappingProblem::forbid_storage_overlap(int a, int b) {
  if (a > b) std::swap(a, b);
  if (!storage_overlap_forbidden(a, b)) {
    forbidden_.push_back({a, b});
    forbidden_cache_[pair_index(a, b)] = 1;
    forbidden_cache_[pair_index(b, a)] = 1;
  }
}

bool MappingProblem::storage_overlap_forbidden(int a, int b) const {
  return forbidden_cache_[pair_index(a, b)] != 0;
}

int MappingProblem::storage_occupied_before(int child, int t) const {
  const Operation& op = graph_->op(task(child).op);
  const int volume = task(child).volume;
  int ratio_sum = 0;
  if (!op.ratio.empty()) {
    for (const int part : op.ratio) ratio_sum += part;
  } else {
    ratio_sum = static_cast<int>(op.parents.size());
  }
  if (ratio_sum == 0) return 0;

  int occupied = 0;
  for (std::size_t i = 0; i < op.parents.size(); ++i) {
    const Operation& producer = graph_->op(op.parents[i]);
    if (producer.kind != OpKind::kMix && producer.kind != OpKind::kDetect) continue;
    if (schedule_->arrival_from(producer.id) >= t) continue;
    const int part = op.ratio.empty() ? 1 : op.ratio[i];
    // Ceil: a partially filled cell is unavailable.
    occupied += (volume * part + ratio_sum - 1) / ratio_sum;
  }
  return std::min(occupied, volume);
}

bool MappingProblem::storage_overlap_fits(int parent, const DeviceInstance& dp, int child,
                                          const DeviceInstance& dc) const {
  // Cells of the child storage blocked by the live parent device.
  const Rect parent_footprint = dp.footprint();
  int blocked = 0;
  for (const Point& cell : dc.pump_cells()) {
    if (parent_footprint.contains(cell)) ++blocked;
  }
  if (blocked == 0) return true;
  // Worst case is just before the parent device releases: every earlier
  // product is already resident in the storage.
  const int occupied = storage_occupied_before(child, task(parent).release);
  return blocked <= task(child).volume - occupied;
}

bool MappingProblem::pair_feasible(int a, const DeviceInstance& da, int b,
                                   const DeviceInstance& db) const {
  const int gap = da.footprint().chebyshev_gap(db.footprint());
  const bool related = parent_child(a, b);

  // Routing-convenient mapping (Eq. 13-16): sequential devices stay within
  // distance d so the connecting channel is trivial.
  if (related && routing_convenient_ && gap > routing_distance_) return false;

  if (!time_overlap(a, b)) return true;

  if (related && allow_storage_overlap_ && !storage_overlap_forbidden(a, b)) {
    if (!da.footprint().overlaps(db.footprint())) return true;
    // In situ storage overlap (Eq. 12): only the child's storage may absorb
    // the overlap, and only within its free space (Algorithm 1 L6).
    const bool a_is_parent = task(a).start <= task(b).start;
    const int parent = a_is_parent ? a : b;
    const int child = a_is_parent ? b : a;
    const DeviceInstance& dparent = a_is_parent ? da : db;
    const DeviceInstance& dchild = a_is_parent ? db : da;
    return storage_overlap_fits(parent, dparent, child, dchild);
  }

  // Unrelated concurrent devices (or forbidden pairs) keep a wall between
  // their footprints (Eq. 3-8 use the wall coordinates b_le/b_ri/...).
  return gap >= 1;
}

void MappingProblem::validate_placement(const Placement& placement) const {
  require(static_cast<int>(placement.size()) == task_count(), "placement size mismatch");
  for (int i = 0; i < task_count(); ++i) {
    const DeviceInstance& device = placement[static_cast<std::size_t>(i)];
    require(placement_allowed(i, device),
            "task '" + task(i).name + "' placed illegally (outside the chip, wrong "
            "volume, or covering a chip port)");
  }
  for (int a = 0; a < task_count(); ++a) {
    for (int b = a + 1; b < task_count(); ++b) {
      require(pair_feasible(a, placement[static_cast<std::size_t>(a)], b,
                            placement[static_cast<std::size_t>(b)]),
              "placement violates pair constraints: '" + task(a).name + "' vs '" +
                  task(b).name + "'");
    }
  }
}

Grid<int> MappingProblem::pump_loads(const Placement& placement) const {
  Grid<int> loads(chip_.width(), chip_.height(), 0);
  for (int i = 0; i < task_count(); ++i) {
    const MappingTask& t = task(i);
    if (t.pump_actuations == 0) continue;
    for (const Point& cell : placement[static_cast<std::size_t>(i)].pump_cells()) {
      loads.at(cell) += t.pump_actuations;
    }
  }
  return loads;
}

int MappingProblem::max_pump_load(const Placement& placement) const {
  const Grid<int> loads = pump_loads(placement);
  return *std::max_element(loads.begin(), loads.end());
}

Grid<int> MappingProblem::pump_loads_setting2(const Placement& placement) const {
  Grid<int> loads(chip_.width(), chip_.height(), 0);
  for (int i = 0; i < task_count(); ++i) {
    const MappingTask& t = task(i);
    if (!t.is_mix) continue;
    const int ring = static_cast<int>(placement[static_cast<std::size_t>(i)].pump_cells().size());
    const int per_valve = (kDedicatedPumpWorkPerMix + ring - 1) / ring;
    for (const Point& cell : placement[static_cast<std::size_t>(i)].pump_cells()) {
      loads.at(cell) += per_valve;
    }
  }
  return loads;
}

int MappingProblem::max_pump_load_setting2(const Placement& placement) const {
  const Grid<int> loads = pump_loads_setting2(placement);
  return *std::max_element(loads.begin(), loads.end());
}

}  // namespace fsyn::synth
