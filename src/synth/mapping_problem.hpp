// The dynamic-device mapping problem (paper Section 3.2-3.4).
//
// Every mix/detect operation of a scheduled assay becomes a MappingTask: a
// dynamic device that must be placed on the valve matrix.  The device also
// doubles as the operation's in situ on-chip storage (Section 3.3): the
// region starts collecting parent products as soon as the first one arrives
// and is "turned into" the working device at the operation's start time, so
// one placement decision covers both.
//
// This header owns the single feasibility semantics shared by the exact ILP
// mapper and the heuristic mapper:
//   * each task picks exactly one device type + origin            (Eq. 1)
//   * tasks whose occupancy windows overlap in time must keep a
//     1-cell wall gap                                              (Eq. 3-8)
//   * except parent/child pairs, which may overlap (in situ
//     storage sharing, Eq. 12) subject to the free-space rule of
//     Algorithm 1 L6-L8
//   * parent/child devices must be within distance d
//     (routing-convenient mapping, Eq. 13-16)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/architecture.hpp"
#include "arch/device_types.hpp"
#include "assay/sequencing_graph.hpp"
#include "sched/schedule.hpp"

namespace fsyn::synth {

/// Pump-valve actuations per mixing operation in the paper's two settings.
inline constexpr int kPumpActuationsPerMix = 40;      // setting 1 (conservative)
inline constexpr int kDedicatedPumpWorkPerMix = 120;  // 3 valves x 40, setting 2 budget

/// One operation to place on the valve matrix.
struct MappingTask {
  int index = -1;                ///< task index inside the problem
  assay::OpId op;
  std::string name;
  bool is_mix = false;           ///< detect tasks occupy a device but never pump
  int volume = 0;
  int pump_actuations = 0;       ///< p_i, per pump valve (setting 1)

  // Occupancy timeline (half-open intervals in tu):
  int storage_from = 0;  ///< first parent product arrival (in situ storage opens)
  int start = 0;         ///< operation start (storage becomes the device)
  int release = 0;       ///< end + transport: product has left, valves are free

  int occupancy_begin() const { return storage_from < start ? storage_from : start; }
  bool has_storage_phase() const { return storage_from < start; }

  /// Candidate shapes for this task's volume.
  std::vector<arch::DeviceType> types;
};

/// A complete placement: one DeviceInstance per task (indexed like tasks).
using Placement = std::vector<arch::DeviceInstance>;

class MappingProblem {
 public:
  /// Builds the problem for a scheduled assay on `chip`.  Mix tasks get
  /// p_i = kPumpActuationsPerMix; detect tasks p_i = 0.
  static MappingProblem build(const assay::SequencingGraph& graph,
                              const sched::Schedule& schedule, arch::Architecture chip);

  const assay::SequencingGraph& graph() const { return *graph_; }
  const sched::Schedule& schedule() const { return *schedule_; }
  const arch::Architecture& chip() const { return chip_; }

  int task_count() const { return static_cast<int>(tasks_.size()); }
  const MappingTask& task(int index) const { return tasks_[static_cast<std::size_t>(index)]; }
  const std::vector<MappingTask>& tasks() const { return tasks_; }

  /// Task index of an operation, or -1 for ops without a device (inputs).
  int task_of(assay::OpId op) const { return task_of_[static_cast<std::size_t>(op.index)]; }

  /// True when b consumes a's product (or vice versa) — the pairs whose
  /// devices may overlap as in-situ storages and must obey the
  /// routing-convenience distance.
  bool parent_child(int a, int b) const;

  /// True when a and b feed the same mixing operation.  Such co-parents
  /// should be placed near each other or their common child cannot satisfy
  /// the routing-convenience distance to both.
  bool co_parents(int a, int b) const;

  /// True when the occupancy windows of the two tasks intersect.
  bool time_overlap(int a, int b) const;

  /// The routing-convenience distance d: minimum dimension over all
  /// candidate device types of all tasks (paper Section 3.4).
  int routing_distance() const { return routing_distance_; }

  /// True when the instance is an admissible position for the task: inside
  /// the matrix, of the right volume, and not covering a chip port cell
  /// (ports connect to off-chip pumps and must stay reachable).
  bool placement_allowed(int task, const arch::DeviceInstance& device) const;

  /// All admissible instances for a task (every type x origin combination
  /// passing placement_allowed).  The single candidate enumeration used by
  /// both the ILP and the heuristic mapper.
  std::vector<arch::DeviceInstance> candidates_for(int task) const;

  /// Fault tolerance (extension): valves that have worn out.  Dead valves
  /// are excluded from every device footprint and blocked for routing, so
  /// re-running synthesis maps the assay around them — the degradation
  /// story the valve-centered architecture enables.
  void set_dead_valves(std::vector<Point> dead);
  bool is_dead(const Point& cell) const;
  const std::vector<Point>& dead_valves() const { return dead_; }

  /// Ablation switches.  Disabling storage overlap turns every parent/child
  /// pair into a strict non-overlap pair (as if c5 were fixed to 0);
  /// disabling routing convenience drops the distance-d constraints
  /// (Eq. 13-16).  Both default to the paper's configuration (enabled).
  void set_allow_storage_overlap(bool allow) { allow_storage_overlap_ = allow; }
  bool allow_storage_overlap() const { return allow_storage_overlap_; }
  void set_routing_convenient(bool enabled) { routing_convenient_ = enabled; }
  bool routing_convenient() const { return routing_convenient_; }

  /// Pairs that must not overlap spatially even though they are
  /// parent/child (Algorithm 1 L7: the free-space rule failed for them in a
  /// previous iteration).  Order-insensitive.
  void forbid_storage_overlap(int a, int b);
  bool storage_overlap_forbidden(int a, int b) const;
  int forbidden_pair_count() const { return static_cast<int>(forbidden_.size()); }

  // ---- feasibility semantics (shared by ILP and heuristic) ----

  /// Spatial legality of two placed tasks, honouring time overlap, wall
  /// gaps, the storage-overlap permission and routing convenience.
  bool pair_feasible(int a, const arch::DeviceInstance& da, int b,
                     const arch::DeviceInstance& db) const;

  /// Free-space rule (Algorithm 1 L6): when the storage of the child task
  /// overlaps a parent device, the overlap area must fit into the storage's
  /// free volume while the parent is still working.  Returns true when the
  /// pair's overlap is acceptable.
  bool storage_overlap_fits(int parent, const arch::DeviceInstance& dp, int child,
                            const arch::DeviceInstance& dc) const;

  /// Volume (in cells) of child-task storage already occupied by products
  /// that arrived strictly before time `t`.
  int storage_occupied_before(int child, int t) const;

  /// Full-placement validation; throws fsyn::LogicError with the offending
  /// pair when the placement violates the semantics above.
  void validate_placement(const Placement& placement) const;

  /// Per-cell pump load of a placement (setting 1 p_i), and its maximum —
  /// the paper's objective (10).
  Grid<int> pump_loads(const Placement& placement) const;
  int max_pump_load(const Placement& placement) const;

  /// Setting 2: same placement, per-op pump work rescaled to the dedicated
  /// mixer's total (ceil(120 / ring size) per valve; Section 4).
  Grid<int> pump_loads_setting2(const Placement& placement) const;
  int max_pump_load_setting2(const Placement& placement) const;

 private:
  const assay::SequencingGraph* graph_ = nullptr;
  const sched::Schedule* schedule_ = nullptr;
  arch::Architecture chip_{8, 8};
  std::vector<MappingTask> tasks_;
  std::vector<int> task_of_;
  std::vector<std::pair<int, int>> forbidden_;
  // Dense pairwise caches (task_count^2, row-major); pair_feasible is the
  // inner loop of both mappers, so relation lookups must be O(1).
  std::vector<char> parent_child_cache_;
  std::vector<char> co_parents_cache_;
  std::vector<char> time_overlap_cache_;
  std::vector<char> forbidden_cache_;
  std::size_t pair_index(int a, int b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(task_count()) +
           static_cast<std::size_t>(b);
  }
  bool compute_parent_child(int a, int b) const;
  bool compute_co_parents(int a, int b) const;
  std::vector<Point> dead_;
  int routing_distance_ = 2;
  bool allow_storage_overlap_ = true;
  bool routing_convenient_ = true;
};

}  // namespace fsyn::synth
