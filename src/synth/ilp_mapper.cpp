#include "synth/ilp_mapper.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::synth {

namespace {

using arch::DeviceInstance;
using ilp::LinearExpr;
using ilp::Model;
using ilp::Relation;
using ilp::Sense;
using ilp::VarId;

struct Candidate {
  DeviceInstance instance;
  VarId var;
};

/// One task's selection variables plus its linked boundary variables.
struct TaskVars {
  std::vector<Candidate> candidates;
  VarId b_le, b_ri, b_do, b_up;
};

}  // namespace

std::optional<IlpMappingOutcome> map_ilp(const MappingProblem& problem,
                                         const IlpMapperOptions& options) {
  obs::Span span("synth", "map_ilp");
  if (span.active()) span.arg("tasks", problem.task_count());
  // Model construction + warm-start assembly as its own sub-span; the
  // solve itself is traced inside solve_milp.
  obs::Span build_span("ilp", "build_model");
  Model model;
  const arch::Architecture& chip = problem.chip();
  const double big_m = chip.width() + chip.height() + 4.0;

  // ---- selection variables (Eq. 1) and boundary links (Fig. 6a) ----
  std::vector<TaskVars> vars(static_cast<std::size_t>(problem.task_count()));
  for (int i = 0; i < problem.task_count(); ++i) {
    const MappingTask& task = problem.task(i);
    TaskVars& tv = vars[static_cast<std::size_t>(i)];

    LinearExpr choose_one;
    LinearExpr le_link, ri_link, do_link, up_link;
    for (const DeviceInstance& instance : problem.candidates_for(i)) {
      const Point origin = instance.origin;
      const arch::DeviceType type = instance.type;
      const VarId s = model.add_binary("s_" + task.name + "_" + std::to_string(origin.x) +
                                       "_" + std::to_string(origin.y) + "_" +
                                       std::to_string(type.width) + "x" +
                                       std::to_string(type.height));
      tv.candidates.push_back(Candidate{instance, s});
      choose_one.add_term(s, 1.0);
      // Wall coordinates sit one cell outside the footprint (Fig. 6a).
      le_link.add_term(s, origin.x - 1.0);
      ri_link.add_term(s, origin.x + static_cast<double>(type.width));
      do_link.add_term(s, origin.y - 1.0);
      up_link.add_term(s, origin.y + static_cast<double>(type.height));
    }
    model.add_constraint(choose_one, Relation::kEqual, 1.0, "map_" + task.name);

    tv.b_le = model.add_continuous(-1.0, chip.width(), "b_le_" + task.name);
    tv.b_ri = model.add_continuous(0.0, chip.width() + 1.0, "b_ri_" + task.name);
    tv.b_do = model.add_continuous(-1.0, chip.height(), "b_do_" + task.name);
    tv.b_up = model.add_continuous(0.0, chip.height() + 1.0, "b_up_" + task.name);
    le_link.add_term(tv.b_le, -1.0);
    ri_link.add_term(tv.b_ri, -1.0);
    do_link.add_term(tv.b_do, -1.0);
    up_link.add_term(tv.b_up, -1.0);
    model.add_constraint(le_link, Relation::kEqual, 0.0);
    model.add_constraint(ri_link, Relation::kEqual, 0.0);
    model.add_constraint(do_link, Relation::kEqual, 0.0);
    model.add_constraint(up_link, Relation::kEqual, 0.0);
  }

  // ---- per-valve peristaltic load bound (Eq. 2 + 9), objective (10) ----
  const VarId w = model.add_continuous(0.0, ilp::kInfinity, "w");
  {
    Grid<std::vector<std::pair<VarId, int>>> contributions(chip.width(), chip.height());
    for (int i = 0; i < problem.task_count(); ++i) {
      const MappingTask& task = problem.task(i);
      if (task.pump_actuations == 0) continue;
      for (const Candidate& c : vars[static_cast<std::size_t>(i)].candidates) {
        for (const Point& cell : c.instance.pump_cells()) {
          contributions.at(cell).push_back({c.var, task.pump_actuations});
        }
      }
    }
    contributions.for_each([&](const Point& cell, const auto& terms) {
      if (terms.empty()) return;
      LinearExpr load;
      for (const auto& [var, p] : terms) load.add_term(var, p);
      load.add_term(w, -1.0);
      model.add_constraint(load, Relation::kLessEqual, 0.0,
                           "load_" + std::to_string(cell.x) + "_" + std::to_string(cell.y));
    });
  }

  // ---- pairwise constraints ----
  struct PairRecord {
    int a, b;
    VarId c1, c2, c3, c4;
    std::optional<VarId> c5;
  };
  std::vector<PairRecord> pair_records;
  for (int a = 0; a < problem.task_count(); ++a) {
    for (int b = a + 1; b < problem.task_count(); ++b) {
      const TaskVars& va = vars[static_cast<std::size_t>(a)];
      const TaskVars& vb = vars[static_cast<std::size_t>(b)];
      const bool related = problem.parent_child(a, b);

      if (related && problem.routing_convenient()) {
        // Eq. 13-16 with strict > turned into >= +1 on integers.
        const double d = problem.routing_distance();
        LinearExpr e13 = 1.0 * va.b_ri + (-1.0) * vb.b_le;
        model.add_constraint(e13, Relation::kGreaterEqual, -d + 1.0);
        LinearExpr e14 = 1.0 * va.b_le + (-1.0) * vb.b_ri;
        model.add_constraint(e14, Relation::kLessEqual, d - 1.0);
        LinearExpr e15 = 1.0 * va.b_up + (-1.0) * vb.b_do;
        model.add_constraint(e15, Relation::kGreaterEqual, -d + 1.0);
        LinearExpr e16 = 1.0 * va.b_do + (-1.0) * vb.b_up;
        model.add_constraint(e16, Relation::kLessEqual, d - 1.0);
      }

      if (!problem.time_overlap(a, b)) continue;

      const bool may_overlap =
          related && problem.allow_storage_overlap() && !problem.storage_overlap_forbidden(a, b);

      // Eq. 4-7: disjunctive separation with big-M.
      const VarId c1 = model.add_binary();
      const VarId c2 = model.add_binary();
      const VarId c3 = model.add_binary();
      const VarId c4 = model.add_binary();
      LinearExpr e4 = 1.0 * va.b_ri + (-1.0) * vb.b_le + (-big_m) * c1;
      model.add_constraint(e4, Relation::kLessEqual, 0.0);
      LinearExpr e5 = 1.0 * va.b_le + (-1.0) * vb.b_ri + big_m * c2;
      model.add_constraint(e5, Relation::kGreaterEqual, 0.0);
      LinearExpr e6 = 1.0 * va.b_up + (-1.0) * vb.b_do + (-big_m) * c3;
      model.add_constraint(e6, Relation::kLessEqual, 0.0);
      LinearExpr e7 = 1.0 * va.b_do + (-1.0) * vb.b_up + big_m * c4;
      model.add_constraint(e7, Relation::kGreaterEqual, 0.0);

      LinearExpr sum = 1.0 * c1 + 1.0 * c2 + 1.0 * c3 + 1.0 * c4;
      PairRecord record{a, b, c1, c2, c3, c4, std::nullopt};
      if (may_overlap) {
        // Eq. 12: c1+c2+c3+c4 = 3 + c5; c5 = 1 permits full overlap.
        const VarId c5 = model.add_binary("c5_" + problem.task(a).name + "_" +
                                          problem.task(b).name);
        sum.add_term(c5, -1.0);
        model.add_constraint(sum, Relation::kEqual, 3.0);
        record.c5 = c5;
      } else {
        // Eq. 8.
        model.add_constraint(sum, Relation::kEqual, 3.0);
      }
      pair_records.push_back(record);
    }
  }

  model.set_objective(1.0 * w, Sense::kMinimize);

  // ---- warm start ----
  ilp::MilpOptions milp_options;
  milp_options.time_limit_seconds = options.time_limit_seconds;
  milp_options.max_nodes = options.max_nodes;
  milp_options.cancel = options.cancel;
  milp_options.threads = options.threads;
  milp_options.deterministic = options.deterministic;
  milp_options.pool = options.pool;
  milp_options.lp = options.lp;
  milp_options.cut_options = options.cuts;
  if (options.warm_start.has_value()) {
    const Placement& start = *options.warm_start;
    problem.validate_placement(start);
    std::vector<double> point(static_cast<std::size_t>(model.variable_count()), 0.0);
    for (int i = 0; i < problem.task_count(); ++i) {
      const TaskVars& tv = vars[static_cast<std::size_t>(i)];
      const DeviceInstance& chosen = start[static_cast<std::size_t>(i)];
      bool matched = false;
      for (const Candidate& c : tv.candidates) {
        if (c.instance == chosen) {
          point[static_cast<std::size_t>(c.var.index)] = 1.0;
          matched = true;
        }
      }
      require(matched, "warm-start placement uses an unknown candidate");
      const Rect fp = chosen.footprint();
      point[static_cast<std::size_t>(tv.b_le.index)] = fp.left() - 1;
      point[static_cast<std::size_t>(tv.b_ri.index)] = fp.right();
      point[static_cast<std::size_t>(tv.b_do.index)] = fp.bottom() - 1;
      point[static_cast<std::size_t>(tv.b_up.index)] = fp.top();
    }
    point[static_cast<std::size_t>(w.index)] = problem.max_pump_load(start);
    // Set c1..c5 consistently with the warm-start geometry: pick one
    // satisfied separation direction (its c = 0, others 1) or, for an
    // overlapping storage pair, c5 = 1 with all c = 1.
    for (const PairRecord& record : pair_records) {
      const Rect fa = start[static_cast<std::size_t>(record.a)].footprint();
      const Rect fb = start[static_cast<std::size_t>(record.b)].footprint();
      const bool cond1 = fa.right() <= fb.left() - 1;   // a left of b (wall between)
      const bool cond2 = fa.left() - 1 >= fb.right();   // a right of b
      const bool cond3 = fa.top() <= fb.bottom() - 1;   // a below b
      const bool cond4 = fa.bottom() - 1 >= fb.top();   // a above b
      double c1 = 1, c2 = 1, c3 = 1, c4 = 1, c5 = 1;
      if (cond1) {
        c1 = 0; c5 = 0;
      } else if (cond2) {
        c2 = 0; c5 = 0;
      } else if (cond3) {
        c3 = 0; c5 = 0;
      } else if (cond4) {
        c4 = 0; c5 = 0;
      } else {
        require(record.c5.has_value(),
                "warm start overlaps a pair that must be separated");
      }
      point[static_cast<std::size_t>(record.c1.index)] = c1;
      point[static_cast<std::size_t>(record.c2.index)] = c2;
      point[static_cast<std::size_t>(record.c3.index)] = c3;
      point[static_cast<std::size_t>(record.c4.index)] = c4;
      if (record.c5.has_value()) {
        point[static_cast<std::size_t>(record.c5->index)] = c5;
      }
    }
    require(model.is_feasible(point, 1e-5), "warm-start point is infeasible in the ILP");
    milp_options.initial_incumbent = std::move(point);
  }

  if (build_span.active()) {
    build_span.arg("vars", model.variable_count());
    build_span.arg("constraints", model.constraint_count());
    build_span.arg("warm_start", options.warm_start.has_value());
  }
  build_span.finish();

  const ilp::MilpResult result = ilp::solve_milp(model, milp_options);
  if (result.values.empty()) {
    log_warn("ilp mapper: no incumbent (status ", static_cast<int>(result.status), ")");
    return std::nullopt;
  }

  IlpMappingOutcome outcome;
  outcome.status = result.status;
  outcome.best_bound = result.best_bound;
  outcome.nodes = result.nodes;
  outcome.lp_iterations = result.lp_iterations;
  outcome.lp = result.lp;
  outcome.lp_basis = result.lp_basis;
  outcome.lp_pricing = result.lp_pricing;
  outcome.cuts = result.cuts;
  outcome.arena_bytes = result.arena_bytes;
  outcome.impact_branch_decisions = result.impact_branch_decisions;
  outcome.pseudocost_branch_decisions = result.pseudocost_branch_decisions;
  outcome.threads = result.threads;
  outcome.steals = result.steals;
  outcome.idle_seconds = result.idle_seconds;
  outcome.parallel_efficiency = result.parallel_efficiency;
  outcome.placement.assign(static_cast<std::size_t>(problem.task_count()),
                           DeviceInstance{arch::DeviceType{2, 2}, Point{0, 0}});
  for (int i = 0; i < problem.task_count(); ++i) {
    const TaskVars& tv = vars[static_cast<std::size_t>(i)];
    bool chosen = false;
    for (const Candidate& c : tv.candidates) {
      if (result.values[static_cast<std::size_t>(c.var.index)] > 0.5) {
        outcome.placement[static_cast<std::size_t>(i)] = c.instance;
        chosen = true;
        break;
      }
    }
    require(chosen, "ILP solution selects no candidate for task " + problem.task(i).name);
  }
  outcome.max_pump_load = problem.max_pump_load(outcome.placement);
  outcome.max_pump_load_setting2 = problem.max_pump_load_setting2(outcome.placement);
  return outcome;
}

}  // namespace fsyn::synth
