// Heuristic dynamic-device mapper: greedy construction + simulated
// annealing refinement.
//
// The paper solves the mapping ILP with Gurobi; this reproduction's exact
// solver (synth/ilp_mapper.hpp) handles PCR-sized instances, while the two
// large dilution cases use this heuristic.  Both optimize the identical
// objective — the largest per-valve peristaltic actuation count — under the
// identical feasibility predicate (MappingProblem::pair_feasible), so the
// comparison against the traditional baseline is apples-to-apples.  On
// small instances the heuristic is validated against the exact ILP optimum
// in tests and in bench_ablation_ilp.
#pragma once

#include <cstdint>
#include <optional>

#include "synth/mapping_problem.hpp"
#include "util/cancel.hpp"

namespace fsyn::synth {

struct HeuristicOptions {
  std::uint64_t seed = 2015;
  /// Randomized greedy restarts when the deterministic pass finds no
  /// feasible construction (tight chips).
  int greedy_retries = 12;
  /// Simulated-annealing move budget; 0 disables refinement (pure greedy).
  int sa_iterations = 20000;
  double initial_temperature = 40000.0;
  double final_temperature = 10.0;
  /// Cooperative cancellation, polled between greedy restarts and every few
  /// hundred annealing moves; `map_heuristic` throws CancelledError.
  CancelToken cancel;
  /// Optional incumbent placement to start from (e.g. a minimally repaired
  /// previous mapping during degraded re-synthesis).  Adopted instead of
  /// greedy construction when it is feasible for this problem; annealing
  /// then refines it.  Silently ignored when infeasible or wrongly sized.
  std::optional<Placement> warm_start;
};

struct MappingOutcome {
  Placement placement;
  int max_pump_load = 0;           ///< paper objective w, setting 1
  int max_pump_load_setting2 = 0;  ///< same placement, rescaled p_i
  long moves_tried = 0;
  long moves_accepted = 0;
};

/// Maps all tasks; returns std::nullopt when even greedy construction finds
/// no feasible placement (chip too small — the caller should enlarge it).
std::optional<MappingOutcome> map_heuristic(const MappingProblem& problem,
                                            const HeuristicOptions& options = {});

}  // namespace fsyn::synth
