#include "synth/heuristic_mapper.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace fsyn::synth {

namespace {

using arch::DeviceInstance;
using arch::DeviceType;

/// Annealing cost: lexicographic (max load, sum of squared loads) folded
/// into one number.  The squared term is what lets the search walk across
/// plateaus of equal max load toward better-balanced states.
struct Cost {
  long max_load = 0;
  long sum_squares = 0;

  /// The max term dominates any realistic squared-load delta (one mixing
  /// operation shifts sum_squares by ~1e4, max steps by >= 40*1e4), giving
  /// near-lexicographic behaviour while keeping deltas on a scale the
  /// annealing temperature can work with.
  double scalar() const {
    return static_cast<double>(max_load) * 1e4 + static_cast<double>(sum_squares);
  }
};

class Mapper {
 public:
  Mapper(const MappingProblem& problem, const HeuristicOptions& options)
      : problem_(problem), options_(options), rng_(options.seed),
        loads_(problem.chip().width(), problem.chip().height(), 0),
        candidate_cache_(static_cast<std::size_t>(problem.task_count())) {}

  std::optional<MappingOutcome> run() {
    options_.cancel.check("heuristic mapper");
    bool constructed = adopt_warm_start() || greedy_construct();
    for (int retry = 0; !constructed && retry < options_.greedy_retries; ++retry) {
      options_.cancel.check("heuristic mapper restart loop");
      // Randomized restarts: grow the tie-break noise so successive
      // attempts explore genuinely different layouts.
      noise_ = 400.0 * (retry + 1);
      loads_.fill(0);
      constructed = greedy_construct();
    }
    noise_ = 0.0;
    if (!constructed) return std::nullopt;
    anneal();
    problem_.validate_placement(placement_);

    MappingOutcome outcome;
    outcome.placement = placement_;
    outcome.max_pump_load = problem_.max_pump_load(placement_);
    outcome.max_pump_load_setting2 = problem_.max_pump_load_setting2(placement_);
    outcome.moves_tried = moves_tried_;
    outcome.moves_accepted = moves_accepted_;
    return outcome;
  }

 private:
  /// Adopts options_.warm_start as the initial placement when it is sized
  /// for this problem and feasible; annealing refines it from there.
  bool adopt_warm_start() {
    if (!options_.warm_start.has_value()) return false;
    const Placement& warm = *options_.warm_start;
    if (static_cast<int>(warm.size()) != problem_.task_count()) return false;
    try {
      problem_.validate_placement(warm);
    } catch (const std::exception&) {
      return false;
    }
    placement_ = warm;
    loads_.fill(0);
    for (int i = 0; i < problem_.task_count(); ++i) {
      apply_load(placement_[static_cast<std::size_t>(i)],
                 problem_.task(i).pump_actuations, +1);
    }
    return true;
  }

  /// Admissible instances for a task (delegates to the problem so the
  /// heuristic and the ILP share one candidate space), cached per task.
  const std::vector<DeviceInstance>& candidates(const MappingTask& task) {
    auto& slot = candidate_cache_[static_cast<std::size_t>(task.index)];
    if (slot.empty()) slot = problem_.candidates_for(task.index);
    return slot;
  }

  /// Returns -1 when feasible, else the index of a placed task that
  /// conflicts with `device` (used to pick backtracking victims).
  int first_conflict(int task_index, const DeviceInstance& device,
                     const std::vector<bool>& placed) const {
    for (int other = 0; other < problem_.task_count(); ++other) {
      if (other == task_index || !placed[static_cast<std::size_t>(other)]) continue;
      if (!problem_.pair_feasible(task_index, device, other,
                                  placement_[static_cast<std::size_t>(other)])) {
        return other;
      }
    }
    return -1;
  }

  bool feasible_against_placed(int task_index, const DeviceInstance& device,
                               const std::vector<bool>& placed) const {
    return first_conflict(task_index, device, placed) == -1;
  }

  void apply_load(const DeviceInstance& device, int pump_actuations, int sign) {
    if (pump_actuations == 0) return;
    for (const Point& cell : device.pump_cells()) {
      loads_.at(cell) += sign * pump_actuations;
    }
  }

  Cost current_cost() const {
    Cost cost;
    for (const int load : loads_) {
      cost.max_load = std::max(cost.max_load, static_cast<long>(load));
      cost.sum_squares += static_cast<long>(load) * load;
    }
    return cost;
  }

  /// Greedy with backtracking: place tasks in occupancy order, each at the
  /// position that minimizes (resulting max ring load, added squared load,
  /// distance to parents/co-parents).  When a task has no feasible
  /// position, the placed task that blocks the most of its candidates is
  /// ripped up and re-queued (bounded by `backtrack_budget`).
  bool greedy_construct() {
    placement_.assign(static_cast<std::size_t>(problem_.task_count()),
                      DeviceInstance{DeviceType{2, 2}, Point{0, 0}});
    std::vector<bool> placed(static_cast<std::size_t>(problem_.task_count()), false);

    std::vector<int> order(static_cast<std::size_t>(problem_.task_count()));
    std::iota(order.begin(), order.end(), 0);
    auto occupancy_before = [&](int a, int b) {
      const MappingTask& ta = problem_.task(a);
      const MappingTask& tb = problem_.task(b);
      if (ta.occupancy_begin() != tb.occupancy_begin()) {
        return ta.occupancy_begin() < tb.occupancy_begin();
      }
      return ta.start != tb.start ? ta.start < tb.start : a < b;
    };
    std::sort(order.begin(), order.end(), occupancy_before);

    // Instances a (task) may not take again after being ripped up for it —
    // prevents rip-up/re-place cycles within one construction.
    std::vector<std::vector<DeviceInstance>> banned(
        static_cast<std::size_t>(problem_.task_count()));
    int backtrack_budget = 40 * problem_.task_count();

    std::deque<int> pending(order.begin(), order.end());
    while (!pending.empty()) {
      options_.cancel.check("greedy construction");
      const int i = pending.front();
      pending.pop_front();
      const MappingTask& task = problem_.task(i);
      bool found = false;
      double best_score = 0.0;
      DeviceInstance best{DeviceType{2, 2}, Point{0, 0}};

      std::vector<int> conflict_votes(static_cast<std::size_t>(problem_.task_count()), 0);
      for (const DeviceInstance& candidate : candidates(task)) {
        const auto& ban_list = banned[static_cast<std::size_t>(i)];
        if (std::find(ban_list.begin(), ban_list.end(), candidate) != ban_list.end()) continue;
        const int conflict = first_conflict(i, candidate, placed);
        if (conflict >= 0) {
          ++conflict_votes[static_cast<std::size_t>(conflict)];
          continue;
        }
        long new_max = 0, added_sq = 0;
        for (const Point& cell : candidate.pump_cells()) {
          const long before = loads_.at(cell);
          const long after = before + task.pump_actuations;
          new_max = std::max(new_max, after);
          added_sq += after * after - before * before;
        }
        // Stay close to placed parents/children (routing convenience) and
        // to co-parents: their common child must later fit within the
        // routing distance of both.
        long gap_score = 0;
        for (int other = 0; other < problem_.task_count(); ++other) {
          if (!placed[static_cast<std::size_t>(other)]) continue;
          const int gap = candidate.footprint().chebyshev_gap(
              placement_[static_cast<std::size_t>(other)].footprint());
          if (problem_.parent_child(i, other)) {
            gap_score += 2 * gap;
          } else if (problem_.co_parents(i, other)) {
            gap_score += std::max(0, gap - problem_.routing_distance());
          }
        }
        // Load balance dominates; proximity breaks ties; `noise_` (set on
        // randomized restarts) perturbs choices to escape dead-end layouts.
        const double score = static_cast<double>(new_max) * 1e9 +
                             static_cast<double>(added_sq) * 10.0 +
                             static_cast<double>(gap_score) * 200.0 +
                             (noise_ > 0.0 ? rng_.next_double() * noise_ : 0.0);
        if (!found || score < best_score) {
          found = true;
          best = candidate;
          best_score = score;
        }
      }
      if (!found) {
        // Backtrack: rip up the placed task blocking the most candidates.
        int victim = -1;
        for (int other = 0; other < problem_.task_count(); ++other) {
          if (conflict_votes[static_cast<std::size_t>(other)] == 0) continue;
          if (victim == -1 || conflict_votes[static_cast<std::size_t>(other)] >
                                  conflict_votes[static_cast<std::size_t>(victim)]) {
            victim = other;
          }
        }
        if (victim < 0 || --backtrack_budget < 0) {
          log_info("greedy mapper: no feasible position for task '", task.name, "' on ",
                   problem_.chip().width(), "x", problem_.chip().height(), " chip",
                   victim < 0 ? "" : " (backtrack budget exhausted)");
          return false;
        }
        apply_load(placement_[static_cast<std::size_t>(victim)],
                   problem_.task(victim).pump_actuations, -1);
        placed[static_cast<std::size_t>(victim)] = false;
        banned[static_cast<std::size_t>(victim)].push_back(
            placement_[static_cast<std::size_t>(victim)]);
        // Retry the stuck task first, then the victim.
        pending.push_front(victim);
        pending.push_front(i);
        continue;
      }
      placement_[static_cast<std::size_t>(i)] = best;
      placed[static_cast<std::size_t>(i)] = true;
      apply_load(best, task.pump_actuations, +1);
    }
    return true;
  }

  /// Simulated annealing over single-task relocations.
  void anneal() {
    if (options_.sa_iterations <= 0 || problem_.task_count() < 2) return;
    std::vector<bool> all_placed(static_cast<std::size_t>(problem_.task_count()), true);

    Cost cost = current_cost();
    Placement best_placement = placement_;
    Cost best_cost = cost;

    const double t0 = options_.initial_temperature;
    const double t1 = std::max(options_.final_temperature, 1e-3);
    const double decay = std::pow(t1 / t0, 1.0 / options_.sa_iterations);
    double temperature = t0;

    for (int iter = 0; iter < options_.sa_iterations; ++iter, temperature *= decay) {
      if ((iter & 0xff) == 0) options_.cancel.check("annealing loop");
      const int i = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(problem_.task_count())));
      const MappingTask& task = problem_.task(i);

      // Propose a random admissible instance for task i.
      const auto& pool = candidates(task);
      if (pool.empty()) continue;
      const DeviceInstance proposal = pool[rng_.next_below(pool.size())];
      ++moves_tried_;
      if (proposal == placement_[static_cast<std::size_t>(i)]) continue;

      const DeviceInstance old = placement_[static_cast<std::size_t>(i)];
      // pair checks skip task i itself, so no tentative assignment needed.
      if (!feasible_against_placed(i, proposal, all_placed)) continue;

      apply_load(old, task.pump_actuations, -1);
      apply_load(proposal, task.pump_actuations, +1);
      const Cost new_cost = current_cost();
      const double delta = new_cost.scalar() - cost.scalar();
      if (delta <= 0.0 || rng_.next_double() < std::exp(-delta / temperature)) {
        placement_[static_cast<std::size_t>(i)] = proposal;
        cost = new_cost;
        ++moves_accepted_;
        if (cost.scalar() < best_cost.scalar()) {
          best_cost = cost;
          best_placement = placement_;
        }
      } else {
        apply_load(proposal, task.pump_actuations, -1);
        apply_load(old, task.pump_actuations, +1);
      }
    }

    placement_ = best_placement;
    // Rebuild loads for the final placement.
    loads_.fill(0);
    for (int i = 0; i < problem_.task_count(); ++i) {
      apply_load(placement_[static_cast<std::size_t>(i)], problem_.task(i).pump_actuations, +1);
    }
  }

  const MappingProblem& problem_;
  HeuristicOptions options_;
  Rng rng_;
  Grid<int> loads_;
  Placement placement_;
  std::vector<std::vector<DeviceInstance>> candidate_cache_;
  double noise_ = 0.0;
  long moves_tried_ = 0;
  long moves_accepted_ = 0;
};

}  // namespace

std::optional<MappingOutcome> map_heuristic(const MappingProblem& problem,
                                            const HeuristicOptions& options) {
  obs::Span span("synth", "map_heuristic");
  if (span.active()) {
    span.arg("tasks", problem.task_count());
    span.arg("seed", options.seed);
  }
  Mapper mapper(problem, options);
  std::optional<MappingOutcome> outcome = mapper.run();
  if (span.active()) {
    span.arg("feasible", outcome.has_value());
    if (outcome.has_value()) {
      span.arg("moves_tried", outcome->moves_tried);
      span.arg("max_pump_load", outcome->max_pump_load);
    }
  }
  return outcome;
}

}  // namespace fsyn::synth
