// Reliability-aware synthesis — the paper's Algorithm 1, end to end.
//
//   L1   read sequencing graph + scheduling result
//   L2   build the virtual valve-centered architecture
//   L3-9 dynamic-device mapping (ILP or heuristic), re-run with storage
//        overlaps forbidden whenever the free-space rule fails
//   L10-19 route all transports with rip-up & re-route through storages
//   L20  remove never-actuated virtual valves
//
// The public entry point is `synthesize`; it returns placements, routed
// paths, both actuation ledgers (settings 1 and 2) and the headline metrics
// of Table 1 (vs_max, peristalsis-only vs_max, #v).
#pragma once

#include <optional>

#include "route/router.hpp"
#include "sim/actuation.hpp"
#include "synth/heuristic_mapper.hpp"
#include "synth/ilp_mapper.hpp"
#include "synth/mapping_problem.hpp"

namespace fsyn::synth {

enum class MapperKind { kHeuristic, kIlp };

struct SynthesisOptions {
  MapperKind mapper = MapperKind::kHeuristic;
  HeuristicOptions heuristic;
  IlpMapperOptions ilp;
  /// Seed the ILP search with the heuristic's placement (strongly
  /// recommended: it bounds the branch & bound from the first node).
  bool warm_start_ilp = true;

  /// Square valve-matrix side; unset = Architecture::sized_for heuristic.
  /// Setting this disables the chip-size sweep.
  std::optional<int> grid_size;
  double chip_slack = 0.55;
  /// The chip is enlarged and synthesis retried this many times when
  /// mapping or routing fails for lack of space.
  int max_chip_growth = 10;
  /// After the first feasible size, this many larger sizes are also tried,
  /// and smaller sizes are probed until the first infeasible one.  Among
  /// all successes the result minimizing `vs1_max + valve_weight * #v` is
  /// kept: bigger matrices spread actuations (lower vs) but implement more
  /// valves; the weight picks the knee of that trade-off.  0 disables the
  /// sweep and keeps the first success.
  int chip_sweep = 3;
  double valve_weight = 0.5;
  /// Bound on Algorithm-1 L4-L9 iterations (storage-overlap forbidding).
  int max_refinement_iterations = 16;
  /// When routing fails, remap the same chip with a different heuristic
  /// seed this many times before growing the matrix.
  int routing_retries = 3;

  /// Ablation switches (paper configuration: both true).
  bool allow_storage_overlap = true;
  bool routing_convenient = true;

  /// Fault tolerance (extension): worn-out valves to synthesize around.
  /// Requires an explicit `grid_size` (dead-valve coordinates are tied to
  /// one matrix).
  std::vector<Point> dead_valves;

  route::RouterOptions router;

  /// Cooperative cancellation (deadline or explicit cancel, see
  /// util/cancel.hpp).  Polled between chip-size attempts, refinement
  /// iterations and inside both mappers; `synthesize` throws
  /// CancelledError when the token fires.  Inert by default.
  CancelToken cancel;
};

struct SynthesisResult {
  int chip_width = 0;
  int chip_height = 0;
  Placement placement;
  route::RoutingResult routing;

  sim::ActuationLedger ledger_setting1;
  sim::ActuationLedger ledger_setting2;

  // Table-1 metrics.
  int vs1_max = 0;        ///< largest total actuations, setting 1
  int vs1_pump = 0;       ///< ... peristalsis-only part (parenthesized)
  int vs2_max = 0;        ///< setting 2
  int vs2_pump = 0;
  int valve_count = 0;    ///< #v after removing non-actuated virtual valves

  std::int64_t mapper_effort = 0;  ///< SA moves or B&B nodes
  int refinement_iterations = 0;   ///< Algorithm-1 L4-L9 re-runs
  int chip_growths = 0;
  double runtime_seconds = 0.0;

  // MILP solver counters (ILP mapper mode only; zeros for the heuristic),
  // accumulated over the refinement iterations of the winning attempt.
  std::int64_t milp_nodes = 0;
  std::int64_t milp_lp_iterations = 0;
  ilp::LpSolverStats milp_lp;
  /// LP engine configuration the MILP ran with (echoed for telemetry).
  ilp::BasisKind milp_basis = ilp::BasisKind::kSparseLu;
  ilp::PricingRule milp_pricing = ilp::PricingRule::kDevex;
  // Root cut loop + node store + branching telemetry, accumulated like the
  // node counters.
  ilp::CutStats milp_cuts;
  std::int64_t milp_arena_bytes = 0;  ///< max over the attempt's solves
  std::int64_t milp_impact_branch_decisions = 0;
  std::int64_t milp_pseudocost_branch_decisions = 0;
  // Parallel-search telemetry (zeros when the search ran serially).
  int milp_threads = 0;            ///< max workers used by any solve
  std::int64_t milp_steals = 0;    ///< summed cross-worker node steals
  double milp_idle_seconds = 0.0;
};

/// Runs reliability-aware synthesis for a scheduled assay.
/// Throws fsyn::Error when no feasible synthesis exists within the options'
/// growth limits.
SynthesisResult synthesize(const assay::SequencingGraph& graph,
                           const sched::Schedule& schedule,
                           const SynthesisOptions& options = {});

}  // namespace fsyn::synth
