// Monte Carlo chip-lifetime estimation.
//
// Samples N virtual chips: every implemented valve draws a time-to-failure
// from the LifetimeModel, the chip's lifetime is the minimum (the chip dies
// with its first worn-out valve) and the argmin valve is recorded, giving
// first-failure attribution alongside MTTF and survival quantiles.
//
// Trials are independent, so they parallelize embarrassingly: blocks of
// trials run on the svc thread pool (or self-managed workers, or inline).
// Results are **bit-identical regardless of thread count**: each trial
// seeds its own Rng from (seed, trial index), workers write into disjoint
// slices of preallocated arrays, and the reduction runs sequentially in
// trial order on the calling thread.  Cancellation is cooperative: blocks
// poll the token between trials and the estimator throws CancelledError.
#pragma once

#include <vector>

#include "obs/histogram.hpp"
#include "rel/lifetime_model.hpp"
#include "svc/thread_pool.hpp"
#include "util/cancel.hpp"

namespace fsyn::rel {

struct MonteCarloOptions {
  int trials = 1000;
  std::uint64_t seed = 42;
  LifetimeModel model;
  /// Run trial blocks on this pool when set (does not own it).  The caller
  /// must not run the estimator *from a task of the same pool* — blocks
  /// waiting for pooled blocks deadlocks once estimates outnumber workers.
  svc::ThreadPool* pool = nullptr;
  /// Self-managed worker threads when no pool is given; 1 = inline.
  int threads = 1;
  /// Trials per parallel work item.
  int block_size = 256;
  CancelToken cancel;
};

/// One bar of the first-failure histogram.
struct FirstFailure {
  int valve_id = -1;
  Point cell;
  sim::ValveRole role = sim::ValveRole::kControl;
  int per_run_actuations = 0;
  int count = 0;  ///< trials in which this valve failed first
};

struct LifetimeEstimate {
  int trials = 0;
  int valve_count = 0;     ///< implemented valves subject to failure
  double mttf_runs = 0.0;  ///< mean assay runs until first valve failure
  double p10_runs = 0.0;
  double p50_runs = 0.0;
  double p90_runs = 0.0;
  double min_runs = 0.0;
  double max_runs = 0.0;
  /// Which valve failed first, per trial, aggregated; descending count,
  /// ties by ascending valve id.  Covers every valve that ever failed first.
  std::vector<FirstFailure> first_failures;

  // Timing (not part of the deterministic report surface).
  double elapsed_seconds = 0.0;
  double trials_per_second = 0.0;
  obs::HistogramSnapshot block_latency;  ///< per-block wall clock
};

/// Estimates the lifetime of a chip whose implemented valves carry the
/// given per-run wear.  `valves` must be non-empty with positive loads.
LifetimeEstimate estimate_lifetime(const std::vector<sim::ValveWear>& valves,
                                   const MonteCarloOptions& options);

/// Convenience overload: valves taken from an actuation ledger.
LifetimeEstimate estimate_lifetime(const sim::ActuationLedger& ledger,
                                   const MonteCarloOptions& options);

}  // namespace fsyn::rel
