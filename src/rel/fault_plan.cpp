#include "rel/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fsyn::rel {

const char* to_string(FaultMode mode) {
  return mode == FaultMode::kStuckClosed ? "stuck-closed" : "stuck-open";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream events(spec);
  std::string token;
  while (std::getline(events, token, ';')) {
    if (token.empty()) continue;
    FaultEvent event;
    // Split off ":mode" and "@run" suffixes (order: x,y@run:mode).
    std::string body = token;
    const std::size_t colon = body.find(':');
    if (colon != std::string::npos) {
      const std::string mode = body.substr(colon + 1);
      if (mode == "closed") event.mode = FaultMode::kStuckClosed;
      else if (mode == "open") event.mode = FaultMode::kStuckOpen;
      else throw Error("fault plan: unknown mode '" + mode + "' (want closed|open)");
      body = body.substr(0, colon);
    }
    const std::size_t at = body.find('@');
    if (at != std::string::npos) {
      event.at_run = parse_int(body.substr(at + 1));
      check_input(event.at_run >= 0, "fault plan: at_run must be >= 0");
      body = body.substr(0, at);
    }
    const std::size_t comma = body.find(',');
    check_input(comma != std::string::npos, "fault plan: valve must be 'x,y'");
    event.valve = Point{parse_int(body.substr(0, comma)), parse_int(body.substr(comma + 1))};
    check_input(event.valve.x >= 0 && event.valve.y >= 0,
                "fault plan: valve coordinates must be >= 0 in '" + token + "'");
    for (const FaultEvent& seen : plan.events) {
      check_input(seen.valve != event.valve || seen.at_run != event.at_run,
                  "fault plan: duplicate event for valve " + std::to_string(event.valve.x) +
                      "," + std::to_string(event.valve.y) + "@" +
                      std::to_string(event.at_run));
    }
    plan.events.push_back(event);
  }
  check_input(!plan.events.empty(), "fault plan: no events in '" + spec + "'");
  return plan;
}

void FaultPlan::validate(int width, int height) const {
  for (const FaultEvent& event : events) {
    check_input(event.valve.x >= 0 && event.valve.x < width && event.valve.y >= 0 &&
                    event.valve.y < height,
                "fault plan: valve " + std::to_string(event.valve.x) + "," +
                    std::to_string(event.valve.y) + " is outside the " +
                    std::to_string(width) + "x" + std::to_string(height) + " valve matrix");
  }
}

std::string FaultPlan::to_text() const {
  std::string out;
  for (const FaultEvent& event : events) {
    if (!out.empty()) out += ';';
    out += std::to_string(event.valve.x) + "," + std::to_string(event.valve.y) + "@" +
           std::to_string(event.at_run) + ":" +
           (event.mode == FaultMode::kStuckClosed ? "closed" : "open");
  }
  return out;
}

FaultPlan top_wear_plan(const sim::ActuationLedger& ledger, int k, const LifetimeModel& model) {
  check_input(k > 0, "top-wear plan needs k >= 1");
  std::vector<sim::ValveWear> valves = sim::valve_wear(ledger);
  check_input(!valves.empty(), "ledger has no actuated valves to fail");
  std::sort(valves.begin(), valves.end(), [](const sim::ValveWear& a, const sim::ValveWear& b) {
    if (a.total() != b.total()) return a.total() > b.total();
    return a.valve_id < b.valve_id;
  });
  FaultPlan plan;
  const int count = std::min<int>(k, static_cast<int>(valves.size()));
  for (int i = 0; i < count; ++i) {
    const sim::ValveWear& valve = valves[static_cast<std::size_t>(i)];
    FaultEvent event;
    event.valve = valve.cell;
    event.mode = FaultMode::kStuckClosed;
    event.at_run = static_cast<int>(model.params_for(valve.role()).characteristic_actuations /
                                    valve.total());
    plan.events.push_back(event);
  }
  return plan;
}

}  // namespace fsyn::rel
