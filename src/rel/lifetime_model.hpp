// Stochastic per-valve lifetime model.
//
// The paper's objective — minimize the largest per-valve peristaltic
// actuation count — is a proxy for chip lifetime: PDMS membrane valves
// endure only a few thousand actuations [4] and the chip dies with its
// first worn-out valve (a series system).  This model turns the proxy into
// the quantity itself: each implemented valve draws a time-to-failure from
// a Weibull distribution whose scale is its endurance *in actuations*, and
// dividing by the valve's per-assay-run actuation count (sim::ValveWear)
// converts it into "assay runs until this valve fails".
//
// Two actuation classes are parameterized separately: pump valves flex
// fully against the flow channel every peristalsis cycle, while control
// valves only latch open/closed for transports, so their characteristic
// endurances differ.  Weibull shape k models wear-out physics: k = 1 is
// memoryless (exponential — used by the closed-form test oracle), k > 1 is
// the fatigue-dominated regime reported for PDMS membranes.
#pragma once

#include "sim/wear_model.hpp"
#include "util/rng.hpp"

namespace fsyn::rel {

/// Weibull time-to-failure parameters of one actuation class.
struct ClassParams {
  /// Characteristic life eta, in actuations (63.2% of valves have failed
  /// after this many actuations).
  double characteristic_actuations = 5000.0;
  /// Weibull shape k; 1 = exponential (memoryless), >1 = wear-out.
  double shape = 3.0;
};

struct LifetimeModel {
  ClassParams pump{5000.0, 3.0};      ///< peristaltic duty, full-stroke flexing
  ClassParams control{20000.0, 3.0};  ///< open/close latching only

  const ClassParams& params_for(sim::ValveRole role) const {
    return role == sim::ValveRole::kPump ? pump : control;
  }

  /// Samples this valve's lifetime in assay runs: Weibull TTF in actuations
  /// (class of the valve's role) divided by its per-run actuation total.
  /// The valve must have a positive per-run load.
  double sample_runs_to_failure(const sim::ValveWear& valve, Rng& rng) const;
};

}  // namespace fsyn::rel
