// Valve fault plans.
//
// A fault plan is an ordered list of valve failures to inject into a
// synthesized chip: which virtual valve dies, in which mode, and after how
// many assay runs.  The reliability engine applies the events in order,
// re-synthesizing the assay around the accumulated dead set after each one
// (engine.hpp) — the degradation story a valve-centered grid enables, after
// Su & Chakrabarty's reconfiguration-around-faults and the FPVA
// fault-model work (PAPERS.md).
//
// Both stuck modes remove the valve from service: a stuck-open valve can
// neither pump nor act as a device wall, a stuck-closed valve additionally
// blocks flow, so the conservative treatment — exclude the cell from every
// device footprint and from routing — covers either.  The mode is kept for
// reporting and for future washing/leakage analyses.
//
// Text format (CLI `--fault-plan`): semicolon-separated events
//   x,y[@run][:closed|:open]
// e.g. "4,5@120:closed;6,5@260:open".  `@run` defaults to 0 (before the
// first run), the mode defaults to closed.
#pragma once

#include <string>
#include <vector>

#include "rel/lifetime_model.hpp"
#include "sim/actuation.hpp"

namespace fsyn::rel {

enum class FaultMode { kStuckClosed, kStuckOpen };

const char* to_string(FaultMode mode);

struct FaultEvent {
  Point valve;
  FaultMode mode = FaultMode::kStuckClosed;
  int at_run = 0;  ///< assay runs completed when the fault strikes
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Parses the text format above; throws fsyn::Error on bad syntax,
  /// negative coordinates, or duplicate `x,y@run` entries (the same valve
  /// cannot die twice at the same run — almost always a typo).
  static FaultPlan parse(const std::string& spec);
  /// Round-trips back to the text format.
  std::string to_text() const;

  /// Checks every event against a chip outline; throws fsyn::Error naming
  /// the offending event when a valve lies outside [0,width) x [0,height).
  /// Parsing cannot do this (the plan text carries no chip dimensions), so
  /// the reliability engine and the fleet validate against the synthesized
  /// matrix before injecting anything.
  void validate(int width, int height) const;
};

/// Builds the canonical stress plan: the k highest-wear valves of the
/// ledger fail in descending wear order (ties: ascending valve id), each at
/// its expected wear-out run under `model` (characteristic life of its
/// class divided by its per-run load).
FaultPlan top_wear_plan(const sim::ActuationLedger& ledger, int k,
                        const LifetimeModel& model = {});

}  // namespace fsyn::rel
