#include "rel/lifetime_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fsyn::rel {

double LifetimeModel::sample_runs_to_failure(const sim::ValveWear& valve, Rng& rng) const {
  require(valve.total() > 0, "a valve with no actuations cannot be sampled");
  const ClassParams& params = params_for(valve.role());
  check_input(params.characteristic_actuations > 0.0 && params.shape > 0.0,
              "Weibull parameters must be positive");
  // Inverse-CDF sampling: F(t) = 1 - exp(-(t/eta)^k), U uniform in [0, 1).
  // -log1p(-U) is -ln(1-U) without cancellation near U = 0.
  double u = rng.next_double();
  const double ttf_actuations =
      params.characteristic_actuations * std::pow(-std::log1p(-u), 1.0 / params.shape);
  return ttf_actuations / static_cast<double>(valve.total());
}

}  // namespace fsyn::rel
