// Reliability engine: lifetime estimation + fault injection + degraded
// re-synthesis, over a complete synthesis result.
//
// `analyze` answers the question the paper's objective is a proxy for:
// *how long does the synthesized chip live, and what happens when a valve
// dies?*  It runs three stages:
//
//  1. Monte Carlo lifetime of the healthy mapping (monte_carlo.hpp) —
//     MTTF, survival quantiles and first-failure valve attribution;
//  2. optionally the same estimate for the traditional dedicated-device
//     design of the assay (baseline/traditional.hpp), quantifying the
//     paper's headline claim as a lifetime ratio instead of an actuation
//     ratio;
//  3. for each event of a FaultPlan, degraded re-synthesis: the accumulated
//     dead valves are threaded through MappingProblem (forbidden footprint
//     cells + routing obstacles), the chip size is pinned to the healthy
//     matrix, the ILP mapper is warm-started from the previous placement
//     whenever that placement is still feasible for the degraded problem,
//     and the round reports a feasible repaired mapping (with its own
//     lifetime estimate) or an infeasible verdict.
//
// The report serializes to JSON (`to_json`).  With `include_timing` off
// (the default) the document is a pure function of (assay, options, seed),
// so repeated runs are bit-identical — the property the CI smoke asserts.
#pragma once

#include <optional>
#include <string>

#include "rel/fault_plan.hpp"
#include "rel/monte_carlo.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::rel {

struct ReliabilityOptions {
  MonteCarloOptions monte_carlo;
  /// Options for degraded re-synthesis; grid_size and dead_valves are
  /// overridden per round (pinned to the healthy chip + accumulated dead
  /// set).  Mapper choice, seeds and limits are honoured.
  synth::SynthesisOptions synthesis;
  /// Faults to inject, in order.  Empty + inject_top == 0 skips stage 3.
  FaultPlan faults;
  /// When `faults` is empty: auto-derive a top_wear_plan of this many
  /// valves from the healthy setting-1 ledger.
  int inject_top = 0;
  /// Also estimate the traditional dedicated-device design's lifetime.
  bool compare_static = false;
  /// Scheduling spec, echoed into the report and used to build the
  /// traditional baseline's policy.
  int policy_increments = 0;
  bool asap = false;
};

/// One fault event's repair attempt.
struct RepairRound {
  FaultEvent fault;
  bool feasible = false;      ///< a remapped chip avoiding the dead set exists
  bool warm_started = false;  ///< ILP seeded with the previous placement
  std::string verdict;        ///< "remapped" or the infeasibility reason
  int vs1_max = 0;
  int valve_count = 0;
  std::optional<LifetimeEstimate> lifetime;  ///< of the repaired mapping
  double resynthesis_seconds = 0.0;
};

struct ReliabilityReport {
  std::string assay;
  int policy_increments = 0;
  bool asap = false;
  int chip_width = 0;
  int chip_height = 0;
  std::uint64_t seed = 0;
  int trials = 0;
  LifetimeModel model;

  LifetimeEstimate healthy;
  /// Traditional dedicated-device design, when compare_static was set.
  std::optional<LifetimeEstimate> static_baseline;
  int static_total_valves = 0;
  int static_max_actuations = 0;

  std::vector<RepairRound> rounds;
  /// Expected total service (assay runs): die-at-first-failure vs
  /// repair-after-each-injected-fault (healthy MTTF plus each feasible
  /// repaired mapping's MTTF — the renewal approximation documented in
  /// docs/reliability.md).
  double expected_runs_no_repair = 0.0;
  double expected_runs_with_repair = 0.0;

  obs::HistogramSnapshot resynthesis_latency;

  /// Deterministic JSON document; timing fields (trials/sec, latency
  /// histograms, re-synthesis seconds) only with include_timing.
  std::string to_json(bool include_timing = false) const;
};

/// Runs the engine over a synthesized mapping.  `healthy` must carry a
/// successful routing and the ledgers for `graph`/`schedule`.
ReliabilityReport analyze(const assay::SequencingGraph& graph, const sched::Schedule& schedule,
                          const synth::SynthesisResult& healthy,
                          const ReliabilityOptions& options);

/// Minimal repair of a placement for a degraded problem: devices whose
/// footprints touch dead valves move to the first pairwise-feasible
/// candidate, everything else keeps its position.  When one exists, the
/// result is a feasible warm start preserving most of the previous
/// solution — what makes repair rounds cheap for both mappers.  Used by
/// the engine's fault-injection rounds and the fleet's live re-synthesis.
std::optional<synth::Placement> repair_placement(const synth::MappingProblem& problem,
                                                 const synth::Placement& previous);

}  // namespace fsyn::rel
