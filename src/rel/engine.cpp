#include "rel/engine.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <limits>
#include <sstream>

#include "baseline/traditional.hpp"
#include "obs/trace.hpp"
#include "sched/list_scheduler.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::rel {

namespace {

using Clock = std::chrono::steady_clock;

std::string json_str(const std::string& text) {
  std::string out;
  obs::append_json_string(out, text);
  return out;
}

/// Per-valve wear of the traditional dedicated-device design, for the
/// static-vs-dynamic lifetime comparison.  Valve ids are synthetic (the
/// design has no grid); loads follow the ValveCostModel conventions
/// documented in DESIGN.md §3.3 and docs/reliability.md: pump valves carry
/// their mixer's full peristaltic duty, control valves two transports
/// (fill + drain) per bound operation, detector and storage valves their
/// access traffic.
std::vector<sim::ValveWear> static_design_wear(const baseline::TraditionalDesign& design,
                                               const assay::SequencingGraph& graph) {
  std::vector<sim::ValveWear> wear;
  int id = 0;
  const auto add = [&](int pump, int control) {
    sim::ValveWear valve;
    valve.valve_id = id;
    valve.cell = Point{id, 0};
    valve.pump = pump;
    valve.control = control;
    if (valve.total() > 0) wear.push_back(valve);
    ++id;
  };
  const baseline::ValveCostModel& model = design.model;
  for (const baseline::MixerInstance& mixer : design.mixers) {
    const int ops = static_cast<int>(mixer.bound_ops.size());
    const int pump_load = ops * model.pump_actuations_per_mix;
    for (int v = 0; v < model.pump_valves_per_mixer; ++v) add(pump_load, 0);
    const int control_valves = model.mixer_valves(mixer.volume) - model.pump_valves_per_mixer;
    const int control_load = ops * model.control_actuations_per_transport * 2;
    for (int v = 0; v < control_valves; ++v) add(0, control_load);
  }
  if (design.detectors > 0) {
    const int detect_ops = graph.count(assay::OpKind::kDetect);
    const int per_detector = (detect_ops + design.detectors - 1) / design.detectors;
    const int load = per_detector * model.control_actuations_per_transport * 2;
    for (int d = 0; d < design.detectors; ++d) {
      for (int v = 0; v < model.detector_valves; ++v) add(0, load);
    }
  }
  const int storage_load = model.control_actuations_per_transport * 2;
  for (int c = 0; c < design.storage_cells; ++c) {
    for (int v = 0; v < model.valves_per_storage_cell; ++v) add(0, storage_load);
  }
  return wear;
}

void emit_estimate(std::ostringstream& os, const LifetimeEstimate& estimate,
                   bool include_timing, const std::string& indent);

}  // namespace

std::optional<synth::Placement> repair_placement(const synth::MappingProblem& problem,
                                                 const synth::Placement& previous) {
  if (static_cast<int>(previous.size()) != problem.task_count()) return std::nullopt;
  synth::Placement placement = previous;
  for (int i = 0; i < problem.task_count(); ++i) {
    if (problem.placement_allowed(i, placement[static_cast<std::size_t>(i)])) continue;
    bool placed = false;
    for (const arch::DeviceInstance& candidate : problem.candidates_for(i)) {
      bool feasible = true;
      for (int j = 0; j < problem.task_count() && feasible; ++j) {
        if (j == i) continue;
        feasible = problem.pair_feasible(i, candidate, j, placement[static_cast<std::size_t>(j)]);
      }
      if (feasible) {
        placement[static_cast<std::size_t>(i)] = candidate;
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  try {
    problem.validate_placement(placement);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return placement;
}

namespace {

void emit_estimate(std::ostringstream& os, const LifetimeEstimate& estimate,
                   bool include_timing, const std::string& indent) {
  os << "{\n";
  os << indent << "  \"trials\": " << estimate.trials << ",\n";
  os << indent << "  \"valve_count\": " << estimate.valve_count << ",\n";
  os << indent << "  \"mttf_runs\": " << estimate.mttf_runs << ",\n";
  os << indent << "  \"p10_runs\": " << estimate.p10_runs << ",\n";
  os << indent << "  \"p50_runs\": " << estimate.p50_runs << ",\n";
  os << indent << "  \"p90_runs\": " << estimate.p90_runs << ",\n";
  os << indent << "  \"min_runs\": " << estimate.min_runs << ",\n";
  os << indent << "  \"max_runs\": " << estimate.max_runs << ",\n";
  os << indent << "  \"first_failures\": [";
  for (std::size_t i = 0; i < estimate.first_failures.size(); ++i) {
    const FirstFailure& bar = estimate.first_failures[i];
    if (i > 0) os << ',';
    os << "\n" << indent << "    {\"valve_id\": " << bar.valve_id << ", \"cell\": ["
       << bar.cell.x << ", " << bar.cell.y << "], \"role\": \"" << sim::to_string(bar.role)
       << "\", \"per_run_actuations\": " << bar.per_run_actuations << ", \"count\": "
       << bar.count << '}';
  }
  if (!estimate.first_failures.empty()) os << "\n" << indent << "  ";
  os << ']';
  if (include_timing) {
    os << ",\n" << indent << "  \"elapsed_seconds\": " << estimate.elapsed_seconds << ",\n";
    os << indent << "  \"trials_per_second\": " << estimate.trials_per_second << ",\n";
    os << indent << "  \"block_latency\": " << estimate.block_latency.to_json();
  }
  os << "\n" << indent << '}';
}

}  // namespace

ReliabilityReport analyze(const assay::SequencingGraph& graph, const sched::Schedule& schedule,
                          const synth::SynthesisResult& healthy,
                          const ReliabilityOptions& options) {
  check_input(healthy.routing.success, "reliability analysis needs a routed synthesis result");
  check_input(healthy.chip_width > 0 && healthy.chip_height > 0,
              "healthy result has no chip dimensions");

  obs::Span span("rel", "analyze");
  if (span.active()) {
    span.arg("assay", graph.name());
    span.arg("trials", options.monte_carlo.trials);
  }

  ReliabilityReport report;
  report.assay = graph.name();
  report.policy_increments = options.policy_increments;
  report.asap = options.asap;
  report.chip_width = healthy.chip_width;
  report.chip_height = healthy.chip_height;
  report.seed = options.monte_carlo.seed;
  report.trials = options.monte_carlo.trials;
  report.model = options.monte_carlo.model;

  // Stage 1: lifetime of the healthy mapping (setting 1, the conservative
  // per-valve actuation account).
  report.healthy = estimate_lifetime(healthy.ledger_setting1, options.monte_carlo);

  // Stage 2: the traditional dedicated-device design as the static anchor.
  if (options.compare_static) {
    const sched::Policy policy = sched::make_policy(graph, options.policy_increments);
    const baseline::TraditionalDesign design =
        baseline::build_traditional(graph, policy, schedule);
    report.static_total_valves = design.total_valves;
    report.static_max_actuations = design.max_valve_actuations;
    report.static_baseline =
        estimate_lifetime(static_design_wear(design, graph), options.monte_carlo);
  }

  // Stage 3: fault injection + degraded re-synthesis.
  FaultPlan plan = options.faults;
  if (plan.empty() && options.inject_top > 0) {
    plan = top_wear_plan(healthy.ledger_setting1, options.inject_top,
                         options.monte_carlo.model);
  }
  plan.validate(healthy.chip_width, healthy.chip_height);
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at_run < b.at_run; });

  obs::LatencyHistogram resynthesis_latency;
  std::vector<Point> dead;
  synth::Placement previous = healthy.placement;
  for (const FaultEvent& event : plan.events) {
    options.monte_carlo.cancel.check("fault-injection rounds");
    dead.push_back(event.valve);

    RepairRound round;
    round.fault = event;

    synth::SynthesisOptions degraded = options.synthesis;
    // The chip is already manufactured: pin the healthy matrix (this also
    // disables the size sweep) and thread the accumulated dead set through
    // MappingProblem into both mappers and the router.
    degraded.grid_size = healthy.chip_width;
    degraded.dead_valves = dead;
    if (!degraded.cancel.valid()) degraded.cancel = options.monte_carlo.cancel;

    // Warm start: minimally repair the previous placement for the degraded
    // problem; when that succeeds the mapper starts from an incumbent that
    // keeps most healthy positions.
    {
      arch::Architecture chip(healthy.chip_width, healthy.chip_height);
      synth::MappingProblem probe =
          synth::MappingProblem::build(graph, schedule, std::move(chip));
      probe.set_allow_storage_overlap(degraded.allow_storage_overlap);
      probe.set_routing_convenient(degraded.routing_convenient);
      probe.set_dead_valves(dead);
      if (auto warm = repair_placement(probe, previous)) {
        if (degraded.mapper == synth::MapperKind::kIlp) {
          degraded.ilp.warm_start = std::move(*warm);
        } else {
          degraded.heuristic.warm_start = std::move(*warm);
        }
        round.warm_started = true;
      }
    }

    obs::Span round_span("rel", "resynthesize");
    if (round_span.active()) {
      round_span.arg("valve_x", event.valve.x);
      round_span.arg("valve_y", event.valve.y);
      round_span.arg("dead", dead.size());
    }
    const Clock::time_point started = Clock::now();
    try {
      synth::SynthesisResult repaired = synth::synthesize(graph, schedule, degraded);
      round.feasible = true;
      round.verdict = "remapped";
      round.vs1_max = repaired.vs1_max;
      round.valve_count = repaired.valve_count;
      round.lifetime = estimate_lifetime(repaired.ledger_setting1, options.monte_carlo);
      previous = repaired.placement;
    } catch (const CancelledError&) {
      throw;
    } catch (const Error& e) {
      round.feasible = false;
      round.verdict = e.what();
      log_info("rel: re-synthesis around (", event.valve.x, ",", event.valve.y,
               ") infeasible: ", e.what());
    }
    const auto elapsed = Clock::now() - started;
    round.resynthesis_seconds = std::chrono::duration<double>(elapsed).count();
    resynthesis_latency.record(elapsed);
    if (round_span.active()) round_span.arg("feasible", round.feasible);
    report.rounds.push_back(std::move(round));
  }
  report.resynthesis_latency = resynthesis_latency.snapshot();

  report.expected_runs_no_repair = report.healthy.mttf_runs;
  report.expected_runs_with_repair = report.healthy.mttf_runs;
  for (const RepairRound& round : report.rounds) {
    if (round.feasible && round.lifetime.has_value()) {
      report.expected_runs_with_repair += round.lifetime->mttf_runs;
    }
  }
  if (span.active()) {
    span.arg("mttf_runs", report.healthy.mttf_runs);
    span.arg("rounds", report.rounds.size());
  }
  return report;
}

std::string ReliabilityReport::to_json(bool include_timing) const {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"format\": \"flowsynth-reliability-v1\",\n";
  os << "  \"assay\": " << json_str(assay) << ",\n";
  os << "  \"policy_increments\": " << policy_increments << ",\n";
  os << "  \"asap\": " << (asap ? "true" : "false") << ",\n";
  os << "  \"chip\": {\"width\": " << chip_width << ", \"height\": " << chip_height << "},\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"trials\": " << trials << ",\n";
  os << "  \"model\": {\"pump\": {\"characteristic_actuations\": "
     << model.pump.characteristic_actuations << ", \"shape\": " << model.pump.shape
     << "}, \"control\": {\"characteristic_actuations\": "
     << model.control.characteristic_actuations << ", \"shape\": " << model.control.shape
     << "}},\n";

  os << "  \"healthy\": ";
  emit_estimate(os, healthy, include_timing, "  ");
  os << ",\n";

  os << "  \"static_baseline\": ";
  if (static_baseline.has_value()) {
    emit_estimate(os, *static_baseline, include_timing, "  ");
    os << ",\n";
    os << "  \"static_total_valves\": " << static_total_valves << ",\n";
    os << "  \"static_max_actuations\": " << static_max_actuations << ",\n";
    os << "  \"comparison\": {\"mttf_dynamic\": " << healthy.mttf_runs
       << ", \"mttf_static\": " << static_baseline->mttf_runs << ", \"lifetime_gain\": "
       << (static_baseline->mttf_runs > 0.0 ? healthy.mttf_runs / static_baseline->mttf_runs
                                            : 0.0)
       << "},\n";
  } else {
    os << "null,\n";
  }

  os << "  \"rounds\": [";
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const RepairRound& round = rounds[i];
    if (i > 0) os << ',';
    os << "\n    {\"valve\": [" << round.fault.valve.x << ", " << round.fault.valve.y
       << "], \"mode\": \"" << to_string(round.fault.mode) << "\", \"at_run\": "
       << round.fault.at_run << ", \"feasible\": " << (round.feasible ? "true" : "false")
       << ", \"warm_started\": " << (round.warm_started ? "true" : "false")
       << ", \"verdict\": " << json_str(round.verdict) << ", \"vs1_max\": " << round.vs1_max
       << ", \"valve_count\": " << round.valve_count;
    if (include_timing) {
      os << ", \"resynthesis_seconds\": " << round.resynthesis_seconds;
    }
    os << ", \"lifetime\": ";
    if (round.lifetime.has_value()) {
      emit_estimate(os, *round.lifetime, include_timing, "    ");
    } else {
      os << "null";
    }
    os << '}';
  }
  if (!rounds.empty()) os << "\n  ";
  os << "],\n";

  os << "  \"expected_runs_no_repair\": " << expected_runs_no_repair << ",\n";
  os << "  \"expected_runs_with_repair\": " << expected_runs_with_repair;
  if (include_timing) {
    os << ",\n  \"timing\": {\"resynthesis_latency\": " << resynthesis_latency.to_json()
       << "}";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace fsyn::rel
