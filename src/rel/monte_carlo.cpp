#include "rel/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fsyn::rel {

namespace {

using Clock = std::chrono::steady_clock;

/// Decorrelates per-trial Rng streams: splitmix64 finalizer over a
/// golden-ratio stride from the user seed.  Trial t's stream depends only
/// on (seed, t), never on which worker ran it.
std::uint64_t trial_seed(std::uint64_t seed, int trial) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(trial) + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct TrialArrays {
  std::vector<double> lifetime;   ///< per trial, indexed by trial
  std::vector<int> first_valve;   ///< index into the valve table, per trial
};

/// Runs trials [begin, end) into the disjoint slice of `out`.  Returns
/// false when the token fired (partial results are discarded by the
/// caller's throw).
bool run_block(const std::vector<sim::ValveWear>& valves, const MonteCarloOptions& options,
               int begin, int end, TrialArrays& out) {
  const bool poll_cancel = options.cancel.valid();
  for (int trial = begin; trial < end; ++trial) {
    if (poll_cancel && options.cancel.cancelled()) return false;
    Rng rng(trial_seed(options.seed, trial));
    double chip_runs = std::numeric_limits<double>::infinity();
    int first = -1;
    for (std::size_t v = 0; v < valves.size(); ++v) {
      const double runs = options.model.sample_runs_to_failure(valves[v], rng);
      if (runs < chip_runs) {
        chip_runs = runs;
        first = static_cast<int>(v);
      }
    }
    out.lifetime[static_cast<std::size_t>(trial)] = chip_runs;
    out.first_valve[static_cast<std::size_t>(trial)] = first;
  }
  return true;
}

}  // namespace

LifetimeEstimate estimate_lifetime(const std::vector<sim::ValveWear>& valves,
                                   const MonteCarloOptions& options) {
  check_input(options.trials > 0, "need at least one trial");
  check_input(options.block_size > 0, "block size must be positive");
  check_input(!valves.empty(), "a chip with no implemented valves has no lifetime");
  for (const sim::ValveWear& valve : valves) {
    check_input(valve.total() > 0, "every sampled valve needs a positive per-run load");
  }
  options.cancel.check("monte-carlo lifetime");

  const int trials = options.trials;
  const int block_size = options.block_size;
  const int blocks = (trials + block_size - 1) / block_size;

  obs::Span span("rel", "monte_carlo");
  if (span.active()) {
    span.arg("trials", trials);
    span.arg("valves", valves.size());
    span.arg("blocks", blocks);
    span.arg("pooled", options.pool != nullptr);
  }

  TrialArrays arrays;
  arrays.lifetime.assign(static_cast<std::size_t>(trials), 0.0);
  arrays.first_valve.assign(static_cast<std::size_t>(trials), -1);

  obs::LatencyHistogram block_latency;
  std::atomic<bool> interrupted{false};
  const auto run_one_block = [&](int b) {
    obs::Span block_span("rel", "trial_block");
    const Clock::time_point started = Clock::now();
    const int begin = b * block_size;
    const int end = std::min(trials, begin + block_size);
    if (!run_block(valves, options, begin, end, arrays)) {
      interrupted.store(true, std::memory_order_relaxed);
    }
    block_latency.record(Clock::now() - started);
    if (block_span.active()) block_span.arg("trials", end - begin);
  };

  const Clock::time_point started = Clock::now();
  if (options.pool != nullptr && blocks > 1) {
    // Pooled execution: submit every block, then wait on a completion
    // latch.  Rejected submissions (bounded queue under kReject, or pool
    // shutdown) degrade gracefully to inline execution on this thread.
    std::mutex mutex;
    std::condition_variable all_done;
    int remaining = blocks;
    const auto finish_one = [&] {
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) all_done.notify_one();
    };
    for (int b = 0; b < blocks; ++b) {
      const bool accepted = options.pool->submit([&, b] {
        run_one_block(b);
        finish_one();
      });
      if (!accepted) {
        run_one_block(b);
        finish_one();
      }
    }
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return remaining == 0; });
  } else if (options.threads > 1 && blocks > 1) {
    // Self-managed workers: claim blocks off a shared counter.
    std::atomic<int> next_block{0};
    const int workers = std::min(options.threads, blocks);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        while (true) {
          const int b = next_block.fetch_add(1, std::memory_order_relaxed);
          if (b >= blocks) return;
          run_one_block(b);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  } else {
    for (int b = 0; b < blocks; ++b) run_one_block(b);
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - started).count();

  if (interrupted.load(std::memory_order_relaxed)) {
    options.cancel.check("monte-carlo lifetime");
    throw CancelledError("cancelled: monte-carlo lifetime");
  }

  // Sequential reduction in trial order, so the estimate is independent of
  // the execution schedule above.
  LifetimeEstimate estimate;
  estimate.trials = trials;
  estimate.valve_count = static_cast<int>(valves.size());
  double sum = 0.0;
  for (const double runs : arrays.lifetime) sum += runs;
  estimate.mttf_runs = sum / trials;

  std::vector<double> sorted = arrays.lifetime;
  std::sort(sorted.begin(), sorted.end());
  const auto quantile = [&](int percent) {
    const std::size_t index = std::min(sorted.size() - 1,
                                       static_cast<std::size_t>(trials) *
                                           static_cast<std::size_t>(percent) / 100);
    return sorted[index];
  };
  estimate.p10_runs = quantile(10);
  estimate.p50_runs = quantile(50);
  estimate.p90_runs = quantile(90);
  estimate.min_runs = sorted.front();
  estimate.max_runs = sorted.back();

  std::vector<int> failures(valves.size(), 0);
  for (const int first : arrays.first_valve) {
    require(first >= 0, "every trial must attribute a first failure");
    ++failures[static_cast<std::size_t>(first)];
  }
  for (std::size_t v = 0; v < valves.size(); ++v) {
    if (failures[v] == 0) continue;
    FirstFailure bar;
    bar.valve_id = valves[v].valve_id;
    bar.cell = valves[v].cell;
    bar.role = valves[v].role();
    bar.per_run_actuations = valves[v].total();
    bar.count = failures[v];
    estimate.first_failures.push_back(bar);
  }
  std::sort(estimate.first_failures.begin(), estimate.first_failures.end(),
            [](const FirstFailure& a, const FirstFailure& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.valve_id < b.valve_id;
            });

  estimate.elapsed_seconds = elapsed;
  estimate.trials_per_second = elapsed > 0.0 ? trials / elapsed : 0.0;
  estimate.block_latency = block_latency.snapshot();
  if (span.active()) {
    span.arg("mttf_runs", estimate.mttf_runs);
    span.arg("interrupted", false);
  }
  return estimate;
}

LifetimeEstimate estimate_lifetime(const sim::ActuationLedger& ledger,
                                   const MonteCarloOptions& options) {
  return estimate_lifetime(sim::valve_wear(ledger), options);
}

}  // namespace fsyn::rel
