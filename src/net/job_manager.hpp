// Job lifecycle bookkeeping between the HTTP front-end and BatchService.
//
// The manager owns the durable half of the server: every submitted job
// gets a record (state machine: queued → running → done/cancelled/failed/
// rejected), a per-job CancelSource for `DELETE /v1/jobs/{id}`, and an
// event log consumed by the SSE stream.  Accepted jobs are journaled and
// fsync'd *before* they reach the service, terminal outcomes are journaled
// with the byte-exact result document, and `recover()` replays the journal
// on restart: finished jobs come back in their terminal state, accepted-
// but-unfinished jobs are re-enqueued under their original ids.
//
// Result documents reuse report::stored_result_to_json, so a job fetched
// via `GET /v1/jobs/{id}/result` serializes exactly like `flowsynth synth
// --out` would for the same spec (modulo the measured wall-clock field).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/journal.hpp"
#include "net/wire.hpp"
#include "obs/trace_context.hpp"
#include "svc/service.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"

namespace fsyn::net {

/// Front-end counters, exported under "net" in `GET /metrics`.
struct NetCounters {
  std::atomic<long> http_requests{0};
  std::atomic<long> bad_requests{0};        ///< protocol/parse errors (4xx)
  std::atomic<long> admission_rejected{0};  ///< 429 load-shed responses
  std::atomic<long> queue_rejected{0};      ///< jobs rejected by the full pool
  std::atomic<long> cancel_requests{0};     ///< DELETE calls received
  std::atomic<long> jobs_cancelled{0};      ///< jobs that ended cancelled
  std::atomic<long> replayed_done{0};       ///< terminal jobs restored on boot
  std::atomic<long> replayed_requeued{0};   ///< unfinished jobs re-enqueued
  std::atomic<long> sse_streams{0};         ///< event streams opened
};

/// One entry of a job's event log; `seq` is 1-based and per-job, so an SSE
/// client resuming with Last-Event-ID can skip what it already saw.
struct JobEvent {
  std::uint64_t seq = 0;
  std::string name;  ///< queued/running/stage/done/cancelled/failed/rejected
  std::string data;  ///< JSON payload
};

class JobManager {
 public:
  struct Config {
    svc::BatchService::Config service;
    /// Append-only journal path; empty disables durability.
    std::string journal_path;
    /// A finished job whose run time exceeds this gets a warning log line
    /// (with its trace id) and — when `flight_dump_dir` is set — an
    /// automatic flight-recorder dump.  0 disables the hook.
    double slow_job_seconds = 0.0;
    /// Directory for automatic slow-job flight dumps ("" = log only).
    std::string flight_dump_dir;
  };

  explicit JobManager(Config config);
  ~JobManager();
  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Opens the journal (when configured) and replays it: terminal records
  /// are restored, unfinished jobs re-enqueued with their original ids.
  /// Call once, before serving.
  void recover();

  /// Journals + enqueues a job; returns its id.  The returned job may
  /// already be terminal (kRejected) when the pool queue was full —
  /// callers inspect `state_of`.
  std::uint64_t submit(WireSpec wire);

  /// Requests cooperative cancellation.  False when the id is unknown or
  /// the job already reached a terminal state.
  bool cancel(std::uint64_t id);

  bool exists(std::uint64_t id) const;
  /// "queued", "running", "done", ... — empty when unknown.
  std::string state_of(std::uint64_t id) const;
  bool is_terminal(std::uint64_t id) const;

  /// Status document for one job; empty when unknown.
  std::string status_json(std::uint64_t id) const;
  /// `{"jobs":[{...}, ...]}` in id order.
  std::string list_json() const;
  /// Byte-exact result document.  False when unknown; `*state` always set
  /// for known jobs so callers can distinguish "not finished" from "ended
  /// without a result".
  bool result_doc(std::uint64_t id, std::string* doc, std::string* state) const;

  /// Events with seq > after_seq, in order.  Empty for unknown ids.
  std::vector<JobEvent> events_since(std::uint64_t id, std::uint64_t after_seq) const;
  /// Invoked (without locks held) after every appended event; the server
  /// uses it to wake the poll loop.  Pass nullptr to clear.
  void set_event_listener(std::function<void()> listener);

  /// `{"service": {...}, "net": {...}}`.
  std::string metrics_json() const;
  /// The same registry in the Prometheus text exposition format (service
  /// counters/histograms/rates plus the front-end counters).
  std::string metrics_prometheus() const;
  NetCounters& counters() { return counters_; }

  /// Cancels every job still waiting for a worker (graceful shutdown
  /// step 1) / every non-terminal job (step 2, grace expired).
  void cancel_queued();
  void cancel_all();
  /// Jobs not yet terminal.
  std::size_t active_jobs() const;

  double uptime_seconds() const;
  svc::BatchService& service() { return service_; }
  JobJournal& journal() { return journal_; }

  /// Final fsync; called once on graceful shutdown.
  void flush_journal() { journal_.flush(); }

 private:
  enum class State { kQueued, kRunning, kDone, kCancelled, kFailed, kRejected };
  static const char* to_string(State state);
  static bool terminal(State state) { return state >= State::kDone; }

  struct Record {
    std::uint64_t id = 0;
    State state = State::kQueued;
    std::string name;
    std::string assay_ref;
    svc::JobPriority priority = svc::JobPriority::kBatch;
    // Provenance for the stored-result document.
    int policy_increments = 0;
    bool asap = false;
    std::uint64_t seed = 0;

    /// Trace context of the accepting request; invalid for jobs submitted
    /// before tracing existed (old journals).  The id is echoed in every
    /// event payload and status document.
    obs::TraceContext trace;

    std::string stage;       ///< last pipeline stage entered
    std::string result_doc;  ///< terminal, status "done" only
    std::string error;
    std::string winner;
    bool cache_hit = false;
    double queue_seconds = 0.0;
    double run_seconds = 0.0;

    std::shared_ptr<CancelSource> cancel;
    std::vector<JobEvent> events;
    std::uint64_t next_seq = 1;
  };

  /// Creates the record and wires the spec's cancel token + observer.
  /// `journal_accept` is false during replay (the record is already on
  /// disk).  Caller must not hold records_mutex_.
  std::uint64_t enqueue(WireSpec wire, std::uint64_t id, bool journal_accept);
  void on_phase(std::uint64_t id, svc::JobPhase phase, const char* stage,
                const svc::JobResult* result);
  /// Appends an event; records_mutex_ must be held by the caller.
  void push_event(Record& record, std::string name, std::string data);
  void write_status(const Record& record, JsonWriter& writer) const;

  Config config_;
  std::chrono::steady_clock::time_point start_;
  NetCounters counters_;
  JobJournal journal_;

  mutable std::mutex records_mutex_;
  std::map<std::uint64_t, Record> records_;
  std::uint64_t next_id_ = 1;

  mutable std::mutex listener_mutex_;
  std::function<void()> listener_;

  bool recovered_ = false;

  // Last member: its destructor joins the workers, whose observer hooks
  // touch records_/journal_ above.
  svc::BatchService service_;
};

}  // namespace fsyn::net
