// Crash-safe, append-only job journal.
//
// Every accepted job spec and every terminal outcome is appended to a
// JSON-lines file:
//
//   {"event":"accepted","id":7,"priority":"interactive","spec":{...}}
//   {"event":"finished","id":7,"status":"done","result_doc":"{...}","error":""}
//
// `accepted` records are fsync'd before the job is acknowledged, so a
// `kill -9` can lose at most work that was never acknowledged; `finished`
// records are fsync'd too, so completed results survive the same crash.
// On restart `open` replays the file: an `accepted` record without a
// matching `finished` re-enqueues the job, a `finished` record restores
// the terminal state (including the byte-exact result document, stored as
// an escaped JSON string).  A torn final line — the crash hit mid-write —
// is dropped and counted, never fatal.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fsyn::net {

struct JournalStats {
  long appends = 0;
  long fsyncs = 0;
  long replayed_records = 0;   ///< records parsed during open()
  long replayed_done = 0;      ///< jobs restored in a terminal state
  long replayed_requeued = 0;  ///< accepted-but-unfinished jobs re-enqueued
  long torn_lines = 0;         ///< truncated/corrupt lines dropped on replay
};

struct JournalRecord {
  enum class Type { kAccepted, kFinished };
  Type type = Type::kAccepted;
  std::uint64_t id = 0;
  // kAccepted
  std::string priority;   ///< "interactive" / "batch" / "background"
  std::string spec_json;  ///< compact wire spec
  /// W3C traceparent of the accepting request ("" for pre-tracing journals
  /// — the field is optional on replay).  Replayed jobs keep this identity,
  /// so a trace id survives a kill -9.
  std::string traceparent;
  // kFinished
  std::string status;      ///< "done" / "cancelled" / "failed" / "rejected"
  std::string result_doc;  ///< exact result document ("done" only)
  std::string error;
};

class JobJournal {
 public:
  JobJournal() = default;
  ~JobJournal() { close(); }
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Opens (creating if absent) `path` for appending and returns the
  /// parsed existing records for replay.  Throws fsyn::Error when the file
  /// cannot be opened or created.
  std::vector<JournalRecord> open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }

  /// Appends + fsyncs an accepted-job record.  Returns after the bytes
  /// are durable.  No-ops when the journal is not open.  `traceparent` is
  /// the W3C trace context of the accepting request (omitted when empty).
  void append_accepted(std::uint64_t id, const std::string& priority,
                       const std::string& spec_json, const std::string& traceparent = "");
  /// Appends + fsyncs a terminal record.
  void append_finished(std::uint64_t id, const std::string& status,
                       const std::string& result_doc, const std::string& error);

  void flush();  ///< fsync; called once more on graceful shutdown
  void close();

  /// Point-in-time copy (counters are mutex-guarded, not atomic).
  JournalStats stats() const;

  /// Parses journal text into records; exposed for tests.  Increments
  /// `*torn` for each dropped line.
  static std::vector<JournalRecord> parse(const std::string& text, long* torn);

 private:
  void append_line(const std::string& line);

  mutable std::mutex mutex_;
  int fd_ = -1;
  JournalStats stats_;
};

}  // namespace fsyn::net
