// Wire representation of synthesis/reliability job specs.
//
// `POST /v1/jobs` bodies are strict JSON (util/json) of the form
//
//   {"kind": "synthesis", "assay": "pcr", "policy": 2, "seed": 2015,
//    "priority": "interactive", "deadline_ms": 30000, ...}
//
// where "assay" names a built-in benchmark and "dsl" (mutually exclusive)
// carries an inline assay program — the server never reads files named by
// clients.  Unknown top-level keys are rejected so typos fail loudly with
// a 400 instead of silently running the wrong job.  `parse_wire_spec`
// returns both the ready-to-submit svc::JobSpec and a compact canonical
// re-serialization used for the journal.
#pragma once

#include <cstdint>
#include <string>

#include "svc/service.hpp"

namespace fsyn::net {

struct WireSpec {
  svc::JobSpec spec;      ///< graph/options filled; id/hooks left to the caller
  std::string assay_ref;  ///< benchmark name, or "(inline)" for dsl specs
  std::uint64_t seed = 2015;  ///< provenance echoed into the result document
  int policy_increments = 0;
  bool asap = false;
  std::string canonical;  ///< compact canonical JSON (journal/replay form)
};

/// Parses and validates a wire spec; throws fsyn::Error on malformed
/// JSON, unknown keys, unknown benchmarks or bad field types.
WireSpec parse_wire_spec(const std::string& json_text);

svc::JobPriority priority_from_string(const std::string& name);

}  // namespace fsyn::net
