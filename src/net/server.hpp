// Single-threaded HTTP front-end for the batch-synthesis service.
//
// A poll() readiness loop multiplexes the listener, every client
// connection and a self-pipe: worker threads (job lifecycle events) and
// signal handlers (shutdown) write one byte to the pipe, which wakes the
// loop without any locking in the reactor itself.  All request handling is
// inline — handlers only enqueue work and read bookkeeping, the synthesis
// runs on the BatchService pool — so one thread comfortably serves the
// control plane while the workers saturate the cores.
//
// Shutdown (`request_stop`, async-signal-safe) is graceful and bounded:
// the listener closes immediately, queued jobs are cancelled, running jobs
// get `grace_ms` to finish (their SSE watchers see the terminal event),
// then everything left is cancelled, the journal fsync'd, and serve()
// returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "net/http.hpp"
#include "net/job_manager.hpp"
#include "net/router.hpp"

namespace fsyn::net {

class HttpServer {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    int port = 8080;  ///< 0 = ephemeral (port() reports the actual one)
    int backlog = 64;
    int max_connections = 256;
    int grace_ms = 5000;  ///< drain budget for running jobs on shutdown
    HttpRequestParser::Limits limits;
    /// Destination of on-demand flight-recorder dumps (SIGQUIT /
    /// request_flight_dump()); "" disables the hook.
    std::string flight_dump_path;
  };

  HttpServer(Config config, JobManager& manager, Router router);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds + listens; throws fsyn::Error on failure.
  void bind();
  /// Actual listening port (after bind()).
  int port() const { return port_; }

  /// Runs the reactor until request_stop() completes the drain.
  void serve();

  /// Initiates graceful shutdown.  Async-signal-safe (one atomic store +
  /// one pipe write); callable from any thread or a signal handler.
  void request_stop();

  /// Requests a flight-recorder dump to Config::flight_dump_path.  Async-
  /// signal-safe the same way (the dump itself runs on the poll loop, not
  /// in the handler); wired to SIGQUIT by flowsynthd.
  void request_flight_dump();

 private:
  struct Connection {
    int fd = -1;
    HttpRequestParser parser;
    std::string outbox;
    std::size_t out_offset = 0;
    bool close_after_flush = false;
    bool sse_active = false;
    bool sse_done = false;  ///< terminal frame + last chunk already queued
    std::uint64_t sse_job = 0;
    std::uint64_t sse_last_seq = 0;

    explicit Connection(HttpRequestParser::Limits limits) : parser(limits) {}
    bool wants_write() const { return out_offset < outbox.size(); }
  };

  void wake();
  void accept_ready();
  void read_ready(Connection& connection);
  bool write_ready(Connection& connection);  ///< false = connection closed
  void handle_request(Connection& connection, const HttpRequest& request);
  void start_sse(Connection& connection, const HttpRequest& request,
                 std::uint64_t job_id);
  void pump_sse(Connection& connection);
  void close_connection(int fd);

  Config config_;
  JobManager& manager_;
  Router router_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> flight_dump_requested_{false};

  std::map<int, Connection> connections_;
};

}  // namespace fsyn::net
