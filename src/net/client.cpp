#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "util/error.hpp"

namespace fsyn::net {

namespace {

void send_all(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("send failed: ") + std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string build_request(const std::string& method, const std::string& target,
                          const std::string& host, const std::string& body,
                          const std::string& content_type,
                          const std::vector<Header>& extra_headers) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  out += "Connection: close\r\n";
  for (const Header& header : extra_headers) {
    out += header.name + ": " + header.value + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

/// Parses "HTTP/1.1 200 OK\r\nName: value\r\n...\r\n\r\n"; returns the
/// offset just past the blank line, npos while incomplete.
std::size_t parse_response_head(const std::string& data, ClientResponse* response) {
  const std::size_t end = data.find("\r\n\r\n");
  if (end == std::string::npos) return std::string::npos;
  std::size_t line_start = 0;
  std::size_t line_end = data.find("\r\n", line_start);
  {
    const std::string status_line = data.substr(line_start, line_end - line_start);
    const std::size_t sp = status_line.find(' ');
    check_input(sp != std::string::npos && status_line.compare(0, 5, "HTTP/") == 0,
                "malformed status line");
    response->status = std::atoi(status_line.c_str() + sp + 1);
    check_input(response->status >= 100 && response->status <= 599,
                "malformed status code");
  }
  line_start = line_end + 2;
  while (line_start < end) {
    line_end = data.find("\r\n", line_start);
    const std::string line = data.substr(line_start, line_end - line_start);
    const std::size_t colon = line.find(':');
    check_input(colon != std::string::npos, "malformed response header");
    std::size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') ++value_start;
    response->headers.push_back({line.substr(0, colon), line.substr(value_start)});
    line_start = line_end + 2;
  }
  return end + 4;
}

bool header_is(const std::vector<Header>& headers, std::string_view name,
               std::string_view value) {
  const std::string* found = find_header(headers, name);
  if (found == nullptr) return false;
  if (found->size() != value.size()) return false;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>((*found)[i])) !=
        std::tolower(static_cast<unsigned char>(value[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

ApiClient::ApiClient(std::string host, int port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

int ApiClient::connect_fd() const {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  check_input(fd >= 0, std::string("socket() failed: ") + std::strerror(errno));

  if (timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms_ / 1000;
    tv.tv_usec = (timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("bad host '" + host_ + "' (dotted quad expected)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw Error("cannot connect to " + host_ + ":" + std::to_string(port_) + ": " +
                std::strerror(saved));
  }
  return fd;
}

ClientResponse ApiClient::request(const std::string& method, const std::string& target,
                                  const std::string& body,
                                  const std::string& content_type) {
  const int fd = connect_fd();
  ClientResponse response;
  try {
    send_all(fd, build_request(method, target, host_, body, content_type,
                               default_headers_));

    std::string data;
    char buffer[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error(std::string("recv failed: ") + std::strerror(errno));
      }
      if (n == 0) break;
      data.append(buffer, static_cast<std::size_t>(n));
    }

    const std::size_t body_offset = parse_response_head(data, &response);
    check_input(body_offset != std::string::npos, "truncated response");
    const std::string raw_body = data.substr(body_offset);
    if (header_is(response.headers, "Transfer-Encoding", "chunked")) {
      ChunkedDecoder decoder;
      check_input(decoder.feed(raw_body, &response.body) != ParseStatus::kError,
                  "malformed chunked body");
    } else {
      response.body = raw_body;
      if (const std::string* length = find_header(response.headers, "Content-Length")) {
        const std::size_t expect =
            static_cast<std::size_t>(std::strtoull(length->c_str(), nullptr, 10));
        check_input(response.body.size() >= expect, "truncated response body");
        response.body.resize(expect);
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return response;
}

int ApiClient::watch(std::uint64_t job_id, const FrameHandler& on_frame,
                     std::uint64_t after_seq, std::vector<Header>* response_headers) {
  const int fd = connect_fd();
  int status = 0;
  try {
    std::string head = "GET /v1/jobs/" + std::to_string(job_id) + "/events HTTP/1.1\r\n";
    head += "Host: " + host_ + "\r\n";
    head += "Accept: text/event-stream\r\n";
    for (const Header& header : default_headers_) {
      head += header.name + ": " + header.value + "\r\n";
    }
    if (after_seq > 0) head += "Last-Event-ID: " + std::to_string(after_seq) + "\r\n";
    head += "Connection: close\r\n\r\n";
    send_all(fd, head);

    std::string data;
    ClientResponse response;
    std::size_t body_offset = std::string::npos;
    ChunkedDecoder decoder;
    std::string stream;          ///< decoded SSE bytes
    std::size_t frame_start = 0;
    bool stop = false;
    bool chunked = false;

    char buffer[16 * 1024];
    while (!stop) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error(std::string("recv failed: ") + std::strerror(errno));
      }
      if (n == 0) break;
      if (body_offset == std::string::npos) {
        data.append(buffer, static_cast<std::size_t>(n));
        body_offset = parse_response_head(data, &response);
        if (body_offset == std::string::npos) continue;
        status = response.status;
        if (response_headers != nullptr) *response_headers = response.headers;
        chunked = header_is(response.headers, "Transfer-Encoding", "chunked");
        if (status != 200) break;  // error body, not a stream
        if (chunked) {
          const ParseStatus ps = decoder.feed(data.substr(body_offset), &stream);
          check_input(ps != ParseStatus::kError, "malformed chunked stream");
        } else {
          stream = data.substr(body_offset);
        }
      } else if (chunked) {
        const ParseStatus ps =
            decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)), &stream);
        check_input(ps != ParseStatus::kError, "malformed chunked stream");
      } else {
        stream.append(buffer, static_cast<std::size_t>(n));
      }

      // Deliver every complete frame (terminated by a blank line).
      for (;;) {
        const std::size_t frame_end = stream.find("\n\n", frame_start);
        if (frame_end == std::string::npos) break;
        std::string event;
        std::uint64_t seq = 0;
        std::string payload;
        std::size_t line_start = frame_start;
        while (line_start < frame_end) {
          std::size_t line_end = stream.find('\n', line_start);
          if (line_end > frame_end) line_end = frame_end;
          const std::string_view line(stream.data() + line_start, line_end - line_start);
          if (line.rfind("event: ", 0) == 0) {
            event.assign(line.substr(7));
          } else if (line.rfind("id: ", 0) == 0) {
            seq = std::strtoull(std::string(line.substr(4)).c_str(), nullptr, 10);
          } else if (line.rfind("data: ", 0) == 0) {
            if (!payload.empty()) payload += '\n';
            payload.append(line.substr(6));
          }
          line_start = line_end + 1;
        }
        frame_start = frame_end + 2;
        if (!on_frame(event, seq, payload)) {
          stop = true;
          break;
        }
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return status;
}

}  // namespace fsyn::net
