// Latency-aware admission control for `POST /v1/jobs`.
//
// The decision follows the execution-histogram pattern: the service keeps
// a latency histogram of completed synthesis runs (svc::MetricsSnapshot::
// synthesis_latency); admission estimates this job's completion time as
//
//   wait     = ceil(queue_depth / workers) * p95(service time)
//   complete = wait + p95(service time)
//
// and rejects with 429 + Retry-After when the estimate exceeds the route
// deadline of the job's priority class.  Until the histogram has seen
// `min_samples` jobs the estimate falls back to `default_service_seconds`,
// so a cold server admits optimistically instead of rejecting everything.
//
// The decision is a pure function of its inputs — the unit tests drive it
// directly with synthetic histograms.
#pragma once

#include <cstddef>

#include "obs/histogram.hpp"
#include "svc/service.hpp"

namespace fsyn::net {

struct AdmissionConfig {
  /// Route deadline (seconds) per priority class, indexed by
  /// svc::JobPriority.  A job whose estimated completion exceeds its
  /// class's deadline is shed.  <= 0 disables admission for that class.
  double deadline_seconds[3] = {2.0, 60.0, 600.0};
  /// Histogram observations required before p95 is trusted.
  std::uint64_t min_samples = 4;
  /// Service-time estimate used while the histogram is cold.
  double default_service_seconds = 0.25;
};

struct AdmissionDecision {
  bool accepted = true;
  double estimated_service_seconds = 0.0;
  double estimated_wait_seconds = 0.0;
  double estimated_completion_seconds = 0.0;
  double deadline_seconds = 0.0;
  /// Suggested client back-off (whole seconds, >= 1) when rejected.
  int retry_after_seconds = 0;
};

/// Decides whether a job of class `priority` should be admitted given the
/// current queue depth, worker count and observed service-time histogram.
AdmissionDecision admit(const AdmissionConfig& config, svc::JobPriority priority,
                        std::size_t queue_depth, int workers,
                        const obs::HistogramSnapshot& service_latency);

}  // namespace fsyn::net
