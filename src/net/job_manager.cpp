#include "net/job_manager.hpp"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/prometheus.hpp"
#include "report/result_io.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::net {

namespace {

/// `{"state":"...","trace_id":"..."}` — the trace id rides along on every
/// lifecycle event so an SSE consumer can correlate frames with the
/// request that spawned the job.
std::string state_payload(const char* state, const obs::TraceContext& trace) {
  JsonWriter w;
  w.begin_object();
  w.key("state").value(state);
  if (trace.valid()) w.key("trace_id").value(trace.trace_id_hex());
  w.end_object();
  return w.take();
}

}  // namespace

JobManager::JobManager(Config config)
    : config_(std::move(config)),
      start_(std::chrono::steady_clock::now()),
      service_(config_.service) {}

JobManager::~JobManager() {
  // Workers may still be draining; make sure their observer callbacks find
  // no listener pointing at a dead server.
  set_event_listener(nullptr);
}

const char* JobManager::to_string(State state) {
  switch (state) {
    case State::kQueued: return "queued";
    case State::kRunning: return "running";
    case State::kDone: return "done";
    case State::kCancelled: return "cancelled";
    case State::kFailed: return "failed";
    case State::kRejected: return "rejected";
  }
  return "?";
}

void JobManager::recover() {
  require(!recovered_, "recover() called twice");
  recovered_ = true;
  if (config_.journal_path.empty()) return;

  const std::vector<JournalRecord> replay = journal_.open(config_.journal_path);

  // First pass: collect terminal outcomes so finished jobs are not re-run.
  std::map<std::uint64_t, const JournalRecord*> finished;
  for (const JournalRecord& record : replay) {
    if (record.type == JournalRecord::Type::kFinished) finished[record.id] = &record;
  }

  for (const JournalRecord& record : replay) {
    if (record.type != JournalRecord::Type::kAccepted) continue;
    {
      std::lock_guard<std::mutex> lock(records_mutex_);
      next_id_ = std::max(next_id_, record.id + 1);
      if (records_.count(record.id) != 0) continue;  // duplicate accept line
    }

    const auto it = finished.find(record.id);
    if (it != finished.end()) {
      // Restore the terminal state verbatim — including the byte-exact
      // result document — without re-running anything.
      const JournalRecord& fin = *it->second;
      {
        std::lock_guard<std::mutex> lock(records_mutex_);
        Record& r = records_[record.id];
        r.id = record.id;
        try {
          r.priority = priority_from_string(record.priority);
        } catch (const Error&) {
          r.priority = svc::JobPriority::kBatch;
        }
        // Best-effort provenance from the journaled spec (no re-validation:
        // the job is terminal, the fields are display-only).
        try {
          const JsonValue spec = JsonValue::parse(record.spec_json);
          if (const JsonValue* assay = spec.find("assay")) r.assay_ref = assay->as_string();
          if (const JsonValue* name = spec.find("name")) {
            r.name = name->as_string();
          } else {
            r.name = r.assay_ref;
          }
        } catch (const Error&) {
          r.assay_ref = "(replayed)";
        }
        // Replayed jobs keep the trace identity of the original request.
        obs::parse_traceparent(record.traceparent, &r.trace);
        if (fin.status == "done") {
          r.state = State::kDone;
        } else if (fin.status == "cancelled") {
          r.state = State::kCancelled;
        } else if (fin.status == "rejected") {
          r.state = State::kRejected;
        } else {
          r.state = State::kFailed;
        }
        r.result_doc = fin.result_doc;
        r.error = fin.error;
        push_event(r, to_string(r.state), "{\"replayed\":true}");
      }
      counters_.replayed_done.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    // Accepted but never finished: the crash interrupted it.  Re-enqueue
    // under the original id; the accept record is already durable, so no
    // new journal line is written.
    counters_.replayed_requeued.fetch_add(1, std::memory_order_relaxed);
    try {
      WireSpec wire = parse_wire_spec(record.spec_json);
      wire.spec.priority = priority_from_string(record.priority);
      obs::parse_traceparent(record.traceparent, &wire.spec.trace);
      enqueue(std::move(wire), record.id, /*journal_accept=*/false);
    } catch (const Error& e) {
      // The spec no longer parses (version skew, corruption).  Journal a
      // terminal record so the next restart does not retry it forever.
      log_error("journal: job ", record.id, " replay failed: ", e.what());
      {
        std::lock_guard<std::mutex> lock(records_mutex_);
        Record& r = records_[record.id];
        r.id = record.id;
        r.state = State::kFailed;
        r.error = std::string("replay failed: ") + e.what();
        push_event(r, "failed", "{\"replayed\":true}");
      }
      journal_.append_finished(record.id, "failed", "",
                               std::string("replay failed: ") + e.what());
    }
  }
}

std::uint64_t JobManager::submit(WireSpec wire) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(records_mutex_);
    id = next_id_++;
  }
  journal_.append_accepted(id, svc::to_string(wire.spec.priority), wire.canonical,
                           wire.spec.trace.valid() ? wire.spec.trace.traceparent()
                                                   : std::string());
  return enqueue(std::move(wire), id, /*journal_accept=*/true);
}

std::uint64_t JobManager::enqueue(WireSpec wire, std::uint64_t id, bool journal_accept) {
  (void)journal_accept;  // the accept record is written by submit()/replay
  auto cancel = std::make_shared<CancelSource>();
  {
    std::lock_guard<std::mutex> lock(records_mutex_);
    Record& r = records_[id];
    r.id = id;
    r.state = State::kQueued;
    r.name = wire.spec.name;
    r.assay_ref = wire.assay_ref;
    r.priority = wire.spec.priority;
    r.policy_increments = wire.policy_increments;
    r.asap = wire.asap;
    r.seed = wire.seed;
    r.trace = wire.spec.trace;
    r.cancel = cancel;
    // Emitted here, not from the service's kQueued callback: the worker can
    // pick the job up before submit() returns, and the event seqs must still
    // read queued -> running.
    push_event(r, "queued", state_payload("queued", r.trace));
  }

  svc::JobSpec spec = std::move(wire.spec);
  spec.id = id;
  spec.options.cancel = cancel->token();
  spec.on_phase = [this](std::uint64_t job_id, svc::JobPhase phase, const char* stage,
                         const svc::JobResult* result) {
    on_phase(job_id, phase, stage, result);
  };
  service_.submit(std::move(spec));  // outcome arrives via on_phase
  return id;
}

void JobManager::on_phase(std::uint64_t id, svc::JobPhase phase, const char* stage,
                          const svc::JobResult* result) {
  // Build the (potentially large) result document outside the lock.
  std::string doc;
  std::string journal_status;
  std::string journal_error;
  double slow_seconds = -1.0;  ///< >= 0 when the slow-job hook fires
  std::string slow_trace;
  std::string slow_name;
  if (phase == svc::JobPhase::kFinished && result != nullptr &&
      result->status == svc::JobStatus::kDone) {
    if (result->report != nullptr) {
      doc = result->report->to_json();
    } else if (result->document != nullptr) {
      doc = *result->document;  // fleet jobs carry a ready-made document
    } else if (result->result != nullptr) {
      report::StoredResult stored;
      {
        std::lock_guard<std::mutex> lock(records_mutex_);
        const auto it = records_.find(id);
        if (it != records_.end()) {
          stored.assay = it->second.assay_ref;
          stored.policy_increments = it->second.policy_increments;
          stored.asap = it->second.asap;
          stored.seed = it->second.seed;
        }
      }
      stored.result = *result->result;
      doc = report::stored_result_to_json(stored);
    }
  }

  {
    std::lock_guard<std::mutex> lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) return;
    Record& r = it->second;
    switch (phase) {
      case svc::JobPhase::kQueued:
        break;  // already emitted by enqueue(), in guaranteed order
      case svc::JobPhase::kStarted:
        r.state = State::kRunning;
        push_event(r, "running", state_payload("running", r.trace));
        break;
      case svc::JobPhase::kStage: {
        r.stage = stage != nullptr ? stage : "";
        JsonWriter w;
        w.begin_object();
        w.key("stage").value(r.stage);
        if (r.trace.valid()) w.key("trace_id").value(r.trace.trace_id_hex());
        w.end_object();
        push_event(r, "stage", w.take());
        break;
      }
      case svc::JobPhase::kFinished: {
        if (result == nullptr) break;
        switch (result->status) {
          case svc::JobStatus::kDone: r.state = State::kDone; break;
          case svc::JobStatus::kCancelled: r.state = State::kCancelled; break;
          case svc::JobStatus::kFailed: r.state = State::kFailed; break;
          case svc::JobStatus::kRejected: r.state = State::kRejected; break;
        }
        r.result_doc = doc;
        r.error = result->error;
        r.winner = result->winner;
        r.cache_hit = result->cache_hit;
        r.queue_seconds = result->queue_seconds;
        r.run_seconds = result->run_seconds;
        journal_status = svc::to_string(result->status);
        journal_error = result->error;
        if (config_.slow_job_seconds > 0.0 &&
            result->run_seconds >= config_.slow_job_seconds) {
          slow_seconds = result->run_seconds;
          slow_trace = r.trace.valid() ? r.trace.trace_id_hex() : "-";
          slow_name = r.name;
        }
        if (result->status == svc::JobStatus::kCancelled) {
          counters_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
        } else if (result->status == svc::JobStatus::kRejected) {
          counters_.queue_rejected.fetch_add(1, std::memory_order_relaxed);
        }
        JsonWriter w;
        write_status(r, w);
        push_event(r, to_string(r.state), w.take());
        break;
      }
    }
  }

  // Journal the terminal outcome before notifying watchers, so an SSE
  // "done" frame is never observed for a job a crash could forget.
  if (!journal_status.empty()) {
    journal_.append_finished(id, journal_status, doc, journal_error);
  }

  if (slow_seconds >= 0.0) {
    // The flight recorder still holds the spans of the job that just
    // finished; dump before newer work overwrites them.
    log_warn("slow job ", id, " (", slow_name, "): ", slow_seconds,
             "s >= ", config_.slow_job_seconds, "s threshold, trace_id=", slow_trace);
    if (!config_.flight_dump_dir.empty() && obs::flight_recording_enabled()) {
      const std::string path =
          config_.flight_dump_dir + "/slow-job-" + std::to_string(id) + ".trace.json";
      try {
        obs::FlightRecorder::instance().dump_json_file(path);
        log_info("slow job ", id, ": flight recorder dumped to ", path);
      } catch (const std::exception& e) {
        log_error("slow job ", id, ": flight dump failed: ", e.what());
      }
    }
  }

  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lock(listener_mutex_);
    listener = listener_;
  }
  if (listener) listener();
}

void JobManager::push_event(Record& record, std::string name, std::string data) {
  JobEvent event;
  event.seq = record.next_seq++;
  event.name = std::move(name);
  event.data = std::move(data);
  record.events.push_back(std::move(event));
}

bool JobManager::cancel(std::uint64_t id) {
  counters_.cancel_requests.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<CancelSource> cancel;
  {
    std::lock_guard<std::mutex> lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end() || terminal(it->second.state)) return false;
    cancel = it->second.cancel;
  }
  if (cancel != nullptr) cancel->cancel();
  return true;
}

void JobManager::cancel_queued() {
  std::vector<std::shared_ptr<CancelSource>> sources;
  {
    std::lock_guard<std::mutex> lock(records_mutex_);
    for (auto& [id, record] : records_) {
      if (record.state == State::kQueued && record.cancel != nullptr) {
        sources.push_back(record.cancel);
      }
    }
  }
  for (auto& source : sources) source->cancel();
}

void JobManager::cancel_all() {
  std::vector<std::shared_ptr<CancelSource>> sources;
  {
    std::lock_guard<std::mutex> lock(records_mutex_);
    for (auto& [id, record] : records_) {
      if (!terminal(record.state) && record.cancel != nullptr) {
        sources.push_back(record.cancel);
      }
    }
  }
  for (auto& source : sources) source->cancel();
}

std::size_t JobManager::active_jobs() const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  std::size_t active = 0;
  for (const auto& [id, record] : records_) {
    if (!terminal(record.state)) ++active;
  }
  return active;
}

bool JobManager::exists(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  return records_.count(id) != 0;
}

std::string JobManager::state_of(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  const auto it = records_.find(id);
  return it == records_.end() ? std::string() : std::string(to_string(it->second.state));
}

bool JobManager::is_terminal(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  const auto it = records_.find(id);
  return it != records_.end() && terminal(it->second.state);
}

void JobManager::write_status(const Record& record, JsonWriter& w) const {
  w.begin_object();
  w.key("id").value(record.id);
  w.key("state").value(to_string(record.state));
  w.key("name").value(record.name);
  w.key("assay").value(record.assay_ref);
  w.key("priority").value(svc::to_string(record.priority));
  if (record.trace.valid()) w.key("trace_id").value(record.trace.trace_id_hex());
  if (!record.stage.empty()) w.key("stage").value(record.stage);
  if (terminal(record.state)) {
    w.key("cache_hit").value(record.cache_hit);
    if (!record.winner.empty()) w.key("winner").value(record.winner);
    w.key("queue_seconds").value(record.queue_seconds);
    w.key("run_seconds").value(record.run_seconds);
    w.key("has_result").value(!record.result_doc.empty());
  }
  if (!record.error.empty()) w.key("error").value(record.error);
  w.end_object();
}

std::string JobManager::status_json(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::string();
  JsonWriter w;
  write_status(it->second, w);
  return w.take();
}

std::string JobManager::list_json() const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("jobs").begin_array();
  for (const auto& [id, record] : records_) {
    write_status(record, w);
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool JobManager::result_doc(std::uint64_t id, std::string* doc, std::string* state) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  if (state != nullptr) *state = to_string(it->second.state);
  if (doc != nullptr) *doc = it->second.result_doc;
  return true;
}

std::vector<JobEvent> JobManager::events_since(std::uint64_t id,
                                               std::uint64_t after_seq) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  std::vector<JobEvent> events;
  const auto it = records_.find(id);
  if (it == records_.end()) return events;
  for (const JobEvent& event : it->second.events) {
    if (event.seq > after_seq) events.push_back(event);
  }
  return events;
}

void JobManager::set_event_listener(std::function<void()> listener) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  listener_ = std::move(listener);
}

double JobManager::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

std::string JobManager::metrics_json() const {
  long queued = 0, running = 0, done = 0, cancelled = 0, failed = 0, rejected = 0;
  {
    std::lock_guard<std::mutex> lock(records_mutex_);
    for (const auto& [id, record] : records_) {
      switch (record.state) {
        case State::kQueued: ++queued; break;
        case State::kRunning: ++running; break;
        case State::kDone: ++done; break;
        case State::kCancelled: ++cancelled; break;
        case State::kFailed: ++failed; break;
        case State::kRejected: ++rejected; break;
      }
    }
  }
  const JournalStats js = journal_.stats();

  JsonWriter w;
  w.begin_object();
  w.key("service").raw(service_.metrics().to_json());
  w.key("net").begin_object();
  w.key("uptime_seconds").value(uptime_seconds());
  w.key("http_requests").value(counters_.http_requests.load(std::memory_order_relaxed));
  w.key("bad_requests").value(counters_.bad_requests.load(std::memory_order_relaxed));
  w.key("admission_rejected")
      .value(counters_.admission_rejected.load(std::memory_order_relaxed));
  w.key("queue_rejected").value(counters_.queue_rejected.load(std::memory_order_relaxed));
  w.key("cancel_requests").value(counters_.cancel_requests.load(std::memory_order_relaxed));
  w.key("jobs_cancelled").value(counters_.jobs_cancelled.load(std::memory_order_relaxed));
  w.key("sse_streams").value(counters_.sse_streams.load(std::memory_order_relaxed));
  w.key("jobs").begin_object();
  w.key("queued").value(queued);
  w.key("running").value(running);
  w.key("done").value(done);
  w.key("cancelled").value(cancelled);
  w.key("failed").value(failed);
  w.key("rejected").value(rejected);
  w.end_object();
  w.key("journal").begin_object();
  w.key("enabled").value(journal_.is_open());
  w.key("appends").value(js.appends);
  w.key("fsyncs").value(js.fsyncs);
  w.key("replayed_records").value(js.replayed_records);
  w.key("replayed_done").value(counters_.replayed_done.load(std::memory_order_relaxed));
  w.key("replayed_requeued")
      .value(counters_.replayed_requeued.load(std::memory_order_relaxed));
  w.key("torn_lines").value(js.torn_lines);
  w.end_object();
  w.end_object();
  w.end_object();
  return w.take();
}

std::string JobManager::metrics_prometheus() const {
  // Service families first (counters, rates, latency histograms), then the
  // HTTP front-end counters under their own names.
  std::string text = service_.metrics().to_prometheus();
  const JournalStats js = journal_.stats();

  obs::PrometheusWriter w;
  w.family("flowsynth_http_requests_total", "HTTP requests parsed.", "counter");
  w.sample("flowsynth_http_requests_total", "",
           static_cast<double>(counters_.http_requests.load(std::memory_order_relaxed)));
  w.family("flowsynth_http_errors_total", "Request-level failures by reason.", "counter");
  w.sample("flowsynth_http_errors_total", "reason=\"bad_request\"",
           static_cast<double>(counters_.bad_requests.load(std::memory_order_relaxed)));
  w.sample("flowsynth_http_errors_total", "reason=\"admission_rejected\"",
           static_cast<double>(counters_.admission_rejected.load(std::memory_order_relaxed)));
  w.sample("flowsynth_http_errors_total", "reason=\"queue_rejected\"",
           static_cast<double>(counters_.queue_rejected.load(std::memory_order_relaxed)));
  w.family("flowsynth_sse_streams_total", "Event streams opened.", "counter");
  w.sample("flowsynth_sse_streams_total", "",
           static_cast<double>(counters_.sse_streams.load(std::memory_order_relaxed)));
  w.family("flowsynth_uptime_seconds", "Seconds since the manager started.", "gauge");
  w.sample("flowsynth_uptime_seconds", "", uptime_seconds());
  w.family("flowsynth_journal_appends_total", "Journal records appended.", "counter");
  w.sample("flowsynth_journal_appends_total", "", static_cast<double>(js.appends));
  w.family("flowsynth_journal_torn_lines_total", "Corrupt journal lines dropped.",
           "counter");
  w.sample("flowsynth_journal_torn_lines_total", "", static_cast<double>(js.torn_lines));

  text += w.take();
  return text;
}

}  // namespace fsyn::net
