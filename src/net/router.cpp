#include "net/router.hpp"

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace fsyn::net {

namespace {

std::string error_body(std::string_view message) {
  JsonWriter w;
  w.begin_object().key("error").value(message).end_object();
  return w.take();
}

}  // namespace

const std::string* find_param(const RouteParams& params, std::string_view name) {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

void Router::add(std::string method, std::string pattern, RouteHandler handler) {
  Route route;
  route.method = std::move(method);
  route.segments = split_path(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

std::vector<std::string> Router::split_path(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    parts.emplace_back(path.substr(start, end - start));
    start = end;
  }
  return parts;
}

bool Router::match(const Route& route, const std::vector<std::string>& parts,
                   RouteParams* params) {
  if (route.segments.size() != parts.size()) return false;
  params->clear();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& segment = route.segments[i];
    if (segment.size() >= 2 && segment.front() == '{' && segment.back() == '}') {
      params->emplace_back(segment.substr(1, segment.size() - 2), parts[i]);
    } else if (segment != parts[i]) {
      return false;
    }
  }
  return true;
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  const std::vector<std::string> parts = split_path(request.path());
  RouteParams params;
  std::string allowed;  // methods that matched the path but not the verb
  for (const Route& route : routes_) {
    if (!match(route, parts, &params)) continue;
    if (route.method != request.method) {
      if (!allowed.empty()) allowed += ", ";
      allowed += route.method;
      continue;
    }
    try {
      return route.handler(request, params);
    } catch (const Error& e) {
      // Recoverable input errors (bad JSON, unknown benchmark, ...) are the
      // client's fault.
      HttpResponse response;
      response.status = 400;
      response.body = error_body(e.what());
      return response;
    } catch (const std::exception& e) {
      log_error("net: handler for ", request.method, " ", request.path(),
                " threw: ", e.what());
      HttpResponse response;
      response.status = 500;
      response.body = error_body("internal error");
      return response;
    }
  }
  HttpResponse response;
  if (!allowed.empty()) {
    response.status = 405;
    response.headers.push_back({"Allow", allowed});
    response.body = error_body("method " + request.method + " not allowed");
  } else {
    response.status = 404;
    response.body = error_body("no route for " + request.path());
  }
  return response;
}

}  // namespace fsyn::net
