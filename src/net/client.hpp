// Minimal blocking HTTP client for flowsynthd.
//
// One connection per request (`Connection: close`) keeps the state machine
// trivial — the client half exists for the `flowsynth client` subcommands,
// the loopback tests and the benchmark, none of which need connection
// reuse.  `watch` streams `GET /v1/jobs/{id}/events`, decoding the chunked
// transfer coding and the SSE framing incrementally and invoking the
// callback per frame until the job reaches a terminal state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/http.hpp"

namespace fsyn::net {

struct ClientResponse {
  int status = 0;
  std::vector<Header> headers;
  std::string body;
};

class ApiClient {
 public:
  /// `timeout_ms` bounds connect and each recv; 0 disables.
  ApiClient(std::string host, int port, int timeout_ms = 30000);

  /// Adds a header sent with every request (and `watch` streams) — the
  /// client subcommands use it to forward a caller-supplied traceparent.
  void set_header(std::string name, std::string value) {
    default_headers_.push_back({std::move(name), std::move(value)});
  }

  /// Performs one request; throws fsyn::Error on connection failures or a
  /// malformed response (HTTP error statuses are returned, not thrown).
  ClientResponse request(const std::string& method, const std::string& target,
                         const std::string& body = std::string(),
                         const std::string& content_type = "application/json");

  ClientResponse get(const std::string& target) { return request("GET", target); }
  ClientResponse post(const std::string& target, const std::string& body) {
    return request("POST", target, body);
  }
  ClientResponse del(const std::string& target) { return request("DELETE", target); }

  /// Frame callback for `watch`; return false to stop streaming early.
  using FrameHandler = std::function<bool(const std::string& event, std::uint64_t seq,
                                          const std::string& data)>;

  /// Streams a job's SSE events from `after_seq` until the stream ends (the
  /// job reached a terminal state) or the handler declines to continue.
  /// Returns the HTTP status of the stream response (frames only flow on
  /// 200).  When `response_headers` is non-null it receives the stream
  /// response's headers (e.g. the server's `traceparent` echo).
  int watch(std::uint64_t job_id, const FrameHandler& on_frame,
            std::uint64_t after_seq = 0,
            std::vector<Header>* response_headers = nullptr);

 private:
  int connect_fd() const;

  std::string host_;
  int port_;
  int timeout_ms_;
  std::vector<Header> default_headers_;
};

}  // namespace fsyn::net
