// HTTP/1.1 message primitives for the flowsynthd front-end.
//
// Dependency-free (POSIX sockets live in server.cpp/client.cpp; this file
// is pure string handling): an incremental request parser with hard limits
// on header and body size so a malformed or hostile peer is answered with
// a 4xx instead of unbounded buffering, response serialization with
// keep-alive handling, chunked transfer encoding for streamed responses,
// and Server-Sent-Events frame formatting for `GET /v1/jobs/{id}/events`.
//
// The parser is tolerant where tolerance is cheap (bare-LF line endings,
// arbitrary header order) and strict where it matters (one request at a
// time, Content-Length only — a request with Transfer-Encoding is answered
// 501 rather than guessed at).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fsyn::net {

struct Header {
  std::string name;
  std::string value;
};

/// Case-insensitive header lookup; nullptr when absent.
const std::string* find_header(const std::vector<Header>& headers, std::string_view name);

struct HttpRequest {
  std::string method;   ///< uppercase verb as sent (GET, POST, DELETE, ...)
  std::string target;   ///< raw request target, query string included
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<Header> headers;
  std::string body;
  bool keep_alive = true;

  const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
  /// Target with any query string stripped.
  std::string path() const;
  /// Value of `name` in the query string ("" when absent or empty).  No
  /// percent-decoding: our parameters are plain tokens (format=prometheus).
  std::string query_param(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<Header> headers;  ///< extra headers (Retry-After, ...)
  std::string body;
  /// Set by the events handler: after the headers the server keeps the
  /// connection open and streams SSE frames for this job id.
  bool sse = false;
  std::uint64_t sse_job = 0;
};

const char* reason_phrase(int status);

/// Serializes status line + headers + body.  With `sse` set the body is
/// omitted and the response advertises `Content-Type: text/event-stream`
/// + `Transfer-Encoding: chunked`; the caller then writes `chunk_encode`d
/// SSE frames followed by `kLastChunk`.
std::string serialize_response(const HttpResponse& response, bool keep_alive);

/// One chunk of a chunked transfer encoding (hex size, CRLF, data, CRLF).
std::string chunk_encode(std::string_view data);
inline constexpr std::string_view kLastChunk = "0\r\n\r\n";

/// A Server-Sent-Events frame: `event:`/`id:`/`data:` lines + blank line.
/// Multi-line data is split into one `data:` line per line, per the spec.
std::string sse_frame(std::string_view event, std::uint64_t id, std::string_view data);

enum class ParseStatus {
  kNeedMore,  ///< incomplete; feed more bytes
  kComplete,  ///< request() is valid; leftover bytes kept for pipelining
  kError      ///< protocol error; error_status()/error_reason() describe it
};

class HttpRequestParser {
 public:
  struct Limits {
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 4 * 1024 * 1024;
  };

  HttpRequestParser() = default;
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  /// Appends bytes and attempts to complete a request.  After kError the
  /// parser is poisoned (the connection should be closed after the error
  /// response); after kComplete call `reset()` to start on the next
  /// pipelined request.
  ParseStatus feed(std::string_view data);
  /// Re-checks the buffered bytes without new input (used after reset()).
  ParseStatus advance() { return feed(std::string_view()); }

  const HttpRequest& request() const { return request_; }
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Drops the completed request, keeping unconsumed (pipelined) bytes.
  void reset();

 private:
  ParseStatus fail(int status, std::string reason);
  ParseStatus parse_headers();

  Limits limits_;
  std::string buffer_;
  HttpRequest request_;
  bool headers_done_ = false;
  std::size_t body_bytes_ = 0;     ///< Content-Length once headers parsed
  std::size_t body_offset_ = 0;    ///< offset of the body inside buffer_
  int error_status_ = 0;
  std::string error_reason_;
};

/// Incremental decoder for chunked transfer coding (client side).
class ChunkedDecoder {
 public:
  /// Decodes as much of `data` as possible, appending to `out`.
  /// kComplete after the terminating 0-chunk; kError on malformed framing.
  ParseStatus feed(std::string_view data, std::string* out);

 private:
  std::string buffer_;
  std::size_t remaining_ = 0;  ///< bytes left in the current chunk
  bool in_chunk_ = false;
  bool done_ = false;
};

}  // namespace fsyn::net
