#include "net/admission.hpp"

#include <algorithm>
#include <cmath>

namespace fsyn::net {

AdmissionDecision admit(const AdmissionConfig& config, svc::JobPriority priority,
                        std::size_t queue_depth, int workers,
                        const obs::HistogramSnapshot& service_latency) {
  AdmissionDecision decision;
  decision.deadline_seconds = config.deadline_seconds[static_cast<int>(priority)];

  decision.estimated_service_seconds = service_latency.count >= config.min_samples
                                           ? service_latency.percentile(95.0)
                                           : config.default_service_seconds;
  if (decision.estimated_service_seconds <= 0.0) {
    decision.estimated_service_seconds = config.default_service_seconds;
  }

  const int lanes = std::max(1, workers);
  // Jobs ahead of this one drain `lanes` at a time; the new job waits for
  // the slowest full wave, then runs.
  const double waves =
      std::ceil(static_cast<double>(queue_depth) / static_cast<double>(lanes));
  decision.estimated_wait_seconds = waves * decision.estimated_service_seconds;
  decision.estimated_completion_seconds =
      decision.estimated_wait_seconds + decision.estimated_service_seconds;

  if (decision.deadline_seconds <= 0.0 ||
      decision.estimated_completion_seconds <= decision.deadline_seconds) {
    decision.accepted = true;
    return decision;
  }

  decision.accepted = false;
  // Back off for the estimated excess: the time the queue needs to drain
  // before the estimate would fit the deadline again.
  const double excess =
      decision.estimated_completion_seconds - decision.deadline_seconds;
  decision.retry_after_seconds = std::max(1, static_cast<int>(std::ceil(excess)));
  return decision;
}

}  // namespace fsyn::net
