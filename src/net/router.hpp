// Declarative HTTP route table.
//
// Routes are added as `method` + `pattern` pairs where pattern segments of
// the form `{name}` capture the corresponding path segment:
//
//   router.add("GET", "/v1/jobs/{id}", handler);
//
// `dispatch` matches the request path segment-by-segment and calls the
// handler with the captured parameters.  A path that matches no pattern is
// a 404; a path whose pattern exists only under other methods is a 405
// with an `Allow` header — the distinction malformed clients need.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/http.hpp"

namespace fsyn::net {

/// Captured `{name}` → segment pairs, in pattern order.
using RouteParams = std::vector<std::pair<std::string, std::string>>;

const std::string* find_param(const RouteParams& params, std::string_view name);

using RouteHandler = std::function<HttpResponse(const HttpRequest&, const RouteParams&)>;

class Router {
 public:
  void add(std::string method, std::string pattern, RouteHandler handler);

  /// Routes the request; never throws (handler exceptions become 500s,
  /// fsyn::Error from a handler becomes a 400 with the message as body).
  HttpResponse dispatch(const HttpRequest& request) const;

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  ///< "{name}" entries capture
    RouteHandler handler;
  };

  static std::vector<std::string> split_path(std::string_view path);
  static bool match(const Route& route, const std::vector<std::string>& parts,
                    RouteParams* params);

  std::vector<Route> routes_;
};

}  // namespace fsyn::net
