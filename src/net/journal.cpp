#include "net/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace fsyn::net {

std::vector<JournalRecord> JobJournal::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(fd_ < 0, "journal already open");

  // Read whatever a previous process left behind before appending to it.
  std::string existing;
  {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      char buffer[1 << 16];
      ssize_t n;
      while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
        existing.append(buffer, static_cast<std::size_t>(n));
      }
      ::close(fd);
    }
  }

  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  check_input(fd_ >= 0, "cannot open journal '" + path + "': " + std::strerror(errno));

  std::vector<JournalRecord> records = parse(existing, &stats_.torn_lines);
  stats_.replayed_records = static_cast<long>(records.size());
  return records;
}

std::vector<JournalRecord> JobJournal::parse(const std::string& text, long* torn) {
  std::vector<JournalRecord> records;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    const bool complete = end != std::string::npos;
    const std::string line =
        text.substr(start, complete ? end - start : std::string::npos);
    start = complete ? end + 1 : text.size();
    if (line.empty()) continue;
    if (!complete) {
      // The crash hit mid-append; the record was never acknowledged.
      if (torn != nullptr) ++*torn;
      break;
    }
    try {
      const JsonValue doc = JsonValue::parse(line);
      JournalRecord record;
      const std::string& event = doc.at("event").as_string();
      record.id = static_cast<std::uint64_t>(doc.at("id").as_int());
      if (event == "accepted") {
        record.type = JournalRecord::Type::kAccepted;
        record.priority = doc.at("priority").as_string();
        record.spec_json = doc.at("spec").dump();
        if (const JsonValue* trace = doc.find("trace")) {
          record.traceparent = trace->as_string();
        }
      } else if (event == "finished") {
        record.type = JournalRecord::Type::kFinished;
        record.status = doc.at("status").as_string();
        if (const JsonValue* result = doc.find("result_doc")) {
          record.result_doc = result->as_string();
        }
        if (const JsonValue* error = doc.find("error")) {
          record.error = error->as_string();
        }
      } else {
        throw Error("unknown journal event '" + event + "'");
      }
      records.push_back(std::move(record));
    } catch (const Error& e) {
      // A complete-but-corrupt line: count it and keep replaying — one bad
      // record must not take the whole journal down.
      if (torn != nullptr) ++*torn;
      log_error("journal: dropping corrupt line: ", e.what());
    }
  }
  return records;
}

void JobJournal::append_line(const std::string& line) {
  // Caller holds mutex_.  A single write() keeps the line contiguous; the
  // worst a crash can do is truncate it, which replay tolerates.
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("journal write failed: ") + std::strerror(errno));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  ++stats_.appends;
  ::fsync(fd_);
  ++stats_.fsyncs;
}

void JobJournal::append_accepted(std::uint64_t id, const std::string& priority,
                                 const std::string& spec_json,
                                 const std::string& traceparent) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  JsonWriter w;
  w.begin_object();
  w.key("event").value("accepted");
  w.key("id").value(id);
  w.key("priority").value(priority);
  if (!traceparent.empty()) w.key("trace").value(traceparent);
  w.key("spec").raw(spec_json);
  w.end_object();
  append_line(w.take() + "\n");
}

void JobJournal::append_finished(std::uint64_t id, const std::string& status,
                                 const std::string& result_doc, const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  JsonWriter w;
  w.begin_object();
  w.key("event").value("finished");
  w.key("id").value(id);
  w.key("status").value(status);
  if (!result_doc.empty()) w.key("result_doc").value(result_doc);
  if (!error.empty()) w.key("error").value(error);
  w.end_object();
  append_line(w.take() + "\n");
}

void JobJournal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  ::fsync(fd_);
  ++stats_.fsyncs;
}

void JobJournal::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
}

JournalStats JobJournal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace fsyn::net
