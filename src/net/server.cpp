#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool terminal_event(const std::string& name) {
  return name == "done" || name == "cancelled" || name == "failed" ||
         name == "rejected";
}

}  // namespace

HttpServer::HttpServer(Config config, JobManager& manager, Router router)
    : config_(std::move(config)), manager_(manager), router_(std::move(router)) {
  int fds[2];
  require(::pipe(fds) == 0, "pipe() failed");
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
}

HttpServer::~HttpServer() {
  manager_.set_event_listener(nullptr);
  for (auto& [fd, connection] : connections_) ::close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void HttpServer::bind() {
  require(listen_fd_ < 0, "bind() called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  check_input(listen_fd_ >= 0, std::string("socket() failed: ") + std::strerror(errno));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  check_input(::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
              "bad bind address '" + config_.bind_address + "'");

  check_input(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
              "cannot bind " + config_.bind_address + ":" +
                  std::to_string(config_.port) + ": " + std::strerror(errno));
  check_input(::listen(listen_fd_, config_.backlog) == 0,
              std::string("listen() failed: ") + std::strerror(errno));
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
}

void HttpServer::request_stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void HttpServer::request_flight_dump() {
  // Only the flag + pipe write happen here — the handler may run in signal
  // context, where opening files or taking the recorder locks is unsafe.
  flight_dump_requested_.store(true, std::memory_order_relaxed);
  const char byte = 'f';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void HttpServer::wake() {
  const char byte = 'e';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void HttpServer::serve() {
  require(listen_fd_ >= 0, "serve() before bind()");
  manager_.set_event_listener([this] { wake(); });

  bool stopping = false;
  bool cancelled_rest = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  for (;;) {
    if (flight_dump_requested_.exchange(false, std::memory_order_relaxed) &&
        !config_.flight_dump_path.empty()) {
      try {
        obs::FlightRecorder::instance().dump_json_file(config_.flight_dump_path);
        log_info("flight recorder dumped to ", config_.flight_dump_path);
      } catch (const std::exception& e) {
        log_error("flight recorder dump failed: ", e.what());
      }
    }
    if (!stopping && stop_requested_.load(std::memory_order_relaxed)) {
      stopping = true;
      drain_deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(config_.grace_ms);
      ::close(listen_fd_);
      listen_fd_ = -1;
      log_info("shutdown: listener closed, cancelling queued jobs, draining ",
               manager_.active_jobs(), " active job(s)");
      manager_.cancel_queued();
    }

    if (stopping) {
      const auto now = std::chrono::steady_clock::now();
      if (!cancelled_rest && now >= drain_deadline) {
        cancelled_rest = true;
        log_info("shutdown: grace expired, cancelling remaining jobs");
        manager_.cancel_all();
      }
      const bool flushed = [&] {
        for (const auto& [fd, connection] : connections_) {
          if (connection.wants_write()) return false;
          if (connection.sse_active && !connection.sse_done) return false;
        }
        return true;
      }();
      const bool drained = manager_.active_jobs() == 0;
      // Leave once the work is gone and every watcher saw its terminal
      // frame — or once the doubled grace has passed; never hang forever.
      if ((drained && flushed) ||
          now >= drain_deadline + std::chrono::milliseconds(config_.grace_ms)) {
        break;
      }
    }

    std::vector<pollfd> fds;
    std::vector<int> fd_owner;  // connection fd per pollfd entry; -1 = special
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_owner.push_back(-1);
    if (listen_fd_ >= 0 &&
        connections_.size() < static_cast<std::size_t>(config_.max_connections)) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_owner.push_back(-2);
    }
    for (const auto& [fd, connection] : connections_) {
      short events = POLLIN;
      if (connection.wants_write()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      fd_owner.push_back(fd);
    }

    const int timeout_ms = stopping ? 50 : 1000;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      log_error("poll() failed: ", std::strerror(errno));
      break;
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fd_owner[i] == -1) {
        // Drain the self-pipe; the actual work (SSE pumping, stop flag)
        // happens below / next iteration.
        char buffer[256];
        while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
        }
        continue;
      }
      if (fd_owner[i] == -2) {
        accept_ready();
        continue;
      }
      const auto it = connections_.find(fd_owner[i]);
      if (it == connections_.end()) continue;
      Connection& connection = it->second;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          !connection.wants_write()) {
        close_connection(connection.fd);
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) {
        if (!write_ready(connection)) continue;  // connection closed
      }
      if ((fds[i].revents & POLLIN) != 0) {
        read_ready(connection);
      }
    }

    // Push any new job events to their SSE watchers.  Cheap when nothing
    // changed: one map walk over (usually few) streaming connections.
    std::vector<int> closed;
    for (auto& [fd, connection] : connections_) {
      if (!connection.sse_active || connection.sse_done) continue;
      pump_sse(connection);
      if (connection.wants_write() && !write_ready(connection)) {
        // write_ready erased it; connections_ iteration must restart.
        closed.push_back(fd);
        break;
      }
    }
    (void)closed;
  }

  manager_.set_event_listener(nullptr);
  for (auto& [fd, connection] : connections_) ::close(fd);
  connections_.clear();
  manager_.flush_journal();
  log_info("shutdown: drained, journal flushed");
}

void HttpServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      log_error("accept() failed: ", std::strerror(errno));
      return;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.emplace(fd, Connection(config_.limits));
    connections_.at(fd).fd = fd;
    if (connections_.size() >= static_cast<std::size_t>(config_.max_connections)) {
      return;  // stop accepting; the listener drops out of the poll set
    }
  }
}

void HttpServer::read_ready(Connection& connection) {
  char buffer[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(connection.fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      close_connection(connection.fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(connection.fd);
      return;
    }
    if (connection.sse_active || connection.close_after_flush) {
      continue;  // discard input on finished/streaming connections
    }
    ParseStatus status = connection.parser.feed(std::string_view(buffer, n));
    // A single read may complete several pipelined requests.
    while (status == ParseStatus::kComplete) {
      manager_.counters().http_requests.fetch_add(1, std::memory_order_relaxed);
      const HttpRequest request = connection.parser.request();
      connection.parser.reset();
      handle_request(connection, request);
      if (connection.sse_active || connection.close_after_flush) break;
      status = connection.parser.advance();
    }
    if (status == ParseStatus::kError) {
      manager_.counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response;
      response.status = connection.parser.error_status();
      response.body = "{\"error\":\"" + connection.parser.error_reason() + "\"}";
      connection.outbox += serialize_response(response, /*keep_alive=*/false);
      connection.close_after_flush = true;
    }
  }
  if (connection.wants_write()) write_ready(connection);
}

void HttpServer::handle_request(Connection& connection, const HttpRequest& request) {
  // Trace context enters (or is born) here: a valid `traceparent` header is
  // adopted, anything else — absent, malformed, all-zero — gets a freshly
  // minted id.  The scope makes it ambient for the whole dispatch, so the
  // submit handler stamps it into the job and every span below inherits it.
  obs::TraceContext context;
  if (const std::string* traceparent = request.header("traceparent")) {
    obs::parse_traceparent(*traceparent, &context);
  }
  if (!context.valid()) context = obs::make_trace_context();
  obs::TraceContextScope trace_scope(context);
  obs::Span http_span("net", "http " + request.method + " " + request.path());

  HttpResponse response = router_.dispatch(request);
  if (http_span.active()) {
    http_span.arg("method", request.method);
    http_span.arg("target", request.target);
    http_span.arg("status", response.sse ? 200 : response.status);
  }
  if (response.sse) {
    start_sse(connection, request, response.sse_job);
    return;
  }
  // Echo the trace back so a client without its own tracer can still quote
  // the id (the parent field is our server-side span).
  response.headers.push_back({"traceparent", obs::current_trace().traceparent()});
  const bool keep_alive =
      request.keep_alive && !stop_requested_.load(std::memory_order_relaxed);
  connection.outbox += serialize_response(response, keep_alive);
  if (!keep_alive) connection.close_after_flush = true;
}

void HttpServer::start_sse(Connection& connection, const HttpRequest& request,
                           std::uint64_t job_id) {
  connection.sse_active = true;
  connection.sse_job = job_id;
  connection.sse_last_seq = 0;
  if (const std::string* last = request.header("Last-Event-ID")) {
    char* end = nullptr;
    const unsigned long long seq = std::strtoull(last->c_str(), &end, 10);
    if (end != nullptr && *end == '\0') connection.sse_last_seq = seq;
  }
  HttpResponse headers;
  headers.sse = true;
  // start_sse always runs inside handle_request's trace scope.
  if (obs::current_trace().valid()) {
    headers.headers.push_back({"traceparent", obs::current_trace().traceparent()});
  }
  connection.outbox += serialize_response(headers, /*keep_alive=*/true);
  pump_sse(connection);
}

void HttpServer::pump_sse(Connection& connection) {
  const std::vector<JobEvent> events =
      manager_.events_since(connection.sse_job, connection.sse_last_seq);
  for (const JobEvent& event : events) {
    connection.outbox += chunk_encode(sse_frame(event.name, event.seq, event.data));
    connection.sse_last_seq = event.seq;
    if (terminal_event(event.name)) {
      connection.outbox += kLastChunk;
      connection.sse_done = true;
      connection.close_after_flush = true;
      break;
    }
  }
}

bool HttpServer::write_ready(Connection& connection) {
  while (connection.wants_write()) {
    const char* data = connection.outbox.data() + connection.out_offset;
    const std::size_t left = connection.outbox.size() - connection.out_offset;
    const ssize_t n = ::send(connection.fd, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      close_connection(connection.fd);
      return false;
    }
    connection.out_offset += static_cast<std::size_t>(n);
  }
  connection.outbox.clear();
  connection.out_offset = 0;
  if (connection.close_after_flush) {
    close_connection(connection.fd);
    return false;
  }
  return true;
}

void HttpServer::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::close(fd);
  connections_.erase(it);
}

}  // namespace fsyn::net
