#include "net/http.hpp"

#include <cctype>
#include <cstdio>

namespace fsyn::net {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view strip(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

const std::string* find_header(const std::vector<Header>& headers, std::string_view name) {
  for (const Header& header : headers) {
    if (iequals(header.name, name)) return &header.value;
  }
  return nullptr;
}

std::string HttpRequest::path() const {
  const std::size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

std::string HttpRequest::query_param(std::string_view name) const {
  const std::size_t query = target.find('?');
  if (query == std::string::npos) return std::string();
  std::size_t pos = query + 1;
  while (pos < target.size()) {
    std::size_t end = target.find('&', pos);
    if (end == std::string::npos) end = target.size();
    const std::string_view pair = std::string_view(target).substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    const std::string_view key = pair.substr(0, eq == std::string_view::npos ? pair.size() : eq);
    if (key == name) {
      return eq == std::string_view::npos ? std::string()
                                          : std::string(pair.substr(eq + 1));
    }
    pos = end + 1;
  }
  return std::string();
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

std::string serialize_response(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out += "HTTP/1.1 " + std::to_string(response.status) + " " +
         reason_phrase(response.status) + "\r\n";
  out += "Server: flowsynthd\r\n";
  if (response.sse) {
    out += "Content-Type: text/event-stream\r\n";
    out += "Cache-Control: no-store\r\n";
    out += "Transfer-Encoding: chunked\r\n";
  } else {
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  for (const Header& header : response.headers) {
    out += header.name + ": " + header.value + "\r\n";
  }
  out += keep_alive && !response.sse ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  if (!response.sse) out += response.body;
  return out;
}

std::string chunk_encode(std::string_view data) {
  char size[20];
  std::snprintf(size, sizeof(size), "%zx\r\n", data.size());
  std::string out(size);
  out.append(data);
  out += "\r\n";
  return out;
}

std::string sse_frame(std::string_view event, std::uint64_t id, std::string_view data) {
  std::string out;
  out += "event: ";
  out += event;
  out += "\nid: " + std::to_string(id) + "\n";
  std::size_t start = 0;
  while (start <= data.size()) {
    const std::size_t end = data.find('\n', start);
    out += "data: ";
    out += data.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                            : end - start);
    out += '\n';
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  out += '\n';
  return out;
}

ParseStatus HttpRequestParser::fail(int status, std::string reason) {
  error_status_ = status;
  error_reason_ = std::move(reason);
  return ParseStatus::kError;
}

ParseStatus HttpRequestParser::feed(std::string_view data) {
  if (error_status_ != 0) return ParseStatus::kError;
  buffer_.append(data);

  if (!headers_done_) {
    const ParseStatus status = parse_headers();
    if (status != ParseStatus::kComplete) return status;
  }
  if (buffer_.size() - body_offset_ < body_bytes_) return ParseStatus::kNeedMore;
  request_.body = buffer_.substr(body_offset_, body_bytes_);
  return ParseStatus::kComplete;
}

ParseStatus HttpRequestParser::parse_headers() {
  // Find the end of the header section; tolerate bare-LF line endings.
  std::size_t header_end = buffer_.find("\r\n\r\n");
  std::size_t separator = 4;
  {
    const std::size_t lf = buffer_.find("\n\n");
    if (lf != std::string::npos && (header_end == std::string::npos || lf < header_end)) {
      header_end = lf;
      separator = 2;
    }
  }
  if (header_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return fail(431, "header section exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes");
    }
    return ParseStatus::kNeedMore;
  }
  if (header_end > limits_.max_header_bytes) {
    return fail(431, "header section exceeds " + std::to_string(limits_.max_header_bytes) +
                         " bytes");
  }

  const std::string_view head(buffer_.data(), header_end);
  std::size_t line_start = 0;
  bool first = true;
  while (line_start <= head.size()) {
    std::size_t line_end = head.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line = strip(head.substr(line_start, line_end - line_start));
    line_start = line_end + 1;
    if (first) {
      first = false;
      // METHOD SP target SP HTTP/x.y
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 = line.rfind(' ');
      if (sp1 == std::string_view::npos || sp2 == sp1) {
        return fail(400, "malformed request line");
      }
      request_.method = std::string(line.substr(0, sp1));
      request_.target = std::string(strip(line.substr(sp1 + 1, sp2 - sp1 - 1)));
      request_.version = std::string(line.substr(sp2 + 1));
      if (request_.method.empty() || request_.target.empty() ||
          request_.target[0] != '/') {
        return fail(400, "malformed request line");
      }
      if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
        return fail(505, "unsupported HTTP version '" + request_.version + "'");
      }
      continue;
    }
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, "malformed header line");
    }
    Header header;
    header.name = std::string(strip(line.substr(0, colon)));
    header.value = std::string(strip(line.substr(colon + 1)));
    request_.headers.push_back(std::move(header));
  }

  // Framing: Content-Length only.  A request that tries to chunk its body
  // is refused rather than mis-framed.
  if (request_.header("Transfer-Encoding") != nullptr) {
    return fail(501, "chunked request bodies are not supported");
  }
  body_bytes_ = 0;
  if (const std::string* length = request_.header("Content-Length")) {
    std::size_t parsed = 0;
    for (const char c : *length) {
      if (c < '0' || c > '9' || parsed > limits_.max_body_bytes) {
        return fail(c < '0' || c > '9' ? 400 : 413, "bad Content-Length '" + *length + "'");
      }
      parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
    }
    if (parsed > limits_.max_body_bytes) {
      return fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) + " bytes");
    }
    body_bytes_ = parsed;
  } else if (request_.method == "POST" || request_.method == "PUT") {
    return fail(411, "missing Content-Length");
  }

  request_.keep_alive = request_.version == "HTTP/1.1";
  if (const std::string* connection = request_.header("Connection")) {
    if (iequals(*connection, "close")) request_.keep_alive = false;
    if (iequals(*connection, "keep-alive")) request_.keep_alive = true;
  }

  headers_done_ = true;
  body_offset_ = header_end + separator;
  return ParseStatus::kComplete;
}

void HttpRequestParser::reset() {
  const std::size_t consumed = body_offset_ + body_bytes_;
  buffer_.erase(0, consumed);
  request_ = HttpRequest();
  headers_done_ = false;
  body_bytes_ = 0;
  body_offset_ = 0;
  error_status_ = 0;
  error_reason_.clear();
}

ParseStatus ChunkedDecoder::feed(std::string_view data, std::string* out) {
  if (done_) return ParseStatus::kComplete;
  buffer_.append(data);
  for (;;) {
    if (in_chunk_) {
      const std::size_t take = std::min(remaining_, buffer_.size());
      out->append(buffer_, 0, take);
      buffer_.erase(0, take);
      remaining_ -= take;
      if (remaining_ > 0) return ParseStatus::kNeedMore;
      in_chunk_ = false;  // the trailing CRLF shows up as an empty size line
      continue;
    }
    const std::size_t line_end = buffer_.find('\n');
    if (line_end == std::string::npos) {
      if (buffer_.size() > 64) return ParseStatus::kError;  // absurd size line
      return ParseStatus::kNeedMore;
    }
    const std::string_view line =
        strip(std::string_view(buffer_).substr(0, line_end));
    if (line.empty()) {  // CRLF terminating the previous chunk's data
      buffer_.erase(0, line_end + 1);
      continue;
    }
    std::size_t size = 0;
    for (const char c : line) {
      if (c == ';') break;  // chunk extensions: ignored
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return ParseStatus::kError;
      size = size * 16 + static_cast<std::size_t>(digit);
    }
    buffer_.erase(0, line_end + 1);
    if (size == 0) {
      done_ = true;
      return ParseStatus::kComplete;
    }
    in_chunk_ = true;
    remaining_ = size;
  }
}

}  // namespace fsyn::net
