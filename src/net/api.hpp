// The flowsynthd REST surface, as a route table over JobManager.
//
//   POST   /v1/jobs             submit a job (wire.hpp spec) -> 202 {id}
//                               429 + Retry-After when admission sheds it,
//                               503 when the pool queue is full
//   GET    /v1/jobs             list all known jobs
//   GET    /v1/jobs/{id}        status document
//   GET    /v1/jobs/{id}/result byte-exact result document (409 until done)
//   GET    /v1/jobs/{id}/events SSE lifecycle stream (queued/running/stage/
//                               done/...), resumable via Last-Event-ID
//   DELETE /v1/jobs/{id}        cooperative cancel
//   GET    /metrics             service + front-end counters as JSON
//   GET    /healthz             liveness + uptime
//
// Kept separate from server.cpp so tests can dispatch requests against the
// router without opening a socket.
#pragma once

#include "net/admission.hpp"
#include "net/job_manager.hpp"
#include "net/router.hpp"

namespace fsyn::net {

/// Builds the route table.  `manager` must outlive the router; `admission`
/// is copied.
Router make_api_router(JobManager& manager, const AdmissionConfig& admission);

}  // namespace fsyn::net
