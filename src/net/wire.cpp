#include "net/wire.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "fleet/fleet.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace fsyn::net {

namespace {

const char* kKnownKeys[] = {"kind",     "assay",       "dsl",         "name",
                            "policy",   "asap",        "seed",        "grid",
                            "ilp",      "time_limit_seconds", "ilp_threads",
                            "priority", "deadline_ms", "reliability", "fleet"};

const char* kKnownReliabilityKeys[] = {"trials",     "seed",       "inject_top",
                                       "fault_plan", "compare_static",
                                       "pump_life",  "control_life", "shape"};

const char* kKnownFleetKeys[] = {"chips",        "cadence",      "horizon",
                                 "repair_workers", "max_repairs",
                                 "degrade_threshold", "pump_life",
                                 "control_life", "shape"};

void check_keys(const JsonValue& object, const char* const* known, std::size_t count,
                const char* where) {
  for (const auto& [name, value] : object.members()) {
    bool ok = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (name == known[i]) {
        ok = true;
        break;
      }
    }
    check_input(ok, std::string("unknown ") + where + " key '" + name + "'");
  }
}

}  // namespace

svc::JobPriority priority_from_string(const std::string& name) {
  if (name == "interactive") return svc::JobPriority::kInteractive;
  if (name == "batch") return svc::JobPriority::kBatch;
  if (name == "background") return svc::JobPriority::kBackground;
  throw Error("unknown priority '" + name +
              "' (expected interactive, batch or background)");
}

WireSpec parse_wire_spec(const std::string& json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  check_input(doc.is_object(), "job spec must be a JSON object");
  check_keys(doc, kKnownKeys, std::size(kKnownKeys), "job spec");

  WireSpec wire;
  svc::JobSpec& spec = wire.spec;

  std::string kind = "synthesis";
  if (const JsonValue* value = doc.find("kind")) kind = value->as_string();
  if (kind == "synthesis") {
    spec.kind = svc::JobKind::kSynthesis;
  } else if (kind == "reliability") {
    spec.kind = svc::JobKind::kReliability;
  } else if (kind == "fleet") {
    spec.kind = svc::JobKind::kFleet;
  } else {
    throw Error("unknown job kind '" + kind + "'");
  }

  const JsonValue* assay = doc.find("assay");
  const JsonValue* dsl = doc.find("dsl");
  check_input((assay != nullptr) != (dsl != nullptr),
              "job spec needs exactly one of \"assay\" (benchmark name) or "
              "\"dsl\" (inline assay text)");
  if (assay != nullptr) {
    wire.assay_ref = assay->as_string();
    bool known = false;
    for (const auto& name : assay::extended_benchmark_names()) {
      if (name == wire.assay_ref) {
        known = true;
        break;
      }
    }
    check_input(known, "unknown benchmark '" + wire.assay_ref + "'");
    spec.graph = assay::make_benchmark(wire.assay_ref);
  } else {
    wire.assay_ref = "(inline)";
    spec.graph = assay::parse_assay(dsl->as_string());
  }
  spec.name = spec.graph.name();
  if (const JsonValue* value = doc.find("name")) spec.name = value->as_string();

  if (const JsonValue* value = doc.find("policy")) {
    wire.policy_increments = static_cast<int>(value->as_int());
    check_input(wire.policy_increments >= 0, "\"policy\" must be >= 0");
  }
  if (const JsonValue* value = doc.find("asap")) wire.asap = value->as_bool();
  spec.policy_increments = wire.policy_increments;
  spec.asap = wire.asap;

  if (const JsonValue* value = doc.find("seed")) {
    wire.seed = static_cast<std::uint64_t>(value->as_int());
  }
  spec.options.heuristic.seed = wire.seed;
  if (const JsonValue* value = doc.find("grid")) {
    const int grid = static_cast<int>(value->as_int());
    check_input(grid > 0, "\"grid\" must be positive");
    spec.options.grid_size = grid;
  }
  if (const JsonValue* value = doc.find("ilp"); value != nullptr && value->as_bool()) {
    spec.options.mapper = synth::MapperKind::kIlp;
  }
  if (const JsonValue* value = doc.find("time_limit_seconds")) {
    spec.options.ilp.time_limit_seconds = value->as_number();
  }
  if (const JsonValue* value = doc.find("ilp_threads")) {
    spec.options.ilp.threads = static_cast<int>(value->as_int());
  }

  // Interactive by default: a POSTed synthesis has a caller waiting on it.
  // Reliability analyses are the fleet's background re-synthesis work, and
  // whole-fleet simulations are long batch jobs.
  spec.priority = spec.kind == svc::JobKind::kReliability ? svc::JobPriority::kBackground
                  : spec.kind == svc::JobKind::kFleet     ? svc::JobPriority::kBatch
                                                          : svc::JobPriority::kInteractive;
  if (const JsonValue* value = doc.find("priority")) {
    spec.priority = priority_from_string(value->as_string());
  }

  if (const JsonValue* value = doc.find("deadline_ms")) {
    const std::int64_t ms = value->as_int();
    check_input(ms > 0, "\"deadline_ms\" must be positive");
    spec.deadline = std::chrono::milliseconds(ms);
  }

  if (const JsonValue* value = doc.find("reliability")) {
    check_input(value->is_object(), "\"reliability\" must be an object");
    check_keys(*value, kKnownReliabilityKeys, std::size(kKnownReliabilityKeys),
               "reliability");
    rel::ReliabilityOptions& r = spec.reliability;
    r.monte_carlo.seed = wire.seed;
    if (const JsonValue* v = value->find("trials")) {
      r.monte_carlo.trials = static_cast<int>(v->as_int());
      check_input(r.monte_carlo.trials > 0, "\"trials\" must be positive");
    }
    if (const JsonValue* v = value->find("seed")) {
      r.monte_carlo.seed = static_cast<std::uint64_t>(v->as_int());
    }
    if (const JsonValue* v = value->find("inject_top")) {
      r.inject_top = static_cast<int>(v->as_int());
    }
    if (const JsonValue* v = value->find("fault_plan")) {
      r.faults = rel::FaultPlan::parse(v->as_string());
    }
    if (const JsonValue* v = value->find("compare_static")) {
      r.compare_static = v->as_bool();
    }
    if (const JsonValue* v = value->find("pump_life")) {
      r.monte_carlo.model.pump.characteristic_actuations = v->as_number();
    }
    if (const JsonValue* v = value->find("control_life")) {
      r.monte_carlo.model.control.characteristic_actuations = v->as_number();
    }
    if (const JsonValue* v = value->find("shape")) {
      r.monte_carlo.model.pump.shape = v->as_number();
      r.monte_carlo.model.control.shape = v->as_number();
    }
  }

  if (spec.kind == svc::JobKind::kFleet) {
    fleet::FleetOptions foptions;
    foptions.seed = wire.seed;
    foptions.synthesis = spec.options;
    foptions.policy_increments = wire.policy_increments;
    foptions.asap = wire.asap;
    if (const JsonValue* value = doc.find("fleet")) {
      check_input(value->is_object(), "\"fleet\" must be an object");
      check_keys(*value, kKnownFleetKeys, std::size(kKnownFleetKeys), "fleet");
      if (const JsonValue* v = value->find("chips")) {
        foptions.chips = static_cast<int>(v->as_int());
        check_input(foptions.chips > 0, "\"chips\" must be positive");
      }
      if (const JsonValue* v = value->find("cadence")) {
        foptions.cadence = static_cast<int>(v->as_int());
        check_input(foptions.cadence > 0, "\"cadence\" must be positive");
      }
      if (const JsonValue* v = value->find("horizon")) {
        foptions.horizon = static_cast<int>(v->as_int());
        check_input(foptions.horizon > 0, "\"horizon\" must be positive");
      }
      if (const JsonValue* v = value->find("repair_workers")) {
        foptions.repair_workers = static_cast<int>(v->as_int());
        check_input(foptions.repair_workers > 0, "\"repair_workers\" must be positive");
      }
      if (const JsonValue* v = value->find("max_repairs")) {
        foptions.max_repairs_per_chip = static_cast<int>(v->as_int());
        check_input(foptions.max_repairs_per_chip >= 0, "\"max_repairs\" must be >= 0");
      }
      if (const JsonValue* v = value->find("degrade_threshold")) {
        foptions.diagnosis.latency_threshold_ms = v->as_number();
      }
      if (const JsonValue* v = value->find("pump_life")) {
        foptions.chip.model.pump.characteristic_actuations = v->as_number();
      }
      if (const JsonValue* v = value->find("control_life")) {
        foptions.chip.model.control.characteristic_actuations = v->as_number();
      }
      if (const JsonValue* v = value->find("shape")) {
        foptions.chip.model.pump.shape = v->as_number();
        foptions.chip.model.control.shape = v->as_number();
      }
    }
    // make_fleet_job owns its own copy of the graph; the wire spec keeps the
    // already-parsed name/priority/deadline and only adopts the runner.
    svc::JobSpec fleet_spec = fleet::make_fleet_job(
        std::make_shared<const assay::SequencingGraph>(spec.graph), foptions);
    spec.fleet_runner = std::move(fleet_spec.fleet_runner);
  }

  wire.canonical = doc.dump();
  return wire;
}

}  // namespace fsyn::net
