#include "net/api.hpp"

#include <cstdlib>
#include <optional>

#include "obs/flight_recorder.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace_context.hpp"
#include "util/json.hpp"

namespace fsyn::net {

namespace {

HttpResponse json_response(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse error_response(int status, std::string_view message) {
  JsonWriter w;
  w.begin_object();
  w.key("error").value(message);
  w.end_object();
  return json_response(status, w.take());
}

/// Parses the `{id}` capture; 0 on malformed input (0 is never assigned).
std::uint64_t parse_id(const RouteParams& params) {
  const std::string* id = find_param(params, "id");
  if (id == nullptr || id->empty()) return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(id->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<std::uint64_t>(value);
}

/// `/metrics` wants Prometheus text when the client says so — via
/// `?format=prometheus` or an Accept header that prefers text/plain (what
/// a Prometheus scraper sends).  JSON stays the default for humans and the
/// existing tooling.
bool wants_prometheus(const HttpRequest& request) {
  const std::string format = request.query_param("format");
  if (format == "prometheus" || format == "text") return true;
  if (format == "json") return false;
  if (const std::string* accept = request.header("Accept")) {
    const std::size_t text = accept->find("text/plain");
    const std::size_t json = accept->find("application/json");
    if (text != std::string::npos && (json == std::string::npos || text < json)) return true;
  }
  return false;
}

HttpResponse submit_job(JobManager& manager, const AdmissionConfig& admission,
                        const HttpRequest& request,
                        std::optional<svc::JobKind> require_kind = std::nullopt) {
  WireSpec wire = parse_wire_spec(request.body);  // fsyn::Error -> 400 (router)
  if (require_kind.has_value() && wire.spec.kind != *require_kind) {
    return error_response(400, "this route requires \"kind\": \"fleet\"");
  }
  // The server installed the request's context (parsed from traceparent or
  // minted at the door) before dispatching; the job inherits it here.
  wire.spec.trace = obs::current_trace();

  const AdmissionDecision decision =
      admit(admission, wire.spec.priority, manager.service().queue_depth(),
            manager.service().worker_count(),
            manager.service().metrics().synthesis_latency);
  if (!decision.accepted) {
    manager.counters().admission_rejected.fetch_add(1, std::memory_order_relaxed);
    JsonWriter w;
    w.begin_object();
    w.key("error").value("overloaded: estimated completion exceeds route deadline");
    w.key("priority").value(svc::to_string(wire.spec.priority));
    w.key("estimated_completion_seconds").value(decision.estimated_completion_seconds);
    w.key("deadline_seconds").value(decision.deadline_seconds);
    w.key("retry_after_seconds").value(decision.retry_after_seconds);
    w.end_object();
    HttpResponse response = json_response(429, w.take());
    response.headers.push_back({"Retry-After", std::to_string(decision.retry_after_seconds)});
    return response;
  }

  const svc::JobPriority priority = wire.spec.priority;
  const std::uint64_t id = manager.submit(std::move(wire));

  // With the reject overflow policy a full pool queue resolves the job
  // synchronously, so the terminal state is already visible here.
  if (manager.state_of(id) == "rejected") {
    JsonWriter w;
    w.begin_object();
    w.key("error").value("queue full");
    w.key("id").value(id);
    w.end_object();
    HttpResponse response = json_response(503, w.take());
    response.headers.push_back({"Retry-After", "1"});
    return response;
  }

  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("state").value(manager.state_of(id));
  w.key("priority").value(svc::to_string(priority));
  const obs::TraceContext trace = obs::current_trace();
  if (trace.valid()) w.key("trace_id").value(trace.trace_id_hex());
  w.end_object();
  return json_response(202, w.take());
}

}  // namespace

Router make_api_router(JobManager& manager, const AdmissionConfig& admission) {
  Router router;

  router.add("POST", "/v1/jobs",
             [&manager, admission](const HttpRequest& request, const RouteParams&) {
               return submit_job(manager, admission, request);
             });

  // Dedicated fleet endpoint: same admission/journal path as /v1/jobs but
  // rejects non-fleet bodies so clients can't accidentally run a synthesis
  // under the fleet route's expectations.
  router.add("POST", "/v1/fleet",
             [&manager, admission](const HttpRequest& request, const RouteParams&) {
               return submit_job(manager, admission, request, svc::JobKind::kFleet);
             });

  router.add("GET", "/v1/jobs", [&manager](const HttpRequest&, const RouteParams&) {
    return json_response(200, manager.list_json());
  });

  router.add("GET", "/v1/jobs/{id}",
             [&manager](const HttpRequest&, const RouteParams& params) {
               const std::uint64_t id = parse_id(params);
               const std::string status = id != 0 ? manager.status_json(id) : std::string();
               if (status.empty()) return error_response(404, "no such job");
               return json_response(200, status);
             });

  router.add("GET", "/v1/jobs/{id}/result",
             [&manager](const HttpRequest&, const RouteParams& params) {
               const std::uint64_t id = parse_id(params);
               std::string doc;
               std::string state;
               if (id == 0 || !manager.result_doc(id, &doc, &state)) {
                 return error_response(404, "no such job");
               }
               if (state != "done") {
                 JsonWriter w;
                 w.begin_object();
                 w.key("error").value(state == "queued" || state == "running"
                                          ? "job not finished"
                                          : "job ended without a result");
                 w.key("state").value(state);
                 w.end_object();
                 return json_response(409, w.take());
               }
               return json_response(200, std::move(doc));
             });

  router.add("GET", "/v1/jobs/{id}/events",
             [&manager](const HttpRequest&, const RouteParams& params) {
               const std::uint64_t id = parse_id(params);
               if (id == 0 || !manager.exists(id)) {
                 return error_response(404, "no such job");
               }
               manager.counters().sse_streams.fetch_add(1, std::memory_order_relaxed);
               HttpResponse response;
               response.sse = true;
               response.sse_job = id;
               return response;
             });

  router.add("DELETE", "/v1/jobs/{id}",
             [&manager](const HttpRequest&, const RouteParams& params) {
               const std::uint64_t id = parse_id(params);
               if (id == 0 || !manager.exists(id)) {
                 return error_response(404, "no such job");
               }
               const bool cancelled = manager.cancel(id);
               JsonWriter w;
               w.begin_object();
               w.key("id").value(id);
               w.key("cancelled").value(cancelled);
               w.key("state").value(manager.state_of(id));
               w.end_object();
               return json_response(200, w.take());
             });

  router.add("GET", "/metrics", [&manager](const HttpRequest& request, const RouteParams&) {
    if (wants_prometheus(request)) {
      HttpResponse response;
      response.status = 200;
      response.content_type = std::string(obs::kPrometheusContentType);
      response.body = manager.metrics_prometheus();
      return response;
    }
    return json_response(200, manager.metrics_json());
  });

  router.add("GET", "/v1/debug/trace", [](const HttpRequest&, const RouteParams&) {
    if (!obs::flight_recording_enabled()) {
      return error_response(404, "flight recorder disabled");
    }
    HttpResponse response;
    response.status = 200;
    response.body = obs::FlightRecorder::instance().dump_json();
    return response;
  });

  router.add("GET", "/healthz", [&manager](const HttpRequest&, const RouteParams&) {
    JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    w.key("uptime_seconds").value(manager.uptime_seconds());
    w.key("active_jobs").value(static_cast<std::uint64_t>(manager.active_jobs()));
    w.end_object();
    return json_response(200, w.take());
  });

  return router;
}

}  // namespace fsyn::net
