#include "sim/control_program.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fsyn::sim {

Grid<int> ControlProgram::replay(int width, int height) const {
  Grid<int> totals(width, height, 0);
  for (const ValveEvent& event : events) {
    totals.at(event.valve) += event.count;
  }
  return totals;
}

int ControlProgram::distinct_valves() const {
  std::set<Point> valves;
  for (const ValveEvent& event : events) valves.insert(event.valve);
  return static_cast<int>(valves.size());
}

std::string ControlProgram::to_text() const {
  std::ostringstream os;
  for (const ValveEvent& event : events) {
    os << "t=" << event.time << "\tvalve " << event.valve << '\t'
       << (event.action == ValveAction::kPumpBurst ? "pump x" : "cycle x") << event.count
       << '\t' << event.cause << '\n';
  }
  return os.str();
}

ControlProgram compile_control_program(const synth::MappingProblem& problem,
                                       const synth::Placement& placement,
                                       const route::RoutingResult& routing,
                                       Setting setting) {
  require(routing.success, "cannot compile a failed routing");
  obs::Span span("sim", "compile_control_program");
  ControlProgram program;

  // Peristalsis bursts: the whole ring of a mixing task pumps at start.
  for (int i = 0; i < problem.task_count(); ++i) {
    const synth::MappingTask& task = problem.task(i);
    if (!task.is_mix) continue;
    const auto ring = placement[static_cast<std::size_t>(i)].pump_cells();
    const int per_valve =
        setting == Setting::kConservative
            ? task.pump_actuations
            : (synth::kDedicatedPumpWorkPerMix + static_cast<int>(ring.size()) - 1) /
                  static_cast<int>(ring.size());
    for (const Point& valve : ring) {
      program.events.push_back(
          ValveEvent{task.start, valve, ValveAction::kPumpBurst, per_valve, task.name});
    }
  }

  // Transport gating: every path cell cycles open/close once per transport.
  for (const route::RoutedPath& path : routing.paths) {
    for (const Point& valve : path.cells) {
      program.events.push_back(ValveEvent{path.time, valve, ValveAction::kOpenClose,
                                          kControlActuationsPerTransport, path.label});
    }
  }

  std::sort(program.events.begin(), program.events.end(),
            [](const ValveEvent& a, const ValveEvent& b) {
              return std::tie(a.time, a.valve.y, a.valve.x, a.cause) <
                     std::tie(b.time, b.valve.y, b.valve.x, b.cause);
            });
  if (span.active()) span.arg("events", program.events.size());
  return program;
}

std::vector<std::vector<Point>> control_pin_groups(const ControlProgram& program) {
  // Key each valve by its full event schedule; identical schedules can be
  // tee'd off one pressure line without changing chip behaviour.
  std::map<Point, std::string> schedule_of;
  for (const ValveEvent& event : program.events) {
    std::ostringstream key;
    key << event.time << '/' << static_cast<int>(event.action) << '/' << event.count << ';';
    schedule_of[event.valve] += key.str();
  }
  std::map<std::string, std::vector<Point>> by_schedule;
  for (const auto& [valve, schedule] : schedule_of) by_schedule[schedule].push_back(valve);

  std::vector<std::vector<Point>> groups;
  groups.reserve(by_schedule.size());
  for (auto& [schedule, valves] : by_schedule) groups.push_back(std::move(valves));
  std::stable_sort(groups.begin(), groups.end(),
                   [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return groups;
}

int shared_control_pins(const ControlProgram& program) {
  return static_cast<int>(control_pin_groups(program).size());
}

}  // namespace fsyn::sim
