// Valve actuation accounting (paper Section 4 and Fig. 10).
//
// Two actuation classes are tracked per virtual valve:
//   * pump:    peristaltic actuations while the valve is part of a dynamic
//              mixer's circulation ring (p_i per mixing operation);
//   * control: open+close pairs for every transport whose routing path
//              passes over the valve (fills, transfers, drains).
// Virtual valves with zero total actuations are removed from the final
// design (Algorithm 1 L20) and appear as "functionless walls" in Fig. 10;
// the number of remaining valves is the paper's #v column.
#pragma once

#include "geom/grid.hpp"
#include "route/router.hpp"
#include "synth/mapping_problem.hpp"

namespace fsyn::sim {

/// The paper's two experimental settings (Section 4).
enum class Setting {
  kConservative,  ///< setting 1: every pump valve actuated 40x per mix
  kRescaled       ///< setting 2: total pump work = dedicated mixer's 120
};

/// Control actuations per transport on each path cell (open, then close).
inline constexpr int kControlActuationsPerTransport = 2;

struct ActuationLedger {
  Grid<int> pump;
  Grid<int> control;

  Grid<int> total() const;
  int max_pump() const;
  int max_total() const;
  /// Valves kept after removing never-actuated virtual valves (#v).
  int actuated_valve_count() const;
  /// Sum of pump actuations over all valves (conservation checks).
  long total_pump_actuations() const;
};

/// Accounts a complete synthesis (placement + routing) in the given setting.
ActuationLedger account(const synth::MappingProblem& problem,
                        const synth::Placement& placement,
                        const route::RoutingResult& routing, Setting setting);

}  // namespace fsyn::sim
