#include "sim/wear_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fsyn::sim {

namespace {

/// Standard normal via Box-Muller on the deterministic Rng.
double sample_normal(Rng& rng) {
  // Guard against log(0).
  double u1 = rng.next_double();
  while (u1 <= 1e-12) u1 = rng.next_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

const char* to_string(ValveRole role) {
  return role == ValveRole::kPump ? "pump" : "control";
}

std::vector<ValveWear> valve_wear(const ActuationLedger& ledger) {
  require(ledger.pump.width() == ledger.control.width() &&
              ledger.pump.height() == ledger.control.height(),
          "ledger grids disagree on chip dimensions");
  std::vector<ValveWear> valves;
  // for_each walks row-major bottom-up, so valve ids come out ascending.
  ledger.pump.for_each([&](const Point& cell, const int& pump) {
    const int control = ledger.control.at(cell);
    if (pump == 0 && control == 0) return;
    ValveWear valve;
    valve.valve_id = cell.y * ledger.pump.width() + cell.x;
    valve.cell = cell;
    valve.pump = pump;
    valve.control = control;
    valves.push_back(valve);
  });
  return valves;
}

int deterministic_lifetime(const ActuationLedger& ledger, const WearModel& model) {
  check_input(model.endurance_mean > 0.0, "endurance must be positive");
  const int busiest = ledger.max_total();
  require(busiest > 0, "ledger with no actuations has no lifetime to estimate");
  return static_cast<int>(model.endurance_mean / busiest);
}

LifetimeEstimate monte_carlo_lifetime(const ActuationLedger& ledger, Rng& rng,
                                      const WearModel& model, int trials) {
  check_input(trials > 0, "need at least one trial");
  check_input(model.endurance_mean > 0.0 && model.endurance_stddev >= 0.0,
              "invalid wear model");

  // Per-run actuations of every implemented valve (valve_wear order is
  // row-major, matching the historical grid scan, so seeds reproduce).
  std::vector<int> per_run;
  for (const ValveWear& valve : valve_wear(ledger)) per_run.push_back(valve.total());
  require(!per_run.empty(), "ledger with no actuations has no lifetime to estimate");

  std::vector<double> lifetimes;
  lifetimes.reserve(static_cast<std::size_t>(trials));
  for (int trial = 0; trial < trials; ++trial) {
    double chip_runs = std::numeric_limits<double>::infinity();
    for (const int load : per_run) {
      double endurance = model.endurance_mean + model.endurance_stddev * sample_normal(rng);
      endurance = std::max(endurance, 1.0);  // truncate: a valve survives >= 1 actuation
      chip_runs = std::min(chip_runs, endurance / load);
    }
    lifetimes.push_back(std::floor(chip_runs));
  }
  std::sort(lifetimes.begin(), lifetimes.end());

  LifetimeEstimate estimate;
  estimate.trials = trials;
  double sum = 0.0;
  for (const double runs : lifetimes) sum += runs;
  estimate.mean_runs = sum / trials;
  estimate.p10_runs = lifetimes[static_cast<std::size_t>(trials / 10)];
  estimate.p90_runs = lifetimes[static_cast<std::size_t>(trials * 9 / 10)];
  return estimate;
}

}  // namespace fsyn::sim
