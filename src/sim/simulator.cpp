#include "sim/simulator.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace fsyn::sim {

using synth::MappingTask;

ChipSimulator::ChipSimulator(const synth::MappingProblem& problem,
                             const synth::Placement& placement,
                             const route::RoutingResult& routing, Setting setting)
    : problem_(problem), placement_(placement), routing_(routing), setting_(setting) {
  require(routing.success, "cannot simulate a failed routing");
  problem.validate_placement(placement);
}

Snapshot ChipSimulator::snapshot_at(int time) const {
  Snapshot snap;
  snap.time = time;
  snap.cumulative = Grid<int>(problem_.chip().width(), problem_.chip().height(), 0);

  // Pump actuations are charged when the mixing operation starts (the
  // circulation runs for the whole duration; Fig. 10 shows the full 40 on a
  // running mixer's ring).
  for (int i = 0; i < problem_.task_count(); ++i) {
    const MappingTask& task = problem_.task(i);
    if (!task.is_mix || task.start > time) continue;
    const auto ring = placement_[static_cast<std::size_t>(i)].pump_cells();
    const int per_valve =
        setting_ == Setting::kConservative
            ? task.pump_actuations
            : (synth::kDedicatedPumpWorkPerMix + static_cast<int>(ring.size()) - 1) /
                  static_cast<int>(ring.size());
    for (const Point& cell : ring) snap.cumulative.at(cell) += per_valve;
  }
  for (const route::RoutedPath& path : routing_.paths) {
    if (path.time > time) continue;
    for (const Point& cell : path.cells) {
      snap.cumulative.at(cell) += kControlActuationsPerTransport;
    }
  }

  for (int i = 0; i < problem_.task_count(); ++i) {
    const MappingTask& task = problem_.task(i);
    std::ostringstream label;
    const Rect fp = placement_[static_cast<std::size_t>(i)].footprint();
    if (time >= task.start && time < task.release) {
      label << (task.is_mix ? "mixer " : "detector ") << task.name << " at " << fp;
    } else if (time >= task.storage_from && time < task.start) {
      label << "storage s(" << task.name << ") at " << fp;
    } else {
      continue;
    }
    snap.live.push_back(label.str());
  }
  return snap;
}

std::string Snapshot::render() const {
  // Column width fits the largest count; zeros print as '.' so the
  // functionless-wall pattern of Fig. 10 is visible.
  int max_value = 0;
  for (const int v : cumulative) max_value = std::max(max_value, v);
  const int width = std::max(2, static_cast<int>(std::to_string(max_value).size()) + 1);

  std::ostringstream os;
  os << "t = " << time << " tu\n";
  for (int y = cumulative.height() - 1; y >= 0; --y) {
    for (int x = 0; x < cumulative.width(); ++x) {
      const int v = cumulative.at(x, y);
      const std::string text = v == 0 ? "." : std::to_string(v);
      os << std::string(static_cast<std::size_t>(width) - text.size(), ' ') << text;
    }
    os << '\n';
  }
  for (const std::string& entry : live) os << "  " << entry << '\n';
  return os.str();
}

std::vector<int> ChipSimulator::interesting_times() const {
  std::set<int> times;
  for (int i = 0; i < problem_.task_count(); ++i) {
    const MappingTask& task = problem_.task(i);
    times.insert(task.storage_from);
    times.insert(task.start);
    times.insert(task.release);
  }
  for (const route::RoutedPath& path : routing_.paths) times.insert(path.time);
  return {times.begin(), times.end()};
}

ActuationLedger ChipSimulator::verify() const {
  // Invariant: a valve never pumps for two operations at the same time,
  // and unrelated concurrent devices never share footprint cells.  This is
  // re-derived from raw schedule data, independent of pair_feasible.
  for (int a = 0; a < problem_.task_count(); ++a) {
    for (int b = a + 1; b < problem_.task_count(); ++b) {
      const MappingTask& ta = problem_.task(a);
      const MappingTask& tb = problem_.task(b);
      // Device-phase windows [start, release) intersecting?
      const bool device_overlap =
          std::max(ta.start, tb.start) < std::min(ta.release, tb.release);
      if (!device_overlap) continue;
      const Rect fa = placement_[static_cast<std::size_t>(a)].footprint();
      const Rect fb = placement_[static_cast<std::size_t>(b)].footprint();
      require(!fa.overlaps(fb), "simulator: devices '" + ta.name + "' and '" + tb.name +
                                    "' are live simultaneously and overlap");
      // No shared pump valves while both circulate.
      if (ta.is_mix && tb.is_mix) {
        const auto ring_a = placement_[static_cast<std::size_t>(a)].pump_cells();
        const auto ring_b = placement_[static_cast<std::size_t>(b)].pump_cells();
        for (const Point& cell : ring_a) {
          require(std::find(ring_b.begin(), ring_b.end(), cell) == ring_b.end(),
                  "simulator: valve pumps for two operations at once");
        }
      }
    }
  }

  // The final snapshot must reconcile with the ledger.
  const ActuationLedger ledger = account(problem_, placement_, routing_, setting_);
  int horizon = 0;
  for (int i = 0; i < problem_.task_count(); ++i) {
    horizon = std::max(horizon, problem_.task(i).release);
  }
  for (const route::RoutedPath& path : routing_.paths) horizon = std::max(horizon, path.time);
  const Snapshot final_state = snapshot_at(horizon);
  const Grid<int> expected = ledger.total();
  bool equal = true;
  expected.for_each([&](const Point& p, const int& v) {
    if (final_state.cumulative.at(p) != v) equal = false;
  });
  require(equal, "simulator: final snapshot disagrees with the actuation ledger");
  return ledger;
}

}  // namespace fsyn::sim
