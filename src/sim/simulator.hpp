// Chip execution simulator: replays a synthesized assay over time and
// renders Fig.-10-style snapshots of cumulative valve actuations.
//
// The simulator is also the independent auditor of the synthesis invariants:
// it re-derives device/storage lifetimes from the schedule and checks, per
// time unit, that no valve pumps for two operations simultaneously, that
// concurrent unrelated devices never share cells, and that cumulative
// actuation totals reconcile with the ActuationLedger.
#pragma once

#include <string>
#include <vector>

#include "sim/actuation.hpp"

namespace fsyn::sim {

struct Snapshot {
  int time = 0;
  Grid<int> cumulative;            ///< actuations up to and including `time`
  std::vector<std::string> live;   ///< human-readable live devices/storages

  /// ASCII rendering: one number per valve ('.' = still zero, i.e. a
  /// functionless wall if it stays zero to the end).
  std::string render() const;
};

class ChipSimulator {
 public:
  ChipSimulator(const synth::MappingProblem& problem, const synth::Placement& placement,
                const route::RoutingResult& routing, Setting setting = Setting::kConservative);

  /// Cumulative actuation state after all events with time <= t.
  Snapshot snapshot_at(int time) const;

  /// Event times worth looking at (device formations, transports, ends) —
  /// the moments Fig. 10 freezes.
  std::vector<int> interesting_times() const;

  /// Replays the whole assay and cross-checks the invariants; throws
  /// fsyn::LogicError on any violation.  Returns the final ledger.
  ActuationLedger verify() const;

 private:
  const synth::MappingProblem& problem_;
  const synth::Placement& placement_;
  const route::RoutingResult& routing_;
  Setting setting_;
};

}  // namespace fsyn::sim
