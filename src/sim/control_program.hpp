// Control-program generation: the valve actuation sequence a pressure
// controller would execute to run the synthesized assay.
//
// This is the executable counterpart of the actuation ledger: a time-sorted
// list of valve events (peristalsis bursts on device rings, open/close
// pairs along routing paths).  Replaying the program must reproduce the
// ledger exactly — that round-trip is the module's core invariant and is
// property-tested.  The program also determines which valves need their own
// control pin (see pin sharing below).
#pragma once

#include <string>
#include <vector>

#include "sim/actuation.hpp"

namespace fsyn::sim {

enum class ValveAction {
  kOpenClose,   ///< one control cycle (transport gating): 2 actuations
  kPumpBurst    ///< peristaltic burst of `count` actuations
};

struct ValveEvent {
  int time = 0;           ///< tu at which the event fires
  Point valve;
  ValveAction action = ValveAction::kOpenClose;
  int count = 2;          ///< actuations contributed by this event
  std::string cause;      ///< operation or transport label (for debugging)
};

struct ControlProgram {
  std::vector<ValveEvent> events;  ///< sorted by (time, valve)

  /// Total actuations per valve when the program is replayed.
  Grid<int> replay(int width, int height) const;

  /// Number of distinct valves the program ever actuates (= #v).
  int distinct_valves() const;

  /// Human-readable listing (one line per event).
  std::string to_text() const;
};

/// Compiles the synthesis result into a control program in the given
/// setting.  Replaying it equals the ActuationLedger's total grid.
ControlProgram compile_control_program(const synth::MappingProblem& problem,
                                       const synth::Placement& placement,
                                       const route::RoutingResult& routing,
                                       Setting setting = Setting::kConservative);

/// Control-pin sharing: valves whose event schedules are identical (same
/// times, same actions) can be driven by one off-chip pressure line.
/// Returns one valve group per required pin, largest groups first.  This
/// is the standard pin-count optimization for flow-based chips and one of
/// this reproduction's extensions beyond the paper; the groups feed
/// arch::plan_control_layer.
std::vector<std::vector<Point>> control_pin_groups(const ControlProgram& program);

/// Number of control pins required (= control_pin_groups().size()).
int shared_control_pins(const ControlProgram& program);

}  // namespace fsyn::sim
