// Valve wear and chip lifetime estimation.
//
// The paper's motivation: PDMS valves actuate reliably only a few thousand
// times [4] and the chip fails with its first worn-out valve.  Given an
// actuation ledger (actuations per valve per assay execution), this module
// estimates chip lifetime in two ways:
//
//  * deterministic: every valve endures exactly `endurance_mean`
//    actuations, lifetime = floor(min over valves of endurance / per-run);
//  * Monte-Carlo: each valve's endurance is drawn from a normal
//    distribution (truncated at > 0); repeated sampling yields the
//    distribution of "assay runs until first valve failure", which is what
//    a lab actually cares about.
//
// Used by examples/reliability_study and property-tested for monotonicity:
// lower max actuations can never shorten expected lifetime.
#pragma once

#include <vector>

#include "sim/actuation.hpp"
#include "util/rng.hpp"

namespace fsyn::sim {

struct WearModel {
  double endurance_mean = 5000.0;   ///< actuations to failure, mean [4]
  double endurance_stddev = 500.0;  ///< device variability
};

/// Dominant duty of an implemented valve.  A valve that ever participates
/// in a peristaltic ring is a pump valve (peristalsis dominates its wear);
/// valves only opened/closed for transports are control valves.
enum class ValveRole { kPump, kControl };

const char* to_string(ValveRole role);

/// Per-valve actuation account of one assay execution, split by class.
/// `valve_id` is the stable row-major cell index (y * chip_width + x), so
/// reports and failure attributions stay comparable across runs and tools.
struct ValveWear {
  int valve_id = -1;
  Point cell;
  int pump = 0;     ///< peristaltic actuations per assay run
  int control = 0;  ///< transport open/close actuations per assay run

  int total() const { return pump + control; }
  ValveRole role() const { return pump > 0 ? ValveRole::kPump : ValveRole::kControl; }
};

/// The implemented (actuated) valves of a ledger in ascending valve_id
/// order.  Zero-actuation cells are omitted: they are removed from the
/// manufactured chip (Algorithm 1 L20) and cannot fail.
std::vector<ValveWear> valve_wear(const ActuationLedger& ledger);

/// Deterministic lifetime: complete assay executions before the busiest
/// valve exceeds the mean endurance.
int deterministic_lifetime(const ActuationLedger& ledger, const WearModel& model = {});

struct LifetimeEstimate {
  double mean_runs = 0.0;    ///< expected assay runs until first failure
  double p10_runs = 0.0;     ///< 10th percentile (pessimistic)
  double p90_runs = 0.0;     ///< 90th percentile (optimistic)
  int trials = 0;
};

/// Monte-Carlo lifetime over `trials` sampled chips.  Deterministic in the
/// rng seed.  Valves with zero actuations never fail (they are removed
/// from the manufactured chip anyway).
LifetimeEstimate monte_carlo_lifetime(const ActuationLedger& ledger, Rng& rng,
                                      const WearModel& model = {}, int trials = 2000);

}  // namespace fsyn::sim
