#include "sim/actuation.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fsyn::sim {

Grid<int> ActuationLedger::total() const {
  Grid<int> sum(pump.width(), pump.height(), 0);
  sum.for_each([&](const Point& p, const int&) { sum.at(p) = pump.at(p) + control.at(p); });
  return sum;
}

int ActuationLedger::max_pump() const { return *std::max_element(pump.begin(), pump.end()); }

int ActuationLedger::max_total() const {
  const Grid<int> sum = total();
  return *std::max_element(sum.begin(), sum.end());
}

int ActuationLedger::actuated_valve_count() const {
  int count = 0;
  const Grid<int> sum = total();
  for (const int v : sum) count += v > 0;
  return count;
}

long ActuationLedger::total_pump_actuations() const {
  long sum = 0;
  for (const int v : pump) sum += v;
  return sum;
}

ActuationLedger account(const synth::MappingProblem& problem,
                        const synth::Placement& placement,
                        const route::RoutingResult& routing, Setting setting) {
  require(routing.success, "cannot account a failed routing");
  ActuationLedger ledger;
  ledger.pump = setting == Setting::kConservative ? problem.pump_loads(placement)
                                                  : problem.pump_loads_setting2(placement);
  ledger.control = Grid<int>(problem.chip().width(), problem.chip().height(), 0);
  for (const route::RoutedPath& path : routing.paths) {
    for (const Point& cell : path.cells) {
      ledger.control.at(cell) += kControlActuationsPerTransport;
    }
  }
  return ledger;
}

}  // namespace fsyn::sim
