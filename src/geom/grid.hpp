// Dense 2D array addressed by grid Points.
//
// Used for the virtual-valve matrix, routing cost maps and actuation
// ledgers.  Row-major storage, bounds-checked access in terms of the chip
// outline.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/error.hpp"

namespace fsyn {

template <typename T>
class Grid {
 public:
  Grid() = default;

  Grid(int width, int height, T fill = T{})
      : width_(width), height_(height),
        cells_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
    check_input(width > 0 && height > 0, "grid dimensions must be positive");
  }

  int width() const { return width_; }
  int height() const { return height_; }
  Rect bounds() const { return Rect{0, 0, width_, height_}; }

  bool in_bounds(const Point& p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  T& at(const Point& p) {
    require(in_bounds(p), "grid access out of bounds");
    return cells_[index(p)];
  }
  const T& at(const Point& p) const {
    require(in_bounds(p), "grid access out of bounds");
    return cells_[index(p)];
  }

  T& at(int x, int y) { return at(Point{x, y}); }
  const T& at(int x, int y) const { return at(Point{x, y}); }

  void fill(const T& value) { std::fill(cells_.begin(), cells_.end(), value); }

  /// Applies `fn(point, value)` to every cell, row-major bottom-up.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        fn(Point{x, y}, cells_[index(Point{x, y})]);
      }
    }
  }

  auto begin() { return cells_.begin(); }
  auto end() { return cells_.end(); }
  auto begin() const { return cells_.begin(); }
  auto end() const { return cells_.end(); }

 private:
  std::size_t index(const Point& p) const {
    return static_cast<std::size_t>(p.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(p.x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<T> cells_;
};

/// The four orthogonal neighbours of `p` (routing moves are Manhattan).
inline std::array<Point, 4> orthogonal_neighbours(const Point& p) {
  return {Point{p.x + 1, p.y}, Point{p.x - 1, p.y}, Point{p.x, p.y + 1}, Point{p.x, p.y - 1}};
}

}  // namespace fsyn
