// Axis-aligned integer cell rectangles.
//
// A `Rect` covers the half-open cell range [x, x+width) x [y, y+height).
// Device footprints, storage regions and the chip outline are all Rects.
// The paper's boundary variables b_le / b_ri / b_do / b_up (Fig. 6(a)) map to
// left() / right() / bottom() / top().
#pragma once

#include <algorithm>
#include <compare>
#include <ostream>
#include <vector>

#include "geom/point.hpp"
#include "util/error.hpp"

namespace fsyn {

struct Rect {
  int x = 0;       ///< left-bottom corner column
  int y = 0;       ///< left-bottom corner row
  int width = 0;   ///< number of cell columns
  int height = 0;  ///< number of cell rows

  friend auto operator<=>(const Rect&, const Rect&) = default;

  static Rect from_corners(Point lo, Point hi_exclusive) {
    require(lo.x <= hi_exclusive.x && lo.y <= hi_exclusive.y, "inverted rect corners");
    return Rect{lo.x, lo.y, hi_exclusive.x - lo.x, hi_exclusive.y - lo.y};
  }

  int left() const { return x; }
  int right() const { return x + width; }     ///< exclusive
  int bottom() const { return y; }
  int top() const { return y + height; }      ///< exclusive

  int area() const { return width * height; }
  bool empty() const { return width <= 0 || height <= 0; }

  bool contains(const Point& p) const {
    return p.x >= left() && p.x < right() && p.y >= bottom() && p.y < top();
  }

  bool contains(const Rect& other) const {
    return other.left() >= left() && other.right() <= right() &&
           other.bottom() >= bottom() && other.top() <= top();
  }

  /// True when the two rectangles share at least one cell.
  bool overlaps(const Rect& other) const {
    return left() < other.right() && other.left() < right() &&
           bottom() < other.top() && other.bottom() < top();
  }

  /// The shared cell region (possibly empty).
  Rect intersection(const Rect& other) const {
    const int lo_x = std::max(left(), other.left());
    const int lo_y = std::max(bottom(), other.bottom());
    const int hi_x = std::min(right(), other.right());
    const int hi_y = std::min(top(), other.top());
    if (hi_x <= lo_x || hi_y <= lo_y) return Rect{};
    return Rect{lo_x, lo_y, hi_x - lo_x, hi_y - lo_y};
  }

  /// Minimal Chebyshev gap between two rects; 0 when touching or overlapping.
  /// The routing-convenience constraints (13)-(16) bound this gap by the
  /// minimum device dimension d.
  int chebyshev_gap(const Rect& other) const {
    const int dx = std::max({other.left() - right(), left() - other.right(), 0});
    const int dy = std::max({other.bottom() - top(), bottom() - other.top(), 0});
    return std::max(dx, dy);
  }

  /// Grows the rect by `margin` cells on every side.
  Rect inflated(int margin) const {
    return Rect{x - margin, y - margin, width + 2 * margin, height + 2 * margin};
  }

  /// All cells covered by this rect, row-major from the bottom-left.
  std::vector<Point> cells() const {
    std::vector<Point> out;
    out.reserve(static_cast<std::size_t>(std::max(area(), 0)));
    for (int cy = bottom(); cy < top(); ++cy) {
      for (int cx = left(); cx < right(); ++cx) out.push_back(Point{cx, cy});
    }
    return out;
  }

  /// The perimeter ring of cells (the circulation path of a dynamic mixer).
  /// For a w x h rect this is 2(w+h)-4 cells; for width or height 1 it
  /// degenerates to all cells.
  std::vector<Point> ring_cells() const {
    std::vector<Point> out;
    if (empty()) return out;
    if (width == 1 || height == 1) return cells();
    // Clockwise walk: bottom row, right column, top row, left column.  The
    // corner cells belong to the horizontal rows, so nothing is duplicated
    // and the count is exactly 2(w+h)-4.
    for (int cx = left(); cx < right(); ++cx) out.push_back(Point{cx, bottom()});
    for (int cy = bottom() + 1; cy < top() - 1; ++cy) out.push_back(Point{right() - 1, cy});
    for (int cx = right() - 1; cx >= left(); --cx) out.push_back(Point{cx, top() - 1});
    for (int cy = top() - 2; cy >= bottom() + 1; --cy) out.push_back(Point{left(), cy});
    return out;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[x=" << r.x << ",y=" << r.y << ",w=" << r.width << ",h=" << r.height << ']';
}

}  // namespace fsyn
