// Integer grid points.  The valve-centered architecture is a regular grid of
// virtual valves; every valve, device corner and routing node is addressed by
// a `Point` in cell coordinates (x to the right, y upward, as in Fig. 5(a)
// of the paper).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace fsyn {

struct Point {
  int x = 0;
  int y = 0;

  friend auto operator<=>(const Point&, const Point&) = default;

  Point operator+(const Point& other) const { return {x + other.x, y + other.y}; }
  Point operator-(const Point& other) const { return {x - other.x, y - other.y}; }
};

/// Manhattan distance between two grid points.
inline int manhattan_distance(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

struct PointHash {
  std::size_t operator()(const Point& p) const noexcept {
    // Two 32-bit halves packed into one 64-bit word; distinct points within
    // any realistic chip never collide.
    const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x));
    const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.y));
    return std::hash<std::uint64_t>{}((ux << 32) | uy);
  }
};

}  // namespace fsyn
