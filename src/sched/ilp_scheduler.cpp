#include "sched/ilp_scheduler.hpp"

#include <map>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::sched {

using assay::OpId;
using assay::OpKind;
using assay::Operation;
using assay::SequencingGraph;
using ilp::LinearExpr;
using ilp::Model;
using ilp::Relation;
using ilp::Sense;
using ilp::VarId;

namespace {

/// A mix/detect operation occupies its device for duration + transport
/// (the product must leave before the next operation can enter).
int occupancy(const Operation& op, int transport_delay) {
  return op.duration + transport_delay;
}

}  // namespace

IlpScheduleResult schedule_optimal(const SequencingGraph& graph, const Policy& policy,
                                   const IlpScheduleOptions& options) {
  obs::Span span("sched", "schedule_optimal");
  if (span.active()) span.arg("ops", graph.size());
  // The list schedule provides the horizon and the warm start.
  const Schedule warm = schedule_with_policy(graph, policy, options.transport_delay);
  const int horizon = warm.makespan();

  Model model;
  // x[i][t] = 1 iff operation i starts at time t.  Inputs start at 0 and
  // get no variables.
  std::map<int, std::vector<VarId>> start_vars;
  for (const Operation& op : graph.operations()) {
    if (op.kind == OpKind::kInput || op.kind == OpKind::kOutput) continue;
    std::vector<VarId> vars;
    LinearExpr choose_one;
    for (int t = 0; t <= horizon - op.duration; ++t) {
      vars.push_back(model.add_binary("x_" + op.name + "_" + std::to_string(t)));
      choose_one.add_term(vars.back(), 1.0);
    }
    check_input(!vars.empty(), "horizon too small for operation " + op.name);
    model.add_constraint(choose_one, Relation::kEqual, 1.0);
    start_vars[op.id.index] = std::move(vars);
  }

  auto start_expr = [&](OpId id) {
    LinearExpr expr;
    const auto& vars = start_vars.at(id.index);
    for (std::size_t t = 0; t < vars.size(); ++t) {
      expr.add_term(vars[t], static_cast<double>(t));
    }
    return expr;
  };

  // Precedence with transport: start_c >= start_p + duration_p (+delay if
  // the parent occupies a device).
  for (const Operation& op : graph.operations()) {
    if (!start_vars.contains(op.id.index)) continue;
    for (const OpId parent : op.parents) {
      const Operation& producer = graph.op(parent);
      if (producer.kind == OpKind::kInput) continue;  // arrives at fill time
      const int lag = producer.duration + options.transport_delay;
      LinearExpr expr = start_expr(op.id);
      const LinearExpr parent_expr = start_expr(parent);
      for (const auto& term : parent_expr.terms()) expr.add_term(term.var, -term.coeff);
      model.add_constraint(expr, Relation::kGreaterEqual, lag);
    }
  }

  // Capacity: at any time t, ops of volume v running (occupying a mixer)
  // are those with start in (t - occupancy, t].
  std::map<int, std::vector<const Operation*>> by_volume;
  std::vector<const Operation*> detects;
  for (const Operation& op : graph.operations()) {
    if (op.kind == OpKind::kMix) by_volume[op.volume].push_back(&op);
    if (op.kind == OpKind::kDetect) detects.push_back(&op);
  }
  auto add_capacity_rows = [&](const std::vector<const Operation*>& ops, int limit,
                               const std::string& label) {
    if (static_cast<int>(ops.size()) <= limit) return;  // can never exceed
    for (int t = 0; t <= horizon; ++t) {
      LinearExpr running;
      bool any = false;
      for (const Operation* op : ops) {
        const auto& vars = start_vars.at(op->id.index);
        const int occ = occupancy(*op, options.transport_delay);
        for (int s = std::max(0, t - occ + 1); s <= t && s < static_cast<int>(vars.size());
             ++s) {
          running.add_term(vars[static_cast<std::size_t>(s)], 1.0);
          any = true;
        }
      }
      if (any) {
        model.add_constraint(running, Relation::kLessEqual, limit,
                             label + "@" + std::to_string(t));
      }
    }
  };
  for (const auto& [volume, ops] : by_volume) {
    const auto it = policy.mixers_per_volume.find(volume);
    check_input(it != policy.mixers_per_volume.end(),
                "policy lacks mixers of volume " + std::to_string(volume));
    add_capacity_rows(ops, it->second, "mixer" + std::to_string(volume));
  }
  if (!detects.empty()) add_capacity_rows(detects, policy.detectors, "detector");

  // Makespan bound.
  const VarId makespan = model.add_continuous(0.0, horizon, "makespan");
  for (const Operation& op : graph.operations()) {
    if (!start_vars.contains(op.id.index)) continue;
    LinearExpr expr = start_expr(op.id);
    expr.add_term(makespan, -1.0);
    model.add_constraint(expr, Relation::kLessEqual, -op.duration);
  }
  model.set_objective(1.0 * makespan, Sense::kMinimize);

  // Warm start from the list schedule.
  std::vector<double> incumbent(static_cast<std::size_t>(model.variable_count()), 0.0);
  for (const auto& [op_index, vars] : start_vars) {
    const int start = warm.start_of(OpId{op_index});
    require(start < static_cast<int>(vars.size()), "warm start outside horizon");
    incumbent[static_cast<std::size_t>(vars[static_cast<std::size_t>(start)].index)] = 1.0;
  }
  incumbent[static_cast<std::size_t>(makespan.index)] = horizon;

  ilp::MilpOptions milp_options;
  milp_options.time_limit_seconds = options.time_limit_seconds;
  milp_options.max_nodes = options.max_nodes;
  milp_options.threads = options.threads;
  milp_options.lp = options.lp;
  milp_options.initial_incumbent = std::move(incumbent);
  const ilp::MilpResult solved = ilp::solve_milp(model, milp_options);

  IlpScheduleResult result;
  result.status = solved.status;
  result.nodes = solved.nodes;
  result.lp_iterations = solved.lp_iterations;
  result.lp = solved.lp;
  result.schedule.graph = &graph;
  result.schedule.transport_delay = options.transport_delay;
  result.schedule.start.assign(static_cast<std::size_t>(graph.size()), 0);
  result.schedule.end.assign(static_cast<std::size_t>(graph.size()), 0);
  require(!solved.values.empty(), "scheduling ILP lost its warm start");
  for (const OpId id : graph.topological_order()) {
    const Operation& op = graph.op(id);
    int start = 0;
    if (const auto it = start_vars.find(op.id.index); it != start_vars.end()) {
      for (std::size_t t = 0; t < it->second.size(); ++t) {
        if (solved.values[static_cast<std::size_t>(it->second[t].index)] > 0.5) {
          start = static_cast<int>(t);
        }
      }
    } else if (op.kind == OpKind::kOutput) {
      // Outputs have no variables: they fire when the product arrives.
      for (const OpId parent : op.parents) {
        start = std::max(start, result.schedule.arrival_from(parent));
      }
    }
    result.schedule.start[static_cast<std::size_t>(op.id.index)] = start;
    result.schedule.end[static_cast<std::size_t>(op.id.index)] = start + op.duration;
  }
  result.schedule.validate();
  if (span.active()) {
    span.arg("makespan", result.schedule.makespan());
    span.arg("nodes", result.nodes);
  }
  return result;
}

}  // namespace fsyn::sched
