// Scheduling of bioassays onto a device policy.
//
// The paper's experiments vary a "policy index": policies instantiate a set
// of dedicated mixers (one per distinct volume, then repeatedly one more
// mixer for every size class under the heaviest binding load — Section 4).
// Each policy yields a different resource-constrained scheduling result,
// which is the input shared by the traditional baseline and the
// dynamic-device mapper.  An ASAP mode (unlimited devices) reproduces the
// paper's Fig. 9 Gantt chart for PCR.
#pragma once

#include <map>
#include <string>

#include "assay/benchmarks.hpp"  // assay::kTransportDelay
#include "assay/sequencing_graph.hpp"
#include "sched/schedule.hpp"

namespace fsyn::sched {

/// A traditional-design resource policy: dedicated mixer counts per volume
/// plus dedicated detectors.
struct Policy {
  std::map<int, int> mixers_per_volume;  ///< volume -> number of mixers
  int detectors = 0;

  int mixer_count() const;
  int device_count() const { return mixer_count() + detectors; }

  /// Balanced binding load of a size class: ceil(#ops / #mixers).
  static int balanced_load(int operations, int mixers);

  /// Formats the paper's #m column, e.g. "1-0-(2,2)-2" for op counts per
  /// mixer, hyphen-separated per size in `volumes` ascending order.
  std::string format_binding(const std::map<int, int>& ops_per_volume,
                             const std::vector<int>& volumes) const;
};

/// Builds the policy for `graph` after `increments` balancing steps:
/// start with one mixer per used volume, then `increments` times add one
/// mixer to every size class whose balanced load equals the maximum.
/// Detector count is the maximum number of concurrent detect operations in
/// the ASAP schedule (self-consistent stand-in for the paper's unstated
/// detector sizing; see DESIGN.md §3.3).
Policy make_policy(const assay::SequencingGraph& graph, int increments,
                   int transport_delay = assay::kTransportDelay);

/// Unlimited-resource ASAP schedule (reproduces Fig. 9 for the PCR case).
Schedule schedule_asap(const assay::SequencingGraph& graph,
                       int transport_delay = assay::kTransportDelay);

/// Resource-constrained list scheduling under `policy` with critical-path
/// priority.  Mix operations need a free mixer of exactly their volume;
/// detect operations need a free detector; inputs/outputs are free.
Schedule schedule_with_policy(const assay::SequencingGraph& graph, const Policy& policy,
                              int transport_delay = assay::kTransportDelay);

}  // namespace fsyn::sched
