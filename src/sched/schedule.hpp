// Bioassay scheduling result (paper input #2): a start time per operation.
#pragma once

#include <vector>

#include "assay/sequencing_graph.hpp"

namespace fsyn::sched {

/// Start/end times (in time units, tu) for every operation of a graph.
/// Transport of a product from a parent device to a child device costs
/// `transport_delay` tu, as in the paper's PCR example (3 tu, Fig. 9).
struct Schedule {
  const assay::SequencingGraph* graph = nullptr;
  int transport_delay = 0;
  std::vector<int> start;  ///< indexed by OpId
  std::vector<int> end;    ///< start + duration

  int start_of(assay::OpId id) const { return start[static_cast<std::size_t>(id.index)]; }
  int end_of(assay::OpId id) const { return end[static_cast<std::size_t>(id.index)]; }

  /// Time at which the product of `parent` arrives at a consumer's device.
  /// Transport delay applies only to products leaving a device (mix/detect);
  /// fluids from chip ports (inputs) flow in during the fill phase (Fig. 9:
  /// the leaf mixes start at 0).
  int arrival_from(assay::OpId parent) const {
    const assay::Operation& op = graph->op(parent);
    const bool occupies_device =
        op.kind == assay::OpKind::kMix || op.kind == assay::OpKind::kDetect;
    return end_of(parent) + (occupies_device ? transport_delay : 0);
  }

  /// Completion time of the whole assay.
  int makespan() const;

  /// Earliest arrival of any parent product at operation `id`'s device
  /// (min over parents of parent end + transport).  For operations without
  /// parents this is the operation's own start time.
  int earliest_product_arrival(assay::OpId id) const;

  /// Throws fsyn::LogicError when precedence+transport is violated, i.e.
  /// some operation starts before a parent product can have arrived.
  void validate() const;
};

}  // namespace fsyn::sched
