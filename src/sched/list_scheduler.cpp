#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fsyn::sched {

using assay::OpId;
using assay::OpKind;
using assay::Operation;
using assay::SequencingGraph;

int Policy::mixer_count() const {
  int total = 0;
  for (const auto& [volume, count] : mixers_per_volume) total += count;
  return total;
}

int Policy::balanced_load(int operations, int mixers) {
  require(mixers > 0, "balanced_load needs at least one mixer");
  return (operations + mixers - 1) / mixers;
}

std::string Policy::format_binding(const std::map<int, int>& ops_per_volume,
                                   const std::vector<int>& volumes) const {
  std::vector<std::string> parts;
  for (const int volume : volumes) {
    const auto ops_it = ops_per_volume.find(volume);
    const int ops = ops_it == ops_per_volume.end() ? 0 : ops_it->second;
    const auto mixer_it = mixers_per_volume.find(volume);
    const int mixers = mixer_it == mixers_per_volume.end() ? 0 : mixer_it->second;
    if (mixers <= 1) {
      parts.push_back(std::to_string(ops));
      continue;
    }
    // Distribute ops as evenly as possible: `high` mixers carry load+1.
    const int low = ops / mixers;
    const int high_count = ops % mixers;
    std::vector<std::string> loads;
    for (int m = 0; m < mixers; ++m) {
      loads.push_back(std::to_string(m < high_count ? low + 1 : low));
    }
    parts.push_back("(" + join(loads, ",") + ")");
  }
  return join(parts, "-");
}

namespace {

std::map<int, int> mixing_ops_per_volume(const SequencingGraph& graph) {
  std::map<int, int> ops;
  for (const Operation& op : graph.operations()) {
    if (op.kind == OpKind::kMix) ++ops[op.volume];
  }
  return ops;
}

/// Critical-path priority: longest duration+transport chain to any sink.
std::vector<int> critical_path_lengths(const SequencingGraph& graph, int transport_delay) {
  std::vector<int> length(static_cast<std::size_t>(graph.size()), 0);
  const auto order = graph.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Operation& op = graph.op(*it);
    int best_child = 0;
    for (const OpId child : graph.children(op.id)) {
      best_child = std::max(best_child,
                            transport_delay + length[static_cast<std::size_t>(child.index)]);
    }
    length[static_cast<std::size_t>(op.id.index)] = op.duration + best_child;
  }
  return length;
}

int max_concurrent_detects(const SequencingGraph& graph, const Schedule& schedule) {
  int best = 0;
  for (const Operation& probe : graph.operations()) {
    if (probe.kind != OpKind::kDetect) continue;
    int concurrent = 0;
    for (const Operation& other : graph.operations()) {
      if (other.kind != OpKind::kDetect) continue;
      if (schedule.start_of(other.id) < schedule.end_of(probe.id) &&
          schedule.start_of(probe.id) < schedule.end_of(other.id)) {
        ++concurrent;
      }
    }
    best = std::max(best, concurrent);
  }
  return best;
}

}  // namespace

Policy make_policy(const SequencingGraph& graph, int increments, int transport_delay) {
  check_input(increments >= 0, "policy increments must be non-negative");
  const std::map<int, int> ops = mixing_ops_per_volume(graph);
  check_input(!ops.empty(), "assay has no mixing operations");

  Policy policy;
  for (const auto& [volume, count] : ops) policy.mixers_per_volume[volume] = 1;
  for (int step = 0; step < increments; ++step) {
    int max_load = 0;
    for (const auto& [volume, count] : ops) {
      max_load = std::max(max_load,
                          Policy::balanced_load(count, policy.mixers_per_volume[volume]));
    }
    for (const auto& [volume, count] : ops) {
      if (Policy::balanced_load(count, policy.mixers_per_volume[volume]) == max_load) {
        ++policy.mixers_per_volume[volume];
      }
    }
  }
  if (graph.count(OpKind::kDetect) > 0) {
    policy.detectors =
        std::max(1, max_concurrent_detects(graph, schedule_asap(graph, transport_delay)));
  }
  return policy;
}

Schedule schedule_asap(const SequencingGraph& graph, int transport_delay) {
  check_input(transport_delay >= 0, "transport delay must be non-negative");
  Schedule schedule;
  schedule.graph = &graph;
  schedule.transport_delay = transport_delay;
  schedule.start.assign(static_cast<std::size_t>(graph.size()), 0);
  schedule.end.assign(static_cast<std::size_t>(graph.size()), 0);
  for (const OpId id : graph.topological_order()) {
    const Operation& op = graph.op(id);
    int start = 0;
    for (const OpId parent : op.parents) {
      start = std::max(start, schedule.arrival_from(parent));
    }
    schedule.start[static_cast<std::size_t>(id.index)] = start;
    schedule.end[static_cast<std::size_t>(id.index)] = start + op.duration;
  }
  schedule.validate();
  return schedule;
}

Schedule schedule_with_policy(const SequencingGraph& graph, const Policy& policy,
                              int transport_delay) {
  check_input(transport_delay >= 0, "transport delay must be non-negative");
  for (const auto& [volume, count] : mixing_ops_per_volume(graph)) {
    const auto it = policy.mixers_per_volume.find(volume);
    check_input(it != policy.mixers_per_volume.end() && it->second > 0,
                "policy provides no mixer of volume " + std::to_string(volume));
  }
  check_input(graph.count(OpKind::kDetect) == 0 || policy.detectors > 0,
              "policy provides no detector but the assay detects");

  Schedule schedule;
  schedule.graph = &graph;
  schedule.transport_delay = transport_delay;
  schedule.start.assign(static_cast<std::size_t>(graph.size()), -1);
  schedule.end.assign(static_cast<std::size_t>(graph.size()), -1);

  const std::vector<int> priority = critical_path_lengths(graph, transport_delay);

  // Device pools: free-at times per mixer instance of each volume, and per
  // detector.  A device is reusable once its previous operation's product
  // has left (end + transport).
  std::map<int, std::vector<int>> mixer_free_at;
  for (const auto& [volume, count] : policy.mixers_per_volume) {
    mixer_free_at[volume].assign(static_cast<std::size_t>(count), 0);
  }
  std::vector<int> detector_free_at(static_cast<std::size_t>(policy.detectors), 0);

  std::vector<OpId> remaining = graph.topological_order();
  std::vector<bool> done(static_cast<std::size_t>(graph.size()), false);

  while (!remaining.empty()) {
    // Gather ready operations (all parents scheduled).
    std::vector<OpId> ready;
    for (const OpId id : remaining) {
      const Operation& op = graph.op(id);
      const bool parents_done = std::all_of(op.parents.begin(), op.parents.end(),
                                            [&](OpId p) { return done[static_cast<std::size_t>(p.index)]; });
      if (parents_done) ready.push_back(id);
    }
    require(!ready.empty(), "list scheduler wedged: no ready operation");

    // Highest critical-path priority first; ties by id for determinism.
    std::sort(ready.begin(), ready.end(), [&](OpId a, OpId b) {
      const int pa = priority[static_cast<std::size_t>(a.index)];
      const int pb = priority[static_cast<std::size_t>(b.index)];
      return pa != pb ? pa > pb : a.index < b.index;
    });

    const OpId id = ready.front();
    const Operation& op = graph.op(id);
    int earliest = 0;
    for (const OpId parent : op.parents) {
      earliest = std::max(earliest, schedule.arrival_from(parent));
    }

    int start = earliest;
    if (op.kind == OpKind::kMix) {
      auto& pool = mixer_free_at[op.volume];
      auto slot = std::min_element(pool.begin(), pool.end());
      start = std::max(earliest, *slot);
      *slot = start + op.duration + transport_delay;
    } else if (op.kind == OpKind::kDetect) {
      auto slot = std::min_element(detector_free_at.begin(), detector_free_at.end());
      start = std::max(earliest, *slot);
      *slot = start + op.duration + transport_delay;
    }

    schedule.start[static_cast<std::size_t>(id.index)] = start;
    schedule.end[static_cast<std::size_t>(id.index)] = start + op.duration;
    done[static_cast<std::size_t>(id.index)] = true;
    remaining.erase(std::find(remaining.begin(), remaining.end(), id));
  }

  schedule.validate();
  return schedule;
}

}  // namespace fsyn::sched
