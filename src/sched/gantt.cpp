#include "sched/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace fsyn::sched {

std::string render_gantt(const Schedule& schedule) {
  require(schedule.graph != nullptr, "schedule has no graph");
  const assay::SequencingGraph& graph = *schedule.graph;
  const int horizon = schedule.makespan();

  std::size_t label_width = 4;
  for (const assay::Operation& op : graph.operations()) {
    if (op.kind == assay::OpKind::kMix || op.kind == assay::OpKind::kDetect) {
      label_width = std::max(label_width, op.name.size() + 1);
    }
  }

  std::ostringstream os;
  // Time axis with a tick every 5 tu.
  os << std::string(label_width, ' ');
  for (int t = 0; t <= horizon; ++t) {
    if (t % 5 == 0) {
      const std::string tick = std::to_string(t);
      os << tick;
      t += static_cast<int>(tick.size()) - 1;
    } else {
      os << ' ';
    }
  }
  os << " tu\n";

  for (const assay::Operation& op : graph.operations()) {
    if (op.kind != assay::OpKind::kMix && op.kind != assay::OpKind::kDetect) continue;
    os << op.name << std::string(label_width - op.name.size(), ' ');
    const int storage_from = schedule.earliest_product_arrival(op.id);
    const int start = schedule.start_of(op.id);
    const int end = schedule.end_of(op.id);
    for (int t = 0; t <= horizon; ++t) {
      if (t >= start && t < end) {
        os << '=';
      } else if (t >= storage_from && t < start) {
        os << '.';
      } else {
        os << ' ';
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace fsyn::sched
