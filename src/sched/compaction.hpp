// Storage-aware schedule compaction (extension).
//
// The in situ storage of an operation opens when its first parent product
// arrives and closes when the operation starts; every tu in between is
// occupied chip area.  Delaying operations as late as the schedule allows
// (without moving the makespan or violating precedence and device
// capacity) closes the gap between producers and consumers, shrinking the
// total storage time and with it the valve matrix the mapper needs.
//
// `compact_schedule` is a latest-start pass in reverse topological order:
// each mix/detect operation is delayed to the latest start that keeps all
// its consumers reachable and a device slot available.  The result is
// validated and never has a larger makespan or total storage time than the
// input.
#pragma once

#include "sched/list_scheduler.hpp"

namespace fsyn::sched {

/// Total over all operations of (start - first product arrival): the
/// chip-area-time spent waiting in in-situ storages.
long total_storage_time(const Schedule& schedule);

/// Delays operations within their slack to minimize storage waiting while
/// preserving the makespan, precedence+transport, and the policy's device
/// capacity.  Returns the compacted schedule.
Schedule compact_schedule(const Schedule& schedule, const Policy& policy);

}  // namespace fsyn::sched
