#include "sched/schedule.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace fsyn::sched {

int Schedule::makespan() const {
  require(graph != nullptr, "schedule has no graph");
  return end.empty() ? 0 : *std::max_element(end.begin(), end.end());
}

int Schedule::earliest_product_arrival(assay::OpId id) const {
  require(graph != nullptr, "schedule has no graph");
  const assay::Operation& op = graph->op(id);
  if (op.parents.empty()) return start_of(id);
  int earliest = std::numeric_limits<int>::max();
  for (const assay::OpId parent : op.parents) {
    earliest = std::min(earliest, arrival_from(parent));
  }
  return earliest;
}

void Schedule::validate() const {
  require(graph != nullptr, "schedule has no graph");
  require(static_cast<int>(start.size()) == graph->size() &&
              static_cast<int>(end.size()) == graph->size(),
          "schedule size mismatch");
  for (const assay::Operation& op : graph->operations()) {
    require(end_of(op.id) == start_of(op.id) + op.duration,
            "schedule end != start + duration for '" + op.name + "'");
    require(start_of(op.id) >= 0, "negative start time for '" + op.name + "'");
    for (const assay::OpId parent : op.parents) {
      require(start_of(op.id) >= arrival_from(parent),
              "operation '" + op.name + "' starts before its parent product arrives");
    }
  }
}

}  // namespace fsyn::sched
