#include "sched/compaction.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fsyn::sched {

using assay::OpId;
using assay::OpKind;
using assay::Operation;

long total_storage_time(const Schedule& schedule) {
  // Mirrors MappingTask::storage_from: fluids from chip ports stream in at
  // fill time, so only device products (mix/detect parents) wait in situ.
  long total = 0;
  const auto& graph = *schedule.graph;
  for (const Operation& op : graph.operations()) {
    if (op.kind != OpKind::kMix && op.kind != OpKind::kDetect) continue;
    int first_arrival = schedule.start_of(op.id);
    for (const OpId parent : op.parents) {
      const Operation& producer = graph.op(parent);
      if (producer.kind != OpKind::kMix && producer.kind != OpKind::kDetect) continue;
      first_arrival = std::min(first_arrival, schedule.arrival_from(parent));
    }
    total += schedule.start_of(op.id) - first_arrival;
  }
  return total;
}

namespace {

/// True when starting `op` at `start` keeps a device slot free under the
/// policy (counting every other op of the same resource class whose
/// occupancy window [start, end + transport) overlaps).
bool slot_available(const Schedule& schedule, const Policy& policy, const Operation& op,
                    int start) {
  const auto& graph = *schedule.graph;
  const int occupancy_end = start + op.duration + schedule.transport_delay;
  int limit = 0;
  if (op.kind == OpKind::kMix) {
    const auto it = policy.mixers_per_volume.find(op.volume);
    require(it != policy.mixers_per_volume.end(), "policy lacks the op's mixer class");
    limit = it->second;
  } else {
    limit = policy.detectors;
  }

  int concurrent = 1;  // the op itself
  for (const Operation& other : graph.operations()) {
    if (other.id == op.id) continue;
    const bool same_class = (op.kind == OpKind::kMix && other.kind == OpKind::kMix &&
                             other.volume == op.volume) ||
                            (op.kind == OpKind::kDetect && other.kind == OpKind::kDetect);
    if (!same_class) continue;
    const int other_start = schedule.start_of(other.id);
    const int other_end = schedule.end_of(other.id) + schedule.transport_delay;
    if (other_start < occupancy_end && start < other_end) ++concurrent;
  }
  return concurrent <= limit;
}

}  // namespace

Schedule compact_schedule(const Schedule& schedule, const Policy& policy) {
  require(schedule.graph != nullptr, "schedule has no graph");
  const auto& graph = *schedule.graph;
  Schedule compacted = schedule;

  const auto order = graph.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Operation& op = graph.op(*it);
    if (op.kind != OpKind::kMix && op.kind != OpKind::kDetect) continue;

    // Latest start that keeps every consumer's start reachable (its
    // product must arrive transport tu before the consumer begins).
    // Operations without device consumers keep their time (their product
    // leaves through a port; moving them would change the makespan).
    int latest = compacted.start_of(op.id);
    bool bounded = false;
    for (const OpId child : graph.children(op.id)) {
      const int bound =
          compacted.start_of(child) - compacted.transport_delay - op.duration;
      latest = bounded ? std::min(latest, bound) : bound;
      bounded = true;
    }
    if (!bounded || latest <= compacted.start_of(op.id)) continue;

    // Delaying the op shrinks its consumers' storage windows but grows its
    // own (its parents' products wait longer), so evaluate every feasible
    // candidate and keep the start with the smallest total storage time;
    // ties keep the earlier start (idempotence).
    const int original_start = compacted.start_of(op.id);
    int best_start = original_start;
    long best_total = total_storage_time(compacted);
    for (int candidate = latest; candidate > original_start; --candidate) {
      if (!slot_available(compacted, policy, op, candidate)) continue;
      compacted.start[static_cast<std::size_t>(op.id.index)] = candidate;
      compacted.end[static_cast<std::size_t>(op.id.index)] = candidate + op.duration;
      const long total = total_storage_time(compacted);
      if (total < best_total) {
        best_total = total;
        best_start = candidate;
      }
    }
    compacted.start[static_cast<std::size_t>(op.id.index)] = best_start;
    compacted.end[static_cast<std::size_t>(op.id.index)] = best_start + op.duration;
  }

  compacted.validate();
  require(compacted.makespan() <= schedule.makespan(), "compaction grew the makespan");
  require(total_storage_time(compacted) <= total_storage_time(schedule),
          "compaction increased storage time");
  return compacted;
}

}  // namespace fsyn::sched
