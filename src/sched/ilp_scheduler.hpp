// Exact (time-indexed ILP) scheduling — an extension beyond the paper.
//
// The paper takes scheduling results as given inputs; this reproduction
// generates them with a critical-path list scheduler (list_scheduler.hpp).
// For small assays the optimum makespan can be computed exactly with a
// time-indexed ILP over the in-tree MILP solver, which (a) validates the
// list scheduler's quality in tests and (b) gives users a tighter input
// schedule when they can afford the solve.
//
// Model: binaries x_{i,t} (operation i starts at t), sum_t x_{i,t} = 1;
// precedence with transport delays; per-volume mixer capacity and detector
// capacity as cumulative interval constraints; minimize the makespan bound.
#pragma once

#include <optional>

#include "ilp/branch_and_bound.hpp"
#include "sched/list_scheduler.hpp"

namespace fsyn::sched {

struct IlpScheduleOptions {
  double time_limit_seconds = 60.0;
  long max_nodes = 200'000;
  int transport_delay = assay::kTransportDelay;
  /// Parallel tree-search workers (ilp::MilpOptions::threads); 0 = serial.
  int threads = 0;
  /// LP engine configuration (basis representation, pricing rule) forwarded
  /// to the relaxation solver.
  ilp::LpOptions lp;
};

struct IlpScheduleResult {
  Schedule schedule;
  ilp::MilpStatus status = ilp::MilpStatus::kLimit;
  long nodes = 0;
  std::int64_t lp_iterations = 0;
  ilp::LpSolverStats lp;  ///< LP engine counters (warm/cold solves, pivots)
};

/// Solves the scheduling ILP under `policy`.  The horizon is the list
/// scheduler's makespan (always achievable), and the list schedule warm
/// starts the search, so a valid schedule is always returned; `status`
/// says whether it is proven optimal.
IlpScheduleResult schedule_optimal(const assay::SequencingGraph& graph, const Policy& policy,
                                   const IlpScheduleOptions& options = {});

}  // namespace fsyn::sched
