// ASCII Gantt chart of a schedule (the paper's Fig. 9).
//
// One row per mix/detect operation.  '=' spans the operation's execution,
// '.' spans the in-situ storage window before it (products already arrived,
// operation not yet started), mirroring the s5/s6/s7 bars of Fig. 9.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace fsyn::sched {

std::string render_gantt(const Schedule& schedule);

}  // namespace fsyn::sched
