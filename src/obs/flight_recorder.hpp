// Always-on flight recorder: a bounded per-thread ring of the most recent
// spans, independent of the opt-in full tracer.
//
// The full tracer (trace.hpp) buffers *everything* until a drain, which is
// right for a profiling session and wrong for a long-lived server: nobody
// is going to export a trace that has been accumulating for a week.  The
// flight recorder instead keeps only the last `kRingCapacity` span events
// per thread, overwriting the oldest — cheap enough to leave enabled in
// production, and exactly the history an operator wants when a request
// turns up slow: "what was this process doing just now?"
//
// Discipline matches trace.hpp:
//  * one relaxed atomic load per span while disabled (`flight_enabled()`),
//  * per-thread rings, so recording never contends across threads; the
//    per-ring mutex is only contended by `snapshot()` (dump time),
//  * bounded memory by construction — the ring never grows.
//
// Rings of exited threads (race arms) stay readable until a new thread
// reuses them, so a dump taken right after a job still shows the arms that
// ran it; reuse bounds the registry at the peak live-thread count.
//
// Dumps are Chrome trace-event JSON (same format as the full tracer), via
// SIGQUIT, `GET /v1/debug/trace`, or the slow-job hook in the job manager.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace fsyn::obs {

class FlightRecorder {
 public:
  /// Events kept per thread.  2^11 complete spans cover several seconds of
  /// server work per thread at typical span rates.
  static constexpr std::size_t kRingCapacity = std::size_t{1} << 11;

  static FlightRecorder& instance();

  void enable() { detail::g_flight_enabled.store(true, std::memory_order_relaxed); }
  void disable() { detail::g_flight_enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return flight_recording_enabled(); }

  /// Copies `event` into the calling thread's ring, overwriting the oldest
  /// entry when full.  `event.tid` must already be set (Span fills it).
  /// Call only while the recorder is enabled — Span already guards.
  void record(const TraceEvent& event);

  /// Copy of every ring's current contents, sorted by start time.  Rings
  /// are not cleared: the recorder keeps flying.
  std::vector<TraceEvent> snapshot() const;

  /// Total events ever recorded (including overwritten ones).
  std::uint64_t total_recorded() const;

  /// Renders `snapshot()` as Chrome trace-event JSON (the trace_export
  /// format, loadable in ui.perfetto.dev).
  std::string dump_json() const;
  /// Writes `dump_json()` to `path`; throws fsyn::Error on I/O failure.
  void dump_json_file(const std::string& path) const;

  /// Drops all buffered events (tests only; not thread-registry state).
  void clear();

 private:
  struct Ring {
    std::mutex mutex;
    std::vector<TraceEvent> slots;  ///< capacity-bounded, circular via `next`
    std::size_t next = 0;
    std::uint64_t recorded = 0;
  };

  FlightRecorder() = default;
  Ring& local_ring();

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

}  // namespace fsyn::obs
