#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"
#include "util/logging.hpp"

namespace fsyn::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
std::atomic<bool> g_flight_enabled{false};
}  // namespace detail

// ---- JSON fragments --------------------------------------------------------

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;  // UTF-8 passes through untouched
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; clamp to a sentinel the viewer can show.
    out += value > 0 ? "1e308" : (value < 0 ? "-1e308" : "0");
    return;
  }
  char buffer[40];
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof buffer, "%" PRId64, static_cast<std::int64_t>(value));
  } else {
    std::snprintf(buffer, sizeof buffer, "%.9g", value);
  }
  out += buffer;
}

void append_json_member(std::string& out, std::string_view key, std::string_view value) {
  append_json_string(out, key);
  out += ':';
  append_json_string(out, value);
}

void append_json_member(std::string& out, std::string_view key, std::int64_t value) {
  append_json_string(out, key);
  out += ':';
  out += std::to_string(value);
}

void append_json_member(std::string& out, std::string_view key, double value) {
  append_json_string(out, key);
  out += ':';
  append_json_number(out, value);
}

void append_json_member(std::string& out, std::string_view key, bool value) {
  append_json_string(out, key);
  out += value ? ":true" : ":false";
}

// ---- Tracer ----------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Buffer& Tracer::local_buffer() {
  // One buffer per (thread, process); the shared_ptr in the registry keeps
  // it readable after the thread exits, so short-lived race-arm threads
  // never lose events.
  thread_local std::shared_ptr<Buffer> buffer = [this] {
    auto fresh = std::make_shared<Buffer>();
    fresh->tid = current_thread_id();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::record(TraceEvent event) {
  Buffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

void Tracer::complete(const char* category, std::string name, std::int64_t start_us,
                      std::int64_t duration_us, std::string args) {
  TraceEvent event;
  event.kind = EventKind::kComplete;
  event.category = category;
  event.name = std::move(name);
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.args = std::move(args);
  const TraceContext context = current_trace();
  if (context.valid()) {
    event.trace_hi = context.trace_hi;
    event.trace_lo = context.trace_lo;
    event.span_id = make_span_id();
    event.parent_span = context.parent_span;
  }
  if (flight_recording_enabled()) {
    event.tid = current_thread_id();
    FlightRecorder::instance().record(event);
  }
  // Guarded here, not at call sites: a caller holding an active Span may
  // only have the flight recorder on, and the tracer's unbounded-until-
  // drain buffers must not fill in that mode.
  if (tracing_enabled()) record(std::move(event));
}

void Tracer::counter(const char* category, std::string name, double value) {
  TraceEvent event;
  event.kind = EventKind::kCounter;
  event.category = category;
  event.name = std::move(name);
  event.start_us = now_us();
  event.value = value;
  record(std::move(event));
}

void Tracer::instant(const char* category, std::string name, std::string args) {
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.category = category;
  event.name = std::move(name);
  event.start_us = now_us();
  event.args = std::move(args);
  record(std::move(event));
}

void Tracer::set_thread_name(std::string name) {
  Buffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.thread_name = std::move(name);
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    events.insert(events.end(), std::make_move_iterator(buffer->events.begin()),
                  std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  // Retire buffers of exited threads once drained.  Services spawn
  // short-lived race-arm threads per job; without pruning, their (now
  // empty) buffers would accumulate in the registry forever.  A buffer is
  // provably dead when the only owners left are the registry and the
  // `buffers` snapshot above — the owning thread's thread_local reference
  // is gone, so no further writes can happen.  Restricting the check to
  // snapshotted entries keeps a buffer that is mid-registration (its
  // thread_local not yet assigned) safe: it cannot be in the snapshot.
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    std::erase_if(buffers_, [&](const std::shared_ptr<Buffer>& entry) {
      if (std::find(buffers.begin(), buffers.end(), entry) == buffers.end()) return false;
      if (entry.use_count() != 2) return false;
      std::lock_guard<std::mutex> buffer_lock(entry->mutex);
      if (!entry->events.empty()) return false;
      retired_dropped_.fetch_add(entry->dropped, std::memory_order_relaxed);
      return true;
    });
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return events;
}

std::vector<std::pair<int, std::string>> Tracer::thread_names() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<std::pair<int, std::string>> names;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    if (!buffer->thread_name.empty()) names.emplace_back(buffer->tid, buffer->thread_name);
  }
  return names;
}

std::uint64_t Tracer::dropped_events() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  std::uint64_t dropped = retired_dropped_.load(std::memory_order_relaxed);
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

// ---- Span ------------------------------------------------------------------

void Span::begin(const char* category, std::string_view name) {
  category_ = category;
  name_.assign(name);
  const TraceContext context = current_trace();
  if (context.valid()) {
    trace_hi_ = context.trace_hi;
    trace_lo_ = context.trace_lo;
    parent_span_ = context.parent_span;
    span_id_ = make_span_id();
    // Nested spans parent to this one for the span's lifetime.
    TraceContext nested = context;
    nested.parent_span = span_id_;
    set_current_trace(nested);
  }
  start_us_ = Tracer::instance().now_us();
  active_ = true;
}

void Span::end() {
  Tracer& tracer = Tracer::instance();
  const std::int64_t duration = tracer.now_us() - start_us_;
  if (span_id_ != 0) {
    // Restore the ambient parent (trace id is unchanged by spans).
    TraceContext context = current_trace();
    context.parent_span = parent_span_;
    set_current_trace(context);
  }
  TraceEvent event;
  event.kind = EventKind::kComplete;
  event.category = category_;
  event.name = std::move(name_);
  event.start_us = start_us_;
  event.duration_us = duration;
  event.args = std::move(args_);
  event.trace_hi = trace_hi_;
  event.trace_lo = trace_lo_;
  event.span_id = span_id_;
  event.parent_span = parent_span_;
  if (flight_recording_enabled()) {
    event.tid = current_thread_id();
    FlightRecorder::instance().record(event);
  }
  if (tracing_enabled()) tracer.record(std::move(event));
  active_ = false;
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  append_json_member(args_, key, value);
}

void Span::arg(std::string_view key, double value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  append_json_member(args_, key, value);
}

void Span::arg(std::string_view key, bool value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  append_json_member(args_, key, value);
}

void Span::arg_int(std::string_view key, std::int64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  append_json_member(args_, key, value);
}

}  // namespace fsyn::obs
