#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/trace_export.hpp"
#include "util/error.hpp"

namespace fsyn::obs {

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  // Reuse a ring whose thread exited (registry use_count == 1) instead of
  // registering a new one: race arms spawn a thread per job, and without
  // reuse the registry would grow forever.  The old thread's events stay
  // in the ring — each event carries its own tid — until overwritten.
  thread_local std::shared_ptr<Ring> ring = [this] {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& candidate : rings_) {
      if (candidate.use_count() == 1) return candidate;
    }
    auto fresh = std::make_shared<Ring>();
    fresh->slots.reserve(kRingCapacity);
    rings_.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

void FlightRecorder::record(const TraceEvent& event) {
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.slots.size() < kRingCapacity) {
    ring.slots.push_back(event);
  } else {
    ring.slots[ring.next] = event;
  }
  ring.next = (ring.next + 1) % kRingCapacity;
  ++ring.recorded;
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    rings = rings_;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    events.insert(events.end(), ring->slots.begin(), ring->slots.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return events;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    total += ring->recorded;
  }
  return total;
}

std::string FlightRecorder::dump_json() const {
  std::ostringstream os;
  write_chrome_trace_events(os, snapshot(), /*thread_names=*/{});
  return os.str();
}

void FlightRecorder::dump_json_file(const std::string& path) const {
  std::ofstream out(path);
  check_input(static_cast<bool>(out), "cannot write flight recorder dump to " + path);
  out << dump_json();
  out.flush();
  require(static_cast<bool>(out), "I/O error while writing flight recorder dump to " + path);
}

void FlightRecorder::clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->slots.clear();
    ring->next = 0;
  }
}

}  // namespace fsyn::obs
