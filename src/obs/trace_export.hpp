// Chrome trace-event / Perfetto JSON export for the global Tracer.
//
// The output is the classic "JSON object format": a top-level object with a
// `traceEvents` array of ph:"X" complete events, ph:"C" counter samples,
// ph:"i" instants and ph:"M" thread-name metadata.  Open the file in
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>

namespace fsyn::obs {

/// Drains the global tracer and writes the trace JSON to `os`.
void write_chrome_trace(std::ostream& os);

/// Convenience wrapper: writes to `path`, throwing fsyn::Error when the
/// file cannot be opened or written.
void write_chrome_trace_file(const std::string& path);

}  // namespace fsyn::obs
