// Chrome trace-event / Perfetto JSON export for the global Tracer.
//
// The output is the classic "JSON object format": a top-level object with a
// `traceEvents` array of ph:"X" complete events, ph:"C" counter samples,
// ph:"i" instants and ph:"M" thread-name metadata.  Open the file in
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace fsyn::obs {

struct TraceEvent;

/// Writes an explicit event list (plus thread-name metadata) as the trace
/// JSON object.  Events carrying a trace context get `trace_id` /
/// `span_id` / `parent_span` args so a viewer can follow one request
/// across threads.  Shared by the tracer export below and the flight
/// recorder's dumps.
void write_chrome_trace_events(std::ostream& os, const std::vector<TraceEvent>& events,
                               const std::vector<std::pair<int, std::string>>& thread_names);

/// Drains the global tracer and writes the trace JSON to `os`.
void write_chrome_trace(std::ostream& os);

/// Convenience wrapper: writes to `path`, throwing fsyn::Error when the
/// file cannot be opened or written.
void write_chrome_trace_file(const std::string& path);

}  // namespace fsyn::obs
