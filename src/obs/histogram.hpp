// Lock-free fixed log-bucket latency histogram.
//
// Values (nanoseconds) are binned into buckets with `kSubBuckets` linear
// sub-buckets per power of two, the layout HdrHistogram and most runtime
// profilers use: constant relative error (here <= 1/32 ≈ 3.1% at the
// percentile midpoint) over the whole range from 1 ns to hours, with a
// fixed, small footprint (976 8-byte counters).  `record` is three relaxed
// atomic increments plus two CAS min/max updates — safe from any number of
// threads with no locks, which is what the batch-service workers need.
//
// `snapshot()` copies the counters; the copy is consistent-enough in the
// same sense as the service metrics registry (each counter is exact, the
// set is not an atomic cut), which is fine for monitoring percentiles.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace fsyn::obs {

/// Plain-value copy of a histogram, safe to read, query and serialize.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::vector<std::uint64_t> buckets;

  /// Latency (seconds) at percentile `p` in [0, 100]: the midpoint of the
  /// bucket holding the ceil(p/100 * count)-th observation, clamped to the
  /// observed [min, max].  0 when empty.
  double percentile(double p) const;

  /// `{"count":..,"sum":..,"min":..,"p50":..,"p90":..,"p95":..,"p99":..,"max":..}`
  /// — times in seconds.
  std::string to_json() const;
};

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;                ///< 16 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Index range: [0, 2*kSubBuckets) exact, then kSubBuckets per octave up
  /// to 2^63 ns.
  static constexpr int kBucketCount = ((63 - kSubBits + 1) << kSubBits) + kSubBuckets;

  void record(std::chrono::nanoseconds elapsed);
  void record_seconds(double seconds);

  HistogramSnapshot snapshot() const;

  /// Bucket of a nanosecond value; exposed for tests.
  static int bucket_index(std::uint64_t ns);
  /// Midpoint of a bucket, in seconds; exposed for tests.
  static double bucket_mid_seconds(int index);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace fsyn::obs
