// Request-scoped trace context: 128-bit trace ids + span ids, W3C
// traceparent parsing/formatting, and a thread-local ambient context that
// `obs::Span` picks up automatically.
//
// The context travels with a request instead of a thread: the HTTP
// front-end parses (or mints) one at the door, the job manager persists it
// in the journal, the batch service installs it on whichever worker (and
// race-arm thread) runs the job, and every span recorded while a
// `TraceContextScope` is active carries the ids — so one trace id connects
// the HTTP request, the svc job, the solver spans, the SSE events and the
// replayed journal record.
//
// Costs follow the trace.hpp discipline: reading the ambient context is a
// thread-local load, and nothing here allocates unless a span actually
// records.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fsyn::obs {

struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< high 64 bits of the 128-bit trace id
  std::uint64_t trace_lo = 0;  ///< low 64 bits
  /// Span id of the current parent (the enclosing span, or the caller's
  /// span when the context arrived via traceparent).  Never 0 in a valid
  /// server-minted context.
  std::uint64_t parent_span = 0;

  /// A context is valid when its trace id is nonzero (W3C forbids the
  /// all-zero trace id).
  bool valid() const { return (trace_hi | trace_lo) != 0; }

  /// 32 lowercase hex characters of the trace id.
  std::string trace_id_hex() const;
  /// `00-<trace-id>-<parent-id>-01` (version 00, sampled flag set).
  std::string traceparent() const;

  bool operator==(const TraceContext& other) const {
    return trace_hi == other.trace_hi && trace_lo == other.trace_lo &&
           parent_span == other.parent_span;
  }
};

/// Mints a fresh context: random 128-bit trace id and a random root span
/// id as the parent — the shape a server uses when a request arrives
/// without a traceparent header.
TraceContext make_trace_context();

/// Random nonzero 64-bit span id.
std::uint64_t make_span_id();

/// Parses a W3C traceparent header (`00-<32 hex>-<16 hex>-<2 hex>`).
/// Returns false — leaving `*out` untouched — on anything malformed:
/// wrong length or dashes, uppercase or non-hex digits, version "ff", an
/// all-zero trace or parent id.  Callers mint a fresh context on failure;
/// this function never throws.
bool parse_traceparent(std::string_view header, TraceContext* out);

/// The calling thread's ambient context (invalid when none installed).
TraceContext current_trace();
void set_current_trace(const TraceContext& context);

/// RAII: installs `context` as the thread's ambient context, restoring the
/// previous one on destruction.  Installing an invalid context clears the
/// ambient context for the scope (spans record without trace ids).
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context)
      : saved_(current_trace()) {
    set_current_trace(context);
  }
  ~TraceContextScope() { set_current_trace(saved_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace fsyn::obs
