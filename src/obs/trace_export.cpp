#include "obs/trace_export.hpp"

#include <fstream>
#include <ostream>

#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::obs {

namespace {

void write_event_prefix(std::string& out, const char* ph, const TraceEvent& event) {
  out += "{\"ph\":\"";
  out += ph;
  out += "\",";
  append_json_member(out, "name", event.name);
  out += ',';
  append_json_member(out, "cat", std::string_view(event.category));
  out += ',';
  append_json_member(out, "ts", event.start_us);
  out += ",\"pid\":1,";
  append_json_member(out, "tid", static_cast<std::int64_t>(event.tid));
}

/// The event's args plus its trace-context members, or empty.
std::string event_args(const TraceEvent& event) {
  std::string args = event.args;
  if ((event.trace_hi | event.trace_lo) != 0) {
    TraceContext context;
    context.trace_hi = event.trace_hi;
    context.trace_lo = event.trace_lo;
    if (!args.empty()) args += ',';
    append_json_member(args, "trace_id", context.trace_id_hex());
    if (event.span_id != 0) {
      args += ',';
      append_json_member(args, "span_id", static_cast<std::int64_t>(event.span_id));
    }
    if (event.parent_span != 0) {
      args += ',';
      append_json_member(args, "parent_span", static_cast<std::int64_t>(event.parent_span));
    }
  }
  return args;
}

}  // namespace

void write_chrome_trace_events(std::ostream& os, const std::vector<TraceEvent>& events,
                               const std::vector<std::pair<int, std::string>>& thread_names) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::string line;
  auto emit = [&] {
    os << (first ? "\n " : ",\n ") << line;
    first = false;
    line.clear();
  };

  for (const auto& [tid, name] : thread_names) {
    line += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,";
    append_json_member(line, "tid", static_cast<std::int64_t>(tid));
    line += ",\"args\":{";
    append_json_member(line, "name", name);
    line += "}}";
    emit();
  }

  for (const TraceEvent& event : events) {
    const std::string args = event_args(event);
    switch (event.kind) {
      case EventKind::kComplete:
        write_event_prefix(line, "X", event);
        line += ',';
        append_json_member(line, "dur", event.duration_us);
        if (!args.empty()) {
          line += ",\"args\":{";
          line += args;
          line += '}';
        }
        line += '}';
        break;
      case EventKind::kCounter:
        write_event_prefix(line, "C", event);
        line += ",\"args\":{";
        append_json_member(line, "value", event.value);
        line += "}}";
        break;
      case EventKind::kInstant:
        write_event_prefix(line, "i", event);
        line += ",\"s\":\"t\"";
        if (!args.empty()) {
          line += ",\"args\":{";
          line += args;
          line += '}';
        }
        line += '}';
        break;
    }
    emit();
  }
  os << "\n]}\n";
}

void write_chrome_trace(std::ostream& os) {
  Tracer& tracer = Tracer::instance();
  // Names first: drain() retires the buffers of exited threads (race arms,
  // joined pool workers), which would take their names with them.
  const auto names = tracer.thread_names();
  const std::vector<TraceEvent> events = tracer.drain();
  if (const std::uint64_t dropped = tracer.dropped_events()) {
    log_warn("trace export: ", dropped, " events were dropped (per-thread buffer cap)");
  }
  write_chrome_trace_events(os, events, names);
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  check_input(static_cast<bool>(out), "cannot write trace to " + path);
  write_chrome_trace(out);
  out.flush();
  require(static_cast<bool>(out), "I/O error while writing trace to " + path);
}

}  // namespace fsyn::obs
