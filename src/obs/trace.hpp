// Low-overhead, thread-safe tracing: RAII spans, counter events and a
// global `Tracer` registry that any run can export as a Chrome trace-event
// / Perfetto JSON file (trace_export.hpp).
//
// Design goals, in order:
//
//  * Near-zero cost when disabled.  `tracing_enabled()` is one relaxed
//    atomic load; a `Span` constructed while tracing is off touches nothing
//    else — no clock read, no string copy, no allocation.
//  * No contention when enabled.  Every thread appends to its own buffer;
//    the per-buffer mutex is only ever contended by `drain()` (export
//    time), so the hot path is an uncontended lock around a vector
//    push_back.  Buffers are registered once per thread and kept alive by
//    shared_ptr, so threads may exit freely before the trace is written.
//  * Events carry wall-relative microsecond timestamps (`ts`/`dur` in the
//    trace-event format) against one process-wide steady-clock epoch, and
//    the dense per-thread id from util/logging.hpp, so trace tracks line
//    up with log-line prefixes.
//
// Typical use:
//
//   {
//     obs::Span span("synth", "route_all");
//     span.arg("paths", 12);
//     ...work...
//   }                       // destructor records a ph:"X" complete event
//
//   obs::Tracer::instance().counter("ilp", "milp bound t0", 42.0);
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace fsyn::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

/// One relaxed load; the only cost tracing adds to an instrumented hot
/// path while disabled.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Whether the always-on flight recorder (flight_recorder.hpp) is active;
/// same one-relaxed-load discipline.  Spans record into the recorder's
/// bounded per-thread rings whenever it is on, independent of the tracer.
inline bool flight_recording_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

enum class EventKind : std::uint8_t {
  kComplete,  ///< ph:"X" — a span with start + duration
  kCounter,   ///< ph:"C" — one sample of a named counter track
  kInstant    ///< ph:"i" — a point-in-time marker
};

struct TraceEvent {
  EventKind kind = EventKind::kComplete;
  const char* category = "";  ///< must point at static storage ("synth", "ilp", ...)
  std::string name;
  std::int64_t start_us = 0;     ///< microseconds since the tracer epoch
  std::int64_t duration_us = 0;  ///< complete events only
  int tid = 0;                   ///< filled in by the tracer at record time
  double value = 0.0;            ///< counter events only
  std::string args;              ///< preformatted JSON members (`"k":v,...`) or empty
  // Request trace context (trace_context.hpp); zero when the event was
  // recorded outside any TraceContextScope.  Exported as args so the
  // viewer can filter one request's spans across threads.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;      ///< this span's id (complete events only)
  std::uint64_t parent_span = 0;  ///< enclosing span / upstream caller
};

// ---- JSON-fragment helpers (shared with the exporter and Span::arg) --------

/// Appends `text` as a quoted, escaped JSON string.
void append_json_string(std::string& out, std::string_view text);
/// Appends a JSON number; integral values print without an exponent.
void append_json_number(std::string& out, double value);
/// Append one `"key":value` member (no surrounding braces, no comma logic —
/// callers join with ',').
void append_json_member(std::string& out, std::string_view key, std::string_view value);
void append_json_member(std::string& out, std::string_view key, std::int64_t value);
void append_json_member(std::string& out, std::string_view key, double value);
void append_json_member(std::string& out, std::string_view key, bool value);

/// Process-wide trace registry.  All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  void enable() { detail::g_tracing_enabled.store(true, std::memory_order_relaxed); }
  void disable() { detail::g_tracing_enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return tracing_enabled(); }

  /// Microseconds since the tracer epoch (first `instance()` call).
  std::int64_t now_us() const;

  /// Appends `event` to the calling thread's buffer (tid is overwritten
  /// with the caller's id).  Call only while tracing is enabled — the
  /// inline wrappers below and `Span` already guard.
  void record(TraceEvent event);

  /// Records a ph:"X" complete event with explicit timing (used for spans
  /// whose start predates the current thread, e.g. queue-wait time).  The
  /// ambient trace context is stamped on, and the event also lands in the
  /// flight recorder when that is enabled — safe to call whenever either
  /// sink is on (`Span::active()` is the usual guard).
  void complete(const char* category, std::string name, std::int64_t start_us,
                std::int64_t duration_us, std::string args = {});

  /// Records one sample of the counter track `name`.
  void counter(const char* category, std::string name, double value);

  /// Records a point-in-time marker.
  void instant(const char* category, std::string name, std::string args = {});

  /// Names the calling thread's track in the exported trace.
  void set_thread_name(std::string name);

  /// Moves all buffered events out of every thread buffer, sorted by start
  /// time.  Buffers stay registered; tracing may continue afterwards.
  std::vector<TraceEvent> drain();

  /// (tid, name) for every thread that called `set_thread_name`.
  std::vector<std::pair<int, std::string>> thread_names() const;

  /// Events discarded because a thread buffer hit its cap.
  std::uint64_t dropped_events() const;

 private:
  struct Buffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    int tid = 0;
    std::string thread_name;
    std::uint64_t dropped = 0;
  };

  Tracer();
  Buffer& local_buffer();

  /// Cap per thread so a runaway instrumented loop cannot exhaust memory;
  /// overflow increments `dropped` instead of growing further.
  static constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 22;

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  /// Drop counts of buffers pruned by `drain()` after their thread exited.
  std::atomic<std::uint64_t> retired_dropped_{0};
};

/// RAII span: records a complete event covering its lifetime — into the
/// tracer when tracing is on, into the flight recorder when that is on
/// (either, both, or neither).  Constructing one while both sinks are
/// disabled is a no-op (args included), so spans can be left in hot paths
/// unconditionally.  An active span adopts the thread's ambient trace
/// context (trace_context.hpp) and becomes the parent of spans nested
/// inside it.
class Span {
 public:
  Span(const char* category, std::string_view name) {
    if (tracing_enabled() || flight_recording_enabled()) begin(category, name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Ends the span now instead of at destruction (for phases that share a
  /// scope with later work).  Safe to call when inactive or twice.
  void finish() {
    if (active_) end();
    active_ = false;
  }

  // Key/value arguments shown in the trace viewer's detail pane.
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, const char* value) { arg(key, std::string_view(value)); }
  void arg(std::string_view key, double value);
  void arg(std::string_view key, bool value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  void arg(std::string_view key, T value) {
    arg_int(key, static_cast<std::int64_t>(value));
  }

 private:
  void begin(const char* category, std::string_view name);
  void end();
  void arg_int(std::string_view key, std::int64_t value);

  bool active_ = false;
  const char* category_ = "";
  std::string name_;
  std::string args_;
  std::int64_t start_us_ = 0;
  // Trace context adopted at begin(): this span's id, its parent, and the
  // ambient parent to restore when the span ends.
  std::uint64_t trace_hi_ = 0;
  std::uint64_t trace_lo_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
};

}  // namespace fsyn::obs
