#include "obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

namespace fsyn::obs {

namespace {

/// The `le` ladder (seconds) histograms are downsampled onto.  The native
/// histogram has 976 log-buckets; a scraper wants a few dozen at most.
/// Steps follow the usual 1-2.5-5 decade pattern from 100µs to 60s.
constexpr double kLadder[] = {
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1,  0.25,   0.5,  1.0,  2.5,    5.0,  10.0, 30.0,   60.0,
};
constexpr std::size_t kLadderSize = sizeof(kLadder) / sizeof(kLadder[0]);

void append_value(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buffer[40];
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof buffer, "%.9g", value);
  }
  out += buffer;
}

void append_sample(std::string& out, std::string_view name, std::string_view labels,
                   double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  append_value(out, value);
  out += '\n';
}

/// `le` label value for a ladder bound: trailing zeros trimmed so the
/// exposition is stable across libc printf implementations.
std::string le_text(double bound) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", bound);
  return buffer;
}

}  // namespace

void PrometheusWriter::family(std::string_view name, std::string_view help,
                              std::string_view type) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PrometheusWriter::sample(std::string_view name, std::string_view labels, double value) {
  append_sample(out_, name, labels, value);
}

void PrometheusWriter::histogram(std::string_view name, std::string_view labels,
                                 const HistogramSnapshot& snapshot) {
  // Fold native buckets onto the ladder by their midpoint.  Midpoints above
  // the top rung land in +Inf only.
  std::uint64_t ladder_counts[kLadderSize] = {};
  for (std::size_t i = 0; i < snapshot.buckets.size(); ++i) {
    const std::uint64_t count = snapshot.buckets[i];
    if (count == 0) continue;
    const double mid = LatencyHistogram::bucket_mid_seconds(static_cast<int>(i));
    for (std::size_t rung = 0; rung < kLadderSize; ++rung) {
      if (mid <= kLadder[rung]) {
        ladder_counts[rung] += count;
        break;
      }
    }
  }
  const std::string bucket_name = std::string(name) + "_bucket";
  std::uint64_t cumulative = 0;
  for (std::size_t rung = 0; rung < kLadderSize; ++rung) {
    cumulative += ladder_counts[rung];
    std::string bucket_labels(labels);
    if (!bucket_labels.empty()) bucket_labels += ',';
    bucket_labels += "le=\"" + le_text(kLadder[rung]) + "\"";
    append_sample(out_, bucket_name, bucket_labels, static_cast<double>(cumulative));
  }
  std::string inf_labels(labels);
  if (!inf_labels.empty()) inf_labels += ',';
  inf_labels += "le=\"+Inf\"";
  append_sample(out_, bucket_name, inf_labels, static_cast<double>(snapshot.count));
  append_sample(out_, std::string(name) + "_sum", labels, snapshot.sum_seconds);
  append_sample(out_, std::string(name) + "_count", labels, static_cast<double>(snapshot.count));
}

// ---- lint ------------------------------------------------------------------

namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool is_label_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool fail(std::string* error, std::size_t line_no, const std::string& why) {
  if (error) *error = "line " + std::to_string(line_no) + ": " + why;
  return false;
}

struct HistogramState {
  double last_le = -1.0;
  double last_cumulative = -1.0;
  double inf_value = -1.0;
  bool saw_inf = false;
};

}  // namespace

bool lint_prometheus(const std::string& text, std::string* error) {
  if (!text.empty() && text.back() != '\n') {
    return fail(error, 1, "exposition must end with a newline");
  }
  std::map<std::string, std::string> types;           // family -> type
  std::map<std::string, HistogramState> histograms;   // family|labels-sans-le
  bool saw_sample = false;

  std::size_t pos = 0, line_no = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only `# HELP name ...` and `# TYPE name type` comments are emitted;
      // other comments are legal but we keep our own output strict.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string::npos) return fail(error, line_no, "malformed TYPE line");
        const std::string family = rest.substr(0, space);
        const std::string type = rest.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(error, line_no, "unknown metric type '" + type + "'");
        }
        if (types.count(family)) return fail(error, line_no, "duplicate TYPE for " + family);
        types[family] = type;
      } else if (line.rfind("# HELP ", 0) != 0 && line.rfind("# ", 0) != 0) {
        return fail(error, line_no, "malformed comment line");
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    if (!is_name_start(line[i])) return fail(error, line_no, "bad metric name start");
    while (i < line.size() && is_name_char(line[i])) ++i;
    const std::string name = line.substr(0, i);

    std::string labels;
    std::string le_value;
    if (i < line.size() && line[i] == '{') {
      const std::size_t open = i++;
      bool first = true;
      while (true) {
        if (i >= line.size()) return fail(error, line_no, "unterminated label block");
        if (line[i] == '}') { ++i; break; }
        if (!first) {
          if (line[i] != ',') return fail(error, line_no, "expected ',' between labels");
          ++i;
        }
        first = false;
        if (i >= line.size() || !is_label_start(line[i])) {
          return fail(error, line_no, "bad label name");
        }
        const std::size_t label_start = i;
        while (i < line.size() && is_name_char(line[i]) && line[i] != ':') ++i;
        const std::string label = line.substr(label_start, i - label_start);
        if (i + 1 >= line.size() || line[i] != '=' || line[i + 1] != '"') {
          return fail(error, line_no, "label " + label + " missing =\"value\"");
        }
        i += 2;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) return fail(error, line_no, "dangling escape");
            const char escaped = line[i + 1];
            if (escaped != '\\' && escaped != '"' && escaped != 'n') {
              return fail(error, line_no, "illegal escape in label value");
            }
            value += escaped == 'n' ? '\n' : escaped;
            i += 2;
          } else {
            value += line[i++];
          }
        }
        if (i >= line.size()) return fail(error, line_no, "unterminated label value");
        ++i;  // closing quote
        if (label == "le") le_value = value;
      }
      labels = line.substr(open, i - open);
    }

    if (i >= line.size() || line[i] != ' ') {
      return fail(error, line_no, "expected single space before value");
    }
    ++i;
    const std::string value_text = line.substr(i);
    double value = 0.0;
    if (value_text == "+Inf") {
      value = HUGE_VAL;
    } else if (value_text == "-Inf") {
      value = -HUGE_VAL;
    } else if (value_text == "NaN") {
      value = NAN;
    } else {
      char* end = nullptr;
      value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str()) return fail(error, line_no, "unparseable value");
      // An optional integer timestamp may follow; anything else is junk.
      while (end && *end == ' ') ++end;
      if (end && *end != '\0') {
        char* ts_end = nullptr;
        std::strtoll(end, &ts_end, 10);
        if (ts_end == end || *ts_end != '\0') {
          return fail(error, line_no, "trailing junk after value");
        }
      }
    }
    saw_sample = true;

    // Resolve the family: exact name, or histogram series suffix.
    std::string family = name;
    std::string suffix;
    if (!types.count(family)) {
      for (const char* candidate : {"_bucket", "_sum", "_count"}) {
        const std::string cand(candidate);
        if (name.size() > cand.size() &&
            name.compare(name.size() - cand.size(), cand.size(), cand) == 0) {
          const std::string base = name.substr(0, name.size() - cand.size());
          auto it = types.find(base);
          if (it != types.end() && it->second == "histogram") {
            family = base;
            suffix = cand;
            break;
          }
        }
      }
    }
    auto type_it = types.find(family);
    if (type_it == types.end()) {
      return fail(error, line_no, "sample " + name + " has no preceding # TYPE");
    }
    const std::string& type = type_it->second;
    if (type == "histogram" && suffix.empty()) {
      return fail(error, line_no,
                  "histogram family " + family + " sampled without _bucket/_sum/_count");
    }
    if (type == "counter") {
      const std::string total = "_total";
      if (name.size() <= total.size() ||
          name.compare(name.size() - total.size(), total.size(), total) != 0) {
        return fail(error, line_no, "counter " + name + " must end in _total");
      }
      if (value < 0) return fail(error, line_no, "counter " + name + " is negative");
    }

    if (suffix == "_bucket") {
      if (le_value.empty()) return fail(error, line_no, "_bucket sample without le label");
      // Key the series by family + labels minus le, so stage="..." variants
      // are tracked independently.
      std::string series = family + "|";
      {
        std::size_t at = labels.find("le=\"");
        std::string stripped = labels;
        if (at != std::string::npos) {
          std::size_t close = labels.find('"', at + 4);
          std::size_t cut_begin = at, cut_end = close + 1;
          if (cut_begin > 1 && labels[cut_begin - 1] == ',') --cut_begin;
          else if (cut_end < labels.size() && labels[cut_end] == ',') ++cut_end;
          stripped = labels.substr(0, cut_begin) + labels.substr(cut_end);
        }
        series += stripped;
      }
      HistogramState& state = histograms[series];
      double le = 0.0;
      if (le_value == "+Inf") {
        le = HUGE_VAL;
        state.saw_inf = true;
        state.inf_value = value;
      } else {
        char* end = nullptr;
        le = std::strtod(le_value.c_str(), &end);
        if (end == le_value.c_str() || *end != '\0') {
          return fail(error, line_no, "unparseable le bound");
        }
      }
      if (le <= state.last_le) return fail(error, line_no, "le bounds not increasing");
      if (value < state.last_cumulative) {
        return fail(error, line_no, "histogram buckets not cumulative");
      }
      state.last_le = le;
      state.last_cumulative = value;
    } else if (suffix == "_count") {
      std::string series = family + "|" + labels;
      HistogramState& state = histograms[series];
      if (!state.saw_inf) {
        return fail(error, line_no, "histogram _count before le=\"+Inf\" bucket");
      }
      if (value != state.inf_value) {
        return fail(error, line_no, "_count disagrees with le=\"+Inf\" bucket");
      }
    }
  }
  if (!saw_sample) return fail(error, line_no, "exposition has no samples");
  if (error) error->clear();
  return true;
}

}  // namespace fsyn::obs
