// Prometheus text-exposition (version 0.0.4) rendering.
//
// A tiny writer over the metric families flowsynth exports: counters and
// gauges are one sample line each, histograms are rendered from the
// fixed-layout `HistogramSnapshot` as cumulative `_bucket{le="..."}`
// counts over a fixed seconds ladder (976 log-buckets would be absurd as
// scrape output; the ladder keeps relative error while a dashboard stays
// readable), plus `_sum` and `_count`.
//
//   obs::PrometheusWriter w;
//   w.family("flowsynth_jobs_submitted_total", "Jobs accepted", "counter");
//   w.sample("flowsynth_jobs_submitted_total", "", 42);
//   w.histogram("flowsynth_latency_seconds", "stage=\"queue\"", snapshot);
//   w.take();
//
// `lint_prometheus` validates a full exposition against the format rules
// the real Prometheus scraper enforces; tests and the CI `promcheck` tool
// share it so the server cannot drift from what a scraper accepts.
#pragma once

#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace fsyn::obs {

/// Content-Type of the text exposition format.
inline constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class PrometheusWriter {
 public:
  /// Emits `# HELP` and `# TYPE` for a family.  `type` is "counter",
  /// "gauge" or "histogram".  Call once per family, before its samples.
  void family(std::string_view name, std::string_view help, std::string_view type);

  /// One sample line: `name{labels} value`.  `labels` is either empty or
  /// pre-rendered `key="value",...` (values escaped by the caller when
  /// they can contain `"` or `\` — ours are fixed identifiers).
  void sample(std::string_view name, std::string_view labels, double value);

  /// Cumulative-bucket rendering of a latency histogram: one
  /// `name_bucket{...,le="..."}` line per ladder step plus `+Inf`, then
  /// `name_sum` / `name_count`.  Extra labels apply to every line.
  void histogram(std::string_view name, std::string_view labels,
                 const HistogramSnapshot& snapshot);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Validates a text exposition: every line is a comment, blank, or
/// `name{labels} value` with a legal metric name and a parseable value;
/// every sample's family has a preceding `# TYPE`; histogram buckets are
/// cumulative (monotone in `le`) and end with `le="+Inf"` equal to
/// `_count`.  Returns true when clean; otherwise false with a description
/// of the first violation in `*error`.
bool lint_prometheus(const std::string& text, std::string* error);

}  // namespace fsyn::obs
