#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/strings.hpp"

namespace fsyn::obs {

int LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < 2 * kSubBuckets) return static_cast<int>(ns);  // exact below 32 ns
  const int msb = 63 - std::countl_zero(ns);
  const int shift = msb - kSubBits;
  return ((shift + 1) << kSubBits) +
         static_cast<int>((ns >> shift) & (kSubBuckets - 1));
}

double LatencyHistogram::bucket_mid_seconds(int index) {
  std::uint64_t lower = 0;
  std::uint64_t width = 1;
  if (index < 2 * kSubBuckets) {
    lower = static_cast<std::uint64_t>(index);
  } else {
    const int shift = (index >> kSubBits) - 1;
    const std::uint64_t sub = static_cast<std::uint64_t>(index) & (kSubBuckets - 1);
    lower = (static_cast<std::uint64_t>(kSubBuckets) + sub) << shift;
    width = std::uint64_t{1} << shift;
  }
  return (static_cast<double>(lower) + static_cast<double>(width) * 0.5) * 1e-9;
}

void LatencyHistogram::record(std::chrono::nanoseconds elapsed) {
  const std::uint64_t ns =
      elapsed.count() < 0 ? 0 : static_cast<std::uint64_t>(elapsed.count());
  buckets_[static_cast<std::size_t>(bucket_index(ns))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen && !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::record_seconds(double seconds) {
  record(std::chrono::nanoseconds(
      static_cast<std::int64_t>(std::max(seconds, 0.0) * 1e9)));
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_seconds = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  const std::uint64_t min_ns = min_ns_.load(std::memory_order_relaxed);
  s.min_seconds = s.count > 0 ? static_cast<double>(min_ns) * 1e-9 : 0.0;
  s.max_seconds = static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  s.buckets.resize(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i) {
    s.buckets[static_cast<std::size_t>(i)] = buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  return s;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      const double mid = LatencyHistogram::bucket_mid_seconds(static_cast<int>(i));
      return std::clamp(mid, min_seconds, max_seconds);
    }
  }
  return max_seconds;
}

std::string HistogramSnapshot::to_json() const {
  std::string out = "{\"count\":" + std::to_string(count);
  out += ",\"sum\":" + format_fixed(sum_seconds, 6);
  out += ",\"min\":" + format_fixed(min_seconds, 6);
  out += ",\"p50\":" + format_fixed(percentile(50.0), 6);
  out += ",\"p90\":" + format_fixed(percentile(90.0), 6);
  out += ",\"p95\":" + format_fixed(percentile(95.0), 6);
  out += ",\"p99\":" + format_fixed(percentile(99.0), 6);
  out += ",\"max\":" + format_fixed(max_seconds, 6);
  out += '}';
  return out;
}

}  // namespace fsyn::obs
