#include "obs/trace_context.hpp"

#include <chrono>
#include <random>
#include <thread>

namespace fsyn::obs {

namespace {

thread_local TraceContext t_current;

std::uint64_t random_u64() {
  // Per-thread generator: no locks on the id-minting path.  Seeded from
  // the OS entropy source plus clock and thread identity so forked test
  // processes and thread pools do not collide.
  thread_local std::mt19937_64 rng = [] {
    std::random_device device;
    std::seed_seq seq{
        static_cast<std::uint64_t>(device()), static_cast<std::uint64_t>(device()),
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()),
        static_cast<std::uint64_t>(
            std::hash<std::thread::id>{}(std::this_thread::get_id()))};
    return std::mt19937_64(seq);
  }();
  return rng();
}

void append_hex64(std::string& out, std::uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kDigits[(value >> shift) & 0xF];
  }
}

/// Parses exactly `digits` lowercase hex characters; false on anything else.
bool parse_hex(std::string_view text, int digits, std::uint64_t* out) {
  if (static_cast<int>(text.size()) < digits) return false;
  std::uint64_t value = 0;
  for (int i = 0; i < digits; ++i) {
    const char c = text[static_cast<std::size_t>(i)];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;  // uppercase is malformed per W3C
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace

std::string TraceContext::trace_id_hex() const {
  std::string out;
  out.reserve(32);
  append_hex64(out, trace_hi);
  append_hex64(out, trace_lo);
  return out;
}

std::string TraceContext::traceparent() const {
  std::string out = "00-";
  out.reserve(55);
  append_hex64(out, trace_hi);
  append_hex64(out, trace_lo);
  out += '-';
  append_hex64(out, parent_span);
  out += "-01";
  return out;
}

TraceContext make_trace_context() {
  TraceContext context;
  while (!context.valid()) {
    context.trace_hi = random_u64();
    context.trace_lo = random_u64();
  }
  context.parent_span = make_span_id();
  return context;
}

std::uint64_t make_span_id() {
  std::uint64_t id = 0;
  while (id == 0) id = random_u64();
  return id;
}

bool parse_traceparent(std::string_view header, TraceContext* out) {
  // version "-" trace-id "-" parent-id "-" flags  =  2+1+32+1+16+1+2 = 55.
  if (header.size() < 55) return false;
  std::uint64_t version = 0;
  if (!parse_hex(header.substr(0, 2), 2, &version)) return false;
  if (version == 0xFF) return false;  // forbidden by the spec
  if (version == 0 && header.size() != 55) return false;
  // A future version may append fields, but only after another dash.
  if (version != 0 && header.size() > 55 && header[55] != '-') return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return false;

  TraceContext parsed;
  if (!parse_hex(header.substr(3, 16), 16, &parsed.trace_hi)) return false;
  if (!parse_hex(header.substr(19, 16), 16, &parsed.trace_lo)) return false;
  if (!parse_hex(header.substr(36, 16), 16, &parsed.parent_span)) return false;
  std::uint64_t flags = 0;
  if (!parse_hex(header.substr(53, 2), 2, &flags)) return false;
  if (!parsed.valid() || parsed.parent_span == 0) return false;

  *out = parsed;
  return true;
}

TraceContext current_trace() { return t_current; }

void set_current_trace(const TraceContext& context) { t_current = context; }

}  // namespace fsyn::obs
