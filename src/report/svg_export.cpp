#include "report/svg_export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fsyn::report {

namespace {

/// Linear white->red ramp for the actuation heat map.
std::string heat_color(int value, int max_value) {
  if (value <= 0 || max_value <= 0) return "#f4f4f4";
  const double t = std::min(1.0, static_cast<double>(value) / max_value);
  const int red = 255;
  const int other = static_cast<int>(235.0 * (1.0 - t));
  std::ostringstream os;
  os << "rgb(" << red << ',' << other << ',' << other << ')';
  return os.str();
}

}  // namespace

std::string render_chip_svg(const synth::MappingProblem& problem,
                            const synth::Placement& placement,
                            const route::RoutingResult& routing,
                            const sim::ActuationLedger& ledger, const SvgOptions& options) {
  const int cell = options.cell_pixels;
  const int width = problem.chip().width();
  const int height = problem.chip().height();
  const Grid<int> totals = ledger.total();
  const int max_total = *std::max_element(totals.begin(), totals.end());

  // SVG y grows downward; chip y grows upward.
  auto px = [&](int x) { return x * cell; };
  auto py = [&](int y) { return (height - 1 - y) * cell; };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width * cell << "' height='"
      << height * cell << "' viewBox='0 0 " << width * cell << ' ' << height * cell << "'>\n";
  svg << "<rect width='100%' height='100%' fill='#ffffff'/>\n";

  // Heat map of per-valve actuations ('.' cells stay light grey = removed).
  if (options.draw_heatmap) {
    totals.for_each([&](const Point& p, const int& value) {
      svg << "<rect x='" << px(p.x) << "' y='" << py(p.y) << "' width='" << cell
          << "' height='" << cell << "' fill='" << heat_color(value, max_total)
          << "' stroke='#cccccc' stroke-width='1'/>\n";
      if (options.draw_labels && value > 0) {
        svg << "<text x='" << px(p.x) + cell / 2 << "' y='" << py(p.y) + cell / 2 + 4
            << "' font-size='" << cell / 3 << "' text-anchor='middle' fill='#333333'>"
            << value << "</text>\n";
      }
    });
  }

  // Device footprints (outline) and pump rings (dots on ring cells).
  for (int i = 0; i < problem.task_count(); ++i) {
    const auto& device = placement[static_cast<std::size_t>(i)];
    const Rect fp = device.footprint();
    svg << "<rect x='" << px(fp.left()) << "' y='" << py(fp.top() - 1) << "' width='"
        << fp.width * cell << "' height='" << fp.height * cell
        << "' fill='none' stroke='#2060c0' stroke-width='2'/>\n";
    if (options.draw_labels) {
      svg << "<text x='" << px(fp.left()) + 3 << "' y='" << py(fp.top() - 1) + cell / 3
          << "' font-size='" << cell / 3 << "' fill='#2060c0'>" << problem.task(i).name
          << "</text>\n";
    }
  }

  // Routed paths as polylines through cell centres.
  if (options.draw_paths) {
    for (const auto& path : routing.paths) {
      if (path.cells.size() < 2) continue;
      svg << "<polyline fill='none' stroke='#10a050' stroke-width='2' stroke-opacity='0.6' "
             "points='";
      for (const Point& p : path.cells) {
        svg << px(p.x) + cell / 2 << ',' << py(p.y) + cell / 2 << ' ';
      }
      svg << "'/>\n";
    }
  }

  // Chip ports.
  for (const auto& port : problem.chip().ports()) {
    svg << "<circle cx='" << px(port.cell.x) + cell / 2 << "' cy='" << py(port.cell.y) + cell / 2
        << "' r='" << cell / 4 << "' fill='" << (port.is_input ? "#10a050" : "#c03030")
        << "'/>\n";
    if (options.draw_labels) {
      svg << "<text x='" << px(port.cell.x) + cell / 2 << "' y='" << py(port.cell.y) + cell / 5
          << "' font-size='" << cell / 3 << "' text-anchor='middle' fill='#000000'>"
          << port.name << "</text>\n";
    }
  }

  svg << "</svg>\n";
  return svg.str();
}

void write_chip_svg(const std::string& path, const synth::MappingProblem& problem,
                    const synth::Placement& placement, const route::RoutingResult& routing,
                    const sim::ActuationLedger& ledger, const SvgOptions& options) {
  std::ofstream file(path);
  check_input(file.good(), "cannot open '" + path + "' for writing");
  file << render_chip_svg(problem, placement, routing, ledger, options);
  check_input(file.good(), "failed while writing '" + path + "'");
}

}  // namespace fsyn::report
