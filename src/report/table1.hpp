// Table-1 reproduction pipeline (paper Section 4).
//
// One row per (benchmark, policy): schedule the assay under the policy,
// build the optimally-bound traditional design, synthesize with
// dynamic-device mapping, and compute the comparison columns
// (vs_tmax, vs1/vs2 with peristalsis-only parts, #v, improvements, runtime).
#pragma once

#include <string>
#include <vector>

#include "assay/sequencing_graph.hpp"
#include "baseline/traditional.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::report {

struct Table1Row {
  std::string case_name;
  int total_ops = 0;
  int mixing_ops = 0;
  std::string policy_label;

  // Traditional design columns.
  int device_count = 0;        ///< #d
  std::string binding;         ///< #m4-6-8-10
  int vs_tmax = 0;
  int traditional_valves = 0;  ///< #v (traditional)

  // Our method.
  int vs1_max = 0, vs1_pump = 0;
  int vs2_max = 0, vs2_pump = 0;
  int our_valves = 0;
  double runtime_seconds = 0.0;

  double improvement1() const;  ///< imp 1vs = 1 - vs1_max / vs_tmax
  double improvement2() const;  ///< imp 2vs
  double valve_improvement() const;  ///< impv = 1 - #v(ours) / #v(traditional)
};

/// Runs one case: `policy_increments` balancing steps define the policy
/// (see DESIGN.md §3.2 for the per-case p1 offsets).
Table1Row run_case(const assay::SequencingGraph& graph, int policy_increments,
                   const std::string& policy_label,
                   const synth::SynthesisOptions& options = {});

/// The paper's twelve rows: every benchmark at its p1/p2/p3 increments.
/// `jobs` > 1 runs the rows concurrently on a svc::ThreadPool (each row is
/// an independent schedule+synthesis, so results are identical to the
/// sequential run); 0 uses the hardware concurrency.
std::vector<Table1Row> run_full_table(const synth::SynthesisOptions& options = {},
                                      int jobs = 1);

/// Renders rows in the paper's column layout, with the averages line.
std::string format_table(const std::vector<Table1Row>& rows);

}  // namespace fsyn::report
