#include "report/json_export.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fsyn::report {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void emit_grid(std::ostringstream& os, const Grid<int>& grid) {
  os << '[';
  for (int y = 0; y < grid.height(); ++y) {
    if (y > 0) os << ',';
    os << '[';
    for (int x = 0; x < grid.width(); ++x) {
      if (x > 0) os << ',';
      os << grid.at(x, y);
    }
    os << ']';
  }
  os << ']';
}

}  // namespace

std::string to_json(const synth::MappingProblem& problem,
                    const synth::SynthesisResult& result) {
  require(problem.chip().width() == result.chip_width &&
              problem.chip().height() == result.chip_height,
          "problem and result disagree on chip dimensions");
  std::ostringstream os;
  os << "{\n";
  os << "  \"assay\": \"" << json_escape(problem.graph().name()) << "\",\n";
  os << "  \"chip\": {\"width\": " << result.chip_width << ", \"height\": "
     << result.chip_height << "},\n";

  os << "  \"ports\": [";
  bool first = true;
  for (const auto& port : problem.chip().ports()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << json_escape(port.name) << "\", \"x\": " << port.cell.x
       << ", \"y\": " << port.cell.y << ", \"input\": " << (port.is_input ? "true" : "false")
       << '}';
  }
  os << "],\n";

  os << "  \"devices\": [\n";
  for (int i = 0; i < problem.task_count(); ++i) {
    const auto& task = problem.task(i);
    const auto& device = result.placement[static_cast<std::size_t>(i)];
    os << "    {\"op\": \"" << json_escape(task.name) << "\", \"kind\": \""
       << (task.is_mix ? "mix" : "detect") << "\", \"x\": " << device.origin.x
       << ", \"y\": " << device.origin.y << ", \"width\": " << device.type.width
       << ", \"height\": " << device.type.height << ", \"storage_from\": "
       << task.storage_from << ", \"start\": " << task.start << ", \"release\": "
       << task.release << '}' << (i + 1 < problem.task_count() ? "," : "") << '\n';
  }
  os << "  ],\n";

  os << "  \"paths\": [\n";
  for (std::size_t p = 0; p < result.routing.paths.size(); ++p) {
    const auto& path = result.routing.paths[p];
    os << "    {\"label\": \"" << json_escape(path.label) << "\", \"kind\": \""
       << route::to_string(path.kind) << "\", \"time\": " << path.time << ", \"cells\": [";
    for (std::size_t c = 0; c < path.cells.size(); ++c) {
      if (c > 0) os << ',';
      os << '[' << path.cells[c].x << ',' << path.cells[c].y << ']';
    }
    os << "]}" << (p + 1 < result.routing.paths.size() ? "," : "") << '\n';
  }
  os << "  ],\n";

  os << "  \"actuations_setting1\": ";
  emit_grid(os, result.ledger_setting1.total());
  os << ",\n  \"actuations_setting2\": ";
  emit_grid(os, result.ledger_setting2.total());
  os << ",\n";

  os << "  \"metrics\": {\"vs1_max\": " << result.vs1_max << ", \"vs1_pump\": "
     << result.vs1_pump << ", \"vs2_max\": " << result.vs2_max << ", \"vs2_pump\": "
     << result.vs2_pump << ", \"valve_count\": " << result.valve_count
     << ", \"runtime_seconds\": " << result.runtime_seconds << "}\n";
  os << "}\n";
  return os.str();
}

void write_json(const std::string& path, const synth::MappingProblem& problem,
                const synth::SynthesisResult& result) {
  std::ofstream file(path);
  check_input(file.good(), "cannot open '" + path + "' for writing");
  file << to_json(problem, result);
  check_input(file.good(), "failed while writing '" + path + "'");
}

}  // namespace fsyn::report
