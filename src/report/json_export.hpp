// JSON export of synthesis results, for downstream tooling (chip-control
// software, layout viewers, CI dashboards).
//
// The document carries everything a consumer needs to drive or inspect the
// chip: matrix dimensions, ports, per-task device placements with their
// time windows, routed paths, the per-valve actuation grids of both
// settings, and the headline metrics.  A small self-contained writer — no
// third-party JSON dependency — with escaping for names from user assays.
#pragma once

#include <string>

#include "sim/actuation.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::report {

/// Serializes the full synthesis result.  `problem` must be the mapping
/// problem the result was produced from (same chip dimensions).
std::string to_json(const synth::MappingProblem& problem,
                    const synth::SynthesisResult& result);

/// Writes `to_json` output to `path`; throws fsyn::Error on I/O failure.
void write_json(const std::string& path, const synth::MappingProblem& problem,
                const synth::SynthesisResult& result);

/// Escapes a string for inclusion in a JSON document (quotes, backslashes,
/// control characters).
std::string json_escape(const std::string& text);

}  // namespace fsyn::report
