#include "report/result_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "report/json_export.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace fsyn::report {

namespace {

constexpr const char* kFormat = "flowsynth-mapping-v1";

void emit_grid(std::ostringstream& os, const Grid<int>& grid) {
  os << '[';
  for (int y = 0; y < grid.height(); ++y) {
    if (y > 0) os << ',';
    os << '[';
    for (int x = 0; x < grid.width(); ++x) {
      if (x > 0) os << ',';
      os << grid.at(x, y);
    }
    os << ']';
  }
  os << ']';
}

Grid<int> read_grid(const JsonValue& rows, int width, int height) {
  check_input(static_cast<int>(rows.size()) == height, "grid row count mismatch");
  Grid<int> grid(width, height, 0);
  for (int y = 0; y < height; ++y) {
    const JsonValue& row = rows.at(static_cast<std::size_t>(y));
    check_input(static_cast<int>(row.size()) == width, "grid column count mismatch");
    for (int x = 0; x < width; ++x) {
      grid.at(x, y) = static_cast<int>(row.at(static_cast<std::size_t>(x)).as_int());
    }
  }
  return grid;
}

route::TransportKind kind_from_string(const std::string& name) {
  if (name == "fill") return route::TransportKind::kFill;
  if (name == "transfer") return route::TransportKind::kTransfer;
  if (name == "drain") return route::TransportKind::kDrain;
  throw Error("unknown transport kind '" + name + "'");
}

}  // namespace

std::string stored_result_to_json(const StoredResult& stored) {
  const synth::SynthesisResult& r = stored.result;
  std::ostringstream os;
  // Doubles round-trip exactly at max_digits10; everything else is integral.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"format\": \"" << kFormat << "\",\n";
  os << "  \"assay\": \"" << json_escape(stored.assay) << "\",\n";
  os << "  \"policy_increments\": " << stored.policy_increments << ",\n";
  os << "  \"asap\": " << (stored.asap ? "true" : "false") << ",\n";
  os << "  \"seed\": " << stored.seed << ",\n";
  os << "  \"chip\": {\"width\": " << r.chip_width << ", \"height\": " << r.chip_height
     << "},\n";

  os << "  \"placement\": [";
  for (std::size_t i = 0; i < r.placement.size(); ++i) {
    const arch::DeviceInstance& device = r.placement[i];
    if (i > 0) os << ", ";
    os << "{\"x\": " << device.origin.x << ", \"y\": " << device.origin.y
       << ", \"w\": " << device.type.width << ", \"h\": " << device.type.height << '}';
  }
  os << "],\n";

  os << "  \"routing\": {\"success\": " << (r.routing.success ? "true" : "false")
     << ", \"total_cells\": " << r.routing.total_cells << ", \"rip_ups\": "
     << r.routing.rip_ups << ", \"failure\": \"" << json_escape(r.routing.failure)
     << "\", \"paths\": [\n";
  for (std::size_t p = 0; p < r.routing.paths.size(); ++p) {
    const route::RoutedPath& path = r.routing.paths[p];
    os << "    {\"kind\": \"" << route::to_string(path.kind) << "\", \"task\": " << path.task
       << ", \"source_task\": " << path.source_task << ", \"source_input\": "
       << path.source_input.index << ", \"label\": \"" << json_escape(path.label)
       << "\", \"time\": " << path.time << ", \"cells\": [";
    for (std::size_t c = 0; c < path.cells.size(); ++c) {
      if (c > 0) os << ',';
      os << '[' << path.cells[c].x << ',' << path.cells[c].y << ']';
    }
    os << "]}" << (p + 1 < r.routing.paths.size() ? "," : "") << '\n';
  }
  os << "  ]},\n";

  os << "  \"ledger_setting1\": {\"pump\": ";
  emit_grid(os, r.ledger_setting1.pump);
  os << ", \"control\": ";
  emit_grid(os, r.ledger_setting1.control);
  os << "},\n  \"ledger_setting2\": {\"pump\": ";
  emit_grid(os, r.ledger_setting2.pump);
  os << ", \"control\": ";
  emit_grid(os, r.ledger_setting2.control);
  os << "},\n";

  os << "  \"metrics\": {\"vs1_max\": " << r.vs1_max << ", \"vs1_pump\": " << r.vs1_pump
     << ", \"vs2_max\": " << r.vs2_max << ", \"vs2_pump\": " << r.vs2_pump
     << ", \"valve_count\": " << r.valve_count << ", \"mapper_effort\": " << r.mapper_effort
     << ", \"refinement_iterations\": " << r.refinement_iterations << ", \"chip_growths\": "
     << r.chip_growths << ", \"runtime_seconds\": " << r.runtime_seconds << "},\n";

  os << "  \"solver\": {\"nodes\": " << r.milp_nodes << ", \"lp_iterations\": "
     << r.milp_lp_iterations << ", \"iterations\": " << r.milp_lp.iterations
     << ", \"primal_pivots\": " << r.milp_lp.primal_pivots << ", \"dual_pivots\": "
     << r.milp_lp.dual_pivots << ", \"bound_flips\": " << r.milp_lp.bound_flips
     << ", \"refactorizations\": " << r.milp_lp.refactorizations << ", \"warm_solves\": "
     << r.milp_lp.warm_solves << ", \"cold_solves\": " << r.milp_lp.cold_solves
     << ", \"lu_refactorizations\": " << r.milp_lp.lu_refactorizations
     << ", \"eta_pivots\": " << r.milp_lp.eta_pivots << ", \"eta_nnz\": " << r.milp_lp.eta_nnz
     << ", \"lu_fill_nnz\": " << r.milp_lp.lu_fill_nnz << ", \"lu_basis_nnz\": "
     << r.milp_lp.lu_basis_nnz << ", \"devex_resets\": " << r.milp_lp.devex_resets
     << ", \"gomory_cuts\": " << r.milp_cuts.gomory_generated
     << ", \"cover_cuts\": " << r.milp_cuts.cover_generated
     << ", \"cuts_applied\": " << r.milp_cuts.applied
     << ", \"cuts_retained\": " << r.milp_cuts.retained
     << ", \"cut_rounds\": " << r.milp_cuts.rounds
     << ", \"impact_branch_decisions\": " << r.milp_impact_branch_decisions
     << ", \"pseudocost_branch_decisions\": " << r.milp_pseudocost_branch_decisions
     << ", \"arena_bytes\": " << r.milp_arena_bytes
     << ", \"basis\": \"" << ilp::to_string(r.milp_basis) << "\", \"pricing\": \""
     << ilp::to_string(r.milp_pricing) << "\"}\n";
  os << "}\n";
  return os.str();
}

StoredResult stored_result_from_json(const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  check_input(doc.is_object() && doc.has("format") && doc.at("format").as_string() == kFormat,
              std::string("not a ") + kFormat + " document");

  StoredResult stored;
  stored.assay = doc.at("assay").as_string();
  stored.policy_increments = static_cast<int>(doc.at("policy_increments").as_int());
  stored.asap = doc.at("asap").as_bool();
  stored.seed = static_cast<std::uint64_t>(doc.at("seed").as_int());

  synth::SynthesisResult& r = stored.result;
  r.chip_width = static_cast<int>(doc.at("chip").at("width").as_int());
  r.chip_height = static_cast<int>(doc.at("chip").at("height").as_int());
  check_input(r.chip_width > 0 && r.chip_height > 0, "stored chip dimensions must be positive");

  for (const JsonValue& device : doc.at("placement").items()) {
    arch::DeviceInstance instance;
    instance.origin = Point{static_cast<int>(device.at("x").as_int()),
                            static_cast<int>(device.at("y").as_int())};
    instance.type.width = static_cast<int>(device.at("w").as_int());
    instance.type.height = static_cast<int>(device.at("h").as_int());
    r.placement.push_back(instance);
  }

  const JsonValue& routing = doc.at("routing");
  r.routing.success = routing.at("success").as_bool();
  r.routing.total_cells = static_cast<int>(routing.at("total_cells").as_int());
  r.routing.rip_ups = static_cast<int>(routing.at("rip_ups").as_int());
  r.routing.failure = routing.at("failure").as_string();
  for (const JsonValue& path : routing.at("paths").items()) {
    route::RoutedPath routed;
    routed.kind = kind_from_string(path.at("kind").as_string());
    routed.task = static_cast<int>(path.at("task").as_int());
    routed.source_task = static_cast<int>(path.at("source_task").as_int());
    routed.source_input.index = static_cast<int>(path.at("source_input").as_int());
    routed.label = path.at("label").as_string();
    routed.time = static_cast<int>(path.at("time").as_int());
    for (const JsonValue& cell : path.at("cells").items()) {
      check_input(cell.size() == 2, "path cell must be [x, y]");
      routed.cells.push_back(Point{static_cast<int>(cell.at(std::size_t{0}).as_int()),
                                   static_cast<int>(cell.at(std::size_t{1}).as_int())});
    }
    r.routing.paths.push_back(std::move(routed));
  }

  const auto read_ledger = [&](const JsonValue& ledger) {
    sim::ActuationLedger out;
    out.pump = read_grid(ledger.at("pump"), r.chip_width, r.chip_height);
    out.control = read_grid(ledger.at("control"), r.chip_width, r.chip_height);
    return out;
  };
  r.ledger_setting1 = read_ledger(doc.at("ledger_setting1"));
  r.ledger_setting2 = read_ledger(doc.at("ledger_setting2"));

  const JsonValue& metrics = doc.at("metrics");
  r.vs1_max = static_cast<int>(metrics.at("vs1_max").as_int());
  r.vs1_pump = static_cast<int>(metrics.at("vs1_pump").as_int());
  r.vs2_max = static_cast<int>(metrics.at("vs2_max").as_int());
  r.vs2_pump = static_cast<int>(metrics.at("vs2_pump").as_int());
  r.valve_count = static_cast<int>(metrics.at("valve_count").as_int());
  r.mapper_effort = static_cast<long>(metrics.at("mapper_effort").as_int());
  r.refinement_iterations = static_cast<int>(metrics.at("refinement_iterations").as_int());
  r.chip_growths = static_cast<int>(metrics.at("chip_growths").as_int());
  r.runtime_seconds = metrics.at("runtime_seconds").as_number();

  const JsonValue& solver = doc.at("solver");
  r.milp_nodes = static_cast<long>(solver.at("nodes").as_int());
  r.milp_lp_iterations = solver.at("lp_iterations").as_int();
  r.milp_lp.iterations = solver.at("iterations").as_int();
  r.milp_lp.primal_pivots = solver.at("primal_pivots").as_int();
  r.milp_lp.dual_pivots = solver.at("dual_pivots").as_int();
  r.milp_lp.bound_flips = solver.at("bound_flips").as_int();
  r.milp_lp.refactorizations = solver.at("refactorizations").as_int();
  r.milp_lp.warm_solves = solver.at("warm_solves").as_int();
  r.milp_lp.cold_solves = solver.at("cold_solves").as_int();
  // Sparse-LU and pricing telemetry postdate the format; older documents
  // simply lack the keys, so read them leniently.
  if (solver.has("lu_refactorizations"))
    r.milp_lp.lu_refactorizations = solver.at("lu_refactorizations").as_int();
  if (solver.has("eta_pivots")) r.milp_lp.eta_pivots = solver.at("eta_pivots").as_int();
  if (solver.has("eta_nnz")) r.milp_lp.eta_nnz = solver.at("eta_nnz").as_int();
  if (solver.has("lu_fill_nnz")) r.milp_lp.lu_fill_nnz = solver.at("lu_fill_nnz").as_int();
  if (solver.has("lu_basis_nnz")) r.milp_lp.lu_basis_nnz = solver.at("lu_basis_nnz").as_int();
  if (solver.has("devex_resets")) r.milp_lp.devex_resets = solver.at("devex_resets").as_int();
  // Root-cut / branching / node-store telemetry postdates the fields above;
  // same lenient treatment.
  if (solver.has("gomory_cuts")) r.milp_cuts.gomory_generated = solver.at("gomory_cuts").as_int();
  if (solver.has("cover_cuts")) r.milp_cuts.cover_generated = solver.at("cover_cuts").as_int();
  if (solver.has("cuts_applied")) r.milp_cuts.applied = solver.at("cuts_applied").as_int();
  if (solver.has("cuts_retained")) r.milp_cuts.retained = solver.at("cuts_retained").as_int();
  if (solver.has("cut_rounds")) r.milp_cuts.rounds = solver.at("cut_rounds").as_int();
  if (solver.has("impact_branch_decisions"))
    r.milp_impact_branch_decisions = solver.at("impact_branch_decisions").as_int();
  if (solver.has("pseudocost_branch_decisions"))
    r.milp_pseudocost_branch_decisions = solver.at("pseudocost_branch_decisions").as_int();
  if (solver.has("arena_bytes")) r.milp_arena_bytes = solver.at("arena_bytes").as_int();
  if (solver.has("basis")) {
    check_input(ilp::basis_kind_from_string(solver.at("basis").as_string(), &r.milp_basis),
                "unknown solver basis kind");
  }
  if (solver.has("pricing")) {
    check_input(ilp::pricing_rule_from_string(solver.at("pricing").as_string(), &r.milp_pricing),
                "unknown solver pricing rule");
  }
  return stored;
}

void write_stored_result(const std::string& path, const StoredResult& stored) {
  std::ofstream file(path);
  check_input(file.good(), "cannot open '" + path + "' for writing");
  file << stored_result_to_json(stored);
  check_input(file.good(), "failed while writing '" + path + "'");
}

StoredResult read_stored_result(const std::string& path) {
  std::ifstream file(path);
  check_input(file.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return stored_result_from_json(buffer.str());
}

}  // namespace fsyn::report
