// Self-contained, round-trippable synthesis-result documents.
//
// `json_export.hpp` writes a viewer-oriented report (device names, actuation
// totals); this module writes and *reads back* everything a later process
// needs to continue working with a mapping — placement, routed paths, both
// per-class actuation ledgers and the solver metrics — plus the assay name
// and scheduling spec that produced it, so `flowsynth reliability --in
// mapping.json` can rebuild the mapping problem and run fault injection or
// lifetime estimation without re-solving.  `read_stored_result(
// write_stored_result(x))` is an exact round trip (doubles are printed with
// max_digits10).
#pragma once

#include <string>

#include "synth/synthesis.hpp"

namespace fsyn::report {

/// A synthesis result plus the provenance needed to reproduce its problem.
struct StoredResult {
  std::string assay;          ///< benchmark name or assay file path
  int policy_increments = 0;  ///< scheduling spec (ignored when asap)
  bool asap = false;
  std::uint64_t seed = 0;  ///< heuristic seed used (provenance only)
  synth::SynthesisResult result;
};

std::string stored_result_to_json(const StoredResult& stored);
/// Parses a document produced by `stored_result_to_json`; throws
/// fsyn::Error on malformed input or unknown format versions.
StoredResult stored_result_from_json(const std::string& text);

void write_stored_result(const std::string& path, const StoredResult& stored);
StoredResult read_stored_result(const std::string& path);

}  // namespace fsyn::report
