#include "report/table1.hpp"

#include <future>
#include <map>
#include <thread>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "svc/thread_pool.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fsyn::report {

double Table1Row::improvement1() const {
  return vs_tmax > 0 ? 1.0 - static_cast<double>(vs1_max) / vs_tmax : 0.0;
}
double Table1Row::improvement2() const {
  return vs_tmax > 0 ? 1.0 - static_cast<double>(vs2_max) / vs_tmax : 0.0;
}
double Table1Row::valve_improvement() const {
  return traditional_valves > 0
             ? 1.0 - static_cast<double>(our_valves) / traditional_valves
             : 0.0;
}

Table1Row run_case(const assay::SequencingGraph& graph, int policy_increments,
                   const std::string& policy_label, const synth::SynthesisOptions& options) {
  const sched::Policy policy = sched::make_policy(graph, policy_increments);
  const sched::Schedule schedule = sched::schedule_with_policy(graph, policy);
  const baseline::TraditionalDesign traditional =
      baseline::build_traditional(graph, policy, schedule);
  const synth::SynthesisResult ours = synth::synthesize(graph, schedule, options);

  std::map<int, int> ops_per_volume;
  for (const assay::Operation& op : graph.operations()) {
    if (op.kind == assay::OpKind::kMix) ++ops_per_volume[op.volume];
  }

  Table1Row row;
  row.case_name = graph.name();
  row.total_ops = graph.size();
  row.mixing_ops = graph.mixing_count();
  row.policy_label = policy_label;
  row.device_count = policy.device_count();
  row.binding = traditional.binding_string({4, 6, 8, 10});
  row.vs_tmax = traditional.max_valve_actuations;
  row.traditional_valves = traditional.total_valves;
  row.vs1_max = ours.vs1_max;
  row.vs1_pump = ours.vs1_pump;
  row.vs2_max = ours.vs2_max;
  row.vs2_pump = ours.vs2_pump;
  row.our_valves = ours.valve_count;
  row.runtime_seconds = ours.runtime_seconds;
  return row;
}

std::vector<Table1Row> run_full_table(const synth::SynthesisOptions& options, int jobs) {
  // Per-case p1 policy offsets (DESIGN.md §3.2): the paper's p1 for the
  // dilution assays already includes balancing increments.
  struct CaseSpec {
    const char* name;
    int p1_increments;
  };
  static constexpr CaseSpec kCases[] = {
      {"pcr", 0},
      {"mixing_tree", 0},
      {"interpolating_dilution", 1},
      {"exponential_dilution", 3},
  };
  struct RowSpec {
    std::string benchmark;
    int increments;
    std::string label;
  };
  std::vector<RowSpec> specs;
  for (const CaseSpec& spec : kCases) {
    for (int p = 0; p < 3; ++p) {
      specs.push_back({spec.name, spec.p1_increments + p, "p" + std::to_string(p + 1)});
    }
  }

  if (jobs == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    jobs = hardware > 0 ? static_cast<int>(hardware) : 1;
  }
  if (jobs <= 1) {
    std::vector<Table1Row> rows;
    for (const RowSpec& spec : specs) {
      rows.push_back(run_case(assay::make_benchmark(spec.benchmark), spec.increments,
                              spec.label, options));
    }
    return rows;
  }

  // Each row is an independent (schedule, baseline, synthesis) pipeline, so
  // running them on the pool changes wall-clock only, never the numbers.
  std::vector<std::future<Table1Row>> futures;
  svc::ThreadPool pool(jobs);
  for (const RowSpec& spec : specs) {
    auto task = std::make_shared<std::packaged_task<Table1Row()>>([spec, options] {
      return run_case(assay::make_benchmark(spec.benchmark), spec.increments, spec.label,
                      options);
    });
    futures.push_back(task->get_future());
    pool.submit([task] { (*task)(); });
  }
  std::vector<Table1Row> rows;
  rows.reserve(futures.size());
  for (auto& future : futures) rows.push_back(future.get());
  return rows;
}

std::string format_table(const std::vector<Table1Row>& rows) {
  TextTable table;
  table.set_header({"case", "#op", "Po.", "#d", "#m4-6-8-10", "vs_tmax", "#v",
                    "vs_1max", "imp_1vs", "vs_2max", "imp_2vs", "#v(ours)", "imp_v", "T(s)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kLeft, Align::kRight, Align::kLeft,
                       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  double sum1 = 0.0, sum2 = 0.0, sumv = 0.0;
  std::string previous_case;
  for (const Table1Row& row : rows) {
    if (!previous_case.empty() && row.case_name != previous_case) table.add_separator();
    previous_case = row.case_name;
    table.add_row({
        row.case_name,
        std::to_string(row.total_ops) + "(" + std::to_string(row.mixing_ops) + ")",
        row.policy_label,
        std::to_string(row.device_count),
        row.binding,
        std::to_string(row.vs_tmax),
        std::to_string(row.traditional_valves),
        std::to_string(row.vs1_max) + "(" + std::to_string(row.vs1_pump) + ")",
        format_percent(row.improvement1()),
        std::to_string(row.vs2_max) + "(" + std::to_string(row.vs2_pump) + ")",
        format_percent(row.improvement2()),
        std::to_string(row.our_valves),
        format_percent(row.valve_improvement()),
        format_fixed(row.runtime_seconds, 1),
    });
    sum1 += row.improvement1();
    sum2 += row.improvement2();
    sumv += row.valve_improvement();
  }
  table.add_separator();
  const double n = rows.empty() ? 1.0 : static_cast<double>(rows.size());
  table.add_row({"average", "", "", "", "", "", "", "", format_percent(sum1 / n), "",
                 format_percent(sum2 / n), "", format_percent(sumv / n), ""});
  return table.to_string();
}

}  // namespace fsyn::report
