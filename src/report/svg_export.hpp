// SVG rendering of a synthesized chip — placement footprints, pump rings,
// routed paths, chip ports and a per-valve actuation heat map.
//
// Lets a user open the synthesis result in any browser; the equivalent of
// the paper's Fig. 10, but vector and colour-coded.
#pragma once

#include <string>

#include "route/router.hpp"
#include "sim/actuation.hpp"
#include "synth/mapping_problem.hpp"

namespace fsyn::report {

struct SvgOptions {
  int cell_pixels = 36;
  bool draw_paths = true;
  bool draw_heatmap = true;
  bool draw_labels = true;
};

/// Renders the full synthesis result as a standalone SVG document.
std::string render_chip_svg(const synth::MappingProblem& problem,
                            const synth::Placement& placement,
                            const route::RoutingResult& routing,
                            const sim::ActuationLedger& ledger, const SvgOptions& options = {});

/// Renders and writes to `path`; throws fsyn::Error when the file cannot
/// be written.
void write_chip_svg(const std::string& path, const synth::MappingProblem& problem,
                    const synth::Placement& placement, const route::RoutingResult& routing,
                    const sim::ActuationLedger& ledger, const SvgOptions& options = {});

}  // namespace fsyn::report
