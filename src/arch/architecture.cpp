#include "arch/architecture.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fsyn::arch {

Architecture::Architecture(int width, int height) : width_(width), height_(height) {
  check_input(width >= 4 && height >= 4, "valve matrix must be at least 4x4");
  // Default ports as in Fig. 10: in / in / out spread over the right edge.
  ports_ = {
      ChipPort{"in1", Point{width_ - 1, height_ - 1}, true},
      ChipPort{"in2", Point{width_ - 1, height_ / 2}, true},
      ChipPort{"out", Point{width_ - 1, 0}, false},
  };
}

const ChipPort& Architecture::input_port(int index) const {
  int seen = 0;
  for (const ChipPort& port : ports_) {
    if (port.is_input && seen++ == index) return port;
  }
  throw Error("no input port with index " + std::to_string(index));
}

const ChipPort& Architecture::output_port() const {
  for (const ChipPort& port : ports_) {
    if (!port.is_input) return port;
  }
  throw Error("architecture has no output port");
}

void Architecture::set_ports(std::vector<ChipPort> ports) {
  check_input(!ports.empty(), "at least one port required");
  for (const ChipPort& port : ports) {
    check_input(bounds().contains(port.cell), "port cell outside the valve matrix");
    const bool on_edge = port.cell.x == 0 || port.cell.x == width_ - 1 ||
                         port.cell.y == 0 || port.cell.y == height_ - 1;
    check_input(on_edge, "port '" + port.name + "' must sit on an edge cell");
  }
  ports_ = std::move(ports);
}

std::vector<Point> Architecture::placements_for(const DeviceType& type) const {
  std::vector<Point> origins;
  for (int y = 0; y + type.height <= height_; ++y) {
    for (int x = 0; x + type.width <= width_; ++x) {
      origins.push_back(Point{x, y});
    }
  }
  return origins;
}

Architecture Architecture::sized_for(const assay::SequencingGraph& graph,
                                     const sched::Schedule& schedule, double slack) {
  check_input(slack > 0.0, "slack must be positive");
  // Demand at time t: every mix/detect operation whose device or in-situ
  // storage exists at t contributes its (footprint + wall margin) area.
  int max_demand = 0;
  const int horizon = schedule.makespan();
  for (int t = 0; t <= horizon; ++t) {
    int demand = 0;
    for (const assay::Operation& op : graph.operations()) {
      if (op.kind != assay::OpKind::kMix && op.kind != assay::OpKind::kDetect) continue;
      const int begin = std::min(schedule.earliest_product_arrival(op.id),
                                 schedule.start_of(op.id));
      const int end = schedule.end_of(op.id) + schedule.transport_delay;
      if (t < begin || t >= end) continue;
      const int volume = std::max(op.volume, 4);
      // Squarest shape for this volume, inflated by the 1-cell wall ring.
      const DeviceType type = device_types_for_volume(volume).front();
      demand += (type.width + 1) * (type.height + 1);
    }
    max_demand = std::max(max_demand, demand);
  }
  const int side = std::max(
      8, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(max_demand) * slack))));
  return Architecture(side, side);
}

}  // namespace fsyn::arch
