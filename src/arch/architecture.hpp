// The valve-centered architecture (paper Section 3.1).
//
// A rectangular matrix of virtual valves, after the programmable valve
// matrix of Fidalgo & Maerkl [9].  Every component — dynamic mixers, in situ
// storages and flow channels — is formed out of these valves; virtual valves
// that are never actuated are removed from the manufactured design at the
// end of synthesis (Algorithm 1, L20).
#pragma once

#include <string>
#include <vector>

#include "arch/device_types.hpp"
#include "assay/sequencing_graph.hpp"
#include "geom/grid.hpp"
#include "sched/schedule.hpp"

namespace fsyn::arch {

/// A chip port connected to an off-chip sample pump or waste sink
/// (paper Section 3.5).  Ports sit on edge cells of the valve matrix.
struct ChipPort {
  std::string name;
  Point cell;
  bool is_input = true;
};

class Architecture {
 public:
  /// Builds a width x height virtual valve matrix with the default port
  /// configuration of the paper's experiments: two input ports and one
  /// output port on the right edge (Fig. 10).
  Architecture(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  Rect bounds() const { return Rect{0, 0, width_, height_}; }
  int virtual_valve_count() const { return width_ * height_; }

  const std::vector<ChipPort>& ports() const { return ports_; }
  const ChipPort& input_port(int index) const;
  const ChipPort& output_port() const;

  /// Replaces the default ports; each must sit on an edge cell.
  void set_ports(std::vector<ChipPort> ports);

  /// True when the device footprint lies fully inside the matrix.
  bool fits(const DeviceInstance& device) const {
    return bounds().contains(device.footprint());
  }

  /// All origins at which `type` fits, row-major.
  std::vector<Point> placements_for(const DeviceType& type) const;

  /// Sizes a square matrix for the given scheduled assay: enough area for
  /// the maximum concurrent device demand (footprints plus wall spacing),
  /// with a floor of 8x8.  `slack` scales the demand (default 1.6 leaves
  /// room for routing and storage overlap).
  static Architecture sized_for(const assay::SequencingGraph& graph,
                                const sched::Schedule& schedule, double slack = 1.6);

 private:
  int width_;
  int height_;
  std::vector<ChipPort> ports_;
};

}  // namespace fsyn::arch
