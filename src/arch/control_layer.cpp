#include "arch/control_layer.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "util/error.hpp"

namespace fsyn::arch {

namespace {

int distance_to_boundary(const Point& p, int width, int height) {
  return std::min(std::min(p.x, width - 1 - p.x), std::min(p.y, height - 1 - p.y));
}

/// Cheapest rectilinear path from any cell of `sources` to a cell where
/// `is_target` holds; `usage` marks cells of other nets (penalized).
std::vector<Point> cheapest_path(const std::set<Point>& sources,
                                 const std::function<bool(const Point&)>& is_target,
                                 const Grid<int>& usage, double crossing_penalty) {
  const int width = usage.width();
  const int height = usage.height();
  const double inf = std::numeric_limits<double>::infinity();
  Grid<double> dist(width, height, inf);
  Grid<Point> prev(width, height, Point{-1, -1});
  using Entry = std::pair<double, Point>;
  auto cmp = [](const Entry& a, const Entry& b) {
    return a.first != b.first
               ? a.first > b.first
               : std::tie(a.second.x, a.second.y) > std::tie(b.second.x, b.second.y);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
  for (const Point& s : sources) {
    dist.at(s) = 0.0;
    queue.push({0.0, s});
  }
  while (!queue.empty()) {
    const auto [d, cell] = queue.top();
    queue.pop();
    if (d > dist.at(cell)) continue;
    if (is_target(cell)) {
      std::vector<Point> path;
      for (Point c = cell; c.x >= 0; c = prev.at(c)) path.push_back(c);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Point& next : orthogonal_neighbours(cell)) {
      if (!usage.in_bounds(next)) continue;
      const double step = 1.0 + (usage.at(next) > 0 ? crossing_penalty : 0.0);
      if (dist.at(cell) + step < dist.at(next)) {
        dist.at(next) = dist.at(cell) + step;
        prev.at(next) = cell;
        queue.push({dist.at(next), next});
      }
    }
  }
  return {};
}

}  // namespace

ControlLayerPlan plan_control_layer(const std::vector<std::vector<Point>>& pin_groups,
                                    int width, int height,
                                    const ControlLayerOptions& options) {
  check_input(width >= 2 && height >= 2, "control layer needs a real grid");
  for (const auto& group : pin_groups) {
    check_input(!group.empty(), "empty pin group");
    for (const Point& valve : group) {
      check_input(valve.x >= 0 && valve.x < width && valve.y >= 0 && valve.y < height,
                  "valve outside the matrix");
    }
  }

  // Big nets first: they have the least routing freedom.
  std::vector<std::size_t> order(pin_groups.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pin_groups[a].size() > pin_groups[b].size();
  });

  ControlLayerPlan plan;
  Grid<int> usage(width, height, 0);

  for (const std::size_t group_index : order) {
    const std::vector<Point>& valves = pin_groups[group_index];
    ControlNet net;
    net.pin = static_cast<int>(plan.nets.size());
    net.valves = valves;

    // Seed with the valve closest to the boundary (cheapest escape later).
    std::vector<Point> pending = valves;
    std::sort(pending.begin(), pending.end(), [&](const Point& a, const Point& b) {
      const int da = distance_to_boundary(a, width, height);
      const int db = distance_to_boundary(b, width, height);
      return da != db ? da < db : std::tie(a.x, a.y) < std::tie(b.x, b.y);
    });
    std::set<Point> tree{pending.front()};
    pending.erase(pending.begin());

    // Greedy Steiner growth: attach each remaining valve via the cheapest
    // path from the current tree.
    while (!pending.empty()) {
      std::set<Point> remaining(pending.begin(), pending.end());
      const std::vector<Point> path = cheapest_path(
          tree, [&](const Point& p) { return remaining.contains(p); }, usage,
          options.crossing_penalty);
      require(!path.empty(), "control net could not reach one of its valves");
      for (const Point& cell : path) tree.insert(cell);
      pending.erase(std::find(pending.begin(), pending.end(), path.back()));
    }

    // Escape to the chip boundary.
    const auto on_boundary = [&](const Point& p) {
      return p.x == 0 || p.x == width - 1 || p.y == 0 || p.y == height - 1;
    };
    const bool already_escaped = std::any_of(tree.begin(), tree.end(), on_boundary);
    if (already_escaped) {
      for (const Point& cell : tree) {
        if (on_boundary(cell)) {
          net.escape = cell;
          break;
        }
      }
    } else {
      const std::vector<Point> path =
          cheapest_path(tree, on_boundary, usage, options.crossing_penalty);
      require(!path.empty(), "control net could not escape to the boundary");
      for (const Point& cell : path) tree.insert(cell);
      net.escape = path.back();
    }

    net.channel.assign(tree.begin(), tree.end());
    for (const Point& cell : net.channel) usage.at(cell) += 1;
    plan.total_length += net.length();
    plan.nets.push_back(std::move(net));
  }

  for (const int count : usage) {
    if (count > 1) plan.crossings += count - 1;
  }
  return plan;
}

void validate_control_layer(const ControlLayerPlan& plan, int width, int height) {
  for (const ControlNet& net : plan.nets) {
    require(!net.channel.empty(), "empty control net");
    const std::set<Point> channel(net.channel.begin(), net.channel.end());
    require(channel.size() == net.channel.size(), "duplicate cells in a control net");
    for (const Point& cell : channel) {
      require(cell.x >= 0 && cell.x < width && cell.y >= 0 && cell.y < height,
              "control channel leaves the chip");
    }
    for (const Point& valve : net.valves) {
      require(channel.contains(valve), "control net misses one of its valves");
    }
    require(channel.contains(net.escape), "control net misses its escape cell");
    require(net.escape.x == 0 || net.escape.x == width - 1 || net.escape.y == 0 ||
                net.escape.y == height - 1,
            "escape cell is not on the boundary");

    // Connectivity: BFS within the channel reaches every cell.
    std::set<Point> visited;
    std::queue<Point> queue;
    queue.push(net.channel.front());
    visited.insert(net.channel.front());
    while (!queue.empty()) {
      const Point cell = queue.front();
      queue.pop();
      for (const Point& next : orthogonal_neighbours(cell)) {
        if (channel.contains(next) && visited.insert(next).second) queue.push(next);
      }
    }
    require(visited.size() == channel.size(), "control net is disconnected");
  }
}

}  // namespace fsyn::arch
