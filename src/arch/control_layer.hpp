// Control-layer synthesis (extension).
//
// Every actuated valve needs a pressure line in the control layer from an
// off-chip pin at the chip boundary to the valve's membrane.  Valves with
// identical actuation schedules share one pin (sim/control_program.hpp);
// this module plans the control-layer geometry for those pin groups:
//
//  * each pin group becomes a rectilinear net: a greedy Steiner tree that
//    connects all its valves and escapes to the nearest chip edge,
//  * nets are planned in decreasing group size; cells already used by
//    other nets cost extra, so crossings (which a single-layer fabrication
//    cannot build) are minimized and counted honestly.
//
// The result quantifies the *control* cost of a synthesized chip: pins,
// total channel length, and residual crossings that would need a second
// control layer.  This mirrors the follow-up work on control-layer design
// for flow-based biochips and rounds out the chip model of this repo.
#pragma once

#include <string>
#include <vector>

#include "geom/grid.hpp"
#include "geom/point.hpp"

namespace fsyn::arch {

/// One pressure net: a pin at the chip boundary driving several valves.
struct ControlNet {
  int pin = -1;                  ///< pin index (escape order)
  Point escape;                  ///< boundary cell where the line leaves the chip
  std::vector<Point> valves;     ///< valves driven by this pin
  std::vector<Point> channel;    ///< all control-layer cells of the net (tree)

  int length() const { return static_cast<int>(channel.size()); }
};

struct ControlLayerPlan {
  std::vector<ControlNet> nets;
  int total_length = 0;
  /// Control-layer cells used by more than one net: each needs a crossover
  /// (a second control layer or a tunnel) to fabricate.
  int crossings = 0;
};

struct ControlLayerOptions {
  /// Extra cost for entering a cell already occupied by another net.
  double crossing_penalty = 12.0;
};

/// Plans control-layer channels for pin groups of valves.  Each inner
/// vector is one pin's valve set (e.g. from grouping a ControlProgram's
/// identical schedules); all valves must lie inside width x height.
ControlLayerPlan plan_control_layer(const std::vector<std::vector<Point>>& pin_groups,
                                    int width, int height,
                                    const ControlLayerOptions& options = {});

/// Validates a plan: every net's channel is a connected tree containing
/// all its valves and its boundary escape.  Throws fsyn::LogicError.
void validate_control_layer(const ControlLayerPlan& plan, int width, int height);

}  // namespace fsyn::arch
