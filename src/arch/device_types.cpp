#include "arch/device_types.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "util/error.hpp"

namespace fsyn::arch {

std::vector<DeviceType> device_types_for_volume(int volume) {
  check_input(volume >= 4 && volume % 2 == 0,
              "device volume must be an even number >= 4, got " + std::to_string(volume));
  // 2(w+h)-4 == volume  =>  w+h == volume/2 + 2.
  const int half_perimeter = volume / 2 + 2;
  std::vector<DeviceType> types;
  for (int width = 2; width <= half_perimeter - 2; ++width) {
    const int height = half_perimeter - width;
    types.push_back(DeviceType{width, height});
  }
  // Squarer shapes first (fewer placement conflicts), then wide before tall.
  std::sort(types.begin(), types.end(), [](const DeviceType& a, const DeviceType& b) {
    const int da = std::abs(a.width - a.height);
    const int db = std::abs(b.width - b.height);
    if (da != db) return da < db;
    return a.width > b.width;
  });
  return types;
}

std::vector<DeviceType> device_types_for_volumes(const std::vector<int>& volumes) {
  std::set<int> seen;
  std::vector<DeviceType> all;
  for (const int volume : volumes) {
    if (!seen.insert(volume).second) continue;
    const auto types = device_types_for_volume(volume);
    all.insert(all.end(), types.begin(), types.end());
  }
  return all;
}

}  // namespace fsyn::arch
