// Dynamic device shapes (paper Section 3.1 / Fig. 5, Fig. 6).
//
// A dynamic mixer of width w and height h uses the perimeter ring of its
// w x h footprint as the circulation channel; all 2(w+h)-4 ring valves act
// as pump valves, and the ring length is the device's volume in cells.
// For volume 8 this yields the paper's three types: 2x4, 4x2 and 3x3.
#pragma once

#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace fsyn::arch {

struct DeviceType {
  int width = 0;
  int height = 0;

  friend auto operator<=>(const DeviceType&, const DeviceType&) = default;

  /// Ring length = payload volume in cells.
  int volume() const { return 2 * (width + height) - 4; }
  /// Number of valves acting as pump valves (= the whole ring).
  int pump_valve_count() const { return volume(); }
  /// Smaller of the two dimensions; the paper's routing-convenience
  /// distance d is the minimum over all devices of this value.
  int min_dimension() const { return width < height ? width : height; }
};

/// All w x h shapes with ring length == `volume` (w,h >= 2), ordered with
/// the squarer shapes first.  E.g. volume 8 -> {3x3, 2x4, 4x2}.
/// Throws fsyn::Error when `volume` is odd or < 4.
std::vector<DeviceType> device_types_for_volume(int volume);

/// Union of device types over several volumes, deduplicated.
std::vector<DeviceType> device_types_for_volumes(const std::vector<int>& volumes);

/// A placed dynamic device: a shape at a grid origin (left-bottom corner,
/// as the paper's selection variable s_{x,y,k,i}).
struct DeviceInstance {
  DeviceType type;
  Point origin;

  friend auto operator<=>(const DeviceInstance&, const DeviceInstance&) = default;

  /// Cells of the device body.
  Rect footprint() const { return Rect{origin.x, origin.y, type.width, type.height}; }

  /// The circulation ring = temporary pump valves (paper Section 3.2).
  std::vector<Point> pump_cells() const { return footprint().ring_cells(); }

  /// Interior cells enclosed by the ring (unused while mixing; they stay
  /// closed).  Empty for 2-wide shapes.
  std::vector<Point> interior_cells() const {
    if (type.width <= 2 || type.height <= 2) return {};
    return Rect{origin.x + 1, origin.y + 1, type.width - 2, type.height - 2}.cells();
  }

  /// Candidate port locations: any ring cell may serve as a port thanks to
  /// the valve-role-changing concept (paper Section 1, last bullet).
  std::vector<Point> port_candidates() const { return pump_cells(); }
};

}  // namespace fsyn::arch
