#include "ilp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fsyn::ilp {

namespace {

/// One directed inequality sum(a_j x_j) <= b (equalities contribute two).
struct Row {
  std::vector<LinearExpr::Term> terms;
  double rhs;
};

/// The bound that minimizes a term's contribution to its row's activity.
double minimizing_bound(const LinearExpr::Term& term, const std::vector<double>& lower,
                        const std::vector<double>& upper) {
  return term.coeff > 0 ? lower[static_cast<std::size_t>(term.var.index)]
                        : upper[static_cast<std::size_t>(term.var.index)];
}

}  // namespace

PresolveResult presolve(const Model& model, const PresolveOptions& options) {
  PresolveResult result;
  result.lower.reserve(static_cast<std::size_t>(model.variable_count()));
  result.upper.reserve(static_cast<std::size_t>(model.variable_count()));
  for (const Variable& v : model.variables()) {
    result.lower.push_back(v.lower);
    result.upper.push_back(v.upper);
  }

  // Normalize: every constraint becomes one or two <= rows.
  std::vector<Row> rows;
  for (const Constraint& c : model.constraints()) {
    if (c.relation == Relation::kLessEqual || c.relation == Relation::kEqual) {
      rows.push_back(Row{c.terms, c.rhs});
    }
    if (c.relation == Relation::kGreaterEqual || c.relation == Relation::kEqual) {
      Row flipped{c.terms, -c.rhs};
      for (auto& term : flipped.terms) term.coeff = -term.coeff;
      rows.push_back(std::move(flipped));
    }
  }

  const double tol = options.tolerance;
  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    for (const Row& row : rows) {
      // Row min activity in one pass: finite part plus a count of infinite
      // contributions.  "Activity without term k" is then O(1) per term: it
      // is finite only when every *other* term is finite.  Tightenings
      // inside this row never invalidate the sums, because a term's min
      // activity uses the opposite bound from the one its tightening moves.
      double finite_sum = 0.0;
      std::size_t infinite_count = 0;
      std::size_t infinite_term = 0;
      for (std::size_t k = 0; k < row.terms.size(); ++k) {
        const double contribution =
            row.terms[k].coeff * minimizing_bound(row.terms[k], result.lower, result.upper);
        if (std::isfinite(contribution)) {
          finite_sum += contribution;
        } else {
          ++infinite_count;
          infinite_term = k;
        }
      }
      if (infinite_count > 1) continue;  // no implied bound available anywhere
      for (std::size_t k = 0; k < row.terms.size(); ++k) {
        const auto& term = row.terms[k];
        const std::size_t j = static_cast<std::size_t>(term.var.index);
        if (infinite_count == 1 && k != infinite_term) continue;
        const double others =
            infinite_count == 1
                ? finite_sum
                : finite_sum - term.coeff * minimizing_bound(term, result.lower, result.upper);
        if (!std::isfinite(others)) continue;  // no implied bound available
        const double residual = row.rhs - others;
        // a_j * x_j <= residual.
        if (term.coeff > 0) {
          double implied = residual / term.coeff;
          if (model.variable(term.var).type != VarType::kContinuous) {
            implied = std::floor(implied + tol);
          }
          if (implied < result.upper[j] - tol) {
            result.upper[j] = implied;
            ++result.tightenings;
            changed = true;
          }
        } else {
          double implied = residual / term.coeff;  // negative coeff: lower bound
          if (model.variable(term.var).type != VarType::kContinuous) {
            implied = std::ceil(implied - tol);
          }
          if (implied > result.lower[j] + tol) {
            result.lower[j] = implied;
            ++result.tightenings;
            changed = true;
          }
        }
        if (result.lower[j] > result.upper[j] + tol) {
          result.status = PresolveStatus::kInfeasible;
          return result;
        }
      }
    }
    if (!changed) break;
  }

  for (int j = 0; j < model.variable_count(); ++j) {
    if (std::abs(result.lower[static_cast<std::size_t>(j)] -
                 result.upper[static_cast<std::size_t>(j)]) <= tol) {
      ++result.fixed_variables;
    }
  }
  return result;
}

}  // namespace fsyn::ilp
