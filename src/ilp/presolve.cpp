#include "ilp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fsyn::ilp {

namespace {

/// One directed inequality sum(a_j x_j) <= b (equalities contribute two).
struct Row {
  std::vector<LinearExpr::Term> terms;
  double rhs;
};

/// Minimum activity of a row given bounds, excluding term `skip`.
double min_activity_without(const Row& row, std::size_t skip,
                            const std::vector<double>& lower,
                            const std::vector<double>& upper) {
  double activity = 0.0;
  for (std::size_t k = 0; k < row.terms.size(); ++k) {
    if (k == skip) continue;
    const auto& term = row.terms[k];
    const double bound = term.coeff > 0 ? lower[static_cast<std::size_t>(term.var.index)]
                                        : upper[static_cast<std::size_t>(term.var.index)];
    activity += term.coeff * bound;
  }
  return activity;
}

}  // namespace

PresolveResult presolve(const Model& model, const PresolveOptions& options) {
  PresolveResult result;
  result.lower.reserve(static_cast<std::size_t>(model.variable_count()));
  result.upper.reserve(static_cast<std::size_t>(model.variable_count()));
  for (const Variable& v : model.variables()) {
    result.lower.push_back(v.lower);
    result.upper.push_back(v.upper);
  }

  // Normalize: every constraint becomes one or two <= rows.
  std::vector<Row> rows;
  for (const Constraint& c : model.constraints()) {
    if (c.relation == Relation::kLessEqual || c.relation == Relation::kEqual) {
      rows.push_back(Row{c.terms, c.rhs});
    }
    if (c.relation == Relation::kGreaterEqual || c.relation == Relation::kEqual) {
      Row flipped{c.terms, -c.rhs};
      for (auto& term : flipped.terms) term.coeff = -term.coeff;
      rows.push_back(std::move(flipped));
    }
  }

  const double tol = options.tolerance;
  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    for (const Row& row : rows) {
      for (std::size_t k = 0; k < row.terms.size(); ++k) {
        const auto& term = row.terms[k];
        const std::size_t j = static_cast<std::size_t>(term.var.index);
        const double others = min_activity_without(row, k, result.lower, result.upper);
        if (!std::isfinite(others)) continue;  // no implied bound available
        const double residual = row.rhs - others;
        // a_j * x_j <= residual.
        if (term.coeff > 0) {
          double implied = residual / term.coeff;
          if (model.variable(term.var).type != VarType::kContinuous) {
            implied = std::floor(implied + tol);
          }
          if (implied < result.upper[j] - tol) {
            result.upper[j] = implied;
            ++result.tightenings;
            changed = true;
          }
        } else {
          double implied = residual / term.coeff;  // negative coeff: lower bound
          if (model.variable(term.var).type != VarType::kContinuous) {
            implied = std::ceil(implied - tol);
          }
          if (implied > result.lower[j] + tol) {
            result.lower[j] = implied;
            ++result.tightenings;
            changed = true;
          }
        }
        if (result.lower[j] > result.upper[j] + tol) {
          result.status = PresolveStatus::kInfeasible;
          return result;
        }
      }
    }
    if (!changed) break;
  }

  for (int j = 0; j < model.variable_count(); ++j) {
    if (std::abs(result.lower[static_cast<std::size_t>(j)] -
                 result.upper[static_cast<std::size_t>(j)]) <= tol) {
      ++result.fixed_variables;
    }
  }
  return result;
}

}  // namespace fsyn::ilp
