// Linear / mixed-integer model container.
//
// This is the interface the dynamic-device mapping engine programs against
// (the paper uses Gurobi; this reproduction ships its own solver).  A model
// is a set of bounded variables, linear constraints and a linear objective.
// `fsyn::ilp::solve_milp` (branch_and_bound.hpp) solves it exactly;
// `fsyn::ilp::solve_lp` (simplex.hpp) solves its continuous relaxation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace fsyn::ilp {

/// Identifies a variable inside one Model.
struct VarId {
  int index = -1;
  friend auto operator<=>(const VarId&, const VarId&) = default;
};

enum class VarType { kContinuous, kInteger, kBinary };

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class Sense { kMinimize, kMaximize };

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A linear expression sum(coeff_i * var_i) + constant.  Terms may repeat a
/// variable; Model::add_constraint folds duplicates.
class LinearExpr {
 public:
  LinearExpr() = default;
  /*implicit*/ LinearExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinearExpr(VarId var) { terms_.push_back({var, 1.0}); }

  LinearExpr& add_term(VarId var, double coeff) {
    terms_.push_back({var, coeff});
    return *this;
  }
  LinearExpr& add_constant(double value) {
    constant_ += value;
    return *this;
  }

  LinearExpr& operator+=(const LinearExpr& other) {
    terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
    constant_ += other.constant_;
    return *this;
  }

  struct Term {
    VarId var;
    double coeff;
  };

  const std::vector<Term>& terms() const { return terms_; }
  double constant() const { return constant_; }

 private:
  std::vector<Term> terms_;
  double constant_ = 0.0;
};

inline LinearExpr operator*(double coeff, VarId var) {
  LinearExpr e;
  e.add_term(var, coeff);
  return e;
}

inline LinearExpr operator+(LinearExpr lhs, const LinearExpr& rhs) {
  lhs += rhs;
  return lhs;
}

/// One stored constraint row with duplicate terms folded.
struct Constraint {
  std::vector<LinearExpr::Term> terms;  ///< one entry per distinct variable
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  VarType type = VarType::kContinuous;
  std::string name;
};

class Model {
 public:
  VarId add_variable(double lower, double upper, VarType type, std::string name = "");

  /// Convenience wrappers.
  VarId add_binary(std::string name = "") { return add_variable(0.0, 1.0, VarType::kBinary, std::move(name)); }
  VarId add_integer(double lower, double upper, std::string name = "") {
    return add_variable(lower, upper, VarType::kInteger, std::move(name));
  }
  VarId add_continuous(double lower, double upper, std::string name = "") {
    return add_variable(lower, upper, VarType::kContinuous, std::move(name));
  }

  /// Adds `expr (relation) rhs`; the expression's constant is moved to the
  /// right-hand side.  Duplicate variable terms are folded.
  void add_constraint(const LinearExpr& expr, Relation relation, double rhs,
                      std::string name = "");

  void set_objective(const LinearExpr& expr, Sense sense);

  int variable_count() const { return static_cast<int>(variables_.size()); }
  int constraint_count() const { return static_cast<int>(constraints_.size()); }
  /// Total structural nonzeros across all constraints (folded terms).
  std::int64_t nonzero_count() const;

  /// Compressed sparse views of the structural constraint matrix: the same
  /// nonzeros column-major (CSC, what FTRAN and column dots walk) and
  /// row-major (CSR, what pivot-row scatters walk).  Built once per solver;
  /// row-major entries within a row are ordered by column index.
  struct CompressedMatrix {
    std::vector<int> col_start;  ///< size variable_count()+1
    std::vector<int> col_row;
    std::vector<double> col_val;
    std::vector<int> row_start;  ///< size constraint_count()+1
    std::vector<int> row_col;
    std::vector<double> row_val;
  };
  CompressedMatrix compressed_matrix() const;

  const Variable& variable(VarId id) const {
    require(id.index >= 0 && id.index < variable_count(), "bad VarId");
    return variables_[static_cast<std::size_t>(id.index)];
  }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Dense objective coefficient vector (folded), in minimize sense.
  /// For a maximize model the coefficients are negated, so every solver can
  /// uniformly minimize; `objective_sign()` restores the reported value.
  const std::vector<double>& minimize_objective() const { return objective_; }
  double objective_sign() const { return sense_ == Sense::kMinimize ? 1.0 : -1.0; }
  double objective_constant() const { return objective_constant_; }

  bool has_integer_variables() const;

  /// Evaluates the (user-sense) objective at a point.
  double objective_value(const std::vector<double>& point) const;

  /// True when `point` satisfies all bounds, constraints and integrality
  /// within `tolerance`.  Used by tests and by the heuristic mapper to share
  /// the exact feasibility predicate with the ILP.
  bool is_feasible(const std::vector<double>& point, double tolerance = 1e-6) const;

  /// Dumps the model in CPLEX LP format (readable by any MILP solver),
  /// for debugging and for cross-checking against external tools.
  std::string to_lp_string() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  std::vector<double> objective_;  ///< minimize-sense dense coefficients
  double objective_constant_ = 0.0;
  Sense sense_ = Sense::kMinimize;
};

}  // namespace fsyn::ilp
