#include "ilp/cuts.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace fsyn::ilp {

namespace {

/// Basic-value fractionality outside [kFracMin, 1-kFracMin] is too close to
/// integral to yield a numerically trustworthy Gomory cut.
constexpr double kFracMin = 0.005;
/// Relative slack added to every GMI right-hand side so floating-point noise
/// in the tableau extraction can never make an integer-feasible point
/// violate the cut (validity is exact in rational arithmetic).
constexpr double kRhsSafety = 1e-6;
/// Coefficients below this fraction of the cut's largest one are dropped
/// (with a conservative rhs correction) to keep rows short and stable.
constexpr double kTinyCoef = 1e-9;
/// Cuts whose kept coefficients span a wider dynamic range than this are
/// discarded as numerically fragile.
constexpr double kMaxDynamicRange = 1e8;
/// Bound-fix / integrality classification tolerance.
constexpr double kIntegralTol = 1e-9;

double fractional_part(double v) { return v - std::floor(v); }

bool near_integral(double v) { return std::abs(v - std::round(v)) <= kIntegralTol; }

double cut_activity(const Cut& cut, const std::vector<double>& point) {
  double acc = 0.0;
  for (std::size_t k = 0; k < cut.cols.size(); ++k) {
    acc += cut.vals[k] * point[static_cast<std::size_t>(cut.cols[k])];
  }
  return acc;
}

double cut_norm(const Cut& cut) {
  double acc = 0.0;
  for (const double v : cut.vals) acc += v * v;
  return std::sqrt(acc);
}

/// Compacts a dense >=-form inequality into a <=-form Cut, dropping tiny
/// coefficients with a conservative rhs correction against the root box.
/// Returns false when the row is numerically useless or fragile.
bool finalize_gomory_cut(const std::vector<double>& coef_ge, double rhs_ge,
                         const std::vector<double>& lower, const std::vector<double>& upper,
                         Cut* out) {
  const int n = static_cast<int>(coef_ge.size());
  double max_abs = 0.0;
  for (const double c : coef_ge) max_abs = std::max(max_abs, std::abs(c));
  if (max_abs < 1e-7) return false;  // empty or all-noise row

  out->kind = CutKind::kGomory;
  out->cols.clear();
  out->vals.clear();
  double rhs_le = -rhs_ge;
  double min_abs = max_abs;
  for (int j = 0; j < n; ++j) {
    const double d = -coef_ge[static_cast<std::size_t>(j)];  // <=-form coefficient
    if (d == 0.0) continue;
    if (std::abs(d) < kTinyCoef * max_abs) {
      // Dropping d*x_j stays valid if the rhs absorbs the term's worst case
      // over the root box; an unbounded direction means the term must stay.
      const double bound = d > 0.0 ? lower[static_cast<std::size_t>(j)]
                                   : upper[static_cast<std::size_t>(j)];
      if (!std::isfinite(bound)) return false;
      rhs_le -= d * bound;
      continue;
    }
    min_abs = std::min(min_abs, std::abs(d));
    out->cols.push_back(j);
    out->vals.push_back(d);
  }
  if (out->cols.empty()) return false;
  if (max_abs / min_abs > kMaxDynamicRange) return false;
  if (!std::isfinite(rhs_le) || std::abs(rhs_le) > 1e10) return false;
  out->rhs = rhs_le + kRhsSafety * (1.0 + std::abs(rhs_le));
  out->age = 0;
  return true;
}

}  // namespace

double cut_violation(const Cut& cut, const std::vector<double>& point) {
  const double norm = std::max(1.0, cut_norm(cut));
  return (cut_activity(cut, point) - cut.rhs) / norm;
}

double cut_parallelism(const Cut& a, const Cut& b) {
  // Sparse dot over column-sorted supports.
  double dot = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.cols.size() && ib < b.cols.size()) {
    if (a.cols[ia] < b.cols[ib]) {
      ++ia;
    } else if (a.cols[ia] > b.cols[ib]) {
      ++ib;
    } else {
      dot += a.vals[ia] * b.vals[ib];
      ++ia;
      ++ib;
    }
  }
  const double na = cut_norm(a);
  const double nb = cut_norm(b);
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return std::abs(dot) / (na * nb);
}

// ------------------------------------------------------------------- pool

bool CutPool::add(Cut cut, const std::vector<double>& point) {
  const double violation = cut_violation(cut, point);
  if (!(violation >= options_.min_violation)) return false;
  for (const Cut& held : cuts_) {
    if (cut_parallelism(cut, held) > options_.max_parallelism) return false;
  }
  if (static_cast<int>(cuts_.size()) >= options_.max_pool_size) {
    // Full: replace the weakest cut if the newcomer separates deeper.
    std::size_t weakest = 0;
    double weakest_violation = cut_violation(cuts_[0], point);
    for (std::size_t k = 1; k < cuts_.size(); ++k) {
      const double v = cut_violation(cuts_[k], point);
      if (v < weakest_violation) {
        weakest_violation = v;
        weakest = k;
      }
    }
    if (violation <= weakest_violation) return false;
    cuts_[weakest] = std::move(cut);
    return true;
  }
  cuts_.push_back(std::move(cut));
  return true;
}

std::vector<Cut> CutPool::take_round(const std::vector<double>& point) {
  std::vector<std::pair<double, std::size_t>> ranked;  // violation desc
  ranked.reserve(cuts_.size());
  for (std::size_t k = 0; k < cuts_.size(); ++k) {
    const double v = cut_violation(cuts_[k], point);
    if (v >= options_.min_violation) ranked.emplace_back(-v, k);
  }
  std::sort(ranked.begin(), ranked.end());

  std::vector<Cut> selected;
  std::vector<std::size_t> taken;
  for (const auto& [neg_violation, k] : ranked) {
    if (static_cast<int>(selected.size()) >= options_.max_cuts_per_round) break;
    bool parallel = false;
    for (const Cut& s : selected) {
      if (cut_parallelism(cuts_[k], s) > options_.max_parallelism) {
        parallel = true;
        break;
      }
    }
    if (parallel) continue;
    selected.push_back(cuts_[k]);
    taken.push_back(k);
  }
  // Remove the selected cuts from the pool (descending index erase).
  std::sort(taken.begin(), taken.end());
  for (std::size_t q = taken.size(); q-- > 0;) {
    cuts_.erase(cuts_.begin() + static_cast<std::ptrdiff_t>(taken[q]));
  }
  return selected;
}

void CutPool::age_round() {
  std::size_t kept = 0;
  for (std::size_t k = 0; k < cuts_.size(); ++k) {
    if (++cuts_[k].age >= options_.max_age) {
      ++aged_out_;
      continue;
    }
    if (kept != k) cuts_[kept] = std::move(cuts_[k]);
    ++kept;
  }
  cuts_.resize(kept);
}

// ------------------------------------------------------------- generators

std::vector<Cut> generate_gomory_cuts(const Model& model, LpSolver& solver,
                                      const std::vector<Cut>& applied_cuts,
                                      const std::vector<double>& lower,
                                      const std::vector<double>& upper,
                                      const CutOptions& options) {
  std::vector<Cut> cuts;
  if (!solver.has_basis()) return cuts;
  const int n = solver.structural_count();
  const int model_rows = model.constraint_count();

  // Candidate rows: structural integer basic variables at fractional values,
  // most fractional first, capped so huge LPs don't pay one BTRAN per row.
  std::vector<std::pair<double, int>> candidates;  // |f0 - 0.5| asc, row
  for (int r = 0; r < solver.row_count(); ++r) {
    const int bj = solver.basic_column(r);
    if (bj >= n) continue;
    if (model.variable(VarId{bj}).type == VarType::kContinuous) continue;
    const double f0 = fractional_part(solver.basic_value(r));
    if (f0 < kFracMin || f0 > 1.0 - kFracMin) continue;
    candidates.emplace_back(std::abs(f0 - 0.5), r);
  }
  std::sort(candidates.begin(), candidates.end());
  const std::size_t row_cap =
      static_cast<std::size_t>(std::max(64, 4 * options.max_cuts_per_round));
  if (candidates.size() > row_cap) candidates.resize(row_cap);

  std::vector<double> coef(static_cast<std::size_t>(n), 0.0);
  LpTableauRow row;
  for (const auto& [dist, r] : candidates) {
    const double beta = solver.basic_value(r);
    const double f0 = fractional_part(beta);
    solver.tableau_row(r, &row);

    // GMI over the shifted nonbasics t_j (displacement from the rest bound):
    //   sum(gamma_j t_j) >= f0.
    // Unshift each t_j back to x_j and substitute slack columns away so the
    // final inequality touches structural variables only.
    std::fill(coef.begin(), coef.end(), 0.0);
    double rhs_ge = f0;
    bool ok = true;
    for (std::size_t k = 0; k < row.cols.size() && ok; ++k) {
      const int j = row.cols[k];
      const double lo = solver.column_lower(j);
      const double hi = solver.column_upper(j);
      if (hi - lo <= kIntegralTol) continue;  // fixed at its rest bound: t = 0
      const bool at_up = solver.column_at_upper(j);
      const double abar = at_up ? -row.alphas[k] : row.alphas[k];
      // Integer-variable strengthening applies only when the shift keeps
      // integrality: a structural integer column resting on an integral
      // bound.  Everything else (continuous columns, slacks) takes the
      // continuous GMI coefficient, which is always valid.
      const bool integer_shift = j < n &&
                                 model.variable(VarId{j}).type != VarType::kContinuous &&
                                 near_integral(at_up ? hi : lo);
      double gamma;
      if (integer_shift) {
        const double fj = fractional_part(abar);
        gamma = fj <= f0 ? fj : f0 * (1.0 - fj) / (1.0 - f0);
      } else {
        gamma = abar >= 0.0 ? abar : f0 * (-abar) / (1.0 - f0);
      }
      if (gamma <= 1e-12) continue;
      const double rest = at_up ? hi : lo;
      if (!std::isfinite(rest)) {  // a rest bound is finite by construction
        ok = false;
        break;
      }
      // gamma * t_j with t_j = x_j - lo (rest low) or hi - x_j (rest high):
      // the x part keeps sign c, the constant moves to the right-hand side.
      const double c = at_up ? -gamma : gamma;
      rhs_ge += c * rest;
      if (j < n) {
        coef[static_cast<std::size_t>(j)] += c;
        continue;
      }
      // Slack substitution: s_i = rhs_i - (row_i . x).
      const int i = solver.logical_row(j);
      if (i < model_rows) {
        const Constraint& con = model.constraints()[static_cast<std::size_t>(i)];
        for (const LinearExpr::Term& t : con.terms) {
          coef[static_cast<std::size_t>(t.var.index)] -= c * t.coeff;
        }
        rhs_ge -= c * con.rhs;
      } else {
        const Cut& ac = applied_cuts[static_cast<std::size_t>(i - model_rows)];
        for (std::size_t q = 0; q < ac.cols.size(); ++q) {
          coef[static_cast<std::size_t>(ac.cols[q])] -= c * ac.vals[q];
        }
        rhs_ge -= c * ac.rhs;
      }
    }
    if (!ok) continue;

    Cut cut;
    if (finalize_gomory_cut(coef, rhs_ge, lower, upper, &cut)) {
      cuts.push_back(std::move(cut));
    }
  }
  return cuts;
}

std::vector<Cut> generate_cover_cuts(const Model& model, const std::vector<double>& lower,
                                     const std::vector<double>& upper,
                                     const std::vector<double>& point,
                                     const CutOptions& options) {
  std::vector<Cut> cuts;

  // One separation attempt for a single <=-sense knapsack direction
  // sum(a_j x_j) <= b over free binary columns.
  auto separate = [&](const std::vector<std::pair<int, double>>& terms, double b) {
    // Complement negative coefficients: x~ = 1 - x turns every weight
    // positive, so the classic cover argument applies.
    struct Item {
      int col;
      double weight;      // |a_j|
      double value;       // complemented LP value in [0, 1]
      bool complemented;  // a_j < 0
    };
    std::vector<Item> items;
    items.reserve(terms.size());
    double btilde = b;
    for (const auto& [j, a] : terms) {
      if (a == 0.0) continue;
      const double x = point[static_cast<std::size_t>(j)];
      if (a > 0.0) {
        items.push_back({j, a, std::clamp(x, 0.0, 1.0), false});
      } else {
        items.push_back({j, -a, std::clamp(1.0 - x, 0.0, 1.0), true});
        btilde -= a;  // shift: a*x = -|a| + |a|*(1-x)
      }
    }
    if (items.empty() || btilde < 0.0) return;

    // Greedy cover: take items the LP pushes hardest toward 1 until the
    // complemented weights overflow the capacity.
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.value > b.value; });
    double weight_sum = 0.0;
    std::size_t count = 0;
    while (count < items.size() && weight_sum <= btilde) {
      weight_sum += items[count].weight;
      ++count;
    }
    if (weight_sum <= btilde) return;  // the whole row fits: no cover exists
    std::vector<Item> cover(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(count));

    // Minimalize from the least fractional end: every removal that keeps the
    // weights above capacity strengthens the cut.
    for (std::size_t k = cover.size(); k-- > 0;) {
      if (weight_sum - cover[k].weight > btilde) {
        weight_sum -= cover[k].weight;
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }

    // Cover inequality sum(x~_j) <= |C| - 1, un-complemented back to x.
    double lp_lhs = 0.0;
    Cut cut;
    cut.kind = CutKind::kCover;
    double rhs = static_cast<double>(cover.size()) - 1.0;
    for (const Item& item : cover) {
      lp_lhs += item.value;
      if (item.complemented) {
        cut.cols.push_back(item.col);
        cut.vals.push_back(-1.0);
        rhs -= 1.0;
      } else {
        cut.cols.push_back(item.col);
        cut.vals.push_back(1.0);
      }
    }
    if (lp_lhs <= static_cast<double>(cover.size()) - 1.0 + options.min_violation) {
      return;  // not violated at the LP point: useless this round
    }
    cut.rhs = rhs;
    // Sort the support by column for the sparse parallelism dot.
    std::vector<std::size_t> order(cut.cols.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return cut.cols[a] < cut.cols[b]; });
    Cut sorted;
    sorted.kind = cut.kind;
    sorted.rhs = cut.rhs;
    for (const std::size_t k : order) {
      sorted.cols.push_back(cut.cols[k]);
      sorted.vals.push_back(cut.vals[k]);
    }
    cuts.push_back(std::move(sorted));
  };

  for (const Constraint& con : model.constraints()) {
    // The cover argument needs every free variable in the row to be binary
    // under the root box; variables fixed by the box fold into the capacity.
    std::vector<std::pair<int, double>> terms;
    double fixed = 0.0;
    bool eligible = true;
    for (const LinearExpr::Term& t : con.terms) {
      const int j = t.var.index;
      const double lo = lower[static_cast<std::size_t>(j)];
      const double hi = upper[static_cast<std::size_t>(j)];
      if (hi - lo <= kIntegralTol) {
        fixed += t.coeff * lo;
        continue;
      }
      if (model.variable(t.var).type == VarType::kContinuous ||
          std::abs(lo) > kIntegralTol || std::abs(hi - 1.0) > kIntegralTol) {
        eligible = false;
        break;
      }
      terms.emplace_back(j, t.coeff);
    }
    if (!eligible || terms.empty()) continue;
    if (con.relation == Relation::kLessEqual || con.relation == Relation::kEqual) {
      separate(terms, con.rhs - fixed);
    }
    if (con.relation == Relation::kGreaterEqual || con.relation == Relation::kEqual) {
      std::vector<std::pair<int, double>> negated = terms;
      for (auto& [j, a] : negated) a = -a;
      separate(negated, -(con.rhs - fixed));
    }
  }
  return cuts;
}

// -------------------------------------------------------------- root loop

RootCutOutcome run_root_cut_loop(const Model& model, const std::vector<double>& lower,
                                 const std::vector<double>& upper,
                                 const LpOptions& lp_options, const CutOptions& options,
                                 const CancelToken& cancel) {
  RootCutOutcome out;
  if (!options.enabled || options.max_rounds <= 0 || options.max_cuts_per_round <= 0) {
    return out;
  }
  if (!model.has_integer_variables() || model.constraint_count() == 0) return out;

  LpSolver solver(model, lp_options);
  LpResult lp = solver.solve(lower, upper);
  if (lp.status != LpStatus::kOptimal) {
    out.lp = solver.stats();
    out.lp_iterations = out.lp.iterations;
    return out;
  }
  out.root_objective = lp.objective;
  const double sign = model.objective_sign();
  double prev_bound = sign * (lp.objective - model.objective_constant());

  CutPool pool(options);
  std::vector<Cut> applied;  // rows appended to the LP, in row order
  for (int round = 0; round < options.max_rounds; ++round) {
    if (cancel.valid() && cancel.cancelled()) break;

    std::vector<Cut> gomory =
        generate_gomory_cuts(model, solver, applied, lower, upper, options);
    std::vector<Cut> covers = generate_cover_cuts(model, lower, upper, lp.values, options);
    out.stats.gomory_generated += static_cast<std::int64_t>(gomory.size());
    out.stats.cover_generated += static_cast<std::int64_t>(covers.size());
    for (Cut& cut : gomory) pool.add(std::move(cut), lp.values);
    for (Cut& cut : covers) pool.add(std::move(cut), lp.values);

    std::vector<Cut> batch = pool.take_round(lp.values);
    if (batch.empty()) break;
    std::vector<LpCutRow> rows;
    rows.reserve(batch.size());
    for (const Cut& cut : batch) rows.push_back({cut.cols, cut.vals, cut.rhs});
    if (!solver.append_rows(rows)) break;
    out.stats.applied += static_cast<std::int64_t>(batch.size());
    ++out.stats.rounds;
    for (Cut& cut : batch) {
      cut.age = 0;
      applied.push_back(std::move(cut));
    }

    lp = solver.resolve(lower, upper);
    if (lp.status != LpStatus::kOptimal) {
      // Infeasible here proves the MILP infeasible (cuts are valid), but the
      // tree search re-derives that from the extended model either way.
      out.root_infeasible = lp.status == LpStatus::kInfeasible;
      break;
    }
    out.root_objective = lp.objective;

    // Age the applied rows by slack activity at the fresh optimum; a cut
    // that stays loose stopped shaping the relaxation.
    for (Cut& cut : applied) {
      const double slack = cut.rhs - cut_activity(cut, lp.values);
      if (slack > 1e-6 * (1.0 + std::abs(cut.rhs))) {
        ++cut.age;
      } else {
        cut.age = 0;
      }
    }
    pool.age_round();

    const double bound = sign * (lp.objective - model.objective_constant());
    const bool improved = bound - prev_bound > options.min_bound_improvement;
    prev_bound = bound;
    if (!improved) break;  // tailing off: extra rounds just bloat the LP
  }

  // The tree only carries cuts still doing work at the end of the loop.
  for (Cut& cut : applied) {
    if (cut.age >= options.max_age) {
      ++out.stats.aged_out;
      continue;
    }
    out.cuts.push_back(std::move(cut));
  }
  out.stats.aged_out += pool.aged_out();
  out.stats.retained = static_cast<std::int64_t>(out.cuts.size());
  out.lp = solver.stats();
  out.lp_iterations = out.lp.iterations;
  return out;
}

}  // namespace fsyn::ilp
