#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::ilp {

namespace {

/// Dense bounded-variable simplex working state.
///
/// Columns are laid out as [structural | slack | artificial].  The tableau
/// `T` always equals B^{-1} A for the current basis; basic values `xb` and
/// nonbasic rest values `x` are maintained incrementally across pivots.
class SimplexTableau {
 public:
  SimplexTableau(const Model& model, const LpOptions& options,
                 const std::vector<double>* lower_override,
                 const std::vector<double>* upper_override)
      : options_(options) {
    const int n_struct = model.variable_count();
    const int m = model.constraint_count();
    rows_ = m;

    // ---- column bounds and phase-2 costs for structural variables ----
    for (int j = 0; j < n_struct; ++j) {
      const Variable& v = model.variable(VarId{j});
      const double lo = lower_override ? (*lower_override)[static_cast<std::size_t>(j)] : v.lower;
      const double hi = upper_override ? (*upper_override)[static_cast<std::size_t>(j)] : v.upper;
      check_input(std::isfinite(lo) || std::isfinite(hi),
                  "simplex requires each variable to have a finite bound");
      lower_.push_back(lo);
      upper_.push_back(hi);
      cost_.push_back(model.minimize_objective()[static_cast<std::size_t>(j)]);
    }

    // ---- slack columns (one per inequality row) ----
    std::vector<int> slack_of(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i) {
      if (model.constraints()[static_cast<std::size_t>(i)].relation != Relation::kEqual) {
        slack_of[static_cast<std::size_t>(i)] = add_column(0.0, kInfinity, 0.0);
      }
    }
    const int n_real = columns();

    // ---- assemble rows; scale each so the Phase-1 artificial is >= 0 ----
    matrix_.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(n_real + m), 0.0);
    width_ = n_real + m;
    rhs_.assign(static_cast<std::size_t>(m), 0.0);

    // Nonbasic rest point: each real column sits at its finite bound.
    x_.assign(static_cast<std::size_t>(width_), 0.0);
    at_upper_.assign(static_cast<std::size_t>(width_), false);
    for (int j = 0; j < n_real; ++j) {
      if (std::isfinite(lower_[static_cast<std::size_t>(j)])) {
        x_[static_cast<std::size_t>(j)] = lower_[static_cast<std::size_t>(j)];
      } else {
        x_[static_cast<std::size_t>(j)] = upper_[static_cast<std::size_t>(j)];
        at_upper_[static_cast<std::size_t>(j)] = true;
      }
    }

    basis_.assign(static_cast<std::size_t>(m), -1);
    xb_.assign(static_cast<std::size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      const Constraint& c = model.constraints()[static_cast<std::size_t>(i)];
      double* row = row_ptr(i);
      for (const auto& term : c.terms) {
        row[term.var.index] += term.coeff;
      }
      if (c.relation == Relation::kLessEqual) {
        row[slack_of[static_cast<std::size_t>(i)]] = 1.0;
      } else if (c.relation == Relation::kGreaterEqual) {
        row[slack_of[static_cast<std::size_t>(i)]] = -1.0;
      }
      rhs_[static_cast<std::size_t>(i)] = c.rhs;

      double residual = rhs_[static_cast<std::size_t>(i)];
      for (int j = 0; j < n_real; ++j) residual -= row[j] * x_[static_cast<std::size_t>(j)];
      if (residual < 0.0) {
        for (int j = 0; j < n_real; ++j) row[j] = -row[j];
        rhs_[static_cast<std::size_t>(i)] = -rhs_[static_cast<std::size_t>(i)];
        residual = -residual;
      }
      // Artificial column: +1 in its own row, basic with value `residual`.
      const int art = add_column(0.0, kInfinity, 0.0);
      row[art] = 1.0;
      basis_[static_cast<std::size_t>(i)] = art;
      xb_[static_cast<std::size_t>(i)] = residual;
      x_[static_cast<std::size_t>(art)] = 0.0;
    }
    first_artificial_ = n_real;
    require(columns() == width_, "column layout mismatch");
  }

  /// Runs Phase 1 then Phase 2; extracts the structural solution.
  LpResult solve(const Model& model) {
    LpResult result;

    // Phase 1: minimize the sum of artificials.
    std::vector<double> phase1_cost(static_cast<std::size_t>(width_), 0.0);
    for (int j = first_artificial_; j < width_; ++j) phase1_cost[static_cast<std::size_t>(j)] = 1.0;
    const LpStatus phase1 = optimize(phase1_cost, &result.iterations);
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    double artificial_sum = 0.0;
    for (int i = 0; i < rows_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] >= first_artificial_) {
        artificial_sum += xb_[static_cast<std::size_t>(i)];
      }
    }
    if (artificial_sum > 1e-6) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Freeze artificials at zero for Phase 2.
    for (int j = first_artificial_; j < width_; ++j) {
      lower_[static_cast<std::size_t>(j)] = 0.0;
      upper_[static_cast<std::size_t>(j)] = 0.0;
      if (basis_index_of(j) < 0) {
        x_[static_cast<std::size_t>(j)] = 0.0;
        at_upper_[static_cast<std::size_t>(j)] = false;
      }
    }

    // Phase 2: the real objective (zero on slack and artificial columns).
    std::vector<double> phase2_cost(static_cast<std::size_t>(width_), 0.0);
    std::copy(cost_.begin(), cost_.end(), phase2_cost.begin());
    const LpStatus phase2 = optimize(phase2_cost, &result.iterations);
    if (phase2 != LpStatus::kOptimal) {
      result.status = phase2;
      return result;
    }

    result.status = LpStatus::kOptimal;
    result.values.assign(static_cast<std::size_t>(model.variable_count()), 0.0);
    for (int j = 0; j < model.variable_count(); ++j) {
      result.values[static_cast<std::size_t>(j)] = x_[static_cast<std::size_t>(j)];
    }
    for (int i = 0; i < rows_; ++i) {
      const int j = basis_[static_cast<std::size_t>(i)];
      if (j < model.variable_count()) {
        result.values[static_cast<std::size_t>(j)] = xb_[static_cast<std::size_t>(i)];
      }
    }
    // Clamp tiny numerical excursions back into the bound box.
    for (int j = 0; j < model.variable_count(); ++j) {
      double& v = result.values[static_cast<std::size_t>(j)];
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      v = std::clamp(v, lo, std::isfinite(hi) ? hi : v);
    }
    result.objective = model.objective_value(result.values);
    return result;
  }

 private:
  int columns() const { return static_cast<int>(lower_.size()); }

  int add_column(double lo, double hi, double cost) {
    lower_.push_back(lo);
    upper_.push_back(hi);
    cost_.push_back(cost);
    return columns() - 1;
  }

  double* row_ptr(int i) {
    return matrix_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(width_);
  }
  const double* row_ptr(int i) const {
    return matrix_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(width_);
  }

  int basis_index_of(int column) const {
    for (int i = 0; i < rows_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] == column) return i;
    }
    return -1;
  }

  bool is_basic(int column) const { return basis_index_of(column) >= 0; }

  /// Primal simplex loop with Dantzig pricing and a Bland fallback that
  /// kicks in after a run of degenerate pivots (anti-cycling).
  LpStatus optimize(const std::vector<double>& cost, int* iteration_counter) {
    const double tol = options_.tolerance;
    int degenerate_streak = 0;
    bool bland = false;

    std::vector<bool> basic(static_cast<std::size_t>(width_), false);
    for (int i = 0; i < rows_; ++i) basic[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = true;

    std::vector<double> reduced(static_cast<std::size_t>(width_), 0.0);
    for (int iter = 0; iter < options_.max_iterations; ++iter, ++*iteration_counter) {
      // Reduced costs d = c - c_B' T  (T is already B^{-1}A).
      std::fill(reduced.begin(), reduced.end(), 0.0);
      for (int i = 0; i < rows_; ++i) {
        const double cb = cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
        if (cb == 0.0) continue;
        const double* row = row_ptr(i);
        for (int j = 0; j < width_; ++j) reduced[static_cast<std::size_t>(j)] += cb * row[j];
      }

      // Entering column: improves the objective while moving off its bound.
      int entering = -1;
      double entering_dir = 0.0;
      double best_violation = tol;
      for (int j = 0; j < width_; ++j) {
        if (basic[static_cast<std::size_t>(j)]) continue;
        const double lo = lower_[static_cast<std::size_t>(j)];
        const double hi = upper_[static_cast<std::size_t>(j)];
        if (hi - lo < tol) continue;  // fixed column can never improve
        const double d = cost[static_cast<std::size_t>(j)] - reduced[static_cast<std::size_t>(j)];
        double violation = 0.0;
        double dir = 0.0;
        if (!at_upper_[static_cast<std::size_t>(j)] && d < -tol) {
          violation = -d;
          dir = 1.0;
        } else if (at_upper_[static_cast<std::size_t>(j)] && d > tol) {
          violation = d;
          dir = -1.0;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          entering = j;
          entering_dir = dir;
          break;
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = j;
          entering_dir = dir;
        }
      }
      if (entering == -1) return LpStatus::kOptimal;

      // Ratio test: how far can the entering variable move?
      const double own_span = upper_[static_cast<std::size_t>(entering)] -
                              lower_[static_cast<std::size_t>(entering)];
      double best_t = own_span;  // may be +inf
      int leaving_row = -1;      // -1 means bound flip
      double best_pivot_mag = 0.0;
      for (int i = 0; i < rows_; ++i) {
        const double g = row_ptr(i)[entering] * entering_dir;
        const int bvar = basis_[static_cast<std::size_t>(i)];
        double limit = kInfinity;
        if (g > tol) {
          const double lo = lower_[static_cast<std::size_t>(bvar)];
          limit = std::isfinite(lo) ? (xb_[static_cast<std::size_t>(i)] - lo) / g : kInfinity;
        } else if (g < -tol) {
          const double hi = upper_[static_cast<std::size_t>(bvar)];
          limit = std::isfinite(hi) ? (hi - xb_[static_cast<std::size_t>(i)]) / (-g) : kInfinity;
        } else {
          continue;
        }
        limit = std::max(limit, 0.0);
        const double mag = std::abs(row_ptr(i)[entering]);
        const bool strictly_better = limit < best_t - tol;
        const bool tie = limit < best_t + tol;
        if (strictly_better || (tie && leaving_row >= 0 &&
                                (bland ? bvar < basis_[static_cast<std::size_t>(leaving_row)]
                                       : mag > best_pivot_mag))) {
          best_t = std::min(best_t, limit);
          leaving_row = i;
          best_pivot_mag = mag;
        }
      }

      if (!std::isfinite(best_t)) return LpStatus::kUnbounded;

      if (best_t < tol) {
        ++degenerate_streak;
        if (degenerate_streak > 64) bland = true;
      } else {
        degenerate_streak = 0;
      }

      // Apply the move to the basic values.
      const double delta = entering_dir * best_t;
      for (int i = 0; i < rows_; ++i) {
        xb_[static_cast<std::size_t>(i)] -= row_ptr(i)[entering] * delta;
      }

      if (leaving_row < 0 || own_span <= best_t) {
        // The entering variable reached its opposite bound first: bound flip,
        // no basis change.
        at_upper_[static_cast<std::size_t>(entering)] = entering_dir > 0.0;
        x_[static_cast<std::size_t>(entering)] =
            at_upper_[static_cast<std::size_t>(entering)]
                ? upper_[static_cast<std::size_t>(entering)]
                : lower_[static_cast<std::size_t>(entering)];
        continue;
      }

      // Pivot: entering becomes basic in `leaving_row`.
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      const double g = row_ptr(leaving_row)[entering] * entering_dir;
      at_upper_[static_cast<std::size_t>(leaving)] = g < 0.0;  // hit its upper bound
      x_[static_cast<std::size_t>(leaving)] = at_upper_[static_cast<std::size_t>(leaving)]
                                                  ? upper_[static_cast<std::size_t>(leaving)]
                                                  : lower_[static_cast<std::size_t>(leaving)];
      basic[static_cast<std::size_t>(leaving)] = false;
      basic[static_cast<std::size_t>(entering)] = true;

      const double entering_value =
          (at_upper_[static_cast<std::size_t>(entering)] ? upper_[static_cast<std::size_t>(entering)]
                                                         : lower_[static_cast<std::size_t>(entering)]) +
          delta;
      basis_[static_cast<std::size_t>(leaving_row)] = entering;

      // Gaussian elimination on the entering column.
      double* pivot_row = row_ptr(leaving_row);
      const double pivot = pivot_row[entering];
      require(std::abs(pivot) > tol, "zero pivot in simplex");
      for (int j = 0; j < width_; ++j) pivot_row[j] /= pivot;
      for (int i = 0; i < rows_; ++i) {
        if (i == leaving_row) continue;
        double* row = row_ptr(i);
        const double factor = row[entering];
        if (factor == 0.0) continue;
        for (int j = 0; j < width_; ++j) row[j] -= factor * pivot_row[j];
      }
      xb_[static_cast<std::size_t>(leaving_row)] = entering_value;
    }
    return LpStatus::kIterationLimit;
  }

  LpOptions options_;
  int rows_ = 0;
  int width_ = 0;             ///< total columns incl. slack + artificial
  int first_artificial_ = 0;  ///< first artificial column index
  std::vector<double> matrix_;
  std::vector<double> rhs_;
  std::vector<double> lower_, upper_, cost_;
  std::vector<double> x_;      ///< rest values of nonbasic columns
  std::vector<bool> at_upper_;
  std::vector<int> basis_;     ///< basic column per row
  std::vector<double> xb_;     ///< value of the basic variable per row
};

}  // namespace

LpResult solve_lp(const Model& model, const LpOptions& options,
                  const std::vector<double>* lower_override,
                  const std::vector<double>* upper_override) {
  if (lower_override) {
    require(static_cast<int>(lower_override->size()) == model.variable_count(),
            "lower_override size mismatch");
  }
  if (upper_override) {
    require(static_cast<int>(upper_override->size()) == model.variable_count(),
            "upper_override size mismatch");
  }
  // A bound box that is empty in any coordinate is trivially infeasible.
  for (int j = 0; j < model.variable_count(); ++j) {
    const double lo = lower_override ? (*lower_override)[static_cast<std::size_t>(j)]
                                     : model.variable(VarId{j}).lower;
    const double hi = upper_override ? (*upper_override)[static_cast<std::size_t>(j)]
                                     : model.variable(VarId{j}).upper;
    if (lo > hi) {
      LpResult r;
      r.status = LpStatus::kInfeasible;
      return r;
    }
  }
  SimplexTableau tableau(model, options, lower_override, upper_override);
  return tableau.solve(model);
}

}  // namespace fsyn::ilp
