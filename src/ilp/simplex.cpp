#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::ilp {

namespace {

/// Primal feasibility tolerance: basic values within this of their bounds
/// count as feasible (the solution is clamped into the box on extraction).
constexpr double kFeasTol = 1e-7;
/// Residual Phase-1 violation above which the LP is declared infeasible.
constexpr double kInfeasibleTol = 1e-6;
/// Reduced-cost sign tolerance when revalidating rest sides on warm starts.
constexpr double kDualSignTol = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
constexpr int kBlandThreshold = 64;
/// Devex weights above this trigger a reference-framework restart (all
/// weights back to 1); keeps the approximation from drifting unboundedly.
constexpr double kDevexResetLimit = 1e7;

}  // namespace

const char* to_string(BasisKind kind) {
  return kind == BasisKind::kDense ? "dense" : "sparse_lu";
}

const char* to_string(PricingRule rule) {
  return rule == PricingRule::kDantzig ? "dantzig" : "devex";
}

bool basis_kind_from_string(std::string_view text, BasisKind* out) {
  if (text == "dense") {
    *out = BasisKind::kDense;
    return true;
  }
  if (text == "sparse_lu" || text == "sparse") {
    *out = BasisKind::kSparseLu;
    return true;
  }
  return false;
}

bool pricing_rule_from_string(std::string_view text, PricingRule* out) {
  if (text == "dantzig") {
    *out = PricingRule::kDantzig;
    return true;
  }
  if (text == "devex") {
    *out = PricingRule::kDevex;
    return true;
  }
  return false;
}

LpSolver::LpSolver(const Model& model, const LpOptions& options)
    : model_(&model), options_(options) {
  n_ = model.variable_count();
  m_ = model.constraint_count();
  const int total = total_columns();

  // ---- constraint matrix, structural columns: CSC + row-major mirror ----
  Model::CompressedMatrix cm = model.compressed_matrix();
  col_start_ = std::move(cm.col_start);
  col_row_ = std::move(cm.col_row);
  col_val_ = std::move(cm.col_val);
  row_start_ = std::move(cm.row_start);
  row_col_ = std::move(cm.row_col);
  row_val_ = std::move(cm.row_val);
  rhs_.reserve(static_cast<std::size_t>(m_));
  for (const Constraint& c : model.constraints()) rhs_.push_back(c.rhs);
  cost_ = model.minimize_objective();

  // ---- bounds: structural (set per solve) then one logical per row ----
  lower_.assign(static_cast<std::size_t>(total), 0.0);
  upper_.assign(static_cast<std::size_t>(total), 0.0);
  for (int i = 0; i < m_; ++i) {
    const std::size_t j = static_cast<std::size_t>(n_ + i);
    switch (model.constraints()[static_cast<std::size_t>(i)].relation) {
      case Relation::kLessEqual:
        lower_[j] = 0.0;
        upper_[j] = kInfinity;
        break;
      case Relation::kGreaterEqual:
        lower_[j] = -kInfinity;
        upper_[j] = 0.0;
        break;
      case Relation::kEqual:
        lower_[j] = 0.0;
        upper_[j] = 0.0;
        break;
    }
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  basic_row_.assign(static_cast<std::size_t>(total), -1);
  at_upper_.assign(static_cast<std::size_t>(total), 0);
  xb_.assign(static_cast<std::size_t>(m_), 0.0);
  d_.assign(static_cast<std::size_t>(total), 0.0);
  if (!sparse_basis()) {
    // The dense inverse (m^2 doubles) exists only in dense mode; the sparse
    // path keeps the basis in lu_ instead.
    binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
  }
  work_col_.assign(static_cast<std::size_t>(m_), 0.0);
  work_row_.assign(static_cast<std::size_t>(m_), 0.0);
  work_rhs_.assign(static_cast<std::size_t>(m_), 0.0);
  work_alpha_.assign(static_cast<std::size_t>(total), 0.0);
  alpha_stamp_.assign(static_cast<std::size_t>(total), 0);
  devex_w_.assign(static_cast<std::size_t>(total), 1.0);
  devex_row_w_.assign(static_cast<std::size_t>(m_), 1.0);
}

// ---------------------------------------------------------- linear algebra

void LpSolver::ftran(int j, std::vector<double>& w) const {
  std::fill(w.begin(), w.end(), 0.0);
  if (sparse_basis()) {
    if (is_logical(j)) {
      w[static_cast<std::size_t>(j - n_)] = 1.0;
    } else {
      for (int idx = col_start_[static_cast<std::size_t>(j)]; idx < col_start_[static_cast<std::size_t>(j) + 1]; ++idx) {
        w[static_cast<std::size_t>(col_row_[static_cast<std::size_t>(idx)])] =
            col_val_[static_cast<std::size_t>(idx)];
      }
    }
    lu_.ftran(w);
    return;
  }
  if (is_logical(j)) {
    const double* col = binv_.data() + static_cast<std::size_t>(j - n_) * static_cast<std::size_t>(m_);
    std::copy(col, col + m_, w.begin());
    return;
  }
  for (int idx = col_start_[static_cast<std::size_t>(j)]; idx < col_start_[static_cast<std::size_t>(j) + 1]; ++idx) {
    const double v = col_val_[static_cast<std::size_t>(idx)];
    const double* col = binv_.data() +
                        static_cast<std::size_t>(col_row_[static_cast<std::size_t>(idx)]) * static_cast<std::size_t>(m_);
    for (int i = 0; i < m_; ++i) w[static_cast<std::size_t>(i)] += v * col[i];
  }
}

void LpSolver::gather_row(int r, std::vector<double>& rho) const {
  if (sparse_basis()) {
    std::fill(rho.begin(), rho.end(), 0.0);
    rho[static_cast<std::size_t>(r)] = 1.0;
    lu_.btran(rho);
    return;
  }
  for (int k = 0; k < m_; ++k) {
    rho[static_cast<std::size_t>(k)] =
        binv_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(r)];
  }
}

void LpSolver::btran_vec(const std::vector<double>& v, std::vector<double>& y) const {
  if (sparse_basis()) {
    y = v;
    lu_.btran(y);
    return;
  }
  for (int k = 0; k < m_; ++k) {
    const double* col = binv_.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(m_);
    double acc = 0.0;
    for (int i = 0; i < m_; ++i) acc += v[static_cast<std::size_t>(i)] * col[i];
    y[static_cast<std::size_t>(k)] = acc;
  }
}

void LpSolver::compute_pivot_row_alphas(const std::vector<double>& rho) {
  alpha_touched_.clear();
  const std::int64_t cur = ++alpha_epoch_;
  for (int i = 0; i < m_; ++i) {
    const double t = rho[static_cast<std::size_t>(i)];
    if (t == 0.0) continue;
    const int lj = n_ + i;  // logical column of row i has alpha rho_i
    work_alpha_[static_cast<std::size_t>(lj)] = t;
    alpha_stamp_[static_cast<std::size_t>(lj)] = cur;
    alpha_touched_.push_back(lj);
    for (int idx = row_start_[static_cast<std::size_t>(i)]; idx < row_start_[static_cast<std::size_t>(i) + 1]; ++idx) {
      const int j = row_col_[static_cast<std::size_t>(idx)];
      if (alpha_stamp_[static_cast<std::size_t>(j)] != cur) {
        work_alpha_[static_cast<std::size_t>(j)] = 0.0;
        alpha_stamp_[static_cast<std::size_t>(j)] = cur;
        alpha_touched_.push_back(j);
      }
      work_alpha_[static_cast<std::size_t>(j)] += t * row_val_[static_cast<std::size_t>(idx)];
    }
  }
}

void LpSolver::reset_devex_weights() {
  std::fill(devex_w_.begin(), devex_w_.end(), 1.0);
  std::fill(devex_row_w_.begin(), devex_row_w_.end(), 1.0);
  ++stats_.devex_resets;
}

double LpSolver::column_dot(const std::vector<double>& y, int j) const {
  if (is_logical(j)) return y[static_cast<std::size_t>(j - n_)];
  double acc = 0.0;
  for (int idx = col_start_[static_cast<std::size_t>(j)]; idx < col_start_[static_cast<std::size_t>(j) + 1]; ++idx) {
    acc += col_val_[static_cast<std::size_t>(idx)] * y[static_cast<std::size_t>(col_row_[static_cast<std::size_t>(idx)])];
  }
  return acc;
}

bool LpSolver::apply_basis_change(int r, const std::vector<double>& w) {
  ++updates_since_refactor_;
  if (sparse_basis()) {
    const std::int64_t before = lu_.eta_nnz();
    if (!lu_.update(r, w)) return false;  // unstable eta pivot: refactorize
    ++stats_.eta_pivots;
    stats_.eta_nnz += lu_.eta_nnz() - before;
    return true;
  }
  // B_new^{-1} = E B^{-1} with E the elementary matrix of pivot column w at
  // row r; applied column by column (binv_ is column-major).
  const double pivot = w[static_cast<std::size_t>(r)];
  // Same relative stability guard as LuFactors::update: a pivot much smaller
  // than the rest of the column amplifies roundoff by |w_i / pivot|; fall
  // back to a fresh refactorization instead of poisoning binv_.
  double wmax = 0.0;
  for (int i = 0; i < m_; ++i) wmax = std::max(wmax, std::abs(w[static_cast<std::size_t>(i)]));
  if (std::abs(pivot) < 1e-6 * wmax) return false;
  for (int k = 0; k < m_; ++k) {
    double* col = binv_col(k);
    const double f = col[r] / pivot;
    if (f == 0.0) continue;
    for (int i = 0; i < m_; ++i) col[i] -= f * w[static_cast<std::size_t>(i)];
    col[r] = f;
  }
  return true;
}

bool LpSolver::needs_refactor() const {
  if (updates_since_refactor_ >= options_.refactor_interval) return true;
  // Sparse only: cut the eta file short once applying it costs more than a
  // fresh factorization would.
  return sparse_basis() &&
         static_cast<double>(lu_.eta_nnz()) >
             options_.eta_growth_limit * static_cast<double>(std::max<std::int64_t>(lu_.lu_nnz(), m_));
}

bool LpSolver::factorize_sparse_basis() {
  fb_start_.assign(1, 0);
  fb_row_.clear();
  fb_val_.clear();
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[static_cast<std::size_t>(i)];
    if (is_logical(j)) {
      fb_row_.push_back(j - n_);
      fb_val_.push_back(1.0);
    } else {
      for (int idx = col_start_[static_cast<std::size_t>(j)]; idx < col_start_[static_cast<std::size_t>(j) + 1]; ++idx) {
        fb_row_.push_back(col_row_[static_cast<std::size_t>(idx)]);
        fb_val_.push_back(col_val_[static_cast<std::size_t>(idx)]);
      }
    }
    fb_start_.push_back(static_cast<int>(fb_row_.size()));
  }
  if (!lu_.factorize(m_, fb_start_, fb_row_, fb_val_)) return false;
  ++stats_.lu_refactorizations;
  stats_.lu_fill_nnz += lu_.lu_nnz();
  stats_.lu_basis_nnz += lu_.basis_nnz();
  return true;
}

bool LpSolver::refactor() {
  ++stats_.refactorizations;
  updates_since_refactor_ = 0;
  if (m_ == 0) return true;
  if (sparse_basis()) {
    if (!factorize_sparse_basis()) return false;
    recompute_basic_values();
    if (in_phase2_) recompute_reduced_costs();
    return true;
  }
  const std::size_t mm = static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_);
  // Row-major Gauss-Jordan with partial pivoting: a = B, inv = I.
  refactor_mat_.assign(mm * 2, 0.0);
  double* a = refactor_mat_.data();
  double* inv = refactor_mat_.data() + mm;
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[static_cast<std::size_t>(i)];
    if (is_logical(j)) {
      a[static_cast<std::size_t>(j - n_) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(i)] = 1.0;
    } else {
      for (int idx = col_start_[static_cast<std::size_t>(j)]; idx < col_start_[static_cast<std::size_t>(j) + 1]; ++idx) {
        a[static_cast<std::size_t>(col_row_[static_cast<std::size_t>(idx)]) * static_cast<std::size_t>(m_) +
          static_cast<std::size_t>(i)] = col_val_[static_cast<std::size_t>(idx)];
      }
    }
    inv[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(i)] = 1.0;
  }
  for (int c = 0; c < m_; ++c) {
    int p = c;
    double best = std::abs(a[static_cast<std::size_t>(c) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(c)]);
    for (int r = c + 1; r < m_; ++r) {
      const double mag = std::abs(a[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(c)]);
      if (mag > best) {
        best = mag;
        p = r;
      }
    }
    if (best < 1e-11) return false;
    double* row_c = a + static_cast<std::size_t>(c) * static_cast<std::size_t>(m_);
    double* inv_c = inv + static_cast<std::size_t>(c) * static_cast<std::size_t>(m_);
    if (p != c) {
      std::swap_ranges(row_c, row_c + m_, a + static_cast<std::size_t>(p) * static_cast<std::size_t>(m_));
      std::swap_ranges(inv_c, inv_c + m_, inv + static_cast<std::size_t>(p) * static_cast<std::size_t>(m_));
    }
    const double scale = 1.0 / row_c[c];
    for (int k = 0; k < m_; ++k) {
      row_c[k] *= scale;
      inv_c[k] *= scale;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == c) continue;
      double* row_r = a + static_cast<std::size_t>(r) * static_cast<std::size_t>(m_);
      const double f = row_r[c];
      if (f == 0.0) continue;
      double* inv_r = inv + static_cast<std::size_t>(r) * static_cast<std::size_t>(m_);
      for (int k = 0; k < m_; ++k) {
        row_r[k] -= f * row_c[k];
        inv_r[k] -= f * inv_c[k];
      }
    }
  }
  // Transpose the row-major inverse into the column-major binv_.
  for (int i = 0; i < m_; ++i) {
    for (int k = 0; k < m_; ++k) {
      binv_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(i)] =
          inv[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(k)];
    }
  }
  recompute_basic_values();
  if (in_phase2_) recompute_reduced_costs();
  return true;
}

// -------------------------------------------------------- state management

void LpSolver::set_structural_bounds(const std::vector<double>& lower,
                                     const std::vector<double>& upper) {
  std::copy(lower.begin(), lower.end(), lower_.begin());
  std::copy(upper.begin(), upper.end(), upper_.begin());
}

void LpSolver::reset_to_logical_basis() {
  std::fill(basic_row_.begin(), basic_row_.end(), -1);
  for (int j = 0; j < n_; ++j) {
    check_input(std::isfinite(lower_[static_cast<std::size_t>(j)]) ||
                    std::isfinite(upper_[static_cast<std::size_t>(j)]),
                "simplex requires each variable to have a finite bound");
    at_upper_[static_cast<std::size_t>(j)] = !std::isfinite(lower_[static_cast<std::size_t>(j)]);
  }
  for (int i = 0; i < m_; ++i) {
    basis_[static_cast<std::size_t>(i)] = n_ + i;
    basic_row_[static_cast<std::size_t>(n_ + i)] = i;
    at_upper_[static_cast<std::size_t>(n_ + i)] = 0;
  }
  if (sparse_basis()) {
    factorize_sparse_basis();  // identity basis: cannot fail
  } else {
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(i)] = 1.0;
    }
  }
  // A cold start abandons the old basis trajectory, so the devex reference
  // framework restarts too (not counted as a drift reset).
  std::fill(devex_w_.begin(), devex_w_.end(), 1.0);
  std::fill(devex_row_w_.begin(), devex_row_w_.end(), 1.0);
  updates_since_refactor_ = 0;
  recompute_basic_values();
}

void LpSolver::recompute_basic_values() {
  work_rhs_ = rhs_;
  for (int j = 0; j < total_columns(); ++j) {
    if (basic_row_[static_cast<std::size_t>(j)] >= 0) continue;
    const double x = rest_value(j);
    require(std::isfinite(x), "nonbasic rest value not finite");
    if (x == 0.0) continue;
    if (is_logical(j)) {
      work_rhs_[static_cast<std::size_t>(j - n_)] -= x;
    } else {
      for (int idx = col_start_[static_cast<std::size_t>(j)]; idx < col_start_[static_cast<std::size_t>(j) + 1]; ++idx) {
        work_rhs_[static_cast<std::size_t>(col_row_[static_cast<std::size_t>(idx)])] -=
            col_val_[static_cast<std::size_t>(idx)] * x;
      }
    }
  }
  if (sparse_basis()) {
    xb_ = work_rhs_;
    lu_.ftran(xb_);
  } else {
    std::fill(xb_.begin(), xb_.end(), 0.0);
    for (int k = 0; k < m_; ++k) {
      const double t = work_rhs_[static_cast<std::size_t>(k)];
      if (t == 0.0) continue;
      const double* col = binv_.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(m_);
      for (int i = 0; i < m_; ++i) xb_[static_cast<std::size_t>(i)] += t * col[i];
    }
  }
}

void LpSolver::recompute_reduced_costs() {
  // y = c_B' B^{-1}: one BTRAN with the basic cost vector.
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[static_cast<std::size_t>(i)];
    work_col_[static_cast<std::size_t>(i)] = is_logical(j) ? 0.0 : cost_[static_cast<std::size_t>(j)];
  }
  btran_vec(work_col_, work_row_);
  std::fill(d_.begin(), d_.end(), 0.0);
  for (int j = 0; j < total_columns(); ++j) {
    if (basic_row_[static_cast<std::size_t>(j)] >= 0) continue;
    const double cost = is_logical(j) ? 0.0 : cost_[static_cast<std::size_t>(j)];
    d_[static_cast<std::size_t>(j)] = cost - column_dot(work_row_, j);
  }
}

double LpSolver::internal_objective() const {
  double obj = 0.0;
  for (int j = 0; j < n_; ++j) {
    const double c = cost_[static_cast<std::size_t>(j)];
    if (c == 0.0) continue;
    const int row = basic_row_[static_cast<std::size_t>(j)];
    obj += c * (row >= 0 ? xb_[static_cast<std::size_t>(row)] : rest_value(j));
  }
  return obj;
}

bool LpSolver::restore_dual_feasible_rests() {
  const double ztol = options_.tolerance;
  for (int j = 0; j < n_; ++j) {
    if (basic_row_[static_cast<std::size_t>(j)] >= 0) continue;
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    if (hi - lo <= ztol) {  // fixed: rest value is unique, dual sign is free
      at_upper_[static_cast<std::size_t>(j)] = 0;
      continue;
    }
    const double dj = d_[static_cast<std::size_t>(j)];
    const bool upper_ok = std::isfinite(hi) && dj <= kDualSignTol;
    const bool lower_ok = std::isfinite(lo) && dj >= -kDualSignTol;
    if (at_upper_[static_cast<std::size_t>(j)]) {
      if (!upper_ok) {
        if (!lower_ok) return false;
        at_upper_[static_cast<std::size_t>(j)] = 0;
      }
    } else {
      if (!lower_ok) {
        if (!upper_ok) return false;
        at_upper_[static_cast<std::size_t>(j)] = 1;
      }
    }
  }
  return true;
}

LpResult LpSolver::extract(std::int64_t iterations, bool warm) {
  LpResult result;
  result.status = LpStatus::kOptimal;
  result.iterations = iterations;
  result.warm_started = warm;
  result.values.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    const int row = basic_row_[static_cast<std::size_t>(j)];
    double v = row >= 0 ? xb_[static_cast<std::size_t>(row)] : rest_value(j);
    // Clamp tiny numerical excursions back into the bound box.
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    v = std::clamp(v, std::isfinite(lo) ? lo : v, std::isfinite(hi) ? hi : v);
    result.values[static_cast<std::size_t>(j)] = v;
  }
  result.objective = model_->objective_value(result.values);
  return result;
}

// ------------------------------------------------------------ simplex loops

/// Artificial-free Phase 1: minimize the total bound violation of the basic
/// variables (composite cost: -1 below lower, +1 above upper), recomputed
/// per iteration.  Violated basics may leave at the bound they reach.
LpStatus LpSolver::phase1(std::int64_t* iterations) {
  const double ztol = options_.tolerance;
  int degenerate_streak = 0;
  bool bland = false;
  std::vector<double>& w = work_col_;
  std::vector<double>& y = work_row_;
  std::vector<double>& cb = work_rhs_;

  for (;;) {
    if (*iterations >= options_.max_iterations) return LpStatus::kIterationLimit;
    double total_violation = 0.0;
    bool any_violated = false;
    for (int i = 0; i < m_; ++i) {
      const int p = basis_[static_cast<std::size_t>(i)];
      const double lo = lower_[static_cast<std::size_t>(p)];
      const double hi = upper_[static_cast<std::size_t>(p)];
      double c = 0.0;
      if (xb_[static_cast<std::size_t>(i)] < lo - kFeasTol) {
        c = -1.0;
        total_violation += lo - xb_[static_cast<std::size_t>(i)];
      } else if (xb_[static_cast<std::size_t>(i)] > hi + kFeasTol) {
        c = 1.0;
        total_violation += xb_[static_cast<std::size_t>(i)] - hi;
      }
      cb[static_cast<std::size_t>(i)] = c;
      any_violated |= c != 0.0;
    }
    if (!any_violated) return LpStatus::kOptimal;

    btran_vec(cb, y);

    // Entering column: reduces the composite infeasibility.
    int entering = -1;
    double entering_dir = 0.0;
    double best_violation = ztol;
    for (int j = 0; j < total_columns(); ++j) {
      if (basic_row_[static_cast<std::size_t>(j)] >= 0) continue;
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      if (hi - lo <= ztol) continue;  // fixed column can never improve
      const double dj = -column_dot(y, j);
      double violation = 0.0;
      double dir = 0.0;
      if (!at_upper_[static_cast<std::size_t>(j)] && dj < -ztol) {
        violation = -dj;
        dir = 1.0;
      } else if (at_upper_[static_cast<std::size_t>(j)] && dj > ztol) {
        violation = dj;
        dir = -1.0;
      } else {
        continue;
      }
      if (bland) {  // first eligible index
        entering = j;
        entering_dir = dir;
        break;
      }
      if (violation > best_violation) {
        best_violation = violation;
        entering = j;
        entering_dir = dir;
      }
    }
    if (entering == -1) {
      return total_violation > kInfeasibleTol ? LpStatus::kInfeasible : LpStatus::kOptimal;
    }

    ftran(entering, w);

    // Ratio test.  Feasible basics stay inside their bounds; violated
    // basics are capped only when moving toward (and reaching) the bound
    // they violate, where they leave the basis exactly feasible.
    const double own_span =
        upper_[static_cast<std::size_t>(entering)] - lower_[static_cast<std::size_t>(entering)];
    double best_t = own_span;
    int leaving_row = -1;
    bool leaving_at_upper = false;
    double best_mag = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double rate = -w[static_cast<std::size_t>(i)] * entering_dir;
      if (std::abs(rate) <= ztol) continue;
      const int p = basis_[static_cast<std::size_t>(i)];
      const double lo = lower_[static_cast<std::size_t>(p)];
      const double hi = upper_[static_cast<std::size_t>(p)];
      const double value = xb_[static_cast<std::size_t>(i)];
      double limit = kInfinity;
      bool at_up = false;
      if (value < lo - kFeasTol) {
        if (rate > 0.0) limit = (lo - value) / rate;
      } else if (value > hi + kFeasTol) {
        if (rate < 0.0) {
          limit = (hi - value) / rate;
          at_up = true;
        }
      } else if (rate > 0.0) {
        if (std::isfinite(hi)) {
          limit = (hi - value) / rate;
          at_up = true;
        }
      } else {
        if (std::isfinite(lo)) limit = (lo - value) / rate;
      }
      if (!std::isfinite(limit)) continue;
      limit = std::max(limit, 0.0);
      const double mag = std::abs(w[static_cast<std::size_t>(i)]);
      const bool strictly_better = limit < best_t - ztol;
      const bool tie = limit < best_t + ztol;
      if (strictly_better ||
          (tie && leaving_row >= 0 &&
           (bland ? p < basis_[static_cast<std::size_t>(leaving_row)] : mag > best_mag))) {
        best_t = std::min(best_t, limit);
        leaving_row = i;
        best_mag = mag;
        leaving_at_upper = at_up;
      }
    }
    // The composite objective is bounded below by zero, so an unbounded
    // ray is a numerical artifact; give up rather than loop.
    if (!std::isfinite(best_t)) return LpStatus::kIterationLimit;

    if (best_t < ztol) {
      if (++degenerate_streak > kBlandThreshold) bland = true;
    } else {
      degenerate_streak = 0;
    }

    ++*iterations;
    ++stats_.iterations;
    const double delta = entering_dir * best_t;
    for (int i = 0; i < m_; ++i) {
      xb_[static_cast<std::size_t>(i)] -= w[static_cast<std::size_t>(i)] * delta;
    }
    if (leaving_row < 0 || own_span <= best_t) {
      at_upper_[static_cast<std::size_t>(entering)] = entering_dir > 0.0;
      ++stats_.bound_flips;
      continue;
    }

    ++stats_.primal_pivots;
    const double entering_value = rest_value(entering) + delta;
    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
    require(std::abs(w[static_cast<std::size_t>(leaving_row)]) > ztol, "zero pivot in simplex");
    at_upper_[static_cast<std::size_t>(leaving)] = leaving_at_upper;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;
    basic_row_[static_cast<std::size_t>(entering)] = leaving_row;
    basic_row_[static_cast<std::size_t>(leaving)] = -1;
    const bool rep_ok = apply_basis_change(leaving_row, w);
    xb_[static_cast<std::size_t>(leaving_row)] = entering_value;
    if (!rep_ok || needs_refactor()) {
      if (!refactor()) return LpStatus::kIterationLimit;  // numerically wedged basis
    }
  }
}

int LpSolver::select_entering_primal(bool bland) {
  const double ztol = options_.tolerance;
  const bool use_devex = devex();
  auto violation_of = [&](int j) -> double {
    if (basic_row_[static_cast<std::size_t>(j)] >= 0) return 0.0;
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    if (hi - lo <= ztol) return 0.0;  // fixed column can never improve
    const double dj = d_[static_cast<std::size_t>(j)];
    if (!at_upper_[static_cast<std::size_t>(j)] && dj < -ztol) return -dj;
    if (at_upper_[static_cast<std::size_t>(j)] && dj > ztol) return dj;
    return 0.0;
  };
  // Devex scores d_j^2 / w_j — the approximate steepest-edge merit — while
  // Dantzig scores |d_j| directly.  Eligibility is by |d_j| either way.
  auto score_of = [&](int j) -> double {
    const double v = violation_of(j);
    if (v == 0.0 || !use_devex) return v;
    return v * v / devex_w_[static_cast<std::size_t>(j)];
  };

  if (bland) {
    for (int j = 0; j < total_columns(); ++j) {
      if (violation_of(j) > 0.0) return j;
    }
    return -1;
  }

  // Partial pricing: reuse the candidate list while any entry is still
  // eligible, refresh with a full sweep only when it runs dry.
  int best = -1;
  double best_violation = 0.0;
  for (const int j : candidates_) {
    const double v = score_of(j);
    if (v > best_violation) {
      best_violation = v;
      best = j;
    }
  }
  if (best != -1) return best;

  sweep_.clear();
  for (int j = 0; j < total_columns(); ++j) {
    const double v = score_of(j);
    if (v > 0.0) sweep_.push_back({v, j});
  }
  if (sweep_.empty()) return -1;
  std::size_t keep = static_cast<std::size_t>(
      options_.candidate_list_size > 0
          ? options_.candidate_list_size
          : std::clamp(total_columns() / 8, 8, 64));
  if (sweep_.size() > keep) {
    std::nth_element(sweep_.begin(), sweep_.begin() + static_cast<std::ptrdiff_t>(keep) - 1,
                     sweep_.end(), std::greater<>());
    sweep_.resize(keep);
  }
  candidates_.clear();
  best_violation = 0.0;
  for (const auto& [v, j] : sweep_) {
    candidates_.push_back(j);
    if (v > best_violation) {
      best_violation = v;
      best = j;
    }
  }
  return best;
}

LpStatus LpSolver::primal_loop(std::int64_t* iterations) {
  const double ztol = options_.tolerance;
  int degenerate_streak = 0;
  bool bland = false;
  std::vector<double>& w = work_col_;

  for (;;) {
    if (*iterations >= options_.max_iterations) return LpStatus::kIterationLimit;
    const int entering = select_entering_primal(bland);
    if (entering == -1) return LpStatus::kOptimal;
    if (devex() && devex_w_[static_cast<std::size_t>(entering)] > kDevexResetLimit) {
      reset_devex_weights();  // reference framework drifted too far
    }
    const double dir = at_upper_[static_cast<std::size_t>(entering)] ? -1.0 : 1.0;
    ftran(entering, w);

    const double own_span =
        upper_[static_cast<std::size_t>(entering)] - lower_[static_cast<std::size_t>(entering)];
    double best_t = own_span;
    int leaving_row = -1;
    double best_mag = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double g = w[static_cast<std::size_t>(i)] * dir;
      const int p = basis_[static_cast<std::size_t>(i)];
      double limit = kInfinity;
      if (g > ztol) {
        const double lo = lower_[static_cast<std::size_t>(p)];
        if (std::isfinite(lo)) limit = (xb_[static_cast<std::size_t>(i)] - lo) / g;
      } else if (g < -ztol) {
        const double hi = upper_[static_cast<std::size_t>(p)];
        if (std::isfinite(hi)) limit = (hi - xb_[static_cast<std::size_t>(i)]) / (-g);
      } else {
        continue;
      }
      if (!std::isfinite(limit)) continue;
      limit = std::max(limit, 0.0);
      const double mag = std::abs(w[static_cast<std::size_t>(i)]);
      const bool strictly_better = limit < best_t - ztol;
      const bool tie = limit < best_t + ztol;
      if (strictly_better ||
          (tie && leaving_row >= 0 &&
           (bland ? p < basis_[static_cast<std::size_t>(leaving_row)] : mag > best_mag))) {
        best_t = std::min(best_t, limit);
        leaving_row = i;
        best_mag = mag;
      }
    }
    if (!std::isfinite(best_t)) return LpStatus::kUnbounded;

    if (best_t < ztol) {
      if (++degenerate_streak > kBlandThreshold) bland = true;
    } else {
      degenerate_streak = 0;
    }

    ++*iterations;
    ++stats_.iterations;
    const double delta = dir * best_t;
    for (int i = 0; i < m_; ++i) {
      xb_[static_cast<std::size_t>(i)] -= w[static_cast<std::size_t>(i)] * delta;
    }
    if (leaving_row < 0 || own_span <= best_t) {
      // Entering reached its opposite bound first: flip, no basis change.
      at_upper_[static_cast<std::size_t>(entering)] = dir > 0.0;
      ++stats_.bound_flips;
      continue;
    }

    ++stats_.primal_pivots;
    const double entering_value = rest_value(entering) + delta;
    const double pivot = w[static_cast<std::size_t>(leaving_row)];
    require(std::abs(pivot) > ztol, "zero pivot in simplex");
    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];

    // Incremental reduced-cost update: d_j -= theta_d * alpha_rj using the
    // pivot row gathered from the (pre-update) basis representation.  The
    // alphas come from a row-major scatter over the pivot row's nonzeros,
    // so the cost follows the sparsity of e_r' B^{-1} — and the devex
    // weight update rides the same loop for free.
    gather_row(leaving_row, work_row_);
    compute_pivot_row_alphas(work_row_);
    const double theta_d = d_[static_cast<std::size_t>(entering)] / pivot;
    const bool use_devex = devex();
    const double wq = devex_w_[static_cast<std::size_t>(entering)];
    const double inv_pivot2 = 1.0 / (pivot * pivot);
    for (const int j : alpha_touched_) {
      if (basic_row_[static_cast<std::size_t>(j)] >= 0 || j == entering) continue;
      const double alpha = work_alpha_[static_cast<std::size_t>(j)];
      if (alpha == 0.0) continue;
      d_[static_cast<std::size_t>(j)] -= theta_d * alpha;
      if (use_devex) {
        const double cand = alpha * alpha * inv_pivot2 * wq;
        if (cand > devex_w_[static_cast<std::size_t>(j)]) devex_w_[static_cast<std::size_t>(j)] = cand;
      }
    }
    d_[static_cast<std::size_t>(leaving)] = -theta_d;
    d_[static_cast<std::size_t>(entering)] = 0.0;
    if (use_devex) {
      devex_w_[static_cast<std::size_t>(leaving)] = std::max(wq * inv_pivot2, 1.0);
    }

    at_upper_[static_cast<std::size_t>(leaving)] = pivot * dir < 0.0;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;
    basic_row_[static_cast<std::size_t>(entering)] = leaving_row;
    basic_row_[static_cast<std::size_t>(leaving)] = -1;
    const bool rep_ok = apply_basis_change(leaving_row, w);
    xb_[static_cast<std::size_t>(leaving_row)] = entering_value;
    if (!rep_ok || needs_refactor()) {
      if (!refactor()) return LpStatus::kIterationLimit;  // numerically wedged basis
    }
  }
}

/// Bounded-variable dual simplex: the basis stays dual feasible while
/// primal bound violations (introduced by branching bound changes) are
/// pivoted out one by one.  The running objective is a valid lower bound,
/// so a finite `cutoff` allows early termination.
LpStatus LpSolver::dual_loop(double cutoff, std::int64_t* iterations) {
  const double ztol = options_.tolerance;
  int degenerate_streak = 0;
  bool bland = false;
  std::vector<double>& rho = work_row_;
  std::vector<double>& w = work_col_;
  const bool use_devex = devex();
  double obj = internal_objective();
  // The incremental objective is exact until a non-degenerate pivot moves
  // it; tracking that means a cutoff rejection triggers at most one exact
  // recomputation per improving pivot instead of one per iteration while
  // the objective hovers at the cutoff (degenerate stalls recompute never).
  bool obj_exact = true;

  for (;;) {
    if (*iterations >= options_.max_iterations) return LpStatus::kIterationLimit;

    // Leaving row: the most violated basic variable, scaled by the devex
    // row norms when enabled (violation^2 / gamma_i, approx. steepest edge).
    int r = -1;
    double best_score = 0.0;
    bool below = false;
    for (int i = 0; i < m_; ++i) {
      const int p = basis_[static_cast<std::size_t>(i)];
      const double lo_gap = lower_[static_cast<std::size_t>(p)] - xb_[static_cast<std::size_t>(i)];
      const double hi_gap = xb_[static_cast<std::size_t>(i)] - upper_[static_cast<std::size_t>(p)];
      const double gap = lo_gap > hi_gap ? lo_gap : hi_gap;
      if (gap <= kFeasTol) continue;
      const double score =
          use_devex ? gap * gap / devex_row_w_[static_cast<std::size_t>(i)] : gap;
      if (score > best_score) {
        best_score = score;
        r = i;
        below = lo_gap > hi_gap;
      }
    }
    if (r == -1) return LpStatus::kOptimal;  // primal feasible again
    if (use_devex && devex_row_w_[static_cast<std::size_t>(r)] > kDevexResetLimit) {
      std::fill(devex_row_w_.begin(), devex_row_w_.end(), 1.0);
      ++stats_.devex_resets;
    }

    if (obj >= cutoff) {
      // The bound only ever grows; confirm with an exact recomputation
      // before pruning on it — unless the running value is already exact.
      if (!obj_exact) {
        obj = internal_objective();
        obj_exact = true;
      }
      if (obj >= cutoff) return LpStatus::kCutoff;
    }

    const int p = basis_[static_cast<std::size_t>(r)];
    const double e = below ? xb_[static_cast<std::size_t>(r)] - lower_[static_cast<std::size_t>(p)]
                           : xb_[static_cast<std::size_t>(r)] - upper_[static_cast<std::size_t>(p)];
    const double s = below ? -1.0 : 1.0;
    gather_row(r, rho);
    compute_pivot_row_alphas(rho);

    // Dual ratio test, two passes over the pivot row's nonzero columns:
    // find the smallest ratio keeping every nonbasic reduced cost on its
    // feasible side, then take the largest pivot inside a small window
    // above it (numerical stability; tiny pivots are what drive the basis
    // singular).  Columns outside alpha_touched_ have alpha 0 and can
    // neither enter nor need a d update.
    auto dual_ratio = [&](int j) -> double {
      const double a = s * work_alpha_[static_cast<std::size_t>(j)];
      if (at_upper_[static_cast<std::size_t>(j)] ? a >= -ztol : a <= ztol) return kInfinity;
      return std::max(d_[static_cast<std::size_t>(j)] / a, 0.0);  // clamp drift
    };
    double min_ratio = kInfinity;
    for (const int j : alpha_touched_) {
      if (basic_row_[static_cast<std::size_t>(j)] >= 0) continue;
      if (upper_[static_cast<std::size_t>(j)] - lower_[static_cast<std::size_t>(j)] <= ztol) {
        continue;  // fixed column can never enter
      }
      min_ratio = std::min(min_ratio, dual_ratio(j));
    }
    if (!std::isfinite(min_ratio)) return LpStatus::kInfeasible;  // dual unbounded
    int q = -1;
    double best_mag = 0.0;
    double alpha_q = 0.0;
    const double window = min_ratio + (bland ? 0.0 : kDualSignTol);
    for (const int j : alpha_touched_) {
      if (basic_row_[static_cast<std::size_t>(j)] >= 0) continue;
      if (upper_[static_cast<std::size_t>(j)] - lower_[static_cast<std::size_t>(j)] <= ztol) continue;
      if (dual_ratio(j) > window) continue;
      const double mag = std::abs(work_alpha_[static_cast<std::size_t>(j)]);
      if (q == -1 || (bland ? j < q : mag > best_mag)) {
        q = j;
        best_mag = mag;
        alpha_q = work_alpha_[static_cast<std::size_t>(j)];
      }
    }

    ftran(q, w);
    const double delta = e / alpha_q;  // entering movement off its bound
    const double entering_value = rest_value(q) + delta;
    const double theta_d = d_[static_cast<std::size_t>(q)] / alpha_q;

    for (int i = 0; i < m_; ++i) {
      xb_[static_cast<std::size_t>(i)] -= w[static_cast<std::size_t>(i)] * delta;
    }
    for (const int j : alpha_touched_) {
      if (basic_row_[static_cast<std::size_t>(j)] >= 0 || j == q) continue;
      const double alpha = work_alpha_[static_cast<std::size_t>(j)];
      if (alpha != 0.0) d_[static_cast<std::size_t>(j)] -= theta_d * alpha;
    }
    d_[static_cast<std::size_t>(p)] = -theta_d;
    d_[static_cast<std::size_t>(q)] = 0.0;

    if (use_devex) {
      // Row-norm update rides the FTRAN column already in hand: gamma_i is
      // kept a valid reference-framework weight for the new basis.
      const double ar = w[static_cast<std::size_t>(r)];  // == alpha_q up to drift
      const double inv_ar2 = 1.0 / (ar * ar);
      const double gr = devex_row_w_[static_cast<std::size_t>(r)];
      for (int i = 0; i < m_; ++i) {
        if (i == r) continue;
        const double wi = w[static_cast<std::size_t>(i)];
        if (wi == 0.0) continue;
        const double cand = wi * wi * inv_ar2 * gr;
        if (cand > devex_row_w_[static_cast<std::size_t>(i)]) {
          devex_row_w_[static_cast<std::size_t>(i)] = cand;
        }
      }
      devex_row_w_[static_cast<std::size_t>(r)] = std::max(gr * inv_ar2, 1.0);
    }

    at_upper_[static_cast<std::size_t>(p)] = !below;
    basis_[static_cast<std::size_t>(r)] = q;
    basic_row_[static_cast<std::size_t>(q)] = r;
    basic_row_[static_cast<std::size_t>(p)] = -1;
    const bool rep_ok = apply_basis_change(r, w);
    xb_[static_cast<std::size_t>(r)] = entering_value;

    const double gain = theta_d * e;  // >= 0: the dual objective is monotone
    obj += gain;
    if (gain != 0.0) obj_exact = false;
    if (gain < ztol) {
      if (++degenerate_streak > kBlandThreshold) bland = true;
    } else {
      degenerate_streak = 0;
    }

    ++*iterations;
    ++stats_.iterations;
    ++stats_.dual_pivots;
    if (!rep_ok || needs_refactor()) {
      if (!refactor()) return LpStatus::kIterationLimit;  // numerically wedged basis
      obj = internal_objective();
      obj_exact = true;
    }
  }
}

// ------------------------------------------------------------- entry points

LpResult LpSolver::cold_solve_current_bounds() {
  ++stats_.cold_solves;
  has_basis_ = false;
  in_phase2_ = false;
  reset_to_logical_basis();

  std::int64_t iterations = 0;
  const LpStatus feasibility = phase1(&iterations);
  if (feasibility != LpStatus::kOptimal) {
    LpResult result;
    result.status = feasibility == LpStatus::kInfeasible ? LpStatus::kInfeasible
                                                         : LpStatus::kIterationLimit;
    result.iterations = iterations;
    return result;
  }

  recompute_reduced_costs();
  in_phase2_ = true;
  const LpStatus status = primal_loop(&iterations);
  if (status != LpStatus::kOptimal) {
    LpResult result;
    result.status = status;
    result.iterations = iterations;
    return result;
  }
  has_basis_ = true;
  return extract(iterations, false);
}

LpResult LpSolver::solve(const std::vector<double>& lower, const std::vector<double>& upper) {
  set_structural_bounds(lower, upper);
  return cold_solve_current_bounds();
}

LpResult LpSolver::resolve(const std::vector<double>& lower, const std::vector<double>& upper,
                           double cutoff) {
  if (!has_basis_) return solve(lower, upper);
  set_structural_bounds(lower, upper);
  if (!restore_dual_feasible_rests()) return cold_solve_current_bounds();
  recompute_basic_values();
  in_phase2_ = true;

  std::int64_t iterations = 0;
  const LpStatus dual = dual_loop(cutoff, &iterations);
  if (dual == LpStatus::kIterationLimit) {
    // The warm path stalled (degeneracy or drift); a cold run is always
    // available and correct.
    LpResult cold = cold_solve_current_bounds();
    cold.iterations += iterations;
    return cold;
  }
  if (dual == LpStatus::kCutoff || dual == LpStatus::kInfeasible) {
    // The basis stays dual feasible, so the next resolve can warm start.
    ++stats_.warm_solves;
    LpResult result;
    result.status = dual;
    result.iterations = iterations;
    result.warm_started = true;
    return result;
  }

  // Primal feasible again: refresh the reduced costs and certify optimality
  // with a (usually zero-pivot) primal cleanup pass.
  recompute_reduced_costs();
  const LpStatus status = primal_loop(&iterations);
  if (status == LpStatus::kOptimal) {
    ++stats_.warm_solves;
    has_basis_ = true;
    return extract(iterations, true);
  }
  has_basis_ = false;
  LpResult result;
  result.status = status;
  result.iterations = iterations;
  result.warm_started = true;
  return result;
}

// ---------------------------------------------------- cut-loop row support

void LpSolver::tableau_row(int r, LpTableauRow* out) {
  require(has_basis_ && r >= 0 && r < m_, "tableau_row requires an optimal basis");
  out->basic_col = basis_[static_cast<std::size_t>(r)];
  out->value = xb_[static_cast<std::size_t>(r)];
  out->cols.clear();
  out->alphas.clear();
  gather_row(r, work_row_);
  compute_pivot_row_alphas(work_row_);
  for (const int j : alpha_touched_) {
    if (basic_row_[static_cast<std::size_t>(j)] >= 0) continue;  // basic: alpha unused
    const double alpha = work_alpha_[static_cast<std::size_t>(j)];
    // Alphas at roundoff level contribute O(1e-12) to a cut coefficient; the
    // generator's rhs safety margin absorbs that, so drop them here.
    if (std::abs(alpha) <= 1e-12) continue;
    out->cols.push_back(j);
    out->alphas.push_back(alpha);
  }
}

bool LpSolver::append_rows(const std::vector<LpCutRow>& rows) {
  if (rows.empty()) return true;
  require(has_basis_, "append_rows requires a solved basis");
  const int added = static_cast<int>(rows.size());
  const int old_total = total_columns();

  // Grow the row-major mirror and rhs.  Entries are sorted by column so the
  // per-row layout matches what the Model constructor would have produced.
  for (const LpCutRow& row : rows) {
    require(row.cols.size() == row.vals.size(), "cut row shape mismatch");
    std::vector<std::pair<int, double>> entries;
    entries.reserve(row.cols.size());
    for (std::size_t k = 0; k < row.cols.size(); ++k) {
      const int j = row.cols[k];
      require(j >= 0 && j < n_, "cut row touches a non-structural column");
      if (row.vals[k] != 0.0) entries.emplace_back(j, row.vals[k]);
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [j, v] : entries) {
      row_col_.push_back(j);
      row_val_.push_back(v);
    }
    row_start_.push_back(static_cast<int>(row_col_.size()));
    rhs_.push_back(row.rhs);
  }
  m_ += added;

  // Rebuild the CSC columns from the mirror (row-sorted within each column
  // because rows are scanned in order).
  col_start_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const int j : row_col_) ++col_start_[static_cast<std::size_t>(j) + 1];
  for (int j = 0; j < n_; ++j) {
    col_start_[static_cast<std::size_t>(j) + 1] += col_start_[static_cast<std::size_t>(j)];
  }
  std::vector<int> next(col_start_.begin(), col_start_.end() - 1);
  std::vector<int> new_col_row(row_col_.size());
  std::vector<double> new_col_val(row_val_.size());
  for (int i = 0; i < m_; ++i) {
    for (int idx = row_start_[static_cast<std::size_t>(i)]; idx < row_start_[static_cast<std::size_t>(i) + 1]; ++idx) {
      const int j = row_col_[static_cast<std::size_t>(idx)];
      const int at = next[static_cast<std::size_t>(j)]++;
      new_col_row[static_cast<std::size_t>(at)] = i;
      new_col_val[static_cast<std::size_t>(at)] = row_val_[static_cast<std::size_t>(idx)];
    }
  }
  col_row_ = std::move(new_col_row);
  col_val_ = std::move(new_col_val);

  // Column-indexed state grows at the tail: old logical columns keep their
  // indices (n_ + row), the new rows' logicals land after them.
  const int total = total_columns();
  lower_.resize(static_cast<std::size_t>(total), 0.0);
  upper_.resize(static_cast<std::size_t>(total), kInfinity);
  at_upper_.resize(static_cast<std::size_t>(total), 0);
  basic_row_.resize(static_cast<std::size_t>(total), -1);
  d_.resize(static_cast<std::size_t>(total), 0.0);
  work_alpha_.resize(static_cast<std::size_t>(total), 0.0);
  alpha_stamp_.resize(static_cast<std::size_t>(total), 0);
  devex_w_.resize(static_cast<std::size_t>(total), 1.0);

  // Row-indexed state.
  xb_.resize(static_cast<std::size_t>(m_), 0.0);
  work_col_.resize(static_cast<std::size_t>(m_), 0.0);
  work_row_.resize(static_cast<std::size_t>(m_), 0.0);
  work_rhs_.resize(static_cast<std::size_t>(m_), 0.0);
  devex_row_w_.resize(static_cast<std::size_t>(m_), 1.0);
  if (!sparse_basis()) {
    binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
  }

  // Each new slack enters the basis: the basis matrix becomes [[B,0],[C,I]],
  // nonsingular whenever B was, and the new rows' duals start at zero so the
  // existing reduced costs are unchanged.
  for (int k = 0; k < added; ++k) {
    const int j = old_total + k;
    basis_.push_back(j);
    basic_row_[static_cast<std::size_t>(j)] = (m_ - added) + k;
  }
  stats_.rows_appended += added;
  in_phase2_ = true;  // refactor() refreshes the reduced costs too
  if (!refactor()) {
    has_basis_ = false;
    return false;
  }
  return true;
}

LpResult solve_lp(const Model& model, const LpOptions& options,
                  const std::vector<double>* lower_override,
                  const std::vector<double>* upper_override) {
  if (lower_override) {
    require(static_cast<int>(lower_override->size()) == model.variable_count(),
            "lower_override size mismatch");
  }
  if (upper_override) {
    require(static_cast<int>(upper_override->size()) == model.variable_count(),
            "upper_override size mismatch");
  }
  std::vector<double> lower, upper;
  lower.reserve(static_cast<std::size_t>(model.variable_count()));
  upper.reserve(static_cast<std::size_t>(model.variable_count()));
  for (int j = 0; j < model.variable_count(); ++j) {
    const Variable& v = model.variable(VarId{j});
    const double lo = lower_override ? (*lower_override)[static_cast<std::size_t>(j)] : v.lower;
    const double hi = upper_override ? (*upper_override)[static_cast<std::size_t>(j)] : v.upper;
    // A bound box that is empty in any coordinate is trivially infeasible.
    if (lo > hi) {
      LpResult r;
      r.status = LpStatus::kInfeasible;
      return r;
    }
    lower.push_back(lo);
    upper.push_back(hi);
  }
  LpSolver solver(model, options);
  return solver.solve(lower, upper);
}

}  // namespace fsyn::ilp
