#include "ilp/lu.hpp"

#include <algorithm>
#include <cmath>

namespace fsyn::ilp {

namespace {
// Relative Markowitz threshold: a candidate pivot must be at least this
// fraction of the largest entry in its row.  0.1 is the classic trade-off
// between stability (1.0 = partial pivoting) and fill-in control.
constexpr double kMarkowitzTau = 0.1;
// Absolute floor below which an entry cannot pivot; matches the dense
// refactorization's singularity threshold.
constexpr double kPivotTol = 1e-11;
// An eta update whose pivot is smaller than this is numerically unsafe; the
// caller refactorizes instead.
constexpr double kEtaPivotTol = 1e-9;
// Relative floor: caps the eta multipliers |w_i / pivot| at 1e6, bounding
// the roundoff amplification a single product-form update can introduce.
constexpr double kEtaRelPivotTol = 1e-6;
// Entries this small after a sparse row combination are dropped as noise.
constexpr double kDropTol = 1e-13;
}  // namespace

bool LuFactors::factorize(int m, const std::vector<int>& col_start, const std::vector<int>& rows,
                          const std::vector<double>& vals) {
  m_ = m;
  valid_ = false;
  clear_etas();
  pr_.assign(m, -1);
  pc_.assign(m, -1);
  rowpos_.assign(m, -1);
  l_start_.assign(1, 0);
  l_row_.clear();
  l_val_.clear();
  u_diag_.assign(m, 0.0);
  u_start_.assign(1, 0);
  u_col_.clear();
  u_val_.clear();
  lu_nnz_ = 0;
  basis_nnz_ = 0;

  if (m == 0) {
    valid_ = true;
    return true;
  }

  // Scatter the columns into row-major working storage.
  if (static_cast<int>(work_rows_.size()) < m) work_rows_.resize(m);
  for (int i = 0; i < m; ++i) work_rows_[i].clear();
  col_count_.assign(m, 0);
  row_done_.assign(m, 0);
  col_done_.assign(m, 0);
  for (int j = 0; j < m; ++j) {
    for (int k = col_start[j]; k < col_start[j + 1]; ++k) {
      const double v = vals[k];
      if (v == 0.0) continue;
      work_rows_[rows[k]].push_back({j, v});
      ++col_count_[j];
      ++basis_nnz_;
    }
  }
  acc_.assign(m, 0.0);
  acc_stamp_.assign(m, 0);
  stamp_ = 0;

  for (int step = 0; step < m; ++step) {
    // Markowitz pivot search: among entries that pass the relative
    // magnitude test, minimize (row_nnz-1)*(col_nnz-1); break ties by
    // magnitude.  A full scan of the active submatrix is fine at the basis
    // sizes the scheduler produces (tens to a few hundred rows).
    int piv_row = -1, piv_col = -1;
    double piv_val = 0.0;
    long best_cost = -1;
    for (int i = 0; i < m; ++i) {
      if (row_done_[i]) continue;
      const auto& row = work_rows_[i];
      double rmax = 0.0;
      for (const Entry& e : row) rmax = std::max(rmax, std::abs(e.val));
      if (rmax < kPivotTol) continue;
      const long rcost = static_cast<long>(row.size()) - 1;
      for (const Entry& e : row) {
        const double a = std::abs(e.val);
        if (a < kPivotTol || a < kMarkowitzTau * rmax) continue;
        const long cost = rcost * (col_count_[e.col] - 1);
        if (best_cost < 0 || cost < best_cost ||
            (cost == best_cost && a > std::abs(piv_val))) {
          best_cost = cost;
          piv_row = i;
          piv_col = e.col;
          piv_val = e.val;
        }
      }
    }
    if (piv_row < 0) return false;  // structurally or numerically singular

    pr_[step] = piv_row;
    pc_[step] = piv_col;
    rowpos_[piv_row] = step;
    u_diag_[step] = piv_val;

    // Emit U row `step`: the pivot row minus its pivot entry.
    const auto& prow = work_rows_[piv_row];
    for (const Entry& e : prow) {
      if (e.col == piv_col) continue;
      u_col_.push_back(e.col);
      u_val_.push_back(e.val);
    }
    u_start_.push_back(static_cast<int>(u_col_.size()));

    // Eliminate piv_col from every other active row, recording the
    // multipliers as L column `step`.
    for (int i = 0; i < m; ++i) {
      if (row_done_[i] || i == piv_row) continue;
      auto& row = work_rows_[i];
      double aij = 0.0;
      bool has = false;
      for (const Entry& e : row) {
        if (e.col == piv_col) {
          aij = e.val;
          has = true;
          break;
        }
      }
      if (!has) continue;
      const double mult = aij / piv_val;
      l_row_.push_back(i);
      l_val_.push_back(mult);

      // row_i := row_i - mult * pivot_row, dropping piv_col.
      ++stamp_;
      touched_.clear();
      for (const Entry& e : row) {
        acc_[e.col] = e.val;
        acc_stamp_[e.col] = stamp_;
        if (e.col != piv_col) touched_.push_back(e.col);
      }
      for (const Entry& e : prow) {
        if (e.col == piv_col) continue;
        if (acc_stamp_[e.col] == stamp_) {
          acc_[e.col] -= mult * e.val;
        } else {
          acc_[e.col] = -mult * e.val;
          acc_stamp_[e.col] = stamp_;
          touched_.push_back(e.col);
          ++col_count_[e.col];  // fill-in
        }
      }
      row.clear();
      for (int c : touched_) {
        if (std::abs(acc_[c]) <= kDropTol) {
          --col_count_[c];  // cancellation
          continue;
        }
        row.push_back({c, acc_[c]});
      }
      --col_count_[piv_col];
    }
    l_start_.push_back(static_cast<int>(l_row_.size()));

    // Retire the pivot row and column.
    for (const Entry& e : prow) --col_count_[e.col];
    row_done_[piv_row] = 1;
    col_done_[piv_col] = 1;
  }

  lu_nnz_ = static_cast<std::int64_t>(l_row_.size()) + static_cast<std::int64_t>(u_col_.size()) + m;
  valid_ = true;
  return true;
}

bool LuFactors::update(int r, const std::vector<double>& w) {
  const double pivot = w[r];
  if (std::abs(pivot) < kEtaPivotTol) return false;
  // Relative stability check: the eta multipliers are -w_i / pivot, so a
  // pivot much smaller than the rest of the column amplifies roundoff by
  // the same factor.  Refuse and let the caller refactorize instead —
  // degenerate simplex pivots routinely produce |pivot| ~ 1e-9 against
  // O(1) entries, which would wreck the product form.
  double wmax = 0.0;
  for (int i = 0; i < m_; ++i) wmax = std::max(wmax, std::abs(w[i]));
  if (std::abs(pivot) < kEtaRelPivotTol * wmax) return false;
  const double inv = 1.0 / pivot;
  eta_r_.push_back(r);
  eta_diag_.push_back(inv);
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    const double v = w[i];
    if (v == 0.0) continue;
    eta_slot_.push_back(i);
    eta_coef_.push_back(-v * inv);
  }
  eta_start_.push_back(static_cast<int>(eta_slot_.size()));
  return true;
}

void LuFactors::clear_etas() {
  eta_start_.assign(1, 0);
  eta_r_.clear();
  eta_diag_.clear();
  eta_slot_.clear();
  eta_coef_.clear();
}

void LuFactors::apply_etas(std::vector<double>& x) const {
  const int n = eta_count();
  for (int k = 0; k < n; ++k) {
    const int r = eta_r_[k];
    const double t = x[r];
    if (t == 0.0) continue;
    x[r] = t * eta_diag_[k];
    for (int p = eta_start_[k]; p < eta_start_[k + 1]; ++p) {
      x[eta_slot_[p]] += eta_coef_[p] * t;
    }
  }
}

void LuFactors::apply_etas_transposed(std::vector<double>& x) const {
  for (int k = eta_count() - 1; k >= 0; --k) {
    const int r = eta_r_[k];
    double t = x[r] * eta_diag_[k];
    for (int p = eta_start_[k]; p < eta_start_[k + 1]; ++p) {
      t += eta_coef_[p] * x[eta_slot_[p]];
    }
    x[r] = t;
  }
}

void LuFactors::ftran(std::vector<double>& x) const {
  // Solve L y = P b: apply the multiplier columns in elimination order.
  for (int k = 0; k < m_; ++k) {
    const double t = x[pr_[k]];
    if (t == 0.0) continue;
    for (int p = l_start_[k]; p < l_start_[k + 1]; ++p) {
      x[l_row_[p]] -= l_val_[p] * t;
    }
  }
  // Gather y into elimination order first: the backward pass writes slot
  // positions pc_[l] which may alias row positions pr_[k] still unread.
  thread_local std::vector<double> tmp;
  tmp.resize(m_);
  for (int k = 0; k < m_; ++k) tmp[k] = x[pr_[k]];
  // Solve U z = y backwards; U rows carry original slot indices, so the
  // result lands slot-indexed without a permutation pass.
  for (int k = m_ - 1; k >= 0; --k) {
    double t = tmp[k];
    for (int p = u_start_[k]; p < u_start_[k + 1]; ++p) {
      t -= u_val_[p] * x[u_col_[p]];
    }
    x[pc_[k]] = t / u_diag_[k];
  }
  apply_etas(x);
}

void LuFactors::btran(std::vector<double>& x) const {
  apply_etas_transposed(x);
  // Solve U^T t = b forwards, scattering each resolved component into the
  // remaining equations.
  for (int k = 0; k < m_; ++k) {
    const double t = x[pc_[k]] / u_diag_[k];
    x[pc_[k]] = t;
    if (t == 0.0) continue;
    for (int p = u_start_[k]; p < u_start_[k + 1]; ++p) {
      x[u_col_[p]] -= u_val_[p] * t;
    }
  }
  // x currently holds t_k at position pc_[k]; re-index to elimination order
  // is implicit: L^T solve reads x via pc_/pr_ pairs.  Solve L^T rho = t in
  // reverse elimination order; component k lives at original row pr_[k].
  for (int k = m_ - 1; k >= 0; --k) {
    double t = x[pc_[k]];
    for (int p = l_start_[k]; p < l_start_[k + 1]; ++p) {
      // l_row_[p] is an original row whose elimination step is later than k,
      // so its solution component is already final.
      t -= l_val_[p] * x[pc_[rowpos_[l_row_[p]]]];
    }
    x[pc_[k]] = t;
  }
  // Permute from elimination order (stored at pc_) to original row order.
  // Reuse a small scratch on the stack-free path: out-of-place via acc_ is
  // not available here (const), so do a cycle-safe copy through a local.
  thread_local std::vector<double> tmp;
  tmp.resize(m_);
  for (int k = 0; k < m_; ++k) tmp[pr_[k]] = x[pc_[k]];
  for (int i = 0; i < m_; ++i) x[i] = tmp[i];
}

}  // namespace fsyn::ilp
