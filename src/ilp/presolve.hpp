// Presolve for MILP models: iterated bound propagation.
//
// For each row sum(a_j x_j) <= b, the minimum activity of the other terms
// implies a bound on every variable; integer bounds are rounded inward.
// Iterating to a fixpoint shrinks the branch & bound root box, detects
// trivially infeasible models early, and fixes variables whose bounds
// collapse.  This is the standard first stage of production MILP solvers;
// solve_milp runs it by default.
#pragma once

#include <vector>

#include "ilp/model.hpp"

namespace fsyn::ilp {

enum class PresolveStatus { kOk, kInfeasible };

struct PresolveResult {
  PresolveStatus status = PresolveStatus::kOk;
  std::vector<double> lower;  ///< tightened bounds, model variable order
  std::vector<double> upper;
  int tightenings = 0;        ///< number of individual bound improvements
  int fixed_variables = 0;    ///< variables with lower == upper afterwards
};

struct PresolveOptions {
  int max_rounds = 16;
  double tolerance = 1e-9;
};

/// Propagates bounds through all constraints until a fixpoint or the round
/// limit.  Never loses integer-feasible points: only implied bounds are
/// applied.
PresolveResult presolve(const Model& model, const PresolveOptions& options = {});

}  // namespace fsyn::ilp
