// Exact MILP solver: best-first branch & bound over a persistent
// bounded-variable simplex relaxation (simplex.hpp).
//
// Features mirrored from production solvers because the mapping engine needs
// them: one `LpSolver` reused across all nodes with dual-simplex warm starts
// and objective-cutoff pruning inside the LP, an explicit best-first node
// stack ordered by parent LP bound (no recursion), pseudocost branching,
// warm starts from an initial incumbent (the heuristic mapper), node and
// wall-clock limits with best-found reporting, and a rounding primal
// heuristic at every node.
//
// With `MilpOptions::threads > 0` the tree search runs in parallel: N
// workers pull bound-ordered nodes from a shared pool (global best-first
// heap plus per-worker dive stacks with stealing), each worker owns a
// private warm-started `LpSolver`, and the incumbent is shared through an
// atomic objective so bound pruning takes effect across all workers
// immediately.  `deterministic` trades throughput for bit-identical
// reruns via an epoch-synchronized node-to-worker schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ilp/cuts.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/cancel.hpp"

namespace fsyn::svc {
class ThreadPool;  // optional worker substrate; see MilpOptions::pool
}  // namespace fsyn::svc

namespace fsyn::ilp {

enum class MilpStatus {
  kOptimal,     ///< proven optimal incumbent
  kFeasible,    ///< limit hit; best incumbent returned
  kInfeasible,  ///< no integer point exists
  kUnbounded,   ///< LP relaxation unbounded
  kLimit        ///< limit hit before any incumbent was found
};

/// Order in which open branch-and-bound nodes are expanded.
enum class NodeOrder {
  kBestFirst,   ///< smallest parent LP bound first (deeper/newer on ties)
  kDepthFirst,  ///< classic diving: newest node first
};

/// Per-worker counters of one parallel search (empty for serial solves).
struct MilpWorkerStats {
  std::int64_t nodes = 0;   ///< LP relaxations this worker solved
  std::int64_t steals = 0;  ///< nodes taken from another worker's local stack
  std::int64_t lp_iterations = 0;
  double idle_seconds = 0.0;  ///< time spent without a node to expand
};

struct MilpResult {
  MilpStatus status = MilpStatus::kLimit;
  std::vector<double> values;  ///< incumbent (model order); empty if none
  double objective = 0.0;      ///< incumbent objective, user sense
  double best_bound = 0.0;     ///< proven bound on the optimum, user sense
  std::int64_t nodes = 0;      ///< LP relaxations solved
  std::int64_t lp_iterations = 0;  ///< simplex iterations across all nodes
  /// LP engine counters for this solve: warm/cold solves, primal/dual
  /// pivots, bound flips, refactorizations, LU/eta telemetry.  For parallel
  /// solves this is the sum over every worker's private solver.
  LpSolverStats lp;
  /// LP engine configuration this solve actually ran with (echoed so
  /// telemetry consumers need not thread the options through separately).
  BasisKind lp_basis = BasisKind::kSparseLu;
  PricingRule lp_pricing = PricingRule::kDevex;

  // ---- root cut loop + node-store + branching telemetry -----------------
  /// Counters of the root cutting-plane loop (zeros when cuts are off; the
  /// cut loop's LP work is folded into `lp` / `lp_iterations`).
  CutStats cuts;
  /// High-water footprint of the node/bound-chain arena.
  std::int64_t arena_bytes = 0;
  /// Branching decisions where the blended score was dominated by reliable
  /// per-variable impact data vs. ones that fell back to pseudocosts /
  /// global averages.
  std::int64_t impact_branch_decisions = 0;
  std::int64_t pseudocost_branch_decisions = 0;

  // ---- parallel-search telemetry (zeros / empty for the serial path) ----
  int threads = 0;             ///< workers used; 0 = inline serial search
  std::int64_t steals = 0;     ///< total cross-worker node steals
  double idle_seconds = 0.0;  ///< summed worker idle time
  /// busy_time / (threads * wall); 1.0 for the serial path.
  double parallel_efficiency = 1.0;
  std::vector<MilpWorkerStats> worker_stats;
};

struct MilpOptions {
  std::int64_t max_nodes = 2'000'000;
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  double integrality_tolerance = 1e-6;
  /// Stop when |incumbent - bound| <= gap (absolute, user sense).  The
  /// mapping objectives are integral, so 1 - 1e-6 proves optimality.
  double absolute_gap = 1.0 - 1e-6;
  /// Run bound-propagation presolve before the search (presolve.hpp).
  bool presolve = true;
  LpOptions lp;
  /// Reoptimize each node with the dual simplex from the previous basis
  /// instead of a cold Phase 1 + Phase 2 run.  Off is a debugging aid; the
  /// two paths must agree on every optimum.
  bool lp_warm_start = true;
  NodeOrder node_order = NodeOrder::kBestFirst;
  /// Branch on pseudocost product scores (observed bound gain per unit of
  /// fractionality); falls back to most-fractional until data exists.
  bool pseudocost_branching = true;
  /// Blend impact estimates (absolute objective degradation per bound
  /// change) into the pseudocost score; per-variable signals are trusted
  /// only after `branch_reliability` observations in a direction, global
  /// averages fill in before that.
  bool impact_branching = true;
  int branch_reliability = 2;
  /// Weight of the impact term in the blended estimate (0 = pure per-unit
  /// pseudocosts, 1 = pure absolute impact).
  double impact_weight = 0.5;
  /// Root cutting-plane loop (cuts.hpp): tighten the relaxation before the
  /// tree search starts.  Off must give identical objectives, just more
  /// nodes (the fuzz matrix and perf-smoke CI enforce that parity).
  CutOptions cut_options;
  /// Optional warm-start point; must be feasible for the model.
  std::optional<std::vector<double>> initial_incumbent;
  /// Cooperative cancellation, polled once per node alongside the node and
  /// wall-clock limits; the best incumbent found so far is still returned.
  CancelToken cancel;

  // ---- parallel tree search -------------------------------------------------
  /// Workers exploring the tree concurrently.  0 runs the original inline
  /// serial search (bit-identical to the pre-parallel solver); N >= 1 runs
  /// N workers, each with a private warm-started LpSolver, pulling
  /// bound-ordered nodes from a shared pool (global best-first heap +
  /// per-worker dive stacks with stealing) under a shared incumbent.
  int threads = 0;
  /// Fixes the node-to-worker schedule into synchronized epochs: each
  /// round, the T best open nodes are assigned to workers by index and all
  /// side effects (incumbents, children, pseudocosts) are merged in worker
  /// order at a barrier.  Repeated runs with the same thread count give
  /// bit-identical incumbent trajectories and node counts — provided the
  /// solve is not stopped by the wall-clock limit or cancellation (those
  /// cut the schedule at a timing-dependent epoch).  Slower than the
  /// default asynchronous search; meant for tests and reproducibility.
  bool deterministic = false;
  /// Optional worker substrate: when set (asynchronous mode only), helper
  /// workers are borrowed from this pool with a non-blocking submit instead
  /// of spawning threads, so e.g. the svc batch service and parallel B&B
  /// share one pool without oversubscription.  The calling thread always
  /// participates as worker 0, so progress never depends on the pool having
  /// free capacity (a rejected borrow just means fewer workers).
  svc::ThreadPool* pool = nullptr;
};

MilpResult solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace fsyn::ilp
