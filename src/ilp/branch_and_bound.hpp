// Exact MILP solver: depth-first branch & bound over the bounded-variable
// simplex relaxation (simplex.hpp).
//
// Features mirrored from production solvers because the mapping engine needs
// them: warm starts (an initial incumbent from the heuristic mapper), node
// and wall-clock limits with best-found reporting, a rounding primal
// heuristic at every node, and most-fractional branching with
// nearest-integer-first diving.
#pragma once

#include <optional>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/cancel.hpp"

namespace fsyn::ilp {

enum class MilpStatus {
  kOptimal,     ///< proven optimal incumbent
  kFeasible,    ///< limit hit; best incumbent returned
  kInfeasible,  ///< no integer point exists
  kUnbounded,   ///< LP relaxation unbounded
  kLimit        ///< limit hit before any incumbent was found
};

struct MilpResult {
  MilpStatus status = MilpStatus::kLimit;
  std::vector<double> values;  ///< incumbent (model order); empty if none
  double objective = 0.0;      ///< incumbent objective, user sense
  double best_bound = 0.0;     ///< proven bound on the optimum, user sense
  long nodes = 0;
  int lp_iterations = 0;
};

struct MilpOptions {
  long max_nodes = 2'000'000;
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  double integrality_tolerance = 1e-6;
  /// Stop when |incumbent - bound| <= gap (absolute, user sense).  The
  /// mapping objectives are integral, so 1 - 1e-6 proves optimality.
  double absolute_gap = 1.0 - 1e-6;
  /// Run bound-propagation presolve before the search (presolve.hpp).
  bool presolve = true;
  LpOptions lp;
  /// Optional warm-start point; must be feasible for the model.
  std::optional<std::vector<double>> initial_incumbent;
  /// Cooperative cancellation, polled once per node alongside the node and
  /// wall-clock limits; the best incumbent found so far is still returned.
  CancelToken cancel;
};

MilpResult solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace fsyn::ilp
