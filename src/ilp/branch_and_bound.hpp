// Exact MILP solver: best-first branch & bound over a persistent
// bounded-variable simplex relaxation (simplex.hpp).
//
// Features mirrored from production solvers because the mapping engine needs
// them: one `LpSolver` reused across all nodes with dual-simplex warm starts
// and objective-cutoff pruning inside the LP, an explicit best-first node
// stack ordered by parent LP bound (no recursion), pseudocost branching,
// warm starts from an initial incumbent (the heuristic mapper), node and
// wall-clock limits with best-found reporting, and a rounding primal
// heuristic at every node.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/cancel.hpp"

namespace fsyn::ilp {

enum class MilpStatus {
  kOptimal,     ///< proven optimal incumbent
  kFeasible,    ///< limit hit; best incumbent returned
  kInfeasible,  ///< no integer point exists
  kUnbounded,   ///< LP relaxation unbounded
  kLimit        ///< limit hit before any incumbent was found
};

/// Order in which open branch-and-bound nodes are expanded.
enum class NodeOrder {
  kBestFirst,   ///< smallest parent LP bound first (deeper/newer on ties)
  kDepthFirst,  ///< classic diving: newest node first
};

struct MilpResult {
  MilpStatus status = MilpStatus::kLimit;
  std::vector<double> values;  ///< incumbent (model order); empty if none
  double objective = 0.0;      ///< incumbent objective, user sense
  double best_bound = 0.0;     ///< proven bound on the optimum, user sense
  long nodes = 0;              ///< LP relaxations solved
  std::int64_t lp_iterations = 0;  ///< simplex iterations across all nodes
  /// LP engine counters for this solve: warm/cold solves, primal/dual
  /// pivots, bound flips, refactorizations.
  LpSolverStats lp;
};

struct MilpOptions {
  long max_nodes = 2'000'000;
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  double integrality_tolerance = 1e-6;
  /// Stop when |incumbent - bound| <= gap (absolute, user sense).  The
  /// mapping objectives are integral, so 1 - 1e-6 proves optimality.
  double absolute_gap = 1.0 - 1e-6;
  /// Run bound-propagation presolve before the search (presolve.hpp).
  bool presolve = true;
  LpOptions lp;
  /// Reoptimize each node with the dual simplex from the previous basis
  /// instead of a cold Phase 1 + Phase 2 run.  Off is a debugging aid; the
  /// two paths must agree on every optimum.
  bool lp_warm_start = true;
  NodeOrder node_order = NodeOrder::kBestFirst;
  /// Branch on pseudocost product scores (observed bound gain per unit of
  /// fractionality); falls back to most-fractional until data exists.
  bool pseudocost_branching = true;
  /// Optional warm-start point; must be feasible for the model.
  std::optional<std::vector<double>> initial_incumbent;
  /// Cooperative cancellation, polled once per node alongside the node and
  /// wall-clock limits; the best incumbent found so far is still returned.
  CancelToken cancel;
};

MilpResult solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace fsyn::ilp
