// Two-phase primal simplex for LPs with bounded variables.
//
// This is the workhorse under the branch-and-bound MILP solver that replaces
// Gurobi in this reproduction.  It implements the textbook bounded-variable
// tableau method: nonbasic variables rest at one of their finite bounds, the
// ratio test allows bound flips, and Phase 1 drives artificial variables to
// zero before Phase 2 optimizes the true objective.
//
// The implementation is dense and favours clarity and numerical robustness
// (Bland's anti-cycling fallback, explicit tolerances) over speed; the
// mapping ILPs it must solve have at most a few thousand columns.
#pragma once

#include <optional>
#include <vector>

#include "ilp/model.hpp"

namespace fsyn::ilp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  /// Structural variable values (model order); empty unless kOptimal.
  std::vector<double> values;
  /// Objective in the model's user sense; meaningful only when kOptimal.
  double objective = 0.0;
  int iterations = 0;
};

struct LpOptions {
  int max_iterations = 50000;
  double tolerance = 1e-9;
};

/// Solves the continuous relaxation of `model` (integrality dropped).
///
/// When `lower_override` / `upper_override` are provided they replace the
/// model's variable bounds — this is how branch and bound tightens bounds
/// per node without copying the model.  All variables must have a finite
/// lower or finite upper bound (true for every model this library builds).
LpResult solve_lp(const Model& model, const LpOptions& options = {},
                  const std::vector<double>* lower_override = nullptr,
                  const std::vector<double>* upper_override = nullptr);

}  // namespace fsyn::ilp
