// Sparse revised simplex for LPs with bounded variables, reusable across
// branch-and-bound nodes.
//
// This is the workhorse under the branch-and-bound MILP solver that replaces
// Gurobi in this reproduction.  The constraint matrix is stored column-major
// sparse (CSC; the assay models are >95% zeros) and every row carries a
// logical (slack) column, so the basis always has an all-logical fallback.
// The basis inverse is kept dense and updated in product form with periodic
// refactorization; reduced costs are maintained incrementally and priced
// through a candidate list instead of a full Dantzig recomputation.
//
// `LpSolver` is persistent: after an optimal solve the factorized basis
// stays alive, and `resolve` reoptimizes a changed bound box with the
// bounded-variable *dual* simplex — the reoptimization pattern branch and
// bound needs after a branching bound change — instead of re-running
// Phase 1 + Phase 2 from scratch.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ilp/model.hpp"

namespace fsyn::ilp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// Warm `resolve` only: the objective provably exceeds the caller's
  /// cutoff, so the reoptimization stopped early (the LP itself may be
  /// feasible; its optimum is >= the cutoff).
  kCutoff,
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  /// Structural variable values (model order); empty unless kOptimal.
  std::vector<double> values;
  /// Objective in the model's user sense; meaningful only when kOptimal.
  double objective = 0.0;
  /// Simplex iterations (pivots + bound flips) spent in this call.
  std::int64_t iterations = 0;
  /// True when the call was served by dual-simplex reoptimization of the
  /// previous basis rather than a cold Phase 1 + Phase 2 run.
  bool warm_started = false;
};

struct LpOptions {
  int max_iterations = 50000;
  double tolerance = 1e-9;
  /// Product-form basis updates between full refactorizations (numerical
  /// refresh of the dense inverse, basic values and reduced costs).
  int refactor_interval = 96;
  /// Entering candidates kept per pricing sweep; 0 picks a size from the
  /// column count (partial pricing instead of full Dantzig every pivot).
  int candidate_list_size = 0;
};

/// Lifetime counters of one LpSolver (monotone; never reset).
struct LpSolverStats {
  std::int64_t iterations = 0;        ///< pivots + bound flips, all calls
  std::int64_t primal_pivots = 0;
  std::int64_t dual_pivots = 0;
  std::int64_t bound_flips = 0;
  std::int64_t refactorizations = 0;
  std::int64_t warm_solves = 0;  ///< resolves served by the dual simplex
  std::int64_t cold_solves = 0;  ///< Phase 1 + Phase 2 runs (incl. fallbacks)

  /// Sums counters from another solver (aggregation across solves/layers).
  void accumulate(const LpSolverStats& other) {
    iterations += other.iterations;
    primal_pivots += other.primal_pivots;
    dual_pivots += other.dual_pivots;
    bound_flips += other.bound_flips;
    refactorizations += other.refactorizations;
    warm_solves += other.warm_solves;
    cold_solves += other.cold_solves;
  }
};

/// Persistent bounded-variable revised simplex over one Model.
///
/// The model must outlive the solver and must not change shape (variables,
/// constraints, objective) after construction; only variable bounds vary
/// between calls, which is exactly how branch and bound uses it.
class LpSolver {
 public:
  explicit LpSolver(const Model& model, const LpOptions& options = {});

  /// Cold solve of the LP under the given bound box (structural variables,
  /// model order): all-logical starting basis, Phase 1, then primal Phase 2.
  LpResult solve(const std::vector<double>& lower, const std::vector<double>& upper);

  /// Warm solve: keeps the previous optimal basis, applies the new bound
  /// box and reoptimizes with the dual simplex.  Falls back to a cold solve
  /// when no reusable basis exists or the warm path stalls.  When `cutoff`
  /// is finite (internal minimize-sense objective, no constant), the dual
  /// loop stops with kCutoff as soon as the objective provably exceeds it.
  LpResult resolve(const std::vector<double>& lower, const std::vector<double>& upper,
                   double cutoff = kInfinity);

  const LpSolverStats& stats() const { return stats_; }
  bool has_basis() const { return has_basis_; }

 private:
  // -- geometry helpers -----------------------------------------------------
  int total_columns() const { return n_ + m_; }
  bool is_logical(int j) const { return j >= n_; }
  double rest_value(int j) const {
    return at_upper_[static_cast<std::size_t>(j)] ? upper_[static_cast<std::size_t>(j)]
                                                  : lower_[static_cast<std::size_t>(j)];
  }
  double* binv_col(int k) { return binv_.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(m_); }

  // -- linear algebra -------------------------------------------------------
  void ftran(int j, std::vector<double>& w) const;      ///< w = B^{-1} a_j
  void gather_row(int r, std::vector<double>& rho) const;  ///< rho = e_r' B^{-1}
  double column_dot(const std::vector<double>& y, int j) const;  ///< y . a_j
  void pivot_update_binv(int r, const std::vector<double>& w);
  bool refactor();  ///< rebuild B^{-1}, xb (and d in Phase 2); false if singular

  // -- state management -----------------------------------------------------
  void set_structural_bounds(const std::vector<double>& lower,
                             const std::vector<double>& upper);
  void reset_to_logical_basis();
  void recompute_basic_values();
  void recompute_reduced_costs();
  double internal_objective() const;  ///< minimize-sense, no constant
  bool restore_dual_feasible_rests();  ///< after bound changes; false = cold
  LpResult extract(std::int64_t iterations, bool warm);

  // -- simplex loops --------------------------------------------------------
  LpStatus phase1(std::int64_t* iterations);
  LpStatus primal_loop(std::int64_t* iterations);
  LpStatus dual_loop(double cutoff, std::int64_t* iterations);
  int select_entering_primal(bool bland);
  LpResult cold_solve_current_bounds();

  const Model* model_;
  LpOptions options_;
  int m_ = 0;  ///< rows
  int n_ = 0;  ///< structural columns (logical columns follow)

  // Constraint matrix, structural part, compressed sparse column.
  std::vector<int> col_start_;   ///< size n_+1
  std::vector<int> col_row_;
  std::vector<double> col_val_;
  std::vector<double> rhs_;
  std::vector<double> cost_;     ///< minimize-sense, structural (logicals 0)

  std::vector<double> lower_, upper_;       ///< per column incl. logicals
  std::vector<int> basis_;                  ///< row -> basic column
  std::vector<int> basic_row_;              ///< column -> row, -1 if nonbasic
  std::vector<std::uint8_t> at_upper_;      ///< nonbasic rest side
  std::vector<double> xb_;                  ///< basic values, row order
  std::vector<double> d_;                   ///< Phase-2 reduced costs
  std::vector<double> binv_;                ///< dense B^{-1}, column-major
  bool has_basis_ = false;                  ///< optimal factorized basis alive
  int updates_since_refactor_ = 0;
  bool in_phase2_ = false;                  ///< refactor() refreshes d_ too

  std::vector<double> work_col_, work_row_, work_rhs_;
  std::vector<double> work_alpha_;  ///< per-column pivot-row values (dual)
  std::vector<double> refactor_mat_;
  std::vector<int> candidates_;
  std::vector<std::pair<double, int>> sweep_;  ///< pricing scratch
  LpSolverStats stats_;
};

/// Solves the continuous relaxation of `model` (integrality dropped).
///
/// When `lower_override` / `upper_override` are provided they replace the
/// model's variable bounds — this is how branch and bound tightens bounds
/// per node without copying the model.  All variables must have a finite
/// lower or finite upper bound (true for every model this library builds).
LpResult solve_lp(const Model& model, const LpOptions& options = {},
                  const std::vector<double>* lower_override = nullptr,
                  const std::vector<double>* upper_override = nullptr);

}  // namespace fsyn::ilp
