// Sparse revised simplex for LPs with bounded variables, reusable across
// branch-and-bound nodes.
//
// This is the workhorse under the branch-and-bound MILP solver that replaces
// Gurobi in this reproduction.  The constraint matrix is stored column-major
// sparse (CSC, plus a row-major mirror for pivot-row scatters; the assay
// models are >95% zeros) and every row carries a logical (slack) column, so
// the basis always has an all-logical fallback.
// The basis is represented either as a sparse LU factorization with
// Markowitz pivoting and product-form eta updates (`BasisKind::kSparseLu`,
// the default — FTRAN/BTRAN cost follows the basis sparsity) or as the
// original dense inverse updated in product form (`BasisKind::kDense`, kept
// as a cross-check oracle); both refactorize periodically.  Reduced costs
// are maintained incrementally and priced through a candidate list, scored
// by devex reference-framework weights by default (plain Dantzig remains
// selectable); the dual simplex uses devex row norms the same way.
//
// `LpSolver` is persistent: after an optimal solve the factorized basis
// stays alive, and `resolve` reoptimizes a changed bound box with the
// bounded-variable *dual* simplex — the reoptimization pattern branch and
// bound needs after a branching bound change — instead of re-running
// Phase 1 + Phase 2 from scratch.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "ilp/lu.hpp"
#include "ilp/model.hpp"

namespace fsyn::ilp {

/// Basis representation used by the revised simplex.
enum class BasisKind {
  kDense,     ///< dense B^{-1}, product-form updates (PR 2 behaviour)
  kSparseLu,  ///< Markowitz LU + eta file; cost scales with basis sparsity
};

/// Entering-variable pricing rule (primal Phase 2 and dual row choice).
enum class PricingRule {
  kDantzig,  ///< most-violating reduced cost
  kDevex,    ///< devex reference-framework weights (approx. steepest edge)
};

const char* to_string(BasisKind kind);
const char* to_string(PricingRule rule);
/// Parses "dense" / "sparse_lu" (alias "sparse"); false on unknown input.
bool basis_kind_from_string(std::string_view text, BasisKind* out);
/// Parses "dantzig" / "devex"; false on unknown input.
bool pricing_rule_from_string(std::string_view text, PricingRule* out);

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// Warm `resolve` only: the objective provably exceeds the caller's
  /// cutoff, so the reoptimization stopped early (the LP itself may be
  /// feasible; its optimum is >= the cutoff).
  kCutoff,
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  /// Structural variable values (model order); empty unless kOptimal.
  std::vector<double> values;
  /// Objective in the model's user sense; meaningful only when kOptimal.
  double objective = 0.0;
  /// Simplex iterations (pivots + bound flips) spent in this call.
  std::int64_t iterations = 0;
  /// True when the call was served by dual-simplex reoptimization of the
  /// previous basis rather than a cold Phase 1 + Phase 2 run.
  bool warm_started = false;
};

struct LpOptions {
  int max_iterations = 50000;
  double tolerance = 1e-9;
  /// Product-form basis updates between full refactorizations (numerical
  /// refresh of the factorization, basic values and reduced costs).
  int refactor_interval = 96;
  /// Entering candidates kept per pricing sweep; 0 picks a size from the
  /// column count (partial pricing instead of full pricing every pivot).
  int candidate_list_size = 0;
  /// Basis representation; the dense inverse is kept as an oracle for
  /// cross-checking the sparse LU path (fuzz harness runs both).
  BasisKind basis = BasisKind::kSparseLu;
  /// Pricing rule for primal Phase 2 and the dual leaving-row choice.
  PricingRule pricing = PricingRule::kDevex;
  /// Sparse LU only: refactorize early once the eta file holds more than
  /// this multiple of the factorization's nonzeros (fill control between
  /// the periodic refactorizations).
  double eta_growth_limit = 8.0;
};

/// Lifetime counters of one LpSolver (monotone; never reset).
struct LpSolverStats {
  std::int64_t iterations = 0;        ///< pivots + bound flips, all calls
  std::int64_t primal_pivots = 0;
  std::int64_t dual_pivots = 0;
  std::int64_t bound_flips = 0;
  std::int64_t refactorizations = 0;
  std::int64_t warm_solves = 0;  ///< resolves served by the dual simplex
  std::int64_t cold_solves = 0;  ///< Phase 1 + Phase 2 runs (incl. fallbacks)
  std::int64_t rows_appended = 0;  ///< cut rows grafted onto a warm basis
  // Sparse-LU basis telemetry (zero under BasisKind::kDense).
  std::int64_t lu_refactorizations = 0;  ///< Markowitz factorizations built
  std::int64_t eta_pivots = 0;           ///< basis changes absorbed as etas
  std::int64_t eta_nnz = 0;              ///< total eta-file nonzeros appended
  std::int64_t lu_fill_nnz = 0;          ///< summed L+U nonzeros
  std::int64_t lu_basis_nnz = 0;         ///< summed basis nonzeros (fill ratio denom.)
  std::int64_t devex_resets = 0;         ///< devex reference-framework restarts

  /// Average LU fill-in: (L+U nnz) / (basis nnz) over all factorizations.
  double fill_in_ratio() const {
    return lu_basis_nnz > 0 ? static_cast<double>(lu_fill_nnz) / static_cast<double>(lu_basis_nnz)
                            : 0.0;
  }

  /// Sums counters from another solver (aggregation across solves/layers).
  void accumulate(const LpSolverStats& other) {
    iterations += other.iterations;
    primal_pivots += other.primal_pivots;
    dual_pivots += other.dual_pivots;
    bound_flips += other.bound_flips;
    refactorizations += other.refactorizations;
    warm_solves += other.warm_solves;
    cold_solves += other.cold_solves;
    rows_appended += other.rows_appended;
    lu_refactorizations += other.lu_refactorizations;
    eta_pivots += other.eta_pivots;
    eta_nnz += other.eta_nnz;
    lu_fill_nnz += other.lu_fill_nnz;
    lu_basis_nnz += other.lu_basis_nnz;
    devex_resets += other.devex_resets;
  }
};

/// One row appended to a live LP by the root cut loop: `sum(vals * x) <= rhs`
/// over structural columns only (cut generators substitute slacks away).
struct LpCutRow {
  std::vector<int> cols;
  std::vector<double> vals;
  double rhs = 0.0;
};

/// Read-only view of one simplex tableau row at an optimal basis, used by
/// the Gomory cut generator: `x_B(r) = value - sum(alphas * t)` where each
/// t is the nonbasic column's displacement from its rest bound.
struct LpTableauRow {
  int basic_col = -1;   ///< basic column of row r (may be a logical)
  double value = 0.0;   ///< x_B(r) with nonbasics at their rest bounds
  std::vector<int> cols;       ///< nonbasic columns with a nonzero alpha
  std::vector<double> alphas;  ///< e_r' B^{-1} A entries for those columns
};

/// Persistent bounded-variable revised simplex over one Model.
///
/// The model must outlive the solver and must not change shape (variables,
/// constraints, objective) after construction; only variable bounds vary
/// between calls — plus `append_rows`, which grafts extra `<=` rows (cutting
/// planes) onto the warm basis without a cold restart.
class LpSolver {
 public:
  explicit LpSolver(const Model& model, const LpOptions& options = {});

  /// Cold solve of the LP under the given bound box (structural variables,
  /// model order): all-logical starting basis, Phase 1, then primal Phase 2.
  LpResult solve(const std::vector<double>& lower, const std::vector<double>& upper);

  /// Warm solve: keeps the previous optimal basis, applies the new bound
  /// box and reoptimizes with the dual simplex.  Falls back to a cold solve
  /// when no reusable basis exists or the warm path stalls.  When `cutoff`
  /// is finite (internal minimize-sense objective, no constant), the dual
  /// loop stops with kCutoff as soon as the objective provably exceeds it.
  LpResult resolve(const std::vector<double>& lower, const std::vector<double>& upper,
                   double cutoff = kInfinity);

  const LpSolverStats& stats() const { return stats_; }
  bool has_basis() const { return has_basis_; }

  // -- cut-generation support ----------------------------------------------
  // Cheap structural accessors the root cut loop needs to read the optimal
  // basis.  Columns in [structural_count(), structural_count()+row_count())
  // are the logical (slack) columns, one per row in row order.
  int row_count() const { return m_; }
  int structural_count() const { return n_; }
  bool column_is_logical(int j) const { return is_logical(j); }
  int logical_row(int j) const { return j - n_; }
  double column_lower(int j) const { return lower_[static_cast<std::size_t>(j)]; }
  double column_upper(int j) const { return upper_[static_cast<std::size_t>(j)]; }
  bool column_at_upper(int j) const { return at_upper_[static_cast<std::size_t>(j)] != 0; }
  bool column_basic(int j) const { return basic_row_[static_cast<std::size_t>(j)] >= 0; }
  int basic_column(int r) const { return basis_[static_cast<std::size_t>(r)]; }
  double basic_value(int r) const { return xb_[static_cast<std::size_t>(r)]; }

  /// Extracts tableau row `r` by one BTRAN through the current factors plus
  /// a sparse pivot-row scatter.  Requires `has_basis()`.
  void tableau_row(int r, LpTableauRow* out);

  /// Appends `<=` rows to a solved LP without a cold restart: the CSR/CSC
  /// mirrors grow, each new row gets a `>= 0` slack logical that enters the
  /// basis (the basis matrix becomes [[B,0],[C,I]], nonsingular whenever B
  /// was), and the representation refactorizes exactly once.  The next
  /// `resolve` repairs primal feasibility with the dual simplex.  Returns
  /// false (and drops the basis) if the refactorization fails.
  bool append_rows(const std::vector<LpCutRow>& rows);

 private:
  // -- geometry helpers -----------------------------------------------------
  int total_columns() const { return n_ + m_; }
  bool is_logical(int j) const { return j >= n_; }
  double rest_value(int j) const {
    return at_upper_[static_cast<std::size_t>(j)] ? upper_[static_cast<std::size_t>(j)]
                                                  : lower_[static_cast<std::size_t>(j)];
  }
  double* binv_col(int k) { return binv_.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(m_); }
  bool sparse_basis() const { return options_.basis == BasisKind::kSparseLu; }
  bool devex() const { return options_.pricing == PricingRule::kDevex; }

  // -- linear algebra -------------------------------------------------------
  void ftran(int j, std::vector<double>& w) const;      ///< w = B^{-1} a_j
  void gather_row(int r, std::vector<double>& rho) const;  ///< rho = e_r' B^{-1}
  void btran_vec(const std::vector<double>& v, std::vector<double>& y) const;  ///< y = B^{-T} v
  double column_dot(const std::vector<double>& y, int j) const;  ///< y . a_j
  /// Absorbs the basis change at row r (FTRAN'd entering column w) into the
  /// current representation; false means the representation is stale and
  /// the caller must refactorize (sparse eta pivot too small).
  bool apply_basis_change(int r, const std::vector<double>& w);
  bool needs_refactor() const;
  bool refactor();  ///< rebuild the basis factors, xb (and d in Phase 2); false if singular
  bool factorize_sparse_basis();
  /// Scatters alpha_j = rho . a_j for every column with a nonzero, through
  /// the row-major matrix mirror; fills alpha_touched_ (cost follows the
  /// sparsity of rho instead of the full column count).
  void compute_pivot_row_alphas(const std::vector<double>& rho);
  void reset_devex_weights();

  // -- state management -----------------------------------------------------
  void set_structural_bounds(const std::vector<double>& lower,
                             const std::vector<double>& upper);
  void reset_to_logical_basis();
  void recompute_basic_values();
  void recompute_reduced_costs();
  double internal_objective() const;  ///< minimize-sense, no constant
  bool restore_dual_feasible_rests();  ///< after bound changes; false = cold
  LpResult extract(std::int64_t iterations, bool warm);

  // -- simplex loops --------------------------------------------------------
  LpStatus phase1(std::int64_t* iterations);
  LpStatus primal_loop(std::int64_t* iterations);
  LpStatus dual_loop(double cutoff, std::int64_t* iterations);
  int select_entering_primal(bool bland);
  LpResult cold_solve_current_bounds();

  const Model* model_;
  LpOptions options_;
  int m_ = 0;  ///< rows
  int n_ = 0;  ///< structural columns (logical columns follow)

  // Constraint matrix, structural part, compressed sparse column plus a
  // row-major mirror (same nonzeros) for pivot-row alpha scatters.
  std::vector<int> col_start_;   ///< size n_+1
  std::vector<int> col_row_;
  std::vector<double> col_val_;
  std::vector<int> row_start_;   ///< size m_+1
  std::vector<int> row_col_;
  std::vector<double> row_val_;
  std::vector<double> rhs_;
  std::vector<double> cost_;     ///< minimize-sense, structural (logicals 0)

  std::vector<double> lower_, upper_;       ///< per column incl. logicals
  std::vector<int> basis_;                  ///< row -> basic column
  std::vector<int> basic_row_;              ///< column -> row, -1 if nonbasic
  std::vector<std::uint8_t> at_upper_;      ///< nonbasic rest side
  std::vector<double> xb_;                  ///< basic values, row order
  std::vector<double> d_;                   ///< Phase-2 reduced costs
  std::vector<double> binv_;                ///< dense B^{-1}, column-major (kDense only)
  LuFactors lu_;                            ///< sparse factors (kSparseLu only)
  bool has_basis_ = false;                  ///< optimal factorized basis alive
  int updates_since_refactor_ = 0;
  bool in_phase2_ = false;                  ///< refactor() refreshes d_ too

  std::vector<double> work_col_, work_row_, work_rhs_;
  std::vector<double> work_alpha_;  ///< per-column pivot-row values
  std::vector<std::int64_t> alpha_stamp_;  ///< validity stamp for work_alpha_
  std::vector<int> alpha_touched_;         ///< columns with nonzero alpha
  std::int64_t alpha_epoch_ = 0;
  std::vector<double> devex_w_;      ///< per-column primal devex weights
  std::vector<double> devex_row_w_;  ///< per-row dual devex weights
  std::vector<double> refactor_mat_;
  std::vector<int> fb_start_, fb_row_;  ///< basis-column scratch for the LU
  std::vector<double> fb_val_;
  std::vector<int> candidates_;
  std::vector<std::pair<double, int>> sweep_;  ///< pricing scratch
  LpSolverStats stats_;
};

/// Solves the continuous relaxation of `model` (integrality dropped).
///
/// When `lower_override` / `upper_override` are provided they replace the
/// model's variable bounds — this is how branch and bound tightens bounds
/// per node without copying the model.  All variables must have a finite
/// lower or finite upper bound (true for every model this library builds).
LpResult solve_lp(const Model& model, const LpOptions& options = {},
                  const std::vector<double>* lower_override = nullptr,
                  const std::vector<double>* upper_override = nullptr);

}  // namespace fsyn::ilp
