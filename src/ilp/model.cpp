#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace fsyn::ilp {

namespace {

/// Folds duplicate variable terms and returns them ordered by index.
std::vector<LinearExpr::Term> fold_terms(const LinearExpr& expr, int variable_count) {
  std::map<int, double> folded;
  for (const auto& term : expr.terms()) {
    check_input(term.var.index >= 0 && term.var.index < variable_count,
                "constraint references unknown variable");
    folded[term.var.index] += term.coeff;
  }
  std::vector<LinearExpr::Term> out;
  out.reserve(folded.size());
  for (const auto& [index, coeff] : folded) {
    if (coeff != 0.0) out.push_back({VarId{index}, coeff});
  }
  return out;
}

}  // namespace

VarId Model::add_variable(double lower, double upper, VarType type, std::string name) {
  check_input(lower <= upper, "variable lower bound exceeds upper bound");
  if (type == VarType::kBinary) {
    check_input(lower >= 0.0 && upper <= 1.0, "binary variable bounds must lie in [0,1]");
  }
  Variable v;
  v.lower = lower;
  v.upper = upper;
  v.type = type;
  v.name = std::move(name);
  variables_.push_back(std::move(v));
  objective_.push_back(0.0);
  return VarId{variable_count() - 1};
}

void Model::add_constraint(const LinearExpr& expr, Relation relation, double rhs,
                           std::string name) {
  Constraint c;
  c.terms = fold_terms(expr, variable_count());
  c.relation = relation;
  c.rhs = rhs - expr.constant();
  c.name = std::move(name);
  constraints_.push_back(std::move(c));
}

void Model::set_objective(const LinearExpr& expr, Sense sense) {
  sense_ = sense;
  std::fill(objective_.begin(), objective_.end(), 0.0);
  const double sign = sense == Sense::kMinimize ? 1.0 : -1.0;
  for (const auto& term : fold_terms(expr, variable_count())) {
    objective_[static_cast<std::size_t>(term.var.index)] = sign * term.coeff;
  }
  objective_constant_ = expr.constant();
}

std::int64_t Model::nonzero_count() const {
  std::int64_t count = 0;
  for (const Constraint& c : constraints_) count += static_cast<std::int64_t>(c.terms.size());
  return count;
}

Model::CompressedMatrix Model::compressed_matrix() const {
  CompressedMatrix cm;
  const int n = variable_count();
  const int m = constraint_count();
  const std::size_t nnz = static_cast<std::size_t>(nonzero_count());

  cm.col_start.assign(static_cast<std::size_t>(n) + 1, 0);
  cm.row_start.assign(static_cast<std::size_t>(m) + 1, 0);
  for (int i = 0; i < m; ++i) {
    const Constraint& c = constraints_[static_cast<std::size_t>(i)];
    for (const auto& term : c.terms) ++cm.col_start[static_cast<std::size_t>(term.var.index) + 1];
    cm.row_start[static_cast<std::size_t>(i) + 1] =
        cm.row_start[static_cast<std::size_t>(i)] + static_cast<int>(c.terms.size());
  }
  for (int j = 0; j < n; ++j) {
    cm.col_start[static_cast<std::size_t>(j) + 1] += cm.col_start[static_cast<std::size_t>(j)];
  }

  cm.col_row.resize(nnz);
  cm.col_val.resize(nnz);
  cm.row_col.resize(nnz);
  cm.row_val.resize(nnz);
  std::vector<int> cursor(cm.col_start.begin(), cm.col_start.end() - 1);
  for (int i = 0; i < m; ++i) {
    const Constraint& c = constraints_[static_cast<std::size_t>(i)];
    std::size_t rp = static_cast<std::size_t>(cm.row_start[static_cast<std::size_t>(i)]);
    for (const auto& term : c.terms) {  // terms are folded & column-ordered
      const std::size_t slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(term.var.index)]++);
      cm.col_row[slot] = i;
      cm.col_val[slot] = term.coeff;
      cm.row_col[rp] = term.var.index;
      cm.row_val[rp] = term.coeff;
      ++rp;
    }
  }
  return cm;
}

bool Model::has_integer_variables() const {
  return std::any_of(variables_.begin(), variables_.end(), [](const Variable& v) {
    return v.type != VarType::kContinuous;
  });
}

double Model::objective_value(const std::vector<double>& point) const {
  require(static_cast<int>(point.size()) == variable_count(), "point size mismatch");
  double value = 0.0;
  for (int i = 0; i < variable_count(); ++i) {
    value += objective_[static_cast<std::size_t>(i)] * point[static_cast<std::size_t>(i)];
  }
  return objective_sign() * value + objective_constant_;
}

std::string Model::to_lp_string() const {
  std::ostringstream os;
  auto var_name = [&](int index) {
    const Variable& v = variables_[static_cast<std::size_t>(index)];
    return v.name.empty() ? "x" + std::to_string(index) : v.name;
  };
  auto emit_terms = [&](std::ostringstream& line, const std::vector<LinearExpr::Term>& terms) {
    bool first = true;
    for (const auto& term : terms) {
      if (term.coeff >= 0 && !first) line << " + ";
      if (term.coeff < 0) line << (first ? "- " : " - ");
      const double mag = std::abs(term.coeff);
      if (mag != 1.0) line << mag << ' ';
      line << var_name(term.var.index);
      first = false;
    }
    if (first) line << "0";
  };

  os << (sense_ == Sense::kMinimize ? "Minimize" : "Maximize") << "\n obj: ";
  std::vector<LinearExpr::Term> objective_terms;
  const double sign = objective_sign();
  for (int j = 0; j < variable_count(); ++j) {
    const double coeff = sign * objective_[static_cast<std::size_t>(j)];
    if (coeff != 0.0) objective_terms.push_back({VarId{j}, coeff});
  }
  emit_terms(os, objective_terms);
  os << "\nSubject To\n";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    const Constraint& c = constraints_[i];
    os << ' ' << (c.name.empty() ? "c" + std::to_string(i) : c.name) << ": ";
    emit_terms(os, c.terms);
    switch (c.relation) {
      case Relation::kLessEqual: os << " <= "; break;
      case Relation::kGreaterEqual: os << " >= "; break;
      case Relation::kEqual: os << " = "; break;
    }
    os << c.rhs << '\n';
  }
  os << "Bounds\n";
  for (int j = 0; j < variable_count(); ++j) {
    const Variable& v = variables_[static_cast<std::size_t>(j)];
    os << ' ';
    if (std::isfinite(v.lower)) os << v.lower << " <= ";
    else os << "-inf <= ";
    os << var_name(j);
    if (std::isfinite(v.upper)) os << " <= " << v.upper;
    os << '\n';
  }
  bool any_general = false, any_binary = false;
  for (const Variable& v : variables_) {
    any_general |= v.type == VarType::kInteger;
    any_binary |= v.type == VarType::kBinary;
  }
  if (any_general) {
    os << "General\n";
    for (int j = 0; j < variable_count(); ++j) {
      if (variables_[static_cast<std::size_t>(j)].type == VarType::kInteger) {
        os << ' ' << var_name(j) << '\n';
      }
    }
  }
  if (any_binary) {
    os << "Binary\n";
    for (int j = 0; j < variable_count(); ++j) {
      if (variables_[static_cast<std::size_t>(j)].type == VarType::kBinary) {
        os << ' ' << var_name(j) << '\n';
      }
    }
  }
  os << "End\n";
  return os.str();
}

bool Model::is_feasible(const std::vector<double>& point, double tolerance) const {
  if (static_cast<int>(point.size()) != variable_count()) return false;
  for (int i = 0; i < variable_count(); ++i) {
    const Variable& v = variables_[static_cast<std::size_t>(i)];
    const double x = point[static_cast<std::size_t>(i)];
    if (x < v.lower - tolerance || x > v.upper + tolerance) return false;
    if (v.type != VarType::kContinuous && std::abs(x - std::round(x)) > tolerance) return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& term : c.terms) {
      lhs += term.coeff * point[static_cast<std::size_t>(term.var.index)];
    }
    switch (c.relation) {
      case Relation::kLessEqual:
        if (lhs > c.rhs + tolerance) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < c.rhs - tolerance) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - c.rhs) > tolerance) return false;
        break;
    }
  }
  return true;
}

}  // namespace fsyn::ilp
