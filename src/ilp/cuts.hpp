// Root-node cutting planes for the MILP solver.
//
// Branch and bound explores fewer nodes when the LP relaxation at the root
// is tighter, so before the tree search starts `run_root_cut_loop` rounds of
// two classic cut families are separated against the relaxation optimum:
//
//  - Gomory mixed-integer cuts, derived from the fractional rows of the
//    optimal simplex tableau (one BTRAN per row through the existing basis
//    factors — `LpSolver::tableau_row`), with slack variables substituted
//    away so every cut lives purely in structural-variable space;
//  - knapsack cover cuts, separated combinatorially from the CSR rows of
//    `Model::compressed_matrix` whose variables are all binary.
//
// Generated cuts pass through a bounded `CutPool` that keeps only violated,
// mutually non-parallel rows and ages out cuts that stop separating; the
// survivors of each round are appended to the *warm* LP basis
// (`LpSolver::append_rows` — new slacks enter the basis, one refactorization
// per round) and the relaxation is reoptimized with the dual simplex.  Cuts
// whose slack stays loose for `CutOptions::max_age` consecutive rounds are
// dropped from the final retained set, so the branch-and-bound tree only
// carries rows that were still doing work at the end of the loop.
//
// Every cut is globally valid (satisfied by every integer-feasible point of
// the model under the root bound box), which `tests/test_cuts.cpp` checks by
// full enumeration on the fuzz-instance family.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/cancel.hpp"

namespace fsyn::ilp {

/// Tuning knobs of the root cut loop.  The defaults are deliberately mild:
/// a handful of rounds with a small per-round batch captures most of the
/// tree-size win without inflating the LP.
struct CutOptions {
  bool enabled = true;
  int max_rounds = 8;           ///< separation rounds at the root
  int max_cuts_per_round = 16;  ///< rows appended per round
  int max_pool_size = 64;       ///< unapplied candidates kept between rounds
  double min_violation = 1e-4;  ///< LP-point violation required to enter the pool
  /// Cosine similarity above which a candidate is considered parallel to an
  /// already-selected cut and skipped (near-duplicate rows add no strength).
  double max_parallelism = 0.9;
  /// Rounds a cut may stay inactive (pool: unselected; applied: slack loose)
  /// before it ages out.
  int max_age = 2;
  /// Loop stops early once a round improves the root bound by less than
  /// this (absolute, internal minimize sense).
  double min_bound_improvement = 1e-9;
};

/// Where a cut came from (telemetry and test labelling).
enum class CutKind { kGomory, kCover };

/// One cutting plane `sum(vals * x) <= rhs` over structural variables.
struct Cut {
  CutKind kind = CutKind::kGomory;
  std::vector<int> cols;
  std::vector<double> vals;
  double rhs = 0.0;
  int age = 0;  ///< rounds since the cut last separated / was tight
};

/// Root cut-loop counters; flows SolverStats -> MilpResult -> metrics JSON.
struct CutStats {
  std::int64_t gomory_generated = 0;  ///< GMI cuts that passed numerical vetting
  std::int64_t cover_generated = 0;   ///< cover cuts separated
  std::int64_t applied = 0;           ///< rows appended to the root LP
  std::int64_t retained = 0;          ///< rows still active, handed to the tree
  std::int64_t aged_out = 0;          ///< pool + applied cuts dropped as inactive
  std::int64_t rounds = 0;            ///< separation rounds that appended rows

  void accumulate(const CutStats& other) {
    gomory_generated += other.gomory_generated;
    cover_generated += other.cover_generated;
    applied += other.applied;
    retained += other.retained;
    aged_out += other.aged_out;
    rounds += other.rounds;
  }
};

/// Bounded candidate store between separation rounds.
///
/// `add` rejects rows that are insufficiently violated at the current LP
/// point (or near-parallel to a cut already in the pool); `take_round`
/// extracts the most violated, mutually non-parallel batch for appending;
/// `age_round` ages everything left behind and drops cuts older than
/// `max_age`.  Exposed (rather than buried in the loop) so the unit tests
/// can exercise the aging policy directly.
class CutPool {
 public:
  explicit CutPool(const CutOptions& options) : options_(options) {}

  /// Returns true when the cut was stored.
  bool add(Cut cut, const std::vector<double>& point);
  /// Extracts up to `max_cuts_per_round` violated, mutually non-parallel
  /// cuts, ordered by decreasing violation; removes them from the pool.
  std::vector<Cut> take_round(const std::vector<double>& point);
  /// Ages every remaining cut by one round and drops the expired ones.
  void age_round();

  std::size_t size() const { return cuts_.size(); }
  std::int64_t aged_out() const { return aged_out_; }

 private:
  CutOptions options_;
  std::vector<Cut> cuts_;
  std::int64_t aged_out_ = 0;
};

/// Violation of `cut` at `point` (positive = cut separates the point),
/// normalized by the cut's coefficient norm so thresholds are scale-free.
double cut_violation(const Cut& cut, const std::vector<double>& point);

/// Cosine similarity of two cuts' coefficient vectors (in [0, 1] up to
/// sign); 1 means the rows are parallel.
double cut_parallelism(const Cut& a, const Cut& b);

/// Derives Gomory mixed-integer cuts from every fractional integer basic
/// row of `solver`'s optimal basis.  `applied_cuts` are the cut rows already
/// appended to the solver (row order), needed to substitute their slacks
/// away; rows `< model.constraint_count()` substitute from the model.
/// Bounds are the root box the relaxation was solved under (integer-variable
/// entries must be integral).  Numerically fragile rows are discarded.
std::vector<Cut> generate_gomory_cuts(const Model& model, LpSolver& solver,
                                      const std::vector<Cut>& applied_cuts,
                                      const std::vector<double>& lower,
                                      const std::vector<double>& upper,
                                      const CutOptions& options);

/// Separates knapsack cover cuts from the model rows whose support is all
/// binary (under the root box) against the fractional point `point`.
std::vector<Cut> generate_cover_cuts(const Model& model, const std::vector<double>& lower,
                                     const std::vector<double>& upper,
                                     const std::vector<double>& point,
                                     const CutOptions& options);

/// Result of the root cut loop: the retained (still-active) cuts plus the
/// loop's counters and the LP work it spent.
struct RootCutOutcome {
  std::vector<Cut> cuts;
  CutStats stats;
  LpSolverStats lp;                 ///< the cut loop's own solver counters
  std::int64_t lp_iterations = 0;   ///< simplex iterations spent in the loop
  double root_objective = 0.0;      ///< final root bound (user sense)
  bool root_infeasible = false;     ///< relaxation went infeasible under cuts
};

/// Runs the root separation loop: solve the relaxation under the root box,
/// alternate (separate -> filter -> append -> reoptimize) for at most
/// `options.max_rounds` rounds, and return the cuts still active at the end.
/// Returns an empty outcome when cuts are disabled, the model has no integer
/// variables, or the root relaxation is not optimal.
RootCutOutcome run_root_cut_loop(const Model& model, const std::vector<double>& lower,
                                 const std::vector<double>& upper,
                                 const LpOptions& lp_options, const CutOptions& options,
                                 const CancelToken& cancel);

}  // namespace fsyn::ilp
