#include "ilp/branch_and_bound.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "ilp/presolve.hpp"
#include "obs/trace.hpp"
#include "svc/thread_pool.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::ilp {

namespace {

using Clock = std::chrono::steady_clock;

/// One branching decision: the bound box of `var` after the branch.  Nodes
/// share their ancestors' decisions through an immutable linked chain, so a
/// node costs O(1) memory instead of a full bound-box copy.
struct BoundChange {
  int var = -1;
  double lower = 0.0;
  double upper = 0.0;
};

/// Arena for the bound-change chains.  The old representation heap-allocated
/// one reference-counted `Chain` per branching decision (two mallocs per
/// expanded node plus shared_ptr control blocks — the per-node malloc wall);
/// here links live in geometrically-growing blocks indexed by a 32-bit id,
/// retired links recycle through a free list, and ref counts are intrusive.
///
/// Thread safety: allocation and the free list are mutex-guarded, ref
/// counts are atomic, and chain *reads* are lock-free — the block table is a
/// fixed-size array (no reallocation, ever), a block pointer is written once
/// under the allocation mutex before any id in it can be published, and ids
/// travel between workers only through the node-pool mutexes, which gives
/// readers the required happens-before edge.
class ChainArena {
 public:
  static constexpr std::int32_t kNull = -1;

  struct Link {
    BoundChange change;
    std::int32_t parent = kNull;
    std::atomic<std::int32_t> refs{0};
  };

  /// Allocates a link holding `change` whose parent is `parent` (kNull for a
  /// root-level decision).  The new link starts with one reference — the
  /// caller's — and takes a reference on its parent.
  std::int32_t make(const BoundChange& change, std::int32_t parent) {
    std::int32_t id;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!free_.empty()) {
        id = free_.back();
        free_.pop_back();
      } else {
        id = size_++;
        const int b = block_of(id);
        if (blocks_[static_cast<std::size_t>(b)] == nullptr) {
          const std::size_t capacity = static_cast<std::size_t>(kBase) << b;
          blocks_[static_cast<std::size_t>(b)] = std::make_unique<Link[]>(capacity);
          bytes_ += static_cast<std::int64_t>(capacity * sizeof(Link));
        }
      }
    }
    // The id is private to this thread until it is published through a node
    // queue, so the field writes need no lock.
    Link& link = slot(id);
    link.change = change;
    link.parent = parent;
    link.refs.store(1, std::memory_order_relaxed);
    if (parent != kNull) acquire(parent);
    return id;
  }

  void acquire(std::int32_t id) {
    slot(id).refs.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drops one reference; a link whose count reaches zero returns to the
  /// free list and releases its parent in turn (iteratively, so deep chains
  /// cannot overflow the stack).
  void release(std::int32_t id) {
    while (id != kNull) {
      Link& link = slot(id);
      if (link.refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      const std::int32_t parent = link.parent;
      {
        std::lock_guard<std::mutex> lk(mutex_);
        free_.push_back(id);
      }
      id = parent;
    }
  }

  const BoundChange& change(std::int32_t id) const { return slot(id).change; }
  std::int32_t parent(std::int32_t id) const { return slot(id).parent; }

  /// High-water arena footprint (blocks are recycled, never returned).
  std::int64_t bytes() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return bytes_;
  }

 private:
  // Block b holds kBase << b links covering ids [kBase*(2^b - 1),
  // kBase*(2^(b+1) - 1)); 21 blocks span the whole positive int32 range, so
  // the pointer table is a fixed array and readers never race a vector
  // reallocation.
  static constexpr std::int32_t kBase = 1024;
  static constexpr int kMaxBlocks = 21;

  static int block_of(std::int32_t id) {
    return std::bit_width(static_cast<std::uint32_t>(id) / kBase + 1u) - 1;
  }

  const Link& slot(std::int32_t id) const {
    const int b = block_of(id);
    const std::uint32_t first = static_cast<std::uint32_t>(kBase) * ((1u << b) - 1u);
    return blocks_[static_cast<std::size_t>(b)][static_cast<std::uint32_t>(id) - first];
  }
  Link& slot(std::int32_t id) {
    return const_cast<Link&>(static_cast<const ChainArena*>(this)->slot(id));
  }

  mutable std::mutex mutex_;
  std::array<std::unique_ptr<Link[]>, kMaxBlocks> blocks_;
  std::vector<std::int32_t> free_;
  std::int32_t size_ = 0;
  std::int64_t bytes_ = 0;
};

/// An open node is now a flat 40-byte record: the bound-change chain is a
/// 32-bit arena id instead of a shared_ptr, so pushing / popping / stealing
/// nodes moves trivially-copyable values with no ref-count traffic.
struct Node {
  double bound_score = -kInfinity;  ///< parent LP bound, minimize sense
  double branch_dist = 0.0;  ///< LP-value distance moved by the branch
  std::int64_t seq = 0;      ///< creation order; newest-first on ties
  std::int32_t chain = ChainArena::kNull;  ///< bound-change chain head
  std::int32_t depth = 0;
  int branch_var = -1;  ///< branching bookkeeping for pseudocost updates
  bool branch_up = false;
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MilpOptions& options,
                 const std::vector<double>* presolved_lower = nullptr,
                 const std::vector<double>* presolved_upper = nullptr)
      : model_(model), options_(options), start_(Clock::now()) {
    const int n = model.variable_count();
    root_lower_.reserve(static_cast<std::size_t>(n));
    root_upper_.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const Variable& v = model.variable(VarId{j});
      double lo = presolved_lower ? (*presolved_lower)[static_cast<std::size_t>(j)] : v.lower;
      double hi = presolved_upper ? (*presolved_upper)[static_cast<std::size_t>(j)] : v.upper;
      // Integer variables get their bounds pre-rounded inward so the LP
      // relaxation never explores fractional slivers outside them.
      if (v.type != VarType::kContinuous) {
        lo = std::isfinite(lo) ? std::ceil(lo - 1e-9) : lo;
        hi = std::isfinite(hi) ? std::floor(hi + 1e-9) : hi;
      }
      root_lower_.push_back(lo);
      root_upper_.push_back(hi);
    }
    cur_lower_ = root_lower_;
    cur_upper_ = root_upper_;
    last_heartbeat_ = start_;
    stamp_.assign(static_cast<std::size_t>(n), 0);
    pc_down_sum_.assign(static_cast<std::size_t>(n), 0.0);
    pc_down_count_.assign(static_cast<std::size_t>(n), 0);
    pc_up_sum_.assign(static_cast<std::size_t>(n), 0.0);
    pc_up_count_.assign(static_cast<std::size_t>(n), 0);
    imp_down_sum_.assign(static_cast<std::size_t>(n), 0.0);
    imp_up_sum_.assign(static_cast<std::size_t>(n), 0.0);
  }

  MilpResult run() {
    if (options_.initial_incumbent) {
      require(model_.is_feasible(*options_.initial_incumbent, 1e-5),
              "warm-start incumbent is not feasible");
      incumbent_ = *options_.initial_incumbent;
      incumbent_score_ = min_score(model_.objective_value(*incumbent_));
    }

    LpSolver solver(model_, options_.lp);
    push_node(Node{});
    bool unbounded = false;

    // The body runs as a function so a popped node's chain reference is
    // dropped on every exit path (prune, infeasible, integral, branch).
    enum class Step { kContinue, kUnbounded, kLimit };
    auto process = [&](const Node& node) -> Step {
      if (pruned_by_bound(node.bound_score)) return Step::kContinue;
      ++nodes_;
      if ((nodes_ & 0x7f) == 0) report_progress(false);

      materialize(node);
      const double cutoff =
          incumbent_.has_value() ? incumbent_score_ - options_.absolute_gap : kInfinity;
      const LpResult lp = options_.lp_warm_start ? solver.resolve(cur_lower_, cur_upper_, cutoff)
                                                 : solver.solve(cur_lower_, cur_upper_);
      lp_iterations_ += lp.iterations;

      if (lp.status == LpStatus::kInfeasible || lp.status == LpStatus::kCutoff) {
        return Step::kContinue;
      }
      if (lp.status == LpStatus::kUnbounded) return Step::kUnbounded;
      if (lp.status == LpStatus::kIterationLimit) {
        pending_bound_ = node.bound_score;
        return Step::kLimit;
      }

      const double node_score = min_score(lp.objective);
      if (node.branch_var >= 0) {
        update_pseudocost(node, node_score);
      } else {
        root_bound_score_ = node_score;
      }
      if (pruned_by_bound(node_score)) return Step::kContinue;

      const int branch_var = select_branch_var(lp.values);
      if (branch_var == -1) {
        // LP solution is already integral: snap and adopt.
        std::vector<double> snapped = lp.values;
        for (int j = 0; j < model_.variable_count(); ++j) {
          if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
          snapped[static_cast<std::size_t>(j)] = std::round(snapped[static_cast<std::size_t>(j)]);
        }
        if (model_.is_feasible(snapped)) offer_incumbent(std::move(snapped));
        return Step::kContinue;
      }

      try_rounding(lp.values);
      if (pruned_by_bound(node_score)) return Step::kContinue;

      branch(node, branch_var, lp.values, node_score);
      return Step::kContinue;
    };

    while (!open_.empty()) {
      if (limits_exceeded()) {
        limit_hit_ = true;
        break;
      }
      const Node node = pop_node();
      const Step step = process(node);
      arena_.release(node.chain);
      if (step == Step::kUnbounded) {
        unbounded = true;
        break;
      }
      if (step == Step::kLimit) {
        limit_hit_ = true;
        break;
      }
    }

    report_progress(true);  // close the counter tracks at their final values

    MilpResult result;
    result.nodes = nodes_;
    result.lp_iterations = lp_iterations_;
    result.lp = solver.stats();
    result.arena_bytes = arena_.bytes();
    result.impact_branch_decisions = impact_decisions_;
    result.pseudocost_branch_decisions = pseudocost_decisions_;
    if (unbounded && !incumbent_.has_value()) {
      result.status = MilpStatus::kUnbounded;
      return result;
    }
    const double bound_score = remaining_bound_score();
    if (incumbent_.has_value()) {
      result.values = *incumbent_;
      result.objective = model_.objective_value(*incumbent_);
      result.status = limit_hit_ ? MilpStatus::kFeasible : MilpStatus::kOptimal;
      result.best_bound = limit_hit_ ? user_value(bound_score) : result.objective;
    } else {
      result.status = limit_hit_ ? MilpStatus::kLimit : MilpStatus::kInfeasible;
      result.best_bound = user_value(limit_hit_ ? bound_score : root_bound_score_);
    }
    return result;
  }

 private:
  /// Converts a user-sense objective into an always-minimized score.  This
  /// is also the LP engine's internal objective, so incumbent scores can be
  /// handed to LpSolver::resolve as cutoffs directly.
  double min_score(double user_objective) const {
    return model_.objective_sign() * (user_objective - model_.objective_constant());
  }
  double user_value(double score) const {
    return model_.objective_sign() * score + model_.objective_constant();
  }

  bool pruned_by_bound(double score) const {
    return incumbent_.has_value() && score >= incumbent_score_ - options_.absolute_gap;
  }

  /// Emits the B&B progress telemetry: trace counter samples (incumbent /
  /// bound / open nodes, one track set per thread so concurrent solves do
  /// not interleave) plus an INFO heartbeat.  Rate-limited; called every
  /// 128 nodes, on incumbent improvements and once at the end, so the cost
  /// with tracing and INFO logging off is a branch per 128 nodes.
  void report_progress(bool force) {
    const bool tracing = obs::tracing_enabled();
    const bool logging = log_level() <= LogLevel::kInfo;
    if (!tracing && !logging) return;
    const Clock::time_point now = Clock::now();
    if (tracing && (force || now - last_counter_emit_ >= std::chrono::milliseconds(20))) {
      last_counter_emit_ = now;
      obs::Tracer& tracer = obs::Tracer::instance();
      const std::string suffix = " t" + std::to_string(current_thread_id());
      if (incumbent_.has_value()) {
        tracer.counter("ilp", "milp incumbent" + suffix, user_value(incumbent_score_));
      }
      const double bound = remaining_bound_score();
      if (std::isfinite(bound)) {
        tracer.counter("ilp", "milp bound" + suffix, user_value(bound));
      }
      tracer.counter("ilp", "milp open_nodes" + suffix, static_cast<double>(open_.size()));
    }
    if (logging && (now - last_heartbeat_ >= std::chrono::seconds(5))) {
      last_heartbeat_ = now;
      log_info("milp: ", nodes_, " nodes, incumbent ",
               incumbent_.has_value() ? detail::concat(user_value(incumbent_score_))
                                      : std::string("none"),
               ", bound ", user_value(remaining_bound_score()), ", open ", open_.size());
    }
  }

  bool limits_exceeded() {
    if (nodes_ >= options_.max_nodes) return true;
    if (options_.time_limit_seconds > 0.0) {
      const double elapsed = std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed > options_.time_limit_seconds) return true;
    }
    if (options_.cancel.valid() && options_.cancel.cancelled()) return true;
    return false;
  }

  // ---- open list -----------------------------------------------------------

  /// "Worse" ordering for the best-first heap: larger parent bound loses;
  /// on ties, shallower loses, then older loses (prefer diving).
  static bool worse(const Node& a, const Node& b) {
    if (a.bound_score != b.bound_score) return a.bound_score > b.bound_score;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.seq < b.seq;
  }

  void push_node(Node node) {
    open_.push_back(std::move(node));
    if (options_.node_order == NodeOrder::kBestFirst) {
      std::push_heap(open_.begin(), open_.end(), worse);
    }
  }

  Node pop_node() {
    if (options_.node_order == NodeOrder::kBestFirst) {
      std::pop_heap(open_.begin(), open_.end(), worse);
    }
    Node node = std::move(open_.back());
    open_.pop_back();
    return node;
  }

  /// Tightest proven bound over everything still unexplored.
  double remaining_bound_score() const {
    double bound = pending_bound_;
    for (const Node& node : open_) bound = std::min(bound, node.bound_score);
    if (!std::isfinite(bound) && bound > 0.0) bound = root_bound_score_;
    return bound;
  }

  /// Applies a node's bound-change chain on top of the root box.  The chain
  /// is walked leaf-to-root with deepest-wins stamping, after first undoing
  /// the previous node's changes (O(changes), not O(variables)).
  void materialize(const Node& node) {
    for (const int v : touched_) {
      cur_lower_[static_cast<std::size_t>(v)] = root_lower_[static_cast<std::size_t>(v)];
      cur_upper_[static_cast<std::size_t>(v)] = root_upper_[static_cast<std::size_t>(v)];
    }
    touched_.clear();
    ++epoch_;
    for (std::int32_t id = node.chain; id != ChainArena::kNull; id = arena_.parent(id)) {
      const BoundChange& change = arena_.change(id);
      const int v = change.var;
      if (stamp_[static_cast<std::size_t>(v)] == epoch_) continue;  // deeper change wins
      stamp_[static_cast<std::size_t>(v)] = epoch_;
      touched_.push_back(v);
      cur_lower_[static_cast<std::size_t>(v)] = change.lower;
      cur_upper_[static_cast<std::size_t>(v)] = change.upper;
    }
  }

  // ---- branching -----------------------------------------------------------

  /// Picks the integer variable whose LP value is most fractional
  /// (fractional part closest to 0.5); -1 when the point is integral.
  int most_fractional(const std::vector<double>& values) const {
    int best = -1;
    double best_distance_to_half = 1.0;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      const double v = values[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac <= options_.integrality_tolerance) continue;
      const double distance_to_half = std::abs(frac - 0.5);
      if (best == -1 || distance_to_half < best_distance_to_half) {
        best = j;
        best_distance_to_half = distance_to_half;
      }
    }
    return best;
  }

  /// Branching score over the fractional variables: the classic pseudocost
  /// product rule, blended with impact estimates (absolute objective
  /// degradation per branch).  A variable's own statistics are trusted only
  /// after `branch_reliability` observations in that direction; the global
  /// averages stand in below the threshold, and until any observation
  /// exists at all the most-fractional variable is used.
  int select_branch_var(const std::vector<double>& values) {
    const std::int64_t total = pc_observations_down_ + pc_observations_up_;
    if (!options_.pseudocost_branching || total == 0) return most_fractional(values);
    const double avg_down =
        pc_observations_down_ > 0 ? pc_total_down_ / static_cast<double>(pc_observations_down_) : 1.0;
    const double avg_up =
        pc_observations_up_ > 0 ? pc_total_up_ / static_cast<double>(pc_observations_up_) : 1.0;
    const double avg_imp_down =
        pc_observations_down_ > 0 ? imp_total_down_ / static_cast<double>(pc_observations_down_) : 1.0;
    const double avg_imp_up =
        pc_observations_up_ > 0 ? imp_total_up_ / static_cast<double>(pc_observations_up_) : 1.0;
    const std::int64_t reliability = std::max(options_.branch_reliability, 1);
    const double iw =
        options_.impact_branching ? std::clamp(options_.impact_weight, 0.0, 1.0) : 0.0;
    int best = -1;
    double best_score = -1.0;
    double best_distance_to_half = 1.0;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      const double v = values[static_cast<std::size_t>(j)];
      const double down_frac = v - std::floor(v);
      const double frac = std::min(down_frac, 1.0 - down_frac);
      if (frac <= options_.integrality_tolerance) continue;
      const std::size_t sj = static_cast<std::size_t>(j);
      const bool down_reliable = pc_down_count_[sj] >= reliability;
      const bool up_reliable = pc_up_count_[sj] >= reliability;
      const double pcd =
          down_reliable ? pc_down_sum_[sj] / static_cast<double>(pc_down_count_[sj]) : avg_down;
      const double pcu =
          up_reliable ? pc_up_sum_[sj] / static_cast<double>(pc_up_count_[sj]) : avg_up;
      const double impd =
          down_reliable ? imp_down_sum_[sj] / static_cast<double>(pc_down_count_[sj]) : avg_imp_down;
      const double impu =
          up_reliable ? imp_up_sum_[sj] / static_cast<double>(pc_up_count_[sj]) : avg_imp_up;
      const double est_down = (1.0 - iw) * pcd * down_frac + iw * impd;
      const double est_up = (1.0 - iw) * pcu * (1.0 - down_frac) + iw * impu;
      const double score = std::max(est_down, 1e-6) * std::max(est_up, 1e-6);
      const double distance_to_half = std::abs(frac - 0.5);
      if (score > best_score ||
          (score == best_score && distance_to_half < best_distance_to_half)) {
        best = j;
        best_score = score;
        best_distance_to_half = distance_to_half;
      }
    }
    if (best != -1) {
      const std::size_t sb = static_cast<std::size_t>(best);
      if (iw > 0.0 && pc_down_count_[sb] >= reliability && pc_up_count_[sb] >= reliability) {
        ++impact_decisions_;
      } else {
        ++pseudocost_decisions_;
      }
    }
    return best;
  }

  void update_pseudocost(const Node& node, double node_score) {
    const double gain = std::max(node_score - node.bound_score, 0.0);
    if (!std::isfinite(gain)) return;  // root bound was unknown
    const double per_unit = gain / std::max(node.branch_dist, 1e-6);
    const std::size_t v = static_cast<std::size_t>(node.branch_var);
    if (node.branch_up) {
      pc_up_sum_[v] += per_unit;
      imp_up_sum_[v] += gain;
      ++pc_up_count_[v];
      pc_total_up_ += per_unit;
      imp_total_up_ += gain;
      ++pc_observations_up_;
    } else {
      pc_down_sum_[v] += per_unit;
      imp_down_sum_[v] += gain;
      ++pc_down_count_[v];
      pc_total_down_ += per_unit;
      imp_total_down_ += gain;
      ++pc_observations_down_;
    }
  }

  /// Creates the two children of `node` around `branch_var`.  Bound boxes
  /// come from the materialized arrays, so ancestor tightenings carry over.
  void branch(const Node& node, int branch_var, const std::vector<double>& values,
              double node_score) {
    const std::size_t v = static_cast<std::size_t>(branch_var);
    const double value = values[v];
    const double floor_v = std::floor(value + options_.integrality_tolerance);
    const double down_dist = std::max(value - floor_v, options_.integrality_tolerance);
    const double up_dist = std::max(floor_v + 1.0 - value, options_.integrality_tolerance);

    Node down;
    down.bound_score = node_score;
    down.depth = node.depth + 1;
    down.branch_var = branch_var;
    down.branch_dist = down_dist;
    down.branch_up = false;
    Node up = down;
    up.branch_dist = up_dist;
    up.branch_up = true;

    const double down_upper = std::min(cur_upper_[v], floor_v);
    const double up_lower = std::max(cur_lower_[v], floor_v + 1.0);
    const bool down_valid = cur_lower_[v] <= down_upper;
    const bool up_valid = up_lower <= cur_upper_[v];
    const bool down_first = (value - floor_v) <= 0.5;

    // Depth-first pops the back, so push the nearer child last; best-first
    // breaks bound ties by seq, so give the nearer child the larger seq.
    auto push_down = [&] {
      if (!down_valid) return;
      down.seq = ++seq_;
      down.chain =
          arena_.make(BoundChange{branch_var, cur_lower_[v], down_upper}, node.chain);
      push_node(down);
    };
    auto push_up = [&] {
      if (!up_valid) return;
      up.seq = ++seq_;
      up.chain = arena_.make(BoundChange{branch_var, up_lower, cur_upper_[v]}, node.chain);
      push_node(up);
    };
    if (down_first) {
      push_up();
      push_down();
    } else {
      push_down();
      push_up();
    }
  }

  // ---- incumbents ----------------------------------------------------------

  /// Rounds the LP point into the node's box and adopts it when feasible.
  void try_rounding(const std::vector<double>& lp_values) {
    std::vector<double> rounded = lp_values;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      double v = std::round(rounded[static_cast<std::size_t>(j)]);
      v = std::clamp(v, cur_lower_[static_cast<std::size_t>(j)],
                     cur_upper_[static_cast<std::size_t>(j)]);
      rounded[static_cast<std::size_t>(j)] = v;
    }
    if (model_.is_feasible(rounded)) offer_incumbent(std::move(rounded));
  }

  void offer_incumbent(std::vector<double> point) {
    const double score = min_score(model_.objective_value(point));
    if (!incumbent_.has_value() || score < incumbent_score_) {
      incumbent_ = std::move(point);
      incumbent_score_ = score;
      log_debug("milp: new incumbent ", user_value(score), " after ", nodes_, " nodes");
      if (obs::tracing_enabled()) report_progress(true);
    }
  }

  const Model& model_;
  const MilpOptions& options_;
  Clock::time_point start_;

  std::vector<double> root_lower_, root_upper_;  ///< presolved root box
  std::vector<double> cur_lower_, cur_upper_;    ///< materialized node box
  std::vector<std::int64_t> stamp_;
  std::vector<int> touched_;
  std::int64_t epoch_ = 0;

  ChainArena arena_;
  std::vector<Node> open_;
  std::int64_t seq_ = 0;

  std::vector<double> pc_down_sum_, pc_up_sum_;
  std::vector<double> imp_down_sum_, imp_up_sum_;
  std::vector<std::int64_t> pc_down_count_, pc_up_count_;
  double pc_total_down_ = 0.0, pc_total_up_ = 0.0;
  double imp_total_down_ = 0.0, imp_total_up_ = 0.0;
  std::int64_t pc_observations_down_ = 0, pc_observations_up_ = 0;
  std::int64_t impact_decisions_ = 0, pseudocost_decisions_ = 0;

  Clock::time_point last_counter_emit_{};  ///< epoch => first sample emits at once
  Clock::time_point last_heartbeat_{};

  std::optional<std::vector<double>> incumbent_;
  double incumbent_score_ = kInfinity;
  double root_bound_score_ = -kInfinity;
  double pending_bound_ = kInfinity;  ///< bound of a node interrupted mid-solve
  std::int64_t nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  bool limit_hit_ = false;
};

// ---------------------------------------------------------------------------
// Parallel tree search (MilpOptions::threads > 0).
//
// N workers each own a private warm-started LpSolver plus the per-worker
// materialization scratch (bound box, stamps).  Open nodes live in a shared
// pool: a global best-first heap (pool_mutex_) plus one small dive stack per
// worker — a worker pushes the nearer child of its last branch onto its own
// stack (preserving the serial solver's dive locality, which is what makes
// dual-simplex warm starts cheap) and publishes the other child to the
// global heap.  An idle worker takes from its stack, then the global heap,
// then steals the *oldest* entry of another worker's stack (best bound,
// least disruption to the victim's dive).
//
// The incumbent objective is a lock-free atomic so bound pruning takes
// effect across all workers immediately; the incumbent vector itself is
// guarded by a mutex.  Termination uses an `outstanding_` node count:
// children are registered before their parent retires, so the count only
// reaches zero when the tree is exhausted.
//
// `deterministic` switches to an epoch-synchronized schedule: each round the
// coordinator (worker 0, the calling thread) pops the T best open nodes,
// assigns batch[i] to worker i, and after a barrier merges all side effects
// — incumbents, children (which get their seq numbers here), pseudocost
// updates — in worker-index order.  Workers only read shared state
// snapshotted at the epoch start, so repeated runs with the same thread
// count produce bit-identical incumbent trajectories and node counts
// (unless the run is cut short by the wall-clock limit or cancellation,
// which stop at a timing-dependent epoch).
class ParallelBranchAndBound {
 public:
  ParallelBranchAndBound(const Model& model, const MilpOptions& options,
                         const std::vector<double>* presolved_lower = nullptr,
                         const std::vector<double>* presolved_upper = nullptr)
      : model_(model), options_(options), start_(Clock::now()) {
    const int n = model.variable_count();
    root_lower_.reserve(static_cast<std::size_t>(n));
    root_upper_.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const Variable& v = model.variable(VarId{j});
      double lo = presolved_lower ? (*presolved_lower)[static_cast<std::size_t>(j)] : v.lower;
      double hi = presolved_upper ? (*presolved_upper)[static_cast<std::size_t>(j)] : v.upper;
      if (v.type != VarType::kContinuous) {
        lo = std::isfinite(lo) ? std::ceil(lo - 1e-9) : lo;
        hi = std::isfinite(hi) ? std::floor(hi + 1e-9) : hi;
      }
      root_lower_.push_back(lo);
      root_upper_.push_back(hi);
    }
    pc_down_sum_.assign(static_cast<std::size_t>(n), 0.0);
    pc_down_count_.assign(static_cast<std::size_t>(n), 0);
    pc_up_sum_.assign(static_cast<std::size_t>(n), 0.0);
    pc_up_count_.assign(static_cast<std::size_t>(n), 0);
    imp_down_sum_.assign(static_cast<std::size_t>(n), 0.0);
    imp_up_sum_.assign(static_cast<std::size_t>(n), 0.0);
    threads_ = std::clamp(options.threads, 1, 64);
    launched_ = threads_;
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
      workers_.push_back(std::make_unique<Worker>(model_, options_.lp, i, root_lower_, root_upper_));
    }
    last_heartbeat_ = start_;
  }

  MilpResult run() {
    if (options_.initial_incumbent) {
      require(model_.is_feasible(*options_.initial_incumbent, 1e-5),
              "warm-start incumbent is not feasible");
      incumbent_values_ = *options_.initial_incumbent;
      incumbent_score_.store(min_score(model_.objective_value(*incumbent_values_)),
                             std::memory_order_relaxed);
    }
    return options_.deterministic ? run_epochs() : run_async();
  }

 private:
  struct Worker {
    Worker(const Model& m, const LpOptions& lp, int idx, const std::vector<double>& root_lower,
           const std::vector<double>& root_upper)
        : index(idx), solver(m, lp), cur_lower(root_lower), cur_upper(root_upper) {
      stamp.assign(root_lower.size(), 0);
    }
    const int index;
    LpSolver solver;  ///< private relaxation engine; warm starts stay local
    std::vector<double> cur_lower, cur_upper;  ///< materialized node box
    std::vector<std::int64_t> stamp;
    std::vector<int> touched;
    std::int64_t epoch = 0;
    MilpWorkerStats stats;
    std::mutex local_mutex;  ///< guards `local` (async mode; stealable)
    std::vector<Node> local;  ///< private dive stack; back = newest
  };

  /// Everything one node expansion produces, computed without touching
  /// shared search state: the LP verdict, branch children in serial push
  /// order (seq unassigned — numbering is a property of the publish, not
  /// the worker), and an integral candidate point if one was found.
  /// Pruning decisions inside `expand` use the caller's snapshot of the
  /// shared incumbent score.
  struct NodeOutcome {
    Node node;
    LpStatus lp_status = LpStatus::kInfeasible;
    double node_score = kInfinity;
    std::optional<std::vector<double>> candidate;
    std::vector<Node> children;
  };

  /// Lifetime gate for pool-borrowed helpers: a task that the pool starts
  /// only after the search already returned must not touch the (possibly
  /// destroyed) solver.  Shared ownership keeps the gate itself alive for
  /// such stragglers; `dead` flips once the owning solve has drained.
  struct BorrowGate {
    std::mutex mutex;
    std::condition_variable cv;
    bool dead = false;
    int running = 0;
  };

  double min_score(double user_objective) const {
    return model_.objective_sign() * (user_objective - model_.objective_constant());
  }
  double user_value(double score) const {
    return model_.objective_sign() * score + model_.objective_constant();
  }

  static void atomic_min(std::atomic<double>& target, double value) {
    double cur = target.load(std::memory_order_relaxed);
    while (value < cur &&
           !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  static bool worse(const Node& a, const Node& b) {
    if (a.bound_score != b.bound_score) return a.bound_score > b.bound_score;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.seq < b.seq;
  }

  bool limits_exceeded(std::int64_t processed) const {
    if (processed >= options_.max_nodes) return true;
    if (options_.time_limit_seconds > 0.0) {
      const double elapsed = std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed > options_.time_limit_seconds) return true;
    }
    if (options_.cancel.valid() && options_.cancel.cancelled()) return true;
    return false;
  }

  // ---- node expansion (shared by both modes) -------------------------------

  void materialize(Worker& w, const Node& node) const {
    for (const int v : w.touched) {
      w.cur_lower[static_cast<std::size_t>(v)] = root_lower_[static_cast<std::size_t>(v)];
      w.cur_upper[static_cast<std::size_t>(v)] = root_upper_[static_cast<std::size_t>(v)];
    }
    w.touched.clear();
    ++w.epoch;
    for (std::int32_t id = node.chain; id != ChainArena::kNull; id = arena_.parent(id)) {
      const BoundChange& change = arena_.change(id);
      const int v = change.var;
      if (w.stamp[static_cast<std::size_t>(v)] == w.epoch) continue;
      w.stamp[static_cast<std::size_t>(v)] = w.epoch;
      w.touched.push_back(v);
      w.cur_lower[static_cast<std::size_t>(v)] = change.lower;
      w.cur_upper[static_cast<std::size_t>(v)] = change.upper;
    }
  }

  int most_fractional(const std::vector<double>& values) const {
    int best = -1;
    double best_distance_to_half = 1.0;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      const double v = values[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac <= options_.integrality_tolerance) continue;
      const double distance_to_half = std::abs(frac - 0.5);
      if (best == -1 || distance_to_half < best_distance_to_half) {
        best = j;
        best_distance_to_half = distance_to_half;
      }
    }
    return best;
  }

  /// Same blended pseudocost + impact product rule as the serial solver,
  /// under the shared statistics mutex.
  int select_branch_var(const std::vector<double>& values) {
    std::lock_guard<std::mutex> lk(pc_mutex_);
    const std::int64_t total = pc_observations_down_ + pc_observations_up_;
    if (!options_.pseudocost_branching || total == 0) return most_fractional(values);
    const double avg_down =
        pc_observations_down_ > 0 ? pc_total_down_ / static_cast<double>(pc_observations_down_) : 1.0;
    const double avg_up =
        pc_observations_up_ > 0 ? pc_total_up_ / static_cast<double>(pc_observations_up_) : 1.0;
    const double avg_imp_down =
        pc_observations_down_ > 0 ? imp_total_down_ / static_cast<double>(pc_observations_down_) : 1.0;
    const double avg_imp_up =
        pc_observations_up_ > 0 ? imp_total_up_ / static_cast<double>(pc_observations_up_) : 1.0;
    const std::int64_t reliability = std::max(options_.branch_reliability, 1);
    const double iw =
        options_.impact_branching ? std::clamp(options_.impact_weight, 0.0, 1.0) : 0.0;
    int best = -1;
    double best_score = -1.0;
    double best_distance_to_half = 1.0;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      const double v = values[static_cast<std::size_t>(j)];
      const double down_frac = v - std::floor(v);
      const double frac = std::min(down_frac, 1.0 - down_frac);
      if (frac <= options_.integrality_tolerance) continue;
      const std::size_t sj = static_cast<std::size_t>(j);
      const bool down_reliable = pc_down_count_[sj] >= reliability;
      const bool up_reliable = pc_up_count_[sj] >= reliability;
      const double pcd =
          down_reliable ? pc_down_sum_[sj] / static_cast<double>(pc_down_count_[sj]) : avg_down;
      const double pcu =
          up_reliable ? pc_up_sum_[sj] / static_cast<double>(pc_up_count_[sj]) : avg_up;
      const double impd =
          down_reliable ? imp_down_sum_[sj] / static_cast<double>(pc_down_count_[sj]) : avg_imp_down;
      const double impu =
          up_reliable ? imp_up_sum_[sj] / static_cast<double>(pc_up_count_[sj]) : avg_imp_up;
      const double est_down = (1.0 - iw) * pcd * down_frac + iw * impd;
      const double est_up = (1.0 - iw) * pcu * (1.0 - down_frac) + iw * impu;
      const double score = std::max(est_down, 1e-6) * std::max(est_up, 1e-6);
      const double distance_to_half = std::abs(frac - 0.5);
      if (score > best_score ||
          (score == best_score && distance_to_half < best_distance_to_half)) {
        best = j;
        best_score = score;
        best_distance_to_half = distance_to_half;
      }
    }
    if (best != -1) {
      const std::size_t sb = static_cast<std::size_t>(best);
      if (iw > 0.0 && pc_down_count_[sb] >= reliability && pc_up_count_[sb] >= reliability) {
        ++impact_decisions_;
      } else {
        ++pseudocost_decisions_;
      }
    }
    return best;
  }

  void update_pseudocost(const Node& node, double node_score) {
    const double gain = std::max(node_score - node.bound_score, 0.0);
    if (!std::isfinite(gain)) return;
    const double per_unit = gain / std::max(node.branch_dist, 1e-6);
    const std::size_t v = static_cast<std::size_t>(node.branch_var);
    std::lock_guard<std::mutex> lk(pc_mutex_);
    if (node.branch_up) {
      pc_up_sum_[v] += per_unit;
      imp_up_sum_[v] += gain;
      ++pc_up_count_[v];
      pc_total_up_ += per_unit;
      imp_total_up_ += gain;
      ++pc_observations_up_;
    } else {
      pc_down_sum_[v] += per_unit;
      imp_down_sum_[v] += gain;
      ++pc_down_count_[v];
      pc_total_down_ += per_unit;
      imp_total_down_ += gain;
      ++pc_observations_down_;
    }
  }

  /// Serial `branch` twin: emits children into `out.children` in the serial
  /// push order (nearer child last) using `w`'s materialized box.
  void emit_children(const Worker& w, NodeOutcome& out, int branch_var,
                     const std::vector<double>& values) {
    const std::size_t v = static_cast<std::size_t>(branch_var);
    const double value = values[v];
    const double floor_v = std::floor(value + options_.integrality_tolerance);

    Node down;
    down.bound_score = out.node_score;
    down.depth = out.node.depth + 1;
    down.branch_var = branch_var;
    down.branch_dist = std::max(value - floor_v, options_.integrality_tolerance);
    down.branch_up = false;
    Node up = down;
    up.branch_dist = std::max(floor_v + 1.0 - value, options_.integrality_tolerance);
    up.branch_up = true;

    const double down_upper = std::min(w.cur_upper[v], floor_v);
    const double up_lower = std::max(w.cur_lower[v], floor_v + 1.0);
    const bool down_valid = w.cur_lower[v] <= down_upper;
    const bool up_valid = up_lower <= w.cur_upper[v];
    const bool down_first = (value - floor_v) <= 0.5;

    auto emit_down = [&] {
      if (!down_valid) return;
      down.chain =
          arena_.make(BoundChange{branch_var, w.cur_lower[v], down_upper}, out.node.chain);
      out.children.push_back(down);
    };
    auto emit_up = [&] {
      if (!up_valid) return;
      up.chain =
          arena_.make(BoundChange{branch_var, up_lower, w.cur_upper[v]}, out.node.chain);
      out.children.push_back(up);
    };
    if (down_first) {
      emit_up();
      emit_down();
    } else {
      emit_down();
      emit_up();
    }
  }

  /// Solves `node`'s LP on `w`'s private solver and derives everything that
  /// follows (children, integral candidate) without mutating shared search
  /// state; `incumbent_score` is the caller's pruning snapshot.
  NodeOutcome expand(Worker& w, Node node, double incumbent_score) {
    NodeOutcome out;
    materialize(w, node);
    const double cutoff = incumbent_score - options_.absolute_gap;  // +inf stays +inf
    const LpResult lp = options_.lp_warm_start
                            ? w.solver.resolve(w.cur_lower, w.cur_upper, cutoff)
                            : w.solver.solve(w.cur_lower, w.cur_upper);
    w.stats.lp_iterations += lp.iterations;
    out.node = std::move(node);
    out.lp_status = lp.status;
    if (lp.status != LpStatus::kOptimal) return out;

    out.node_score = min_score(lp.objective);
    if (out.node_score >= incumbent_score - options_.absolute_gap) return out;

    const int branch_var = select_branch_var(lp.values);
    if (branch_var == -1) {
      std::vector<double> snapped = lp.values;
      for (int j = 0; j < model_.variable_count(); ++j) {
        if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
        snapped[static_cast<std::size_t>(j)] = std::round(snapped[static_cast<std::size_t>(j)]);
      }
      if (model_.is_feasible(snapped)) out.candidate = std::move(snapped);
      return out;
    }

    // Rounding primal heuristic into the node's box.
    {
      std::vector<double> rounded = lp.values;
      for (int j = 0; j < model_.variable_count(); ++j) {
        if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
        double v = std::round(rounded[static_cast<std::size_t>(j)]);
        v = std::clamp(v, w.cur_lower[static_cast<std::size_t>(j)],
                       w.cur_upper[static_cast<std::size_t>(j)]);
        rounded[static_cast<std::size_t>(j)] = v;
      }
      if (model_.is_feasible(rounded)) out.candidate = std::move(rounded);
    }
    const double candidate_score =
        out.candidate ? min_score(model_.objective_value(*out.candidate)) : kInfinity;
    if (out.node_score >= std::min(incumbent_score, candidate_score) - options_.absolute_gap) {
      return out;
    }

    emit_children(w, out, branch_var, lp.values);
    return out;
  }

  // ---- shared incumbent ----------------------------------------------------

  bool prunable(double bound_score) const {
    return bound_score >= incumbent_score_.load(std::memory_order_relaxed) - options_.absolute_gap;
  }

  void offer_incumbent(std::vector<double> point) {
    const double score = min_score(model_.objective_value(point));
    std::lock_guard<std::mutex> lk(incumbent_mutex_);
    if (score < incumbent_score_.load(std::memory_order_relaxed)) {
      incumbent_values_ = std::move(point);
      incumbent_score_.store(score, std::memory_order_relaxed);
      log_debug("milp: new incumbent ", user_value(score), " after ",
                nodes_.load(std::memory_order_relaxed), " nodes");
    }
  }

  // ---- asynchronous work-stealing mode -------------------------------------

  MilpResult run_async() {
    global_.push_back(Node{});
    outstanding_.store(1, std::memory_order_relaxed);

    std::vector<std::thread> helpers;
    std::shared_ptr<BorrowGate> gate;
    if (options_.pool != nullptr && threads_ > 1) {
      gate = std::make_shared<BorrowGate>();
      int accepted = 0;
      for (int i = 1; i < threads_; ++i) {
        Worker* w = workers_[static_cast<std::size_t>(i)].get();
        auto task = [this, w, gate] {
          {
            std::lock_guard<std::mutex> lk(gate->mutex);
            if (gate->dead) return;  // search finished; `this` may be gone
            ++gate->running;
          }
          worker_loop(*w);
          {
            std::lock_guard<std::mutex> lk(gate->mutex);
            --gate->running;
          }
          gate->cv.notify_all();
        };
        if (!options_.pool->try_submit(std::move(task))) break;  // full pool: fewer helpers
        ++accepted;
      }
      launched_ = 1 + accepted;
    } else {
      helpers.reserve(static_cast<std::size_t>(threads_ - 1));
      for (int i = 1; i < threads_; ++i) {
        Worker* w = workers_[static_cast<std::size_t>(i)].get();
        helpers.emplace_back([this, w] {
          obs::Tracer::instance().set_thread_name("bnb-worker-" + std::to_string(w->index));
          worker_loop(*w);
        });
      }
    }

    worker_loop(*workers_[0]);  // the caller always participates as worker 0

    for (std::thread& t : helpers) t.join();
    if (gate) {
      std::unique_lock<std::mutex> lk(gate->mutex);
      gate->cv.wait(lk, [&] { return gate->running == 0; });
      gate->dead = true;  // tasks the pool has not started yet must no-op
    }
    return assemble_result();
  }

  void worker_loop(Worker& w) {
    obs::Span span("ilp", "bnb worker");
    if (span.active()) span.arg("worker", w.index);
    while (true) {
      if (done_.load(std::memory_order_acquire) || stop_.load(std::memory_order_relaxed)) break;
      if (limits_exceeded(nodes_.load(std::memory_order_relaxed))) {
        limit_hit_.store(true, std::memory_order_relaxed);
        request_stop();
        break;
      }
      std::optional<Node> node = take_node(w);
      if (!node.has_value()) {
        if (outstanding_.load(std::memory_order_acquire) == 0) {
          finish_search();
          break;
        }
        const Clock::time_point idle_start = Clock::now();
        {
          std::unique_lock<std::mutex> lk(pool_mutex_);
          work_cv_.wait_for(lk, std::chrono::microseconds(200), [this] {
            return !global_.empty() || stop_.load(std::memory_order_relaxed) ||
                   done_.load(std::memory_order_relaxed) ||
                   outstanding_.load(std::memory_order_relaxed) == 0;
          });
        }
        w.stats.idle_seconds += std::chrono::duration<double>(Clock::now() - idle_start).count();
        continue;
      }
      if (prunable(node->bound_score)) {
        arena_.release(node->chain);
        retire_node();
        continue;
      }
      const std::int64_t count = nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
      ++w.stats.nodes;
      NodeOutcome out = expand(w, *node, incumbent_score_.load(std::memory_order_relaxed));
      publish_async(w, out);
      arena_.release(out.node.chain);  // children hold their own parent refs
      retire_node();
      if (w.index == 0 && (count & 0x7f) == 0) report_progress(false);
    }
    if (span.active()) {
      span.arg("nodes", w.stats.nodes);
      span.arg("steals", w.stats.steals);
    }
  }

  /// Applies one expansion's side effects to the shared search state.
  /// Children are registered in `outstanding_` *before* the caller retires
  /// the parent, so the count cannot transiently hit zero mid-tree.
  void publish_async(Worker& w, NodeOutcome& out) {
    switch (out.lp_status) {
      case LpStatus::kUnbounded:
        unbounded_.store(true, std::memory_order_relaxed);
        request_stop();
        return;
      case LpStatus::kIterationLimit:
        limit_hit_.store(true, std::memory_order_relaxed);
        atomic_min(pending_bound_, out.node.bound_score);
        request_stop();
        return;
      case LpStatus::kInfeasible:
      case LpStatus::kCutoff:
        return;
      case LpStatus::kOptimal:
        break;
    }
    if (out.node.branch_var >= 0) {
      update_pseudocost(out.node, out.node_score);
    } else {
      root_bound_score_.store(out.node_score, std::memory_order_relaxed);
    }
    if (out.candidate.has_value()) offer_incumbent(std::move(*out.candidate));
    if (out.children.empty()) return;

    for (Node& child : out.children) {
      child.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    outstanding_.fetch_add(static_cast<std::int64_t>(out.children.size()),
                           std::memory_order_acq_rel);
    // The nearer child (serial push order puts it last) dives on w's own
    // stack; any sibling is published to the global heap.
    Node near = std::move(out.children.back());
    out.children.pop_back();
    if (!out.children.empty()) {
      std::lock_guard<std::mutex> lk(pool_mutex_);
      for (Node& sibling : out.children) {
        global_.push_back(std::move(sibling));
        if (options_.node_order == NodeOrder::kBestFirst) {
          std::push_heap(global_.begin(), global_.end(), worse);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(w.local_mutex);
      w.local.push_back(std::move(near));
    }
    work_cv_.notify_one();
  }

  std::optional<Node> take_node(Worker& w) {
    {
      std::lock_guard<std::mutex> lk(w.local_mutex);
      if (!w.local.empty()) {
        Node node = std::move(w.local.back());
        w.local.pop_back();
        return node;
      }
    }
    {
      std::lock_guard<std::mutex> lk(pool_mutex_);
      if (!global_.empty()) {
        if (options_.node_order == NodeOrder::kBestFirst) {
          std::pop_heap(global_.begin(), global_.end(), worse);
        }
        Node node = std::move(global_.back());
        global_.pop_back();
        return node;
      }
    }
    for (int k = 1; k < threads_; ++k) {
      Worker& victim = *workers_[static_cast<std::size_t>((w.index + k) % threads_)];
      std::lock_guard<std::mutex> lk(victim.local_mutex);
      if (!victim.local.empty()) {
        // Steal the oldest (shallowest) entry: closest to the global
        // frontier, least disruptive to the victim's dive.
        Node node = std::move(victim.local.front());
        victim.local.erase(victim.local.begin());
        ++w.stats.steals;
        return node;
      }
    }
    return std::nullopt;
  }

  void retire_node() {
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) finish_search();
  }
  void finish_search() {
    done_.store(true, std::memory_order_release);
    work_cv_.notify_all();
  }
  void request_stop() {
    stop_.store(true, std::memory_order_relaxed);
    work_cv_.notify_all();
  }

  // ---- deterministic epoch mode --------------------------------------------

  MilpResult run_epochs() {
    global_.push_back(Node{});  // coordinator-owned in this mode; no locking
    batch_.reserve(static_cast<std::size_t>(threads_));
    outcomes_.resize(static_cast<std::size_t>(threads_));

    std::vector<std::thread> helpers;
    helpers.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i) {
      Worker* w = workers_[static_cast<std::size_t>(i)].get();
      helpers.emplace_back([this, w] {
        obs::Tracer::instance().set_thread_name("bnb-worker-" + std::to_string(w->index));
        epoch_helper(*w);
      });
    }

    Worker& self = *workers_[0];
    obs::Span span("ilp", "bnb worker");
    if (span.active()) span.arg("worker", 0);
    std::int64_t processed = 0;
    bool stop_all = false;
    while (!stop_all) {
      if (limits_exceeded(processed)) {
        limit_hit_.store(true, std::memory_order_relaxed);
        break;
      }
      batch_.clear();
      const double inc = incumbent_score_.load(std::memory_order_relaxed);
      while (static_cast<int>(batch_.size()) < threads_ && !global_.empty()) {
        if (options_.node_order == NodeOrder::kBestFirst) {
          std::pop_heap(global_.begin(), global_.end(), worse);
        }
        Node node = std::move(global_.back());
        global_.pop_back();
        if (node.bound_score >= inc - options_.absolute_gap) {
          arena_.release(node.chain);
          continue;
        }
        batch_.push_back(std::move(node));
      }
      if (batch_.empty()) break;
      const int batch_size = static_cast<int>(batch_.size());
      processed += batch_size;
      nodes_.store(processed, std::memory_order_relaxed);

      {
        std::lock_guard<std::mutex> lk(epoch_mutex_);
        batch_size_ = batch_size;
        epoch_pending_ = batch_size - 1;
        epoch_incumbent_ = inc;
        ++generation_;
      }
      if (batch_size > 1) epoch_cv_.notify_all();

      ++self.stats.nodes;
      outcomes_[0] = expand(self, std::move(batch_[0]), inc);

      if (batch_size > 1) {
        const Clock::time_point idle_start = Clock::now();
        {
          std::unique_lock<std::mutex> lk(epoch_mutex_);
          epoch_done_cv_.wait(lk, [this] { return epoch_pending_ == 0; });
        }
        self.stats.idle_seconds += std::chrono::duration<double>(Clock::now() - idle_start).count();
      }

      // Merge side effects in worker-index order — this fixed order (not
      // completion order) is what makes the schedule reproducible.
      for (int i = 0; i < batch_size && !stop_all; ++i) {
        NodeOutcome& out = outcomes_[static_cast<std::size_t>(i)];
        switch (out.lp_status) {
          case LpStatus::kUnbounded:
            unbounded_.store(true, std::memory_order_relaxed);
            stop_all = true;
            break;
          case LpStatus::kIterationLimit:
            limit_hit_.store(true, std::memory_order_relaxed);
            atomic_min(pending_bound_, out.node.bound_score);
            stop_all = true;
            break;
          case LpStatus::kInfeasible:
          case LpStatus::kCutoff:
            break;
          case LpStatus::kOptimal: {
            if (out.node.branch_var >= 0) {
              update_pseudocost(out.node, out.node_score);
            } else {
              root_bound_score_.store(out.node_score, std::memory_order_relaxed);
            }
            if (out.candidate.has_value()) offer_incumbent(std::move(*out.candidate));
            for (Node& child : out.children) {
              child.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
              global_.push_back(std::move(child));
              if (options_.node_order == NodeOrder::kBestFirst) {
                std::push_heap(global_.begin(), global_.end(), worse);
              }
            }
            out.children.clear();
            break;
          }
        }
        arena_.release(out.node.chain);
        out.node.chain = ChainArena::kNull;
      }
      if ((processed & 0x7f) < batch_size) report_progress(false);
    }

    {
      std::lock_guard<std::mutex> lk(epoch_mutex_);
      finished_ = true;
    }
    epoch_cv_.notify_all();
    for (std::thread& t : helpers) t.join();
    if (span.active()) span.arg("nodes", self.stats.nodes);
    return assemble_result();
  }

  void epoch_helper(Worker& w) {
    obs::Span span("ilp", "bnb worker");
    if (span.active()) span.arg("worker", w.index);
    std::int64_t seen = 0;
    std::unique_lock<std::mutex> lk(epoch_mutex_);
    while (true) {
      const Clock::time_point idle_start = Clock::now();
      epoch_cv_.wait(lk, [&] { return finished_ || generation_ != seen; });
      w.stats.idle_seconds += std::chrono::duration<double>(Clock::now() - idle_start).count();
      if (finished_) break;
      seen = generation_;
      const bool has_work = w.index < batch_size_;
      const double inc = epoch_incumbent_;
      lk.unlock();
      if (has_work) {
        ++w.stats.nodes;
        outcomes_[static_cast<std::size_t>(w.index)] =
            expand(w, std::move(batch_[static_cast<std::size_t>(w.index)]), inc);
      }
      lk.lock();
      if (has_work && --epoch_pending_ == 0) epoch_done_cv_.notify_one();
    }
    if (span.active()) span.arg("nodes", w.stats.nodes);
  }

  // ---- reporting / result --------------------------------------------------

  /// Worker 0 / coordinator only (the timestamps are unsynchronized).
  void report_progress(bool force) {
    const bool tracing = obs::tracing_enabled();
    const bool logging = log_level() <= LogLevel::kInfo;
    if (!tracing && !logging) return;
    const Clock::time_point now = Clock::now();
    const double inc = incumbent_score_.load(std::memory_order_relaxed);
    const std::int64_t open = outstanding_.load(std::memory_order_relaxed);
    if (tracing && (force || now - last_counter_emit_ >= std::chrono::milliseconds(20))) {
      last_counter_emit_ = now;
      obs::Tracer& tracer = obs::Tracer::instance();
      const std::string suffix = " t" + std::to_string(current_thread_id());
      if (std::isfinite(inc)) tracer.counter("ilp", "milp incumbent" + suffix, user_value(inc));
      tracer.counter("ilp", "milp open_nodes" + suffix, static_cast<double>(open));
    }
    if (logging && now - last_heartbeat_ >= std::chrono::seconds(5)) {
      last_heartbeat_ = now;
      log_info("milp[", launched_, "t]: ", nodes_.load(std::memory_order_relaxed),
               " nodes, incumbent ",
               std::isfinite(inc) ? detail::concat(user_value(inc)) : std::string("none"),
               ", open ", open);
    }
  }

  /// Tightest proven bound over everything still unexplored; only valid
  /// once all workers have stopped.
  double remaining_bound_score() const {
    double bound = pending_bound_.load(std::memory_order_relaxed);
    for (const Node& node : global_) bound = std::min(bound, node.bound_score);
    for (const auto& wp : workers_) {
      for (const Node& node : wp->local) bound = std::min(bound, node.bound_score);
    }
    if (!std::isfinite(bound) && bound > 0.0) {
      bound = root_bound_score_.load(std::memory_order_relaxed);
    }
    return bound;
  }

  MilpResult assemble_result() {
    report_progress(true);
    MilpResult result;
    result.threads = launched_;
    for (int i = 0; i < threads_; ++i) {
      const Worker& w = *workers_[static_cast<std::size_t>(i)];
      result.nodes += w.stats.nodes;
      result.lp_iterations += w.stats.lp_iterations;
      result.steals += w.stats.steals;
      result.idle_seconds += w.stats.idle_seconds;
      result.lp.accumulate(w.solver.stats());
      if (i < launched_) result.worker_stats.push_back(w.stats);
    }
    result.arena_bytes = arena_.bytes();
    {
      std::lock_guard<std::mutex> lk(pc_mutex_);
      result.impact_branch_decisions = impact_decisions_;
      result.pseudocost_branch_decisions = pseudocost_decisions_;
    }
    const double wall = std::chrono::duration<double>(Clock::now() - start_).count();
    if (wall > 0.0) {
      const double capacity = static_cast<double>(launched_) * wall;
      result.parallel_efficiency =
          std::clamp((capacity - result.idle_seconds) / capacity, 0.0, 1.0);
    }
    const bool limit = limit_hit_.load(std::memory_order_relaxed);
    if (unbounded_.load(std::memory_order_relaxed) && !incumbent_values_.has_value()) {
      result.status = MilpStatus::kUnbounded;
      return result;
    }
    const double bound_score = remaining_bound_score();
    if (incumbent_values_.has_value()) {
      result.values = *incumbent_values_;
      result.objective = model_.objective_value(*incumbent_values_);
      result.status = limit ? MilpStatus::kFeasible : MilpStatus::kOptimal;
      result.best_bound = limit ? user_value(bound_score) : result.objective;
    } else {
      result.status = limit ? MilpStatus::kLimit : MilpStatus::kInfeasible;
      result.best_bound =
          user_value(limit ? bound_score : root_bound_score_.load(std::memory_order_relaxed));
    }
    return result;
  }

  const Model& model_;
  const MilpOptions& options_;
  Clock::time_point start_;
  int threads_ = 1;   ///< configured worker count
  int launched_ = 1;  ///< workers that actually ran (pool borrows can be rejected)

  std::vector<double> root_lower_, root_upper_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Shared node pool.  Async mode: guarded by pool_mutex_.  Deterministic
  // mode: coordinator-owned, helpers never touch it.
  std::mutex pool_mutex_;
  std::condition_variable work_cv_;
  ChainArena arena_;
  std::vector<Node> global_;
  std::atomic<std::int64_t> outstanding_{0};  ///< open + in-flight nodes; 0 = exhausted
  std::atomic<std::int64_t> seq_{0};
  std::atomic<std::int64_t> nodes_{0};

  std::mutex pc_mutex_;  ///< pseudocost + impact tables
  std::vector<double> pc_down_sum_, pc_up_sum_;
  std::vector<double> imp_down_sum_, imp_up_sum_;
  std::vector<std::int64_t> pc_down_count_, pc_up_count_;
  double pc_total_down_ = 0.0, pc_total_up_ = 0.0;
  double imp_total_down_ = 0.0, imp_total_up_ = 0.0;
  std::int64_t pc_observations_down_ = 0, pc_observations_up_ = 0;
  std::int64_t impact_decisions_ = 0, pseudocost_decisions_ = 0;

  // Incumbent: the score is read lock-free on every pruning decision; the
  // vector itself only under the mutex.
  std::mutex incumbent_mutex_;
  std::optional<std::vector<double>> incumbent_values_;
  std::atomic<double> incumbent_score_{kInfinity};

  std::atomic<double> root_bound_score_{-kInfinity};
  std::atomic<double> pending_bound_{kInfinity};  ///< bound of an interrupted node
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> limit_hit_{false};
  std::atomic<bool> unbounded_{false};

  // Deterministic-mode epoch plumbing (all under epoch_mutex_; batch_ and
  // outcomes_ slots are handed off through the generation bump / barrier).
  std::mutex epoch_mutex_;
  std::condition_variable epoch_cv_, epoch_done_cv_;
  std::int64_t generation_ = 0;
  int batch_size_ = 0;
  int epoch_pending_ = 0;
  bool finished_ = false;
  double epoch_incumbent_ = kInfinity;
  std::vector<Node> batch_;
  std::vector<NodeOutcome> outcomes_;

  Clock::time_point last_counter_emit_{};
  Clock::time_point last_heartbeat_{};
};

}  // namespace

namespace {

const char* status_name(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kLimit: return "limit";
  }
  return "?";
}

}  // namespace

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
  obs::Span span("ilp", "solve_milp");
  if (span.active()) {
    span.arg("vars", model.variable_count());
    span.arg("constraints", model.constraint_count());
  }
  MilpResult result = [&] {
    auto run_tree = [&](const Model& m, const PresolveResult* reduced) {
      if (options.threads > 0) {
        ParallelBranchAndBound solver(m, options, reduced ? &reduced->lower : nullptr,
                                      reduced ? &reduced->upper : nullptr);
        return solver.run();
      }
      BranchAndBound solver(m, options, reduced ? &reduced->lower : nullptr,
                            reduced ? &reduced->upper : nullptr);
      return solver.run();
    };
    // Root cutting-plane loop: tighten the relaxation once under the root
    // bound box, then run the tree search on the model extended by the
    // retained cut rows.  The cuts are satisfied by every integer point of
    // the box, so the search space — and the optimum — are unchanged; only
    // the LP bound gets stronger.  The extension keeps the variable set
    // intact, so presolved bound vectors still apply verbatim.
    auto search = [&](const PresolveResult* reduced) {
      if (!options.cut_options.enabled || !model.has_integer_variables()) {
        return run_tree(model, reduced);
      }
      const int n = model.variable_count();
      std::vector<double> lo, hi;
      lo.reserve(static_cast<std::size_t>(n));
      hi.reserve(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const Variable& v = model.variable(VarId{j});
        double l = reduced ? reduced->lower[static_cast<std::size_t>(j)] : v.lower;
        double h = reduced ? reduced->upper[static_cast<std::size_t>(j)] : v.upper;
        if (v.type != VarType::kContinuous) {
          l = std::isfinite(l) ? std::ceil(l - 1e-9) : l;
          h = std::isfinite(h) ? std::floor(h + 1e-9) : h;
        }
        lo.push_back(l);
        hi.push_back(h);
      }
      RootCutOutcome rc =
          run_root_cut_loop(model, lo, hi, options.lp, options.cut_options, options.cancel);
      MilpResult r;
      if (rc.cuts.empty()) {
        r = run_tree(model, reduced);
      } else {
        Model extended = model;
        for (const Cut& cut : rc.cuts) {
          LinearExpr expr;
          for (std::size_t k = 0; k < cut.cols.size(); ++k) {
            expr.add_term(VarId{cut.cols[k]}, cut.vals[k]);
          }
          extended.add_constraint(std::move(expr), Relation::kLessEqual, cut.rhs, "cut");
        }
        r = run_tree(extended, reduced);
      }
      r.cuts = rc.stats;
      r.lp.accumulate(rc.lp);
      r.lp_iterations += rc.lp_iterations;
      return r;
    };
    if (options.presolve) {
      const PresolveResult reduced = presolve(model);
      if (reduced.status == PresolveStatus::kInfeasible) {
        MilpResult infeasible;
        infeasible.status = MilpStatus::kInfeasible;
        return infeasible;
      }
      if (reduced.tightenings > 0) {
        log_debug("milp presolve: ", reduced.tightenings, " bound tightenings, ",
                  reduced.fixed_variables, " variables fixed");
        return search(&reduced);
      }
    }
    return search(nullptr);
  }();
  result.lp_basis = options.lp.basis;
  result.lp_pricing = options.lp.pricing;
  if (span.active()) {
    span.arg("status", status_name(result.status));
    span.arg("nodes", result.nodes);
    span.arg("lp_iterations", result.lp_iterations);
    if (result.cuts.applied > 0) span.arg("cuts", result.cuts.applied);
    if (result.threads > 0) {
      span.arg("threads", result.threads);
      span.arg("steals", result.steals);
    }
  }
  return result;
}

}  // namespace fsyn::ilp
