#include "ilp/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "ilp/presolve.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::ilp {

namespace {

using Clock = std::chrono::steady_clock;

/// One branching decision: the bound box of `var` after the branch.  Nodes
/// share their ancestors' decisions through an immutable linked chain, so a
/// node costs O(1) memory instead of a full bound-box copy.
struct BoundChange {
  int var = -1;
  double lower = 0.0;
  double upper = 0.0;
};

struct Chain {
  BoundChange change;
  std::shared_ptr<const Chain> parent;
};

struct Node {
  double bound_score = -kInfinity;  ///< parent LP bound, minimize sense
  int depth = 0;
  long seq = 0;  ///< creation order; newest-first on ties
  std::shared_ptr<const Chain> changes;
  // Branching bookkeeping for pseudocost updates.
  int branch_var = -1;
  double branch_dist = 0.0;  ///< LP-value distance moved by the branch
  bool branch_up = false;
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MilpOptions& options,
                 const std::vector<double>* presolved_lower = nullptr,
                 const std::vector<double>* presolved_upper = nullptr)
      : model_(model), options_(options), start_(Clock::now()) {
    const int n = model.variable_count();
    root_lower_.reserve(static_cast<std::size_t>(n));
    root_upper_.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const Variable& v = model.variable(VarId{j});
      double lo = presolved_lower ? (*presolved_lower)[static_cast<std::size_t>(j)] : v.lower;
      double hi = presolved_upper ? (*presolved_upper)[static_cast<std::size_t>(j)] : v.upper;
      // Integer variables get their bounds pre-rounded inward so the LP
      // relaxation never explores fractional slivers outside them.
      if (v.type != VarType::kContinuous) {
        lo = std::isfinite(lo) ? std::ceil(lo - 1e-9) : lo;
        hi = std::isfinite(hi) ? std::floor(hi + 1e-9) : hi;
      }
      root_lower_.push_back(lo);
      root_upper_.push_back(hi);
    }
    cur_lower_ = root_lower_;
    cur_upper_ = root_upper_;
    last_heartbeat_ = start_;
    stamp_.assign(static_cast<std::size_t>(n), 0);
    pc_down_sum_.assign(static_cast<std::size_t>(n), 0.0);
    pc_down_count_.assign(static_cast<std::size_t>(n), 0);
    pc_up_sum_.assign(static_cast<std::size_t>(n), 0.0);
    pc_up_count_.assign(static_cast<std::size_t>(n), 0);
  }

  MilpResult run() {
    if (options_.initial_incumbent) {
      require(model_.is_feasible(*options_.initial_incumbent, 1e-5),
              "warm-start incumbent is not feasible");
      incumbent_ = *options_.initial_incumbent;
      incumbent_score_ = min_score(model_.objective_value(*incumbent_));
    }

    LpSolver solver(model_, options_.lp);
    push_node(Node{});
    bool unbounded = false;

    while (!open_.empty()) {
      if (limits_exceeded()) {
        limit_hit_ = true;
        break;
      }
      Node node = pop_node();
      if (pruned_by_bound(node.bound_score)) continue;
      ++nodes_;
      if ((nodes_ & 0x7f) == 0) report_progress(false);

      materialize(node);
      const double cutoff =
          incumbent_.has_value() ? incumbent_score_ - options_.absolute_gap : kInfinity;
      const LpResult lp = options_.lp_warm_start ? solver.resolve(cur_lower_, cur_upper_, cutoff)
                                                 : solver.solve(cur_lower_, cur_upper_);
      lp_iterations_ += lp.iterations;

      if (lp.status == LpStatus::kInfeasible || lp.status == LpStatus::kCutoff) continue;
      if (lp.status == LpStatus::kUnbounded) {
        unbounded = true;
        break;
      }
      if (lp.status == LpStatus::kIterationLimit) {
        limit_hit_ = true;
        pending_bound_ = node.bound_score;
        break;
      }

      const double node_score = min_score(lp.objective);
      if (node.branch_var >= 0) {
        update_pseudocost(node, node_score);
      } else {
        root_bound_score_ = node_score;
      }
      if (pruned_by_bound(node_score)) continue;

      const int branch_var = select_branch_var(lp.values);
      if (branch_var == -1) {
        // LP solution is already integral: snap and adopt.
        std::vector<double> snapped = lp.values;
        for (int j = 0; j < model_.variable_count(); ++j) {
          if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
          snapped[static_cast<std::size_t>(j)] = std::round(snapped[static_cast<std::size_t>(j)]);
        }
        if (model_.is_feasible(snapped)) offer_incumbent(std::move(snapped));
        continue;
      }

      try_rounding(lp.values);
      if (pruned_by_bound(node_score)) continue;

      branch(node, branch_var, lp.values, node_score);
    }

    report_progress(true);  // close the counter tracks at their final values

    MilpResult result;
    result.nodes = nodes_;
    result.lp_iterations = lp_iterations_;
    result.lp = solver.stats();
    if (unbounded && !incumbent_.has_value()) {
      result.status = MilpStatus::kUnbounded;
      return result;
    }
    const double bound_score = remaining_bound_score();
    if (incumbent_.has_value()) {
      result.values = *incumbent_;
      result.objective = model_.objective_value(*incumbent_);
      result.status = limit_hit_ ? MilpStatus::kFeasible : MilpStatus::kOptimal;
      result.best_bound = limit_hit_ ? user_value(bound_score) : result.objective;
    } else {
      result.status = limit_hit_ ? MilpStatus::kLimit : MilpStatus::kInfeasible;
      result.best_bound = user_value(limit_hit_ ? bound_score : root_bound_score_);
    }
    return result;
  }

 private:
  /// Converts a user-sense objective into an always-minimized score.  This
  /// is also the LP engine's internal objective, so incumbent scores can be
  /// handed to LpSolver::resolve as cutoffs directly.
  double min_score(double user_objective) const {
    return model_.objective_sign() * (user_objective - model_.objective_constant());
  }
  double user_value(double score) const {
    return model_.objective_sign() * score + model_.objective_constant();
  }

  bool pruned_by_bound(double score) const {
    return incumbent_.has_value() && score >= incumbent_score_ - options_.absolute_gap;
  }

  /// Emits the B&B progress telemetry: trace counter samples (incumbent /
  /// bound / open nodes, one track set per thread so concurrent solves do
  /// not interleave) plus an INFO heartbeat.  Rate-limited; called every
  /// 128 nodes, on incumbent improvements and once at the end, so the cost
  /// with tracing and INFO logging off is a branch per 128 nodes.
  void report_progress(bool force) {
    const bool tracing = obs::tracing_enabled();
    const bool logging = log_level() <= LogLevel::kInfo;
    if (!tracing && !logging) return;
    const Clock::time_point now = Clock::now();
    if (tracing && (force || now - last_counter_emit_ >= std::chrono::milliseconds(20))) {
      last_counter_emit_ = now;
      obs::Tracer& tracer = obs::Tracer::instance();
      const std::string suffix = " t" + std::to_string(current_thread_id());
      if (incumbent_.has_value()) {
        tracer.counter("ilp", "milp incumbent" + suffix, user_value(incumbent_score_));
      }
      const double bound = remaining_bound_score();
      if (std::isfinite(bound)) {
        tracer.counter("ilp", "milp bound" + suffix, user_value(bound));
      }
      tracer.counter("ilp", "milp open_nodes" + suffix, static_cast<double>(open_.size()));
    }
    if (logging && (now - last_heartbeat_ >= std::chrono::seconds(5))) {
      last_heartbeat_ = now;
      log_info("milp: ", nodes_, " nodes, incumbent ",
               incumbent_.has_value() ? detail::concat(user_value(incumbent_score_))
                                      : std::string("none"),
               ", bound ", user_value(remaining_bound_score()), ", open ", open_.size());
    }
  }

  bool limits_exceeded() {
    if (nodes_ >= options_.max_nodes) return true;
    if (options_.time_limit_seconds > 0.0) {
      const double elapsed = std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed > options_.time_limit_seconds) return true;
    }
    if (options_.cancel.valid() && options_.cancel.cancelled()) return true;
    return false;
  }

  // ---- open list -----------------------------------------------------------

  /// "Worse" ordering for the best-first heap: larger parent bound loses;
  /// on ties, shallower loses, then older loses (prefer diving).
  static bool worse(const Node& a, const Node& b) {
    if (a.bound_score != b.bound_score) return a.bound_score > b.bound_score;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.seq < b.seq;
  }

  void push_node(Node node) {
    open_.push_back(std::move(node));
    if (options_.node_order == NodeOrder::kBestFirst) {
      std::push_heap(open_.begin(), open_.end(), worse);
    }
  }

  Node pop_node() {
    if (options_.node_order == NodeOrder::kBestFirst) {
      std::pop_heap(open_.begin(), open_.end(), worse);
    }
    Node node = std::move(open_.back());
    open_.pop_back();
    return node;
  }

  /// Tightest proven bound over everything still unexplored.
  double remaining_bound_score() const {
    double bound = pending_bound_;
    for (const Node& node : open_) bound = std::min(bound, node.bound_score);
    if (!std::isfinite(bound) && bound > 0.0) bound = root_bound_score_;
    return bound;
  }

  /// Applies a node's bound-change chain on top of the root box.  The chain
  /// is walked leaf-to-root with deepest-wins stamping, after first undoing
  /// the previous node's changes (O(changes), not O(variables)).
  void materialize(const Node& node) {
    for (const int v : touched_) {
      cur_lower_[static_cast<std::size_t>(v)] = root_lower_[static_cast<std::size_t>(v)];
      cur_upper_[static_cast<std::size_t>(v)] = root_upper_[static_cast<std::size_t>(v)];
    }
    touched_.clear();
    ++epoch_;
    for (const Chain* link = node.changes.get(); link != nullptr; link = link->parent.get()) {
      const int v = link->change.var;
      if (stamp_[static_cast<std::size_t>(v)] == epoch_) continue;  // deeper change wins
      stamp_[static_cast<std::size_t>(v)] = epoch_;
      touched_.push_back(v);
      cur_lower_[static_cast<std::size_t>(v)] = link->change.lower;
      cur_upper_[static_cast<std::size_t>(v)] = link->change.upper;
    }
  }

  // ---- branching -----------------------------------------------------------

  /// Picks the integer variable whose LP value is most fractional
  /// (fractional part closest to 0.5); -1 when the point is integral.
  int most_fractional(const std::vector<double>& values) const {
    int best = -1;
    double best_distance_to_half = 1.0;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      const double v = values[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac <= options_.integrality_tolerance) continue;
      const double distance_to_half = std::abs(frac - 0.5);
      if (best == -1 || distance_to_half < best_distance_to_half) {
        best = j;
        best_distance_to_half = distance_to_half;
      }
    }
    return best;
  }

  /// Pseudocost product rule over the fractional variables; averages stand
  /// in for unobserved directions, and until any observation exists the
  /// most-fractional variable is used.
  int select_branch_var(const std::vector<double>& values) const {
    const long total = pc_observations_down_ + pc_observations_up_;
    if (!options_.pseudocost_branching || total == 0) return most_fractional(values);
    const double avg_down =
        pc_observations_down_ > 0 ? pc_total_down_ / static_cast<double>(pc_observations_down_) : 1.0;
    const double avg_up =
        pc_observations_up_ > 0 ? pc_total_up_ / static_cast<double>(pc_observations_up_) : 1.0;
    int best = -1;
    double best_score = -1.0;
    double best_distance_to_half = 1.0;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      const double v = values[static_cast<std::size_t>(j)];
      const double down_frac = v - std::floor(v);
      const double frac = std::min(down_frac, 1.0 - down_frac);
      if (frac <= options_.integrality_tolerance) continue;
      const std::size_t sj = static_cast<std::size_t>(j);
      const double pcd = pc_down_count_[sj] > 0
                             ? pc_down_sum_[sj] / static_cast<double>(pc_down_count_[sj])
                             : avg_down;
      const double pcu =
          pc_up_count_[sj] > 0 ? pc_up_sum_[sj] / static_cast<double>(pc_up_count_[sj]) : avg_up;
      const double score =
          std::max(pcd * down_frac, 1e-6) * std::max(pcu * (1.0 - down_frac), 1e-6);
      const double distance_to_half = std::abs(frac - 0.5);
      if (score > best_score ||
          (score == best_score && distance_to_half < best_distance_to_half)) {
        best = j;
        best_score = score;
        best_distance_to_half = distance_to_half;
      }
    }
    return best;
  }

  void update_pseudocost(const Node& node, double node_score) {
    const double gain = std::max(node_score - node.bound_score, 0.0);
    if (!std::isfinite(gain)) return;  // root bound was unknown
    const double per_unit = gain / std::max(node.branch_dist, 1e-6);
    const std::size_t v = static_cast<std::size_t>(node.branch_var);
    if (node.branch_up) {
      pc_up_sum_[v] += per_unit;
      ++pc_up_count_[v];
      pc_total_up_ += per_unit;
      ++pc_observations_up_;
    } else {
      pc_down_sum_[v] += per_unit;
      ++pc_down_count_[v];
      pc_total_down_ += per_unit;
      ++pc_observations_down_;
    }
  }

  /// Creates the two children of `node` around `branch_var`.  Bound boxes
  /// come from the materialized arrays, so ancestor tightenings carry over.
  void branch(const Node& node, int branch_var, const std::vector<double>& values,
              double node_score) {
    const std::size_t v = static_cast<std::size_t>(branch_var);
    const double value = values[v];
    const double floor_v = std::floor(value + options_.integrality_tolerance);
    const double down_dist = std::max(value - floor_v, options_.integrality_tolerance);
    const double up_dist = std::max(floor_v + 1.0 - value, options_.integrality_tolerance);

    Node down;
    down.bound_score = node_score;
    down.depth = node.depth + 1;
    down.branch_var = branch_var;
    down.branch_dist = down_dist;
    down.branch_up = false;
    Node up = down;
    up.branch_dist = up_dist;
    up.branch_up = true;

    const double down_upper = std::min(cur_upper_[v], floor_v);
    const double up_lower = std::max(cur_lower_[v], floor_v + 1.0);
    const bool down_valid = cur_lower_[v] <= down_upper;
    const bool up_valid = up_lower <= cur_upper_[v];
    const bool down_first = (value - floor_v) <= 0.5;

    // Depth-first pops the back, so push the nearer child last; best-first
    // breaks bound ties by seq, so give the nearer child the larger seq.
    auto push_down = [&] {
      if (!down_valid) return;
      down.seq = ++seq_;
      down.changes = std::make_shared<const Chain>(
          Chain{BoundChange{branch_var, cur_lower_[v], down_upper}, node.changes});
      push_node(std::move(down));
    };
    auto push_up = [&] {
      if (!up_valid) return;
      up.seq = ++seq_;
      up.changes = std::make_shared<const Chain>(
          Chain{BoundChange{branch_var, up_lower, cur_upper_[v]}, node.changes});
      push_node(std::move(up));
    };
    if (down_first) {
      push_up();
      push_down();
    } else {
      push_down();
      push_up();
    }
  }

  // ---- incumbents ----------------------------------------------------------

  /// Rounds the LP point into the node's box and adopts it when feasible.
  void try_rounding(const std::vector<double>& lp_values) {
    std::vector<double> rounded = lp_values;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      double v = std::round(rounded[static_cast<std::size_t>(j)]);
      v = std::clamp(v, cur_lower_[static_cast<std::size_t>(j)],
                     cur_upper_[static_cast<std::size_t>(j)]);
      rounded[static_cast<std::size_t>(j)] = v;
    }
    if (model_.is_feasible(rounded)) offer_incumbent(std::move(rounded));
  }

  void offer_incumbent(std::vector<double> point) {
    const double score = min_score(model_.objective_value(point));
    if (!incumbent_.has_value() || score < incumbent_score_) {
      incumbent_ = std::move(point);
      incumbent_score_ = score;
      log_debug("milp: new incumbent ", user_value(score), " after ", nodes_, " nodes");
      if (obs::tracing_enabled()) report_progress(true);
    }
  }

  const Model& model_;
  const MilpOptions& options_;
  Clock::time_point start_;

  std::vector<double> root_lower_, root_upper_;  ///< presolved root box
  std::vector<double> cur_lower_, cur_upper_;    ///< materialized node box
  std::vector<long> stamp_;
  std::vector<int> touched_;
  long epoch_ = 0;

  std::vector<Node> open_;
  long seq_ = 0;

  std::vector<double> pc_down_sum_, pc_up_sum_;
  std::vector<long> pc_down_count_, pc_up_count_;
  double pc_total_down_ = 0.0, pc_total_up_ = 0.0;
  long pc_observations_down_ = 0, pc_observations_up_ = 0;

  Clock::time_point last_counter_emit_{};  ///< epoch => first sample emits at once
  Clock::time_point last_heartbeat_{};

  std::optional<std::vector<double>> incumbent_;
  double incumbent_score_ = kInfinity;
  double root_bound_score_ = -kInfinity;
  double pending_bound_ = kInfinity;  ///< bound of a node interrupted mid-solve
  long nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  bool limit_hit_ = false;
};

}  // namespace

namespace {

const char* status_name(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kLimit: return "limit";
  }
  return "?";
}

}  // namespace

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
  obs::Span span("ilp", "solve_milp");
  if (span.active()) {
    span.arg("vars", model.variable_count());
    span.arg("constraints", model.constraint_count());
  }
  const MilpResult result = [&] {
    if (options.presolve) {
      const PresolveResult reduced = presolve(model);
      if (reduced.status == PresolveStatus::kInfeasible) {
        MilpResult infeasible;
        infeasible.status = MilpStatus::kInfeasible;
        return infeasible;
      }
      if (reduced.tightenings > 0) {
        log_debug("milp presolve: ", reduced.tightenings, " bound tightenings, ",
                  reduced.fixed_variables, " variables fixed");
        BranchAndBound solver(model, options, &reduced.lower, &reduced.upper);
        return solver.run();
      }
    }
    BranchAndBound solver(model, options);
    return solver.run();
  }();
  if (span.active()) {
    span.arg("status", status_name(result.status));
    span.arg("nodes", result.nodes);
    span.arg("lp_iterations", result.lp_iterations);
  }
  return result;
}

}  // namespace fsyn::ilp
