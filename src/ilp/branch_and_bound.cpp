#include "ilp/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ilp/presolve.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::ilp {

namespace {

using Clock = std::chrono::steady_clock;

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MilpOptions& options,
                 const std::vector<double>* presolved_lower = nullptr,
                 const std::vector<double>* presolved_upper = nullptr)
      : model_(model), options_(options), start_(Clock::now()) {
    lower_.reserve(static_cast<std::size_t>(model.variable_count()));
    upper_.reserve(static_cast<std::size_t>(model.variable_count()));
    for (int j = 0; j < model.variable_count(); ++j) {
      const Variable& v = model.variable(VarId{j});
      double lo = presolved_lower ? (*presolved_lower)[static_cast<std::size_t>(j)] : v.lower;
      double hi = presolved_upper ? (*presolved_upper)[static_cast<std::size_t>(j)] : v.upper;
      // Integer variables get their bounds pre-rounded inward so the LP
      // relaxation never explores fractional slivers outside them.
      if (v.type != VarType::kContinuous) {
        lo = std::isfinite(lo) ? std::ceil(lo - 1e-9) : lo;
        hi = std::isfinite(hi) ? std::floor(hi + 1e-9) : hi;
      }
      lower_.push_back(lo);
      upper_.push_back(hi);
    }
  }

  MilpResult run() {
    if (options_.initial_incumbent) {
      require(model_.is_feasible(*options_.initial_incumbent, 1e-5),
              "warm-start incumbent is not feasible");
      incumbent_ = *options_.initial_incumbent;
      incumbent_score_ = min_score(model_.objective_value(*incumbent_));
    }

    root_bound_score_ = -kInfinity;
    const NodeOutcome outcome = explore(0);

    MilpResult result;
    result.nodes = nodes_;
    result.lp_iterations = lp_iterations_;
    if (outcome == NodeOutcome::kUnbounded && !incumbent_.has_value()) {
      result.status = MilpStatus::kUnbounded;
      return result;
    }
    if (incumbent_.has_value()) {
      result.values = *incumbent_;
      result.objective = model_.objective_value(*incumbent_);
      result.status = limit_hit_ ? MilpStatus::kFeasible : MilpStatus::kOptimal;
      result.best_bound = limit_hit_ ? user_value(root_bound_score_) : result.objective;
    } else {
      result.status = limit_hit_ ? MilpStatus::kLimit : MilpStatus::kInfeasible;
      result.best_bound = user_value(root_bound_score_);
    }
    return result;
  }

 private:
  enum class NodeOutcome { kDone, kUnbounded };

  /// Converts a user-sense objective into an always-minimized score.
  double min_score(double user_objective) const {
    return model_.objective_sign() * (user_objective - model_.objective_constant());
  }
  double user_value(double score) const {
    return model_.objective_sign() * score + model_.objective_constant();
  }

  bool limits_exceeded() {
    if (nodes_ >= options_.max_nodes) return true;
    if (options_.time_limit_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed > options_.time_limit_seconds) return true;
    }
    if (options_.cancel.valid() && options_.cancel.cancelled()) return true;
    return false;
  }

  /// Picks the integer variable whose LP value is most fractional
  /// (fractional part closest to 0.5); -1 when the point is integral.
  int most_fractional(const std::vector<double>& values) const {
    int best = -1;
    double best_distance_to_half = 1.0;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      const double v = values[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac <= options_.integrality_tolerance) continue;
      const double distance_to_half = std::abs(frac - 0.5);
      if (best == -1 || distance_to_half < best_distance_to_half) {
        best = j;
        best_distance_to_half = distance_to_half;
      }
    }
    return best;
  }

  /// Rounds the LP point and adopts it as incumbent when feasible.
  void try_rounding(const std::vector<double>& lp_values) {
    std::vector<double> rounded = lp_values;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
      double v = std::round(rounded[static_cast<std::size_t>(j)]);
      v = std::clamp(v, lower_[static_cast<std::size_t>(j)], upper_[static_cast<std::size_t>(j)]);
      rounded[static_cast<std::size_t>(j)] = v;
    }
    if (model_.is_feasible(rounded)) {
      offer_incumbent(std::move(rounded));
    }
  }

  void offer_incumbent(std::vector<double> point) {
    const double score = min_score(model_.objective_value(point));
    if (!incumbent_.has_value() || score < incumbent_score_) {
      incumbent_ = std::move(point);
      incumbent_score_ = score;
      log_debug("milp: new incumbent ", user_value(score), " after ", nodes_, " nodes");
    }
  }

  NodeOutcome explore(int depth) {
    if (limits_exceeded()) {
      limit_hit_ = true;
      return NodeOutcome::kDone;
    }
    ++nodes_;

    const LpResult lp = solve_lp(model_, options_.lp, &lower_, &upper_);
    lp_iterations_ += lp.iterations;
    if (lp.status == LpStatus::kInfeasible) return NodeOutcome::kDone;
    if (lp.status == LpStatus::kUnbounded) return NodeOutcome::kUnbounded;
    if (lp.status == LpStatus::kIterationLimit) {
      limit_hit_ = true;
      return NodeOutcome::kDone;
    }

    const double node_score = min_score(lp.objective);
    if (depth == 0) root_bound_score_ = node_score;
    if (incumbent_.has_value() &&
        node_score >= incumbent_score_ - options_.absolute_gap) {
      return NodeOutcome::kDone;  // cannot improve enough
    }

    const int branch_var = most_fractional(lp.values);
    if (branch_var == -1) {
      // LP solution is already integral: snap and adopt.
      std::vector<double> snapped = lp.values;
      for (int j = 0; j < model_.variable_count(); ++j) {
        if (model_.variable(VarId{j}).type == VarType::kContinuous) continue;
        snapped[static_cast<std::size_t>(j)] = std::round(snapped[static_cast<std::size_t>(j)]);
      }
      if (model_.is_feasible(snapped)) {
        offer_incumbent(std::move(snapped));
      }
      return NodeOutcome::kDone;
    }

    try_rounding(lp.values);
    if (incumbent_.has_value() &&
        node_score >= incumbent_score_ - options_.absolute_gap) {
      return NodeOutcome::kDone;
    }

    const std::size_t v = static_cast<std::size_t>(branch_var);
    const double value = lp.values[v];
    const double floor_v = std::floor(value + options_.integrality_tolerance);
    const double saved_lower = lower_[v];
    const double saved_upper = upper_[v];

    // Dive toward the nearer integer first.
    const bool down_first = (value - floor_v) <= 0.5;
    for (int pass = 0; pass < 2; ++pass) {
      const bool down = (pass == 0) == down_first;
      if (down) {
        upper_[v] = std::min(saved_upper, floor_v);
        lower_[v] = saved_lower;
      } else {
        lower_[v] = std::max(saved_lower, floor_v + 1.0);
        upper_[v] = saved_upper;
      }
      if (lower_[v] <= upper_[v]) {
        const NodeOutcome outcome = explore(depth + 1);
        if (outcome == NodeOutcome::kUnbounded) {
          lower_[v] = saved_lower;
          upper_[v] = saved_upper;
          return outcome;
        }
      }
      lower_[v] = saved_lower;
      upper_[v] = saved_upper;
      if (limit_hit_) break;
    }
    return NodeOutcome::kDone;
  }

  const Model& model_;
  const MilpOptions& options_;
  Clock::time_point start_;

  std::vector<double> lower_, upper_;  // current node bound box
  std::optional<std::vector<double>> incumbent_;
  double incumbent_score_ = kInfinity;
  double root_bound_score_ = -kInfinity;
  long nodes_ = 0;
  int lp_iterations_ = 0;
  bool limit_hit_ = false;
};

}  // namespace

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
  if (options.presolve) {
    const PresolveResult reduced = presolve(model);
    if (reduced.status == PresolveStatus::kInfeasible) {
      MilpResult result;
      result.status = MilpStatus::kInfeasible;
      return result;
    }
    if (reduced.tightenings > 0) {
      log_debug("milp presolve: ", reduced.tightenings, " bound tightenings, ",
                reduced.fixed_variables, " variables fixed");
      BranchAndBound solver(model, options, &reduced.lower, &reduced.upper);
      return solver.run();
    }
  }
  BranchAndBound solver(model, options);
  return solver.run();
}

}  // namespace fsyn::ilp
