// Sparse LU factorization of a simplex basis with product-form eta updates.
//
// `LuFactors` factorizes one m-by-m basis matrix B0 (handed over as sparse
// columns) into P B0 Q = L U with Markowitz-style pivoting: each elimination
// step picks the admissible nonzero minimizing (row_count-1)*(col_count-1)
// subject to a relative magnitude threshold, which keeps fill-in — and with
// it the cost of every subsequent FTRAN/BTRAN — proportional to the basis
// sparsity instead of m^2.
//
// Between refactorizations the basis changes one column per simplex pivot.
// Those updates are absorbed as a *product-form eta file*: pivot k appends
// an elementary matrix E_k built from the FTRAN'd entering column, so
//
//   B_current^{-1} = E_k ... E_1 B0^{-1}
//
// FTRAN solves through L/U and then applies the etas forward; BTRAN applies
// the transposed etas in reverse and then solves through U^T/L^T.  When the
// eta file grows past the caller's budget (or an update pivot is too small
// to be stable) the caller refactorizes from scratch.
//
// Index conventions match the revised simplex in simplex.cpp: FTRAN maps a
// right-hand side indexed by constraint row to a solution indexed by basis
// slot (the basis column position), BTRAN maps slot-indexed input to a
// row-indexed dual solution.  Both solves run in place on dense length-m
// vectors but only touch the nonzero pattern of the factors.
#pragma once

#include <cstdint>
#include <vector>

namespace fsyn::ilp {

class LuFactors {
 public:
  /// Factorizes the m-by-m basis whose j-th column occupies
  /// rows[col_start[j] .. col_start[j+1]) / vals[...].  Clears the eta
  /// file.  Returns false when the basis is singular (or numerically so:
  /// no admissible pivot above the absolute tolerance remains).
  bool factorize(int m, const std::vector<int>& col_start, const std::vector<int>& rows,
                 const std::vector<double>& vals);

  /// True after a successful factorize (etas may have been appended since).
  bool valid() const { return valid_; }

  /// Appends a product-form eta for a basis change at slot `r` with the
  /// FTRAN'd entering column `w` (slot-indexed, length m).  Returns false
  /// when |w[r]| is below the stability tolerance — the caller must then
  /// refactorize instead (the basis arrays are already updated, so a fresh
  /// factorize picks the change up).
  bool update(int r, const std::vector<double>& w);

  /// Solves B_current x = b in place.  In: b indexed by constraint row.
  /// Out: x indexed by basis slot.
  void ftran(std::vector<double>& x) const;

  /// Solves B_current^T x = b in place.  In: b indexed by basis slot.
  /// Out: x indexed by constraint row.
  void btran(std::vector<double>& x) const;

  int eta_count() const { return static_cast<int>(eta_start_.size()) - 1; }
  std::int64_t eta_nnz() const { return static_cast<std::int64_t>(eta_slot_.size()); }
  /// Nonzeros of L + U (diagonal included) from the last factorization.
  std::int64_t lu_nnz() const { return lu_nnz_; }
  /// Nonzeros of the basis handed to the last factorization.
  std::int64_t basis_nnz() const { return basis_nnz_; }

 private:
  void clear_etas();
  void apply_etas(std::vector<double>& x) const;             ///< x := E_k ... E_1 x
  void apply_etas_transposed(std::vector<double>& x) const;  ///< x' := x' E_k ... E_1

  int m_ = 0;
  bool valid_ = false;
  std::int64_t lu_nnz_ = 0;
  std::int64_t basis_nnz_ = 0;

  // Permutations: step k eliminated original row pr_[k] / column pc_[k];
  // rowpos_ inverts pr_ for the transposed L solve.
  std::vector<int> pr_, pc_, rowpos_;

  // L: unit lower triangular, stored per elimination step as (original row,
  // multiplier) pairs; U: rows stored per step as the diagonal plus
  // (original column, value) pairs.  Original indices let every solve run
  // directly on caller-order vectors without a permutation pass.
  std::vector<int> l_start_;  ///< size m+1
  std::vector<int> l_row_;
  std::vector<double> l_val_;
  std::vector<double> u_diag_;  ///< size m
  std::vector<int> u_start_;    ///< size m+1
  std::vector<int> u_col_;
  std::vector<double> u_val_;

  // Eta file: eta k pivots slot eta_r_[k] with diagonal eta_diag_[k] and
  // off-diagonal (slot, coefficient) pairs.
  std::vector<int> eta_start_{0};
  std::vector<int> eta_r_;
  std::vector<double> eta_diag_;
  std::vector<int> eta_slot_;
  std::vector<double> eta_coef_;

  // Factorization workspace (kept across calls to avoid reallocation).
  struct Entry {
    int col;
    double val;
  };
  std::vector<std::vector<Entry>> work_rows_;
  std::vector<int> col_count_;
  std::vector<char> row_done_, col_done_;
  std::vector<double> acc_;
  std::vector<int> acc_stamp_;
  std::vector<int> touched_;
  int stamp_ = 0;
};

}  // namespace fsyn::ilp
