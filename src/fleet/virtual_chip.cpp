#include "fleet/virtual_chip.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fsyn::fleet {

namespace {

/// Boost-style hash combine; the per-cell stream is a pure function of
/// (fleet seed, chip index, valve id), independent of everything the fleet
/// does to the chip afterwards.
std::uint64_t mix(std::uint64_t seed, std::uint64_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

}  // namespace

VirtualChip::VirtualChip(std::uint64_t fleet_seed, int chip_index,
                         const synth::SynthesisResult& healthy,
                         const VirtualChipOptions& options)
    : width_(healthy.chip_width), height_(healthy.chip_height), options_(options) {
  check_input(width_ > 0 && height_ > 0, "virtual chip needs a synthesized matrix");
  cells_.resize(static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const int id = y * width_ + x;
      Cell& cell = cells_[static_cast<std::size_t>(id)];
      // Actuation class is fixed by the healthy design: its pump-ring cells
      // flex full-stroke, every other cell (even a functionless wall a
      // repair may later use) only latches.
      const bool pump = healthy.ledger_setting1.pump.at(x, y) > 0;
      const rel::ClassParams& params =
          pump ? options_.model.pump : options_.model.control;
      Rng rng(mix(mix(fleet_seed, static_cast<std::uint64_t>(chip_index)),
                  static_cast<std::uint64_t>(id)));
      // Inverse-CDF Weibull draw, u clamped away from 0 so life > 0.
      const double u = std::max(rng.next_double(), 1e-12);
      cell.life = params.characteristic_actuations *
                  std::pow(-std::log(1.0 - u), 1.0 / params.shape);
      cell.stuck_mode =
          rng.next_bool(0.5) ? rel::FaultMode::kStuckOpen : rel::FaultMode::kStuckClosed;
    }
  }
  install(healthy);
}

void VirtualChip::install(const synth::SynthesisResult& design) {
  check_input(design.chip_width == width_ && design.chip_height == height_,
              "installed design must match the manufactured valve matrix");
  const Grid<int> total = design.ledger_setting1.total();
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      cells_[static_cast<std::size_t>(y * width_ + x)].per_run = total.at(x, y);
    }
  }
}

void VirtualChip::wear(Cell& cell, double amount) {
  if (amount <= 0.0) return;
  const bool was_stuck = stuck(cell);
  cell.worn += amount;
  if (!was_stuck && stuck(cell)) cell.onset_run = runs_completed_;
}

void VirtualChip::advance_run() {
  ++runs_completed_;
  for (Cell& cell : cells_) wear(cell, static_cast<double>(cell.per_run));
}

void VirtualChip::apply_test_wear(const Grid<int>& test_actuations) {
  check_input(test_actuations.width() == width_ && test_actuations.height() == height_,
              "self-test wear grid must match the valve matrix");
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      wear(cells_[static_cast<std::size_t>(y * width_ + x)],
           static_cast<double>(test_actuations.at(x, y)));
    }
  }
}

TestResponse VirtualChip::respond(const TestSchedule& schedule) const {
  check_input(schedule.width == width_ && schedule.height == height_,
              "self-test schedule must match the valve matrix");
  TestResponse response;
  response.vectors.reserve(schedule.vectors.size());
  for (const TestVector& vector : schedule.vectors) {
    VectorResponse observed;
    observed.pass = true;
    observed.latency_ms = options_.nominal_response_ms;
    for (const Point& point : vector.cells) {
      const Cell& cell = cells_[static_cast<std::size_t>(point.y * width_ + point.x)];
      if (stuck(cell)) {
        // Phase separation: a stuck-open valve cannot seal its closure
        // line but passes flow fine; a stuck-closed valve blocks the
        // opening line but seals perfectly.
        const bool fails =
            vector.phase == TestPhase::kClosure
                ? cell.stuck_mode == rel::FaultMode::kStuckOpen
                : cell.stuck_mode == rel::FaultMode::kStuckClosed;
        if (fails) observed.pass = false;
      } else if (cell.worn >= options_.degrade_fraction * cell.life) {
        observed.latency_ms = std::max(observed.latency_ms, options_.degraded_response_ms);
      }
    }
    response.vectors.push_back(observed);
  }
  return response;
}

void VirtualChip::force_fault(Point cell, rel::FaultMode mode) {
  check_input(cell.x >= 0 && cell.x < width_ && cell.y >= 0 && cell.y < height_,
              "force_fault cell outside the valve matrix");
  Cell& state = cells_[static_cast<std::size_t>(cell.y * width_ + cell.x)];
  state.stuck_mode = mode;
  if (!stuck(state)) {
    state.worn = state.life;
    state.onset_run = runs_completed_;
  }
}

void VirtualChip::force_wear_fraction(Point cell, double fraction) {
  check_input(cell.x >= 0 && cell.x < width_ && cell.y >= 0 && cell.y < height_,
              "force_wear_fraction cell outside the valve matrix");
  check_input(fraction >= 0.0, "wear fraction must be >= 0");
  Cell& state = cells_[static_cast<std::size_t>(cell.y * width_ + cell.x)];
  const bool was_stuck = stuck(state);
  state.worn = fraction * state.life;
  if (!was_stuck && stuck(state)) state.onset_run = runs_completed_;
}

std::vector<ChipFault> VirtualChip::faults() const {
  std::vector<ChipFault> out;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Cell& cell = cells_[static_cast<std::size_t>(y * width_ + x)];
      if (!stuck(cell)) continue;
      ChipFault fault;
      fault.valve = Point{x, y};
      fault.mode = cell.stuck_mode;
      fault.onset_run = std::max(cell.onset_run, 0);
      out.push_back(fault);
    }
  }
  return out;
}

std::vector<ChipFault> VirtualChip::active_faults() const {
  std::vector<ChipFault> out;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Cell& cell = cells_[static_cast<std::size_t>(y * width_ + x)];
      if (!stuck(cell) || cell.per_run == 0) continue;
      ChipFault fault;
      fault.valve = Point{x, y};
      fault.mode = cell.stuck_mode;
      fault.onset_run = std::max(cell.onset_run, 0);
      out.push_back(fault);
    }
  }
  return out;
}

}  // namespace fsyn::fleet
