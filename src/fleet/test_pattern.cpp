#include "fleet/test_pattern.hpp"

#include "util/error.hpp"

namespace fsyn::fleet {

const char* to_string(TestPhase phase) {
  return phase == TestPhase::kClosure ? "closure" : "opening";
}

const char* to_string(LineOrientation orientation) {
  return orientation == LineOrientation::kRow ? "row" : "column";
}

namespace {

void add_lines(TestSchedule& schedule, TestPhase phase) {
  for (int y = 0; y < schedule.height; ++y) {
    TestVector vector;
    vector.phase = phase;
    vector.orientation = LineOrientation::kRow;
    vector.index = y;
    for (int x = 0; x < schedule.width; ++x) vector.cells.push_back(Point{x, y});
    schedule.vectors.push_back(std::move(vector));
  }
  for (int x = 0; x < schedule.width; ++x) {
    TestVector vector;
    vector.phase = phase;
    vector.orientation = LineOrientation::kColumn;
    vector.index = x;
    for (int y = 0; y < schedule.height; ++y) vector.cells.push_back(Point{x, y});
    schedule.vectors.push_back(std::move(vector));
  }
}

}  // namespace

TestSchedule compile_self_test(int width, int height) {
  check_input(width > 0 && height > 0, "self-test needs a positive valve matrix");
  TestSchedule schedule;
  schedule.width = width;
  schedule.height = height;
  add_lines(schedule, TestPhase::kClosure);
  add_lines(schedule, TestPhase::kOpening);
  return schedule;
}

sim::ControlProgram TestSchedule::to_control_program() const {
  sim::ControlProgram program;
  int time = 0;
  for (const TestVector& vector : vectors) {
    for (const Point& cell : vector.cells) {
      sim::ValveEvent event;
      event.time = time;
      event.valve = cell;
      event.action = sim::ValveAction::kOpenClose;
      event.count = 2;
      event.cause = std::string("self-test ") + to_string(vector.phase) + " " +
                    to_string(vector.orientation) + " " + std::to_string(vector.index);
      program.events.push_back(std::move(event));
    }
    ++time;
  }
  return program;
}

TestResponse expected_response(const TestSchedule& schedule, double nominal_ms) {
  TestResponse response;
  response.vectors.resize(schedule.vectors.size());
  for (VectorResponse& vector : response.vectors) {
    vector.pass = true;
    vector.latency_ms = nominal_ms;
  }
  return response;
}

}  // namespace fsyn::fleet
