// A virtual chip: one deployed valve matrix with hidden wear state.
//
// Each cell carries a hidden Weibull life (in actuations) drawn statelessly
// from (fleet seed, chip index, valve id), so a chip's physics never depend
// on its repair history — the property that makes whole-fleet runs
// bit-reproducible.  Wear accumulates from two sources: assay runs of the
// currently installed design (its setting-1 actuation ledger) and the
// periodic self-test (8 actuations per cell per test).  When a cell's wear
// crosses its life it becomes *stuck* — open or closed, a 50/50 draw from
// the same stateless stream; past a configurable fraction of its life it is
// merely *degraded* and responds sluggishly, which the self-test's latency
// channel picks up before the valve dies.
//
// The fleet observes the chip only through `respond` (what a controller
// could measure); `faults`/`active_faults` are the oracle view, used for
// metrics (detection latency, missed faults) and tests — never diagnosis.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/test_pattern.hpp"
#include "rel/fault_plan.hpp"
#include "rel/lifetime_model.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::fleet {

struct VirtualChipOptions {
  rel::LifetimeModel model;
  /// Wear fraction of a cell's life past which its response slows from
  /// nominal to degraded (the early-warning band before it sticks).
  double degrade_fraction = 0.85;
  double nominal_response_ms = 5.0;
  double degraded_response_ms = 12.0;
};

/// Oracle view of one failed cell.
struct ChipFault {
  Point valve;
  rel::FaultMode mode = rel::FaultMode::kStuckClosed;
  int onset_run = 0;  ///< assay runs completed when the cell stuck
};

class VirtualChip {
 public:
  /// `healthy` fixes the matrix dimensions, the initial per-run wear
  /// pattern, and each cell's actuation class (pump ring cells draw from
  /// the pump life distribution; everything else, including functionless
  /// walls, from the control one).
  VirtualChip(std::uint64_t fleet_seed, int chip_index,
              const synth::SynthesisResult& healthy, const VirtualChipOptions& options);

  /// Wears every cell by one assay run of the installed design.
  void advance_run();
  /// Wears every cell by one execution of the self-test program (its
  /// replayed per-cell actuation grid, computed once by the fleet).
  void apply_test_wear(const Grid<int>& test_actuations);
  /// What the controller measures when it executes the self-test.
  TestResponse respond(const TestSchedule& schedule) const;
  /// Installs a repaired design: future runs wear its actuation pattern.
  void install(const synth::SynthesisResult& design);

  /// Test hooks: force a cell into a stuck mode / to a wear fraction.
  void force_fault(Point cell, rel::FaultMode mode);
  void force_wear_fraction(Point cell, double fraction);

  /// All stuck cells, in valve-id order (oracle).
  std::vector<ChipFault> faults() const;
  /// Stuck cells the installed design actually actuates — the ones that
  /// corrupt assays (a stuck functionless wall is harmless).
  std::vector<ChipFault> active_faults() const;
  bool has_active_fault() const { return !active_faults().empty(); }

  int runs_completed() const { return runs_completed_; }
  int width() const { return width_; }
  int height() const { return height_; }

 private:
  struct Cell {
    double life = 0.0;  ///< hidden Weibull life, actuations
    double worn = 0.0;
    rel::FaultMode stuck_mode = rel::FaultMode::kStuckClosed;
    int per_run = 0;    ///< actuations per assay run of the installed design
    int onset_run = -1; ///< set when worn first crosses life
  };

  bool stuck(const Cell& cell) const { return cell.worn >= cell.life; }
  void wear(Cell& cell, double amount);

  int width_ = 0;
  int height_ = 0;
  VirtualChipOptions options_;
  std::vector<Cell> cells_;  ///< row-major, valve_id = y * width + x
  int runs_completed_ = 0;
};

}  // namespace fsyn::fleet
