#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"
#include "rel/engine.hpp"
#include "sched/list_scheduler.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fsyn::fleet {

namespace {

using Clock = std::chrono::steady_clock;

std::string json_str(const std::string& text) {
  std::string out;
  obs::append_json_string(out, text);
  return out;
}

}  // namespace

const char* to_string(ChipState state) {
  switch (state) {
    case ChipState::kHealthy: return "healthy";
    case ChipState::kDegraded: return "degraded";
    case ChipState::kRepaired: return "repaired";
    case ChipState::kRetired: return "retired";
  }
  return "?";
}

FleetReport run_fleet(const assay::SequencingGraph& graph, const FleetOptions& options) {
  check_input(options.chips > 0, "fleet needs at least one chip");
  check_input(options.cadence > 0, "fleet cadence must be >= 1");
  check_input(options.horizon > 0, "fleet horizon must be >= 1");
  check_input(options.repair_workers > 0, "fleet needs at least one repair worker");
  check_input(options.max_repairs_per_chip >= 0, "max repairs per chip must be >= 0");

  obs::Span span("fleet", "run");
  if (span.active()) {
    span.arg("assay", graph.name());
    span.arg("chips", options.chips);
    span.arg("horizon", options.horizon);
  }
  const Clock::time_point started = Clock::now();

  const sched::Schedule schedule =
      options.asap ? sched::schedule_asap(graph)
                   : sched::schedule_with_policy(
                         graph, sched::make_policy(graph, options.policy_increments));

  synth::SynthesisOptions base = options.synthesis;
  if (!base.cancel.valid()) base.cancel = options.cancel;
  const synth::SynthesisResult healthy = synth::synthesize(graph, schedule, base);

  const TestSchedule self_test = compile_self_test(healthy.chip_width, healthy.chip_height);
  const Grid<int> test_wear =
      self_test.to_control_program().replay(healthy.chip_width, healthy.chip_height);
  const TestResponse expected =
      expected_response(self_test, options.chip.nominal_response_ms);

  // The private repair service.  Repairs must NOT go through the service
  // running the fleet job itself: a pooled job waiting on work queued
  // behind it deadlocks.  Capacity covers a whole fleet-wide fault wave.
  svc::BatchService::Config repair_config;
  repair_config.workers = options.repair_workers;
  repair_config.queue_capacity =
      std::max<std::size_t>(64, static_cast<std::size_t>(options.chips) * 2);
  svc::BatchService repair_service(repair_config);

  FleetReport report;
  report.assay = graph.name();
  report.policy_increments = options.policy_increments;
  report.asap = options.asap;
  report.chip_width = healthy.chip_width;
  report.chip_height = healthy.chip_height;
  report.seed = options.seed;
  report.chips = options.chips;
  report.cadence = options.cadence;
  report.horizon = options.horizon;
  report.runs_possible =
      static_cast<long>(options.chips) * static_cast<long>(options.horizon);

  struct Runtime {
    ChipState state = ChipState::kHealthy;
    std::vector<Point> dead;  ///< every diagnosed cell, fed to re-synthesis
    std::map<Point, FaultRecord> detected;
    synth::Placement previous;
    int repairs = 0;
  };
  std::vector<VirtualChip> chips;
  chips.reserve(static_cast<std::size_t>(options.chips));
  std::vector<Runtime> runtimes(static_cast<std::size_t>(options.chips));
  for (int c = 0; c < options.chips; ++c) {
    chips.emplace_back(options.seed, c, healthy, options.chip);
    runtimes[static_cast<std::size_t>(c)].previous = healthy.placement;
  }

  obs::LatencyHistogram diagnosis_latency;
  obs::LatencyHistogram repair_latency;

  for (int run = 1; run <= options.horizon; ++run) {
    options.cancel.check("fleet horizon loop");

    for (int c = 0; c < options.chips; ++c) {
      VirtualChip& chip = chips[static_cast<std::size_t>(c)];
      if (runtimes[static_cast<std::size_t>(c)].state == ChipState::kRetired) continue;
      chip.advance_run();
      ++report.assay_runs;
      if (!chip.has_active_fault()) ++report.runs_available;
    }
    if (run % options.cadence != 0) continue;

    // Self-test sweep: diagnose every chip in service, submit all repairs,
    // then collect them in chip-index order — the per-step barrier that
    // keeps the run deterministic regardless of worker interleaving.
    struct PendingRepair {
      int chip = 0;
      std::future<svc::JobResult> future;
    };
    std::vector<PendingRepair> pending;

    for (int c = 0; c < options.chips; ++c) {
      Runtime& runtime = runtimes[static_cast<std::size_t>(c)];
      VirtualChip& chip = chips[static_cast<std::size_t>(c)];
      if (runtime.state == ChipState::kRetired) continue;

      chip.apply_test_wear(test_wear);
      ++report.self_tests;
      const TestResponse observed = chip.respond(self_test);
      const Clock::time_point diag_started = Clock::now();
      const Diagnosis diagnosis = diagnose(self_test, expected, observed, options.diagnosis);
      diagnosis_latency.record(Clock::now() - diag_started);

      if (!diagnosis.degraded.empty()) ++report.degraded_warnings;

      // Only *new* findings act: cells already retired from service by an
      // earlier repair keep failing their test lines forever.
      std::vector<DiagnosedFault> fresh;
      for (const DiagnosedFault& fault : diagnosis.stuck) {
        if (std::find(runtime.dead.begin(), runtime.dead.end(), fault.valve) ==
            runtime.dead.end()) {
          fresh.push_back(fault);
        }
      }
      if (fresh.empty()) continue;

      // Reconcile with the oracle for metrics only (detection latency,
      // false positives); the repair uses just the diagnosed cells.
      const std::vector<ChipFault> oracle = chip.faults();
      for (const DiagnosedFault& fault : fresh) {
        const auto hit =
            std::find_if(oracle.begin(), oracle.end(),
                         [&](const ChipFault& f) { return f.valve == fault.valve; });
        if (hit == oracle.end()) {
          ++report.false_positives;
          continue;
        }
        if (runtime.detected.count(fault.valve) > 0) continue;
        FaultRecord record;
        record.chip = c;
        record.valve = fault.valve;
        record.mode = hit->mode;
        record.onset_run = hit->onset_run;
        record.detected_run = run;
        record.aliased = fault.aliased;
        ++report.faults_detected;
        report.detection_latency_runs += run - hit->onset_run;
        runtime.detected.emplace(fault.valve, record);
      }
      for (const DiagnosedFault& fault : fresh) runtime.dead.push_back(fault.valve);

      runtime.state = ChipState::kDegraded;
      if (runtime.repairs >= options.max_repairs_per_chip) {
        runtime.state = ChipState::kRetired;
        log_info("fleet: chip ", c, " retired at run ", run,
                 " (repair budget exhausted)");
        continue;
      }

      // Live degraded re-synthesis: pin the manufactured matrix, thread the
      // accumulated dead set, and warm-start from the chip's current
      // placement minimally repaired for the degraded problem.
      svc::JobSpec spec;
      spec.kind = svc::JobKind::kSynthesis;
      spec.priority = svc::JobPriority::kBackground;
      spec.name = "repair chip " + std::to_string(c) + " @" + std::to_string(run);
      spec.graph = graph;
      spec.policy_increments = options.policy_increments;
      spec.asap = options.asap;
      spec.options = base;
      spec.options.grid_size = healthy.chip_width;
      spec.options.max_chip_growth = 0;  // the manufactured matrix cannot grow
      spec.options.dead_valves = runtime.dead;
      {
        arch::Architecture matrix(healthy.chip_width, healthy.chip_height);
        synth::MappingProblem probe =
            synth::MappingProblem::build(graph, schedule, std::move(matrix));
        probe.set_allow_storage_overlap(spec.options.allow_storage_overlap);
        probe.set_routing_convenient(spec.options.routing_convenient);
        probe.set_dead_valves(runtime.dead);
        if (auto warm = rel::repair_placement(probe, runtime.previous)) {
          if (spec.options.mapper == synth::MapperKind::kIlp) {
            spec.options.ilp.warm_start = std::move(*warm);
          } else {
            spec.options.heuristic.warm_start = std::move(*warm);
          }
          ++report.repairs_warm_started;
        }
      }
      ++report.repairs_attempted;
      PendingRepair item;
      item.chip = c;
      item.future = repair_service.submit(std::move(spec));
      pending.push_back(std::move(item));
    }

    for (PendingRepair& item : pending) {
      svc::JobResult result = item.future.get();
      Runtime& runtime = runtimes[static_cast<std::size_t>(item.chip)];
      repair_latency.record_seconds(result.run_seconds);
      if (result.status == svc::JobStatus::kDone) {
        chips[static_cast<std::size_t>(item.chip)].install(*result.result);
        runtime.previous = result.result->placement;
        runtime.state = ChipState::kRepaired;
        ++runtime.repairs;
        ++report.repairs_succeeded;
      } else if (result.status == svc::JobStatus::kCancelled) {
        throw CancelledError(result.error);
      } else {
        runtime.state = ChipState::kRetired;
        log_info("fleet: chip ", item.chip, " retired at run ", run, ": ", result.error);
      }
    }
  }

  // End-of-horizon reconciliation: every stuck cell either made it into the
  // detected map or is a missed fault (censored by the horizon — a longer
  // run might still have caught it at a later self-test).
  for (int c = 0; c < options.chips; ++c) {
    const Runtime& runtime = runtimes[static_cast<std::size_t>(c)];
    for (const ChipFault& fault : chips[static_cast<std::size_t>(c)].faults()) {
      ++report.faults_occurred;
      const auto hit = runtime.detected.find(fault.valve);
      if (hit != runtime.detected.end()) {
        report.fault_log.push_back(hit->second);
      } else {
        FaultRecord record;
        record.chip = c;
        record.valve = fault.valve;
        record.mode = fault.mode;
        record.onset_run = fault.onset_run;
        record.detected_run = -1;
        ++report.faults_missed;
        report.fault_log.push_back(record);
      }
    }
    switch (runtime.state) {
      case ChipState::kHealthy: ++report.chips_healthy; break;
      case ChipState::kDegraded: ++report.chips_degraded; break;
      case ChipState::kRepaired: ++report.chips_repaired; break;
      case ChipState::kRetired: ++report.chips_retired; break;
    }
  }

  report.diagnosis_latency = diagnosis_latency.snapshot();
  report.repair_latency = repair_latency.snapshot();
  report.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  if (span.active()) {
    span.arg("faults_detected", report.faults_detected);
    span.arg("repairs_succeeded", report.repairs_succeeded);
    span.arg("chips_retired", report.chips_retired);
  }
  return report;
}

std::string FleetReport::to_json(bool include_timing) const {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"format\": \"flowsynth-fleet-v1\",\n";
  os << "  \"assay\": " << json_str(assay) << ",\n";
  os << "  \"policy_increments\": " << policy_increments << ",\n";
  os << "  \"asap\": " << (asap ? "true" : "false") << ",\n";
  os << "  \"chip\": {\"width\": " << chip_width << ", \"height\": " << chip_height << "},\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"chips\": " << chips << ",\n";
  os << "  \"cadence\": " << cadence << ",\n";
  os << "  \"horizon\": " << horizon << ",\n";
  os << "  \"assay_runs\": " << assay_runs << ",\n";
  os << "  \"self_tests\": " << self_tests << ",\n";
  os << "  \"faults\": {\"occurred\": " << faults_occurred << ", \"detected\": "
     << faults_detected << ", \"missed\": " << faults_missed
     << ", \"false_positives\": " << false_positives << "},\n";
  os << "  \"repairs\": {\"attempted\": " << repairs_attempted << ", \"succeeded\": "
     << repairs_succeeded << ", \"warm_started\": " << repairs_warm_started
     << ", \"success_rate\": "
     << (repairs_attempted > 0
             ? static_cast<double>(repairs_succeeded) /
                   static_cast<double>(repairs_attempted)
             : 0.0)
     << "},\n";
  os << "  \"chips_by_state\": {\"healthy\": " << chips_healthy << ", \"degraded\": "
     << chips_degraded << ", \"repaired\": " << chips_repaired << ", \"retired\": "
     << chips_retired << "},\n";
  os << "  \"degraded_warnings\": " << degraded_warnings << ",\n";
  os << "  \"detection_latency_runs\": " << detection_latency_runs << ",\n";
  os << "  \"mean_detection_latency_runs\": " << mean_detection_latency_runs() << ",\n";
  os << "  \"runs_available\": " << runs_available << ",\n";
  os << "  \"runs_possible\": " << runs_possible << ",\n";
  os << "  \"availability\": " << availability() << ",\n";
  os << "  \"fault_log\": [";
  for (std::size_t i = 0; i < fault_log.size(); ++i) {
    const FaultRecord& record = fault_log[i];
    if (i > 0) os << ',';
    os << "\n    {\"chip\": " << record.chip << ", \"valve\": [" << record.valve.x
       << ", " << record.valve.y << "], \"mode\": \"" << rel::to_string(record.mode)
       << "\", \"onset_run\": " << record.onset_run << ", \"detected_run\": "
       << record.detected_run << ", \"missed\": " << (record.missed() ? "true" : "false")
       << ", \"aliased\": " << (record.aliased ? "true" : "false") << '}';
  }
  if (!fault_log.empty()) os << "\n  ";
  os << "]";
  if (include_timing) {
    os << ",\n  \"timing\": {\"elapsed_seconds\": " << elapsed_seconds
       << ", \"diagnosis_latency\": " << diagnosis_latency.to_json()
       << ", \"repair_latency\": " << repair_latency.to_json() << "}";
  }
  os << "\n}\n";
  return os.str();
}

svc::MetricsRegistry::FleetStats to_fleet_stats(const FleetReport& report) {
  svc::MetricsRegistry::FleetStats stats;
  stats.chips = report.chips;
  stats.assay_runs = report.assay_runs;
  stats.self_tests = report.self_tests;
  stats.faults_occurred = report.faults_occurred;
  stats.faults_detected = report.faults_detected;
  stats.faults_missed = report.faults_missed;
  stats.false_positives = report.false_positives;
  stats.repairs_attempted = report.repairs_attempted;
  stats.repairs_succeeded = report.repairs_succeeded;
  stats.chips_retired = report.chips_retired;
  stats.detection_latency_runs = report.detection_latency_runs;
  stats.runs_available = report.runs_available;
  stats.runs_possible = report.runs_possible;
  return stats;
}

svc::JobSpec make_fleet_job(std::shared_ptr<const assay::SequencingGraph> graph,
                            const FleetOptions& options) {
  check_input(graph != nullptr, "fleet job needs a sequencing graph");
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kFleet;
  spec.priority = svc::JobPriority::kBatch;
  spec.name = "fleet " + graph->name();
  spec.fleet_runner = [graph, options](const CancelToken& token,
                                       svc::MetricsRegistry::FleetStats* stats) {
    FleetOptions run_options = options;
    run_options.cancel = token;
    const FleetReport report = run_fleet(*graph, run_options);
    if (stats != nullptr) *stats = to_fleet_stats(report);
    return report.to_json();
  };
  return spec;
}

}  // namespace fsyn::fleet
