// Fault diagnosis from self-test responses.
//
// The diagnoser sees only what a controller measures: per-vector pass/fail
// and response latency (test_pattern.hpp).  It localizes faults by line
// intersection:
//
//  * a vector failing its *closure* phase contains a stuck-OPEN valve;
//  * a vector failing its *opening* phase contains a stuck-CLOSED valve;
//  * a closure vector whose latency exceeds the threshold contains a
//    *degraded* valve (worn membrane, still functional).
//
// Within one phase, the candidate set is the cross product of failing rows
// and failing columns.  A single fault localizes exactly (one row x one
// column).  Two faults sharing a row or column also localize exactly.  Two
// faults at distinct rows AND distinct columns alias to the 4-cell
// superset of both intersections — the classic limitation of walk-pattern
// testing; such candidates are flagged `aliased` so the caller knows the
// set may include healthy valves (the fleet retires them from service
// conservatively).  Opening- and closure-phase failures never interfere:
// each stuck mode is invisible to the other phase.
#pragma once

#include "fleet/test_pattern.hpp"
#include "rel/fault_plan.hpp"

namespace fsyn::fleet {

struct DiagnosisOptions {
  /// Closure latency above this is a degraded-valve warning.  Sits between
  /// the virtual chip's nominal (5 ms) and degraded (12 ms) responses.
  double latency_threshold_ms = 8.0;
};

struct DiagnosedFault {
  Point valve;
  rel::FaultMode mode = rel::FaultMode::kStuckClosed;
  /// Part of a multi-fault ambiguity superset: this cell failed-line
  /// intersection may include healthy valves.
  bool aliased = false;
};

struct Diagnosis {
  std::vector<DiagnosedFault> stuck;  ///< row-major order within each phase
  std::vector<Point> degraded;        ///< localized sluggish (not stuck) cells
  bool clean() const { return stuck.empty() && degraded.empty(); }

  /// The stuck set as a fault plan (all events at `at_run`), ready for
  /// rel::analyze or degraded re-synthesis.
  rel::FaultPlan to_fault_plan(int at_run) const;
};

/// Compares observed against expected responses; both must be parallel to
/// `schedule.vectors`.
Diagnosis diagnose(const TestSchedule& schedule, const TestResponse& expected,
                   const TestResponse& observed, const DiagnosisOptions& options = {});

}  // namespace fsyn::fleet
