// Valve-array self-test pattern generation.
//
// A deployed chip cannot be probed valve-by-valve: the controller only
// drives pressure lines and observes whether flow arrives (and how fast).
// Following the FPVA-testing approach (PAPERS.md, "Testing Microfluidic
// Fully Programmable Valve Arrays"), the self-test walks *lines* of the
// valve matrix in two phases:
//
//  * closure phase: every valve of a row (then of a column) is closed and
//    the line is pressurized.  A stuck-open valve cannot seal, so the line
//    holds no pressure and the vector fails.  Latency to seal also rises
//    when a worn membrane responds sluggishly, which is how *degraded*
//    valves are spotted before they die.
//  * opening phase: every valve of the line is opened and flow is pushed
//    through.  A stuck-closed valve blocks the line, failing the vector.
//
// Each cell appears in exactly one row and one column vector per phase, so
// a single faulty valve localizes to the intersection of its failing row
// and failing column (diagnosis.hpp).  The schedule covers the *full*
// matrix, not just the valves the current design uses: repairs may press
// previously functionless walls into service, and the array must already
// be known-good there.
//
// The schedule compiles to a sim::ControlProgram so the wear it inflicts on
// the chip is accounted with the same replay machinery as assay runs.
#pragma once

#include <vector>

#include "sim/control_program.hpp"

namespace fsyn::fleet {

enum class TestPhase { kClosure, kOpening };
enum class LineOrientation { kRow, kColumn };

const char* to_string(TestPhase phase);
const char* to_string(LineOrientation orientation);

/// One test vector: every valve of one grid line actuated together in one
/// phase.  `index` is the row's y or the column's x.
struct TestVector {
  TestPhase phase = TestPhase::kClosure;
  LineOrientation orientation = LineOrientation::kRow;
  int index = 0;
  std::vector<Point> cells;
};

/// The full self-test: closure rows, closure columns, opening rows, opening
/// columns, in that order.  Every cell is actuated by exactly four vectors.
struct TestSchedule {
  int width = 0;
  int height = 0;
  std::vector<TestVector> vectors;

  /// The schedule as an executable control program (one kOpenClose event
  /// per cell per vector), replayable into a per-valve actuation grid.
  sim::ControlProgram to_control_program() const;

  /// Actuations each cell endures per full self-test (4 vectors x 2).
  int actuations_per_cell() const { return 8; }
};

/// Compiles the walk-pattern schedule for a width x height valve matrix.
TestSchedule compile_self_test(int width, int height);

/// Observed behaviour of one vector.
struct VectorResponse {
  bool pass = true;          ///< the line sealed (closure) / flowed (opening)
  double latency_ms = 0.0;   ///< slowest cell's response time on the line
};

/// Chip responses, parallel to TestSchedule::vectors.
struct TestResponse {
  std::vector<VectorResponse> vectors;
};

/// The response a fault-free chip produces: every vector passes at the
/// nominal response time.  Diagnosis compares observations against this.
TestResponse expected_response(const TestSchedule& schedule, double nominal_ms);

}  // namespace fsyn::fleet
