// Closed-loop fleet reliability simulation.
//
// The missing piece between "rel injects faults" and "a deployed chip heals
// itself": a fleet of virtual chips (virtual_chip.hpp) runs the assay,
// wears out, and periodically executes the valve-array self-test
// (test_pattern.hpp).  Diagnosis (diagnosis.hpp) localizes stuck valves
// from the responses alone — no oracle knowledge — and every diagnosed
// chip goes through live degraded re-synthesis: a warm-started minimal
// repair (rel::repair_placement) submitted as a background-priority
// synthesis job to a *private* svc::BatchService (submitting back into the
// service executing the fleet job would deadlock).  Chips transition
//
//   healthy --fault diagnosed--> degraded --repair feasible--> repaired
//                                   |                             |
//                                   +--infeasible / budget--> retired
//
// (kRepaired chips re-enter the same cycle when another valve dies.)
//
// Determinism: every hidden life is a stateless draw from (seed, chip,
// valve), repairs are collected in chip-index order at each step, and the
// report's default serialization carries no timing — so a fleet run is a
// pure function of (assay, options, seed) and double runs are
// bit-identical, which the CI fleet-smoke asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/diagnosis.hpp"
#include "fleet/virtual_chip.hpp"
#include "svc/service.hpp"

namespace fsyn::fleet {

struct FleetOptions {
  int chips = 100;
  /// Self-test every this many assay runs.
  int cadence = 25;
  /// Assay runs per chip over the simulated service life.
  int horizon = 200;
  std::uint64_t seed = 2015;
  /// Workers of the private repair service.
  int repair_workers = 2;
  /// A chip is retired instead of repaired past this many repairs.
  int max_repairs_per_chip = 4;

  VirtualChipOptions chip;
  DiagnosisOptions diagnosis;
  /// Base options for the healthy synthesis and every repair round (repairs
  /// additionally pin the grid and thread the chip's dead set).
  synth::SynthesisOptions synthesis;
  int policy_increments = 0;
  bool asap = false;
  CancelToken cancel;
};

enum class ChipState { kHealthy, kDegraded, kRepaired, kRetired };

const char* to_string(ChipState state);

/// One fault's lifecycle, oracle-reconciled at end of horizon.
struct FaultRecord {
  int chip = 0;
  Point valve;
  rel::FaultMode mode = rel::FaultMode::kStuckClosed;
  int onset_run = 0;
  /// Run of the self-test that diagnosed it; -1 = never diagnosed within
  /// the horizon (end-of-horizon censoring counts it as missed).
  int detected_run = -1;
  bool aliased = false;

  bool missed() const { return detected_run < 0; }
};

struct FleetReport {
  std::string assay;
  int policy_increments = 0;
  bool asap = false;
  int chip_width = 0;
  int chip_height = 0;
  std::uint64_t seed = 0;
  int chips = 0;
  int cadence = 0;
  int horizon = 0;

  long assay_runs = 0;
  long self_tests = 0;
  long faults_occurred = 0;
  long faults_detected = 0;
  long faults_missed = 0;
  long false_positives = 0;
  long repairs_attempted = 0;
  long repairs_succeeded = 0;
  long repairs_warm_started = 0;
  long degraded_warnings = 0;
  int chips_healthy = 0;
  int chips_degraded = 0;
  int chips_repaired = 0;
  int chips_retired = 0;
  long detection_latency_runs = 0;  ///< summed over detected faults
  long runs_available = 0;          ///< chip-runs in service with no active fault
  long runs_possible = 0;           ///< chips * horizon

  std::vector<FaultRecord> fault_log;  ///< sorted by (chip, valve)

  obs::HistogramSnapshot diagnosis_latency;
  obs::HistogramSnapshot repair_latency;
  double elapsed_seconds = 0.0;

  double availability() const {
    return runs_possible > 0
               ? static_cast<double>(runs_available) / static_cast<double>(runs_possible)
               : 0.0;
  }
  double mean_detection_latency_runs() const {
    return faults_detected > 0 ? static_cast<double>(detection_latency_runs) /
                                     static_cast<double>(faults_detected)
                               : 0.0;
  }

  /// Deterministic JSON document ("format": "flowsynth-fleet-v1"); timing
  /// fields (elapsed seconds, latency histograms) only with include_timing.
  std::string to_json(bool include_timing = false) const;
};

/// Runs the closed loop over the whole fleet.  Synthesizes the healthy
/// design once, then steps every chip through `horizon` assay runs with
/// self-test + diagnosis + repair at the cadence.  Throws CancelledError
/// when options.cancel fires.
FleetReport run_fleet(const assay::SequencingGraph& graph, const FleetOptions& options);

/// The report's aggregate counters in the service registry's shape.
svc::MetricsRegistry::FleetStats to_fleet_stats(const FleetReport& report);

/// Packages a fleet run as a svc::JobKind::kFleet job: the runner executes
/// run_fleet under the job's token, folds the stats, and returns the
/// report JSON as the job document.  Fill in id/priority/on_phase/deadline
/// on the returned spec before submitting.
svc::JobSpec make_fleet_job(std::shared_ptr<const assay::SequencingGraph> graph,
                            const FleetOptions& options);

}  // namespace fsyn::fleet
