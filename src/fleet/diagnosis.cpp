#include "fleet/diagnosis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fsyn::fleet {

namespace {

/// Failing row and column indices of one phase under `failed`.
struct LineSets {
  std::vector<int> rows;
  std::vector<int> cols;
};

template <typename FailPredicate>
LineSets failing_lines(const TestSchedule& schedule, TestPhase phase,
                       const FailPredicate& failed) {
  LineSets sets;
  for (std::size_t i = 0; i < schedule.vectors.size(); ++i) {
    const TestVector& vector = schedule.vectors[i];
    if (vector.phase != phase || !failed(i)) continue;
    if (vector.orientation == LineOrientation::kRow) {
      sets.rows.push_back(vector.index);
    } else {
      sets.cols.push_back(vector.index);
    }
  }
  return sets;
}

/// Row x column intersection, row-major.  Empty when either side is empty
/// (a failing line with no crossing witness localizes nothing).
std::vector<Point> intersect(const LineSets& sets) {
  std::vector<Point> cells;
  for (const int y : sets.rows) {
    for (const int x : sets.cols) cells.push_back(Point{x, y});
  }
  std::sort(cells.begin(), cells.end());
  return cells;
}

}  // namespace

Diagnosis diagnose(const TestSchedule& schedule, const TestResponse& expected,
                   const TestResponse& observed, const DiagnosisOptions& options) {
  check_input(expected.vectors.size() == schedule.vectors.size() &&
                  observed.vectors.size() == schedule.vectors.size(),
              "diagnosis: responses must be parallel to the schedule's vectors");
  Diagnosis diagnosis;

  // Stuck valves: per phase, intersect failing rows with failing columns.
  const auto phase_mode = [](TestPhase phase) {
    // A closure failure means the line would not seal: stuck-open.
    return phase == TestPhase::kClosure ? rel::FaultMode::kStuckOpen
                                        : rel::FaultMode::kStuckClosed;
  };
  for (const TestPhase phase : {TestPhase::kClosure, TestPhase::kOpening}) {
    const LineSets sets = failing_lines(schedule, phase, [&](std::size_t i) {
      return expected.vectors[i].pass && !observed.vectors[i].pass;
    });
    const bool aliased = sets.rows.size() > 1 && sets.cols.size() > 1;
    for (const Point& cell : intersect(sets)) {
      DiagnosedFault fault;
      fault.valve = cell;
      fault.mode = phase_mode(phase);
      fault.aliased = aliased;
      diagnosis.stuck.push_back(fault);
    }
  }

  // Degraded valves: closure-phase latency channel (the seal is where a
  // worn membrane drags; vectors that failed outright carry no latency).
  const LineSets slow = failing_lines(schedule, TestPhase::kClosure, [&](std::size_t i) {
    return observed.vectors[i].pass &&
           observed.vectors[i].latency_ms >= options.latency_threshold_ms &&
           expected.vectors[i].latency_ms < options.latency_threshold_ms;
  });
  diagnosis.degraded = intersect(slow);

  return diagnosis;
}

rel::FaultPlan Diagnosis::to_fault_plan(int at_run) const {
  rel::FaultPlan plan;
  for (const DiagnosedFault& fault : stuck) {
    rel::FaultEvent event;
    event.valve = fault.valve;
    event.mode = fault.mode;
    event.at_run = at_run;
    plan.events.push_back(event);
  }
  return plan;
}

}  // namespace fsyn::fleet
