#include "assay/sequencing_graph.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace fsyn::assay {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:  return "input";
    case OpKind::kMix:    return "mix";
    case OpKind::kDetect: return "detect";
    case OpKind::kOutput: return "output";
  }
  return "?";
}

OpId SequencingGraph::add_operation(Operation op) {
  const OpId id{size()};
  for (const OpId parent : op.parents) {
    check_input(parent.index >= 0 && parent.index < size(),
                "operation '" + op.name + "' references an unknown parent");
  }
  op.id = id;
  if (op.name.empty()) op.name = "op" + std::to_string(id.index);
  operations_.push_back(std::move(op));
  children_.emplace_back();
  for (const OpId parent : operations_.back().parents) {
    children_[static_cast<std::size_t>(parent.index)].push_back(id);
  }
  return id;
}

const Operation& SequencingGraph::op(OpId id) const {
  require(id.index >= 0 && id.index < size(), "bad OpId");
  return operations_[static_cast<std::size_t>(id.index)];
}

const std::vector<OpId>& SequencingGraph::children(OpId id) const {
  require(id.index >= 0 && id.index < size(), "bad OpId");
  return children_[static_cast<std::size_t>(id.index)];
}

std::vector<OpId> SequencingGraph::topological_order() const {
  // Operations are append-only and parents must pre-exist, so insertion
  // order is already topological.
  std::vector<OpId> order;
  order.reserve(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) order.push_back(OpId{i});
  return order;
}

int SequencingGraph::count(OpKind kind) const {
  return static_cast<int>(std::count_if(operations_.begin(), operations_.end(),
                                        [&](const Operation& op) { return op.kind == kind; }));
}

std::vector<int> SequencingGraph::mixing_volumes() const {
  std::set<int> volumes;
  for (const Operation& op : operations_) {
    if (op.kind == OpKind::kMix) volumes.insert(op.volume);
  }
  return {volumes.begin(), volumes.end()};
}

void SequencingGraph::validate() const {
  std::set<std::string> names;
  for (const Operation& op : operations_) {
    check_input(names.insert(op.name).second, "duplicate operation name '" + op.name + "'");
    switch (op.kind) {
      case OpKind::kInput:
        check_input(op.parents.empty(), "input '" + op.name + "' must have no parents");
        break;
      case OpKind::kMix:
        check_input(!op.parents.empty(), "mix '" + op.name + "' needs at least one parent");
        check_input(op.volume > 0 && op.volume % 2 == 0,
                    "mix '" + op.name + "' needs a positive even volume");
        check_input(op.ratio.empty() || op.ratio.size() == op.parents.size(),
                    "mix '" + op.name + "' ratio length must match parents");
        for (const int part : op.ratio) {
          check_input(part > 0, "mix '" + op.name + "' ratio parts must be positive");
        }
        check_input(op.duration > 0, "mix '" + op.name + "' needs a positive duration");
        break;
      case OpKind::kDetect:
        check_input(op.parents.size() == 1, "detect '" + op.name + "' needs exactly one parent");
        check_input(op.duration > 0, "detect '" + op.name + "' needs a positive duration");
        break;
      case OpKind::kOutput:
        check_input(op.parents.size() == 1, "output '" + op.name + "' needs exactly one parent");
        break;
    }
  }
}

}  // namespace fsyn::assay
