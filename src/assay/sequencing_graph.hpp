// The bioassay sequencing graph (paper input #1).
#pragma once

#include <string>
#include <vector>

#include "assay/operation.hpp"

namespace fsyn::assay {

class SequencingGraph {
 public:
  explicit SequencingGraph(std::string name = "assay") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends an operation; parents must already exist.  Returns its id.
  OpId add_operation(Operation op);

  int size() const { return static_cast<int>(operations_.size()); }
  const Operation& op(OpId id) const;
  const std::vector<Operation>& operations() const { return operations_; }

  /// Children (consumers) of `id`.
  const std::vector<OpId>& children(OpId id) const;

  /// Operation ids in a topological order (parents before children).
  std::vector<OpId> topological_order() const;

  /// Number of operations of the given kind.
  int count(OpKind kind) const;

  /// Mixing-operation count, the paper's parenthesized `#op` figure.
  int mixing_count() const { return count(OpKind::kMix); }

  /// Distinct mixing volumes in ascending order.
  std::vector<int> mixing_volumes() const;

  /// Throws fsyn::Error when the graph violates a structural rule:
  /// inputs must have no parents, mixes >= 1 parent, detect/output exactly
  /// one parent; mix volumes positive and even; ratio lengths match parents.
  void validate() const;

 private:
  std::string name_;
  std::vector<Operation> operations_;
  std::vector<std::vector<OpId>> children_;
};

}  // namespace fsyn::assay
