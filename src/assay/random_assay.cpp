#include "assay/random_assay.hpp"

#include <vector>

#include "util/error.hpp"

namespace fsyn::assay {

SequencingGraph make_random_assay(Rng& rng, const RandomAssayOptions& options) {
  check_input(options.mixing_ops >= 1, "need at least one mixing op");
  SequencingGraph graph("random");
  static constexpr int kVolumes[] = {4, 6, 8, 10};

  int inputs = 0;
  auto fresh_input = [&]() {
    Operation op;
    op.kind = OpKind::kInput;
    op.name = "in" + std::to_string(++inputs);
    return graph.add_operation(std::move(op));
  };

  // Products not yet consumed; consuming from the front keeps the DAG wide,
  // from the back keeps it deep — the rng decides.
  std::vector<OpId> open_products;
  for (int m = 0; m < options.mixing_ops; ++m) {
    Operation mix;
    mix.kind = OpKind::kMix;
    mix.name = "mix" + std::to_string(m + 1);
    mix.volume = kVolumes[rng.next_below(4)];
    mix.duration = rng.next_int(3, 9);
    for (int parent = 0; parent < 2; ++parent) {
      const bool reuse = !open_products.empty() && rng.next_bool(options.reuse_probability);
      if (reuse) {
        const std::size_t pick = rng.next_below(open_products.size());
        mix.parents.push_back(open_products[pick]);
        open_products.erase(open_products.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        mix.parents.push_back(fresh_input());
      }
    }
    if (rng.next_bool(options.skewed_ratio_probability)) {
      mix.ratio = rng.next_bool(0.5) ? std::vector<int>{1, 3} : std::vector<int>{3, 1};
    }
    open_products.push_back(graph.add_operation(std::move(mix)));
  }

  // Optional detects on terminal products.
  for (const OpId product : std::vector<OpId>(open_products)) {
    if (!rng.next_bool(options.detect_probability)) continue;
    Operation detect;
    detect.kind = OpKind::kDetect;
    detect.name = "read_" + graph.op(product).name;
    detect.parents = {product};
    detect.duration = rng.next_int(2, 5);
    detect.volume = 4;
    graph.add_operation(std::move(detect));
  }

  graph.validate();
  return graph;
}

}  // namespace fsyn::assay
