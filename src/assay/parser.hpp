// Text format for bioassay sequencing graphs.
//
// Grammar (line oriented, '#' starts a comment):
//
//   assay <name>
//   input  <op-name>
//   mix    <op-name> volume <v> duration <d> from <parent>[:<parts>] ...
//   detect <op-name> duration <d> from <parent>
//   output <op-name> from <parent>
//
// Example (a 1:3 dilution followed by detection):
//
//   assay dilution-demo
//   input  sample
//   input  buffer
//   mix    dilute volume 8 duration 6 from sample:1 buffer:3
//   detect read duration 4 from dilute
//   output waste from read
#pragma once

#include <string>
#include <string_view>

#include "assay/sequencing_graph.hpp"

namespace fsyn::assay {

/// Parses the DSL; throws fsyn::Error with a line number on bad input.
SequencingGraph parse_assay(std::string_view text);

/// Loads and parses an assay file.
SequencingGraph load_assay_file(const std::string& path);

/// Serializes a graph back to the DSL (round-trips through parse_assay).
std::string to_assay_text(const SequencingGraph& graph);

}  // namespace fsyn::assay
