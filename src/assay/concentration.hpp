// Concentration tracking through a sequencing graph.
//
// The paper's benchmarks are dilution protocols: every mixing operation
// combines its parents in a given ratio, so each operation's product has a
// well-defined concentration of every input fluid.  This module computes
// those concentrations exactly (as rationals), which lets tests assert the
// defining properties of the reconstructed benchmarks — serial 1:1 dilution
// halves the sample concentration per stage [12], and the interpolating
// architecture [11] produces the averages of neighbouring concentrations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "assay/sequencing_graph.hpp"

namespace fsyn::assay {

/// An exact non-negative rational with small enough terms for assay maths.
class Ratio {
 public:
  Ratio() = default;
  Ratio(std::int64_t numerator, std::int64_t denominator);

  static Ratio zero() { return Ratio(); }
  static Ratio one() { return Ratio(1, 1); }

  std::int64_t numerator() const { return numerator_; }
  std::int64_t denominator() const { return denominator_; }
  double to_double() const { return static_cast<double>(numerator_) / denominator_; }

  Ratio operator+(const Ratio& other) const;
  Ratio operator*(const Ratio& other) const;
  friend bool operator==(const Ratio&, const Ratio&) = default;

 private:
  std::int64_t numerator_ = 0;
  std::int64_t denominator_ = 1;
};

/// Concentration of each input fluid (by input operation name) in a
/// product; entries always sum to 1 for reachable products.
using Mixture = std::map<std::string, Ratio>;

/// Computes the mixture of every operation's product.  Input operations are
/// pure (concentration 1 of themselves); a mix combines parents weighted by
/// its ratio (equal parts when unspecified); detect passes its parent
/// through unchanged.
std::vector<Mixture> compute_mixtures(const SequencingGraph& graph);

/// Concentration of `fluid` in the product of `op` (zero when absent).
Ratio concentration_of(const SequencingGraph& graph, OpId op, const std::string& fluid);

}  // namespace fsyn::assay
