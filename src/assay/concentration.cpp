#include "assay/concentration.hpp"

#include <numeric>

#include "util/error.hpp"

namespace fsyn::assay {

Ratio::Ratio(std::int64_t numerator, std::int64_t denominator)
    : numerator_(numerator), denominator_(denominator) {
  check_input(denominator != 0, "ratio with zero denominator");
  check_input(numerator >= 0 && denominator > 0, "ratios must be non-negative");
  const std::int64_t g = std::gcd(numerator_, denominator_);
  if (g > 1) {
    numerator_ /= g;
    denominator_ /= g;
  }
  if (numerator_ == 0) denominator_ = 1;
}

Ratio Ratio::operator+(const Ratio& other) const {
  // Reduce via the gcd of denominators first to delay overflow.
  const std::int64_t g = std::gcd(denominator_, other.denominator_);
  const std::int64_t scale = other.denominator_ / g;
  return Ratio(numerator_ * scale + other.numerator_ * (denominator_ / g),
               denominator_ * scale);
}

Ratio Ratio::operator*(const Ratio& other) const {
  // Cross-reduce before multiplying.
  const std::int64_t g1 = std::gcd(numerator_, other.denominator_);
  const std::int64_t g2 = std::gcd(other.numerator_, denominator_);
  return Ratio((numerator_ / g1) * (other.numerator_ / g2),
               (denominator_ / g2) * (other.denominator_ / g1));
}

std::vector<Mixture> compute_mixtures(const SequencingGraph& graph) {
  std::vector<Mixture> mixtures(static_cast<std::size_t>(graph.size()));
  for (const OpId id : graph.topological_order()) {
    const Operation& op = graph.op(id);
    Mixture& mixture = mixtures[static_cast<std::size_t>(id.index)];
    switch (op.kind) {
      case OpKind::kInput:
        mixture[op.name] = Ratio::one();
        break;
      case OpKind::kDetect:
      case OpKind::kOutput:
        mixture = mixtures[static_cast<std::size_t>(op.parents.at(0).index)];
        break;
      case OpKind::kMix: {
        std::int64_t total_parts = 0;
        if (op.ratio.empty()) {
          total_parts = static_cast<std::int64_t>(op.parents.size());
        } else {
          for (const int part : op.ratio) total_parts += part;
        }
        require(total_parts > 0, "mix with zero total ratio parts");
        for (std::size_t p = 0; p < op.parents.size(); ++p) {
          const std::int64_t parts = op.ratio.empty() ? 1 : op.ratio[p];
          const Ratio weight(parts, total_parts);
          for (const auto& [fluid, share] :
               mixtures[static_cast<std::size_t>(op.parents[p].index)]) {
            Mixture::iterator it = mixture.find(fluid);
            if (it == mixture.end()) {
              mixture[fluid] = share * weight;
            } else {
              it->second = it->second + share * weight;
            }
          }
        }
        break;
      }
    }
  }
  return mixtures;
}

Ratio concentration_of(const SequencingGraph& graph, OpId op, const std::string& fluid) {
  const auto mixtures = compute_mixtures(graph);
  const Mixture& mixture = mixtures.at(static_cast<std::size_t>(op.index));
  const auto it = mixture.find(fluid);
  return it == mixture.end() ? Ratio::zero() : it->second;
}

}  // namespace fsyn::assay
